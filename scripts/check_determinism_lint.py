#!/usr/bin/env python3
"""Determinism + robustness lint for the measurement code.

Every artifact this repo produces — datasets, monitor snapshots,
telemetry traces, Prometheus exports — must be a pure function of the
seed.  The easiest way to break that silently is a wall-clock read, so
this lint greps ``src/`` for the usual suspects:

* ``time.time(``
* ``datetime.now(`` / ``datetime.utcnow(``
* ``perf_counter(``

Robustness rules ride along (PR 4): measurement code must not swallow
arbitrary exceptions (``except:`` hides the very failures the taxonomy
is supposed to classify) and must never sleep on the wall clock
(``time.sleep`` — retry backoff is charged to *simulated* time).

Benchmarks (``benchmarks/``) legitimately measure wall-clock and are
not scanned.  A source line may opt out with the pattern's pragma when
the value is *diagnostics only* and never enters an artifact (e.g. the
scanner's stderr throughput line): ``# wallclock-ok`` for clock reads,
``# robustness-ok`` for the robustness rules; DESIGN.md documents both.

Exit status: 0 when clean, 1 with one ``path:line: text`` per offender.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

WALLCLOCK_PRAGMA = "wallclock-ok"
ROBUSTNESS_PRAGMA = "robustness-ok"

#: (pattern, opt-out pragma) pairs; a line matching a pattern passes
#: only when it carries that pattern's pragma.
FORBIDDEN = (
    # Wall-clock reads that would make outputs machine/run dependent.
    (re.compile(r"\btime\.time\("), WALLCLOCK_PRAGMA),
    (re.compile(r"\bdatetime\.now\("), WALLCLOCK_PRAGMA),
    (re.compile(r"\bdatetime\.utcnow\("), WALLCLOCK_PRAGMA),
    (re.compile(r"\bperf_counter\("), WALLCLOCK_PRAGMA),
    # Robustness: a bare except swallows failures the taxonomy must
    # see; time.sleep stalls the scanner on the wall clock.
    (re.compile(r"^\s*except\s*:"), ROBUSTNESS_PRAGMA),
    (re.compile(r"\btime\.sleep\("), ROBUSTNESS_PRAGMA),
)


def find_violations(root: Path) -> list[tuple[Path, int, str]]:
    violations: list[tuple[Path, int, str]] = []
    for path in sorted(root.rglob("*.py")):
        for number, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            for pattern, pragma in FORBIDDEN:
                if pattern.search(line) and pragma not in line:
                    violations.append((path, number, line.strip()))
                    break
    return violations


def main(argv: list[str] | None = None) -> int:
    args = argv if argv is not None else sys.argv[1:]
    root = Path(args[0]) if args else Path(__file__).resolve().parent.parent / "src"
    if not root.is_dir():
        print(f"determinism lint: no such directory: {root}", file=sys.stderr)
        return 2
    violations = find_violations(root)
    if violations:
        print(
            "determinism lint: forbidden constructs in measurement code "
            f"({len(violations)}):",
            file=sys.stderr,
        )
        for path, number, text in violations:
            print(f"  {path}:{number}: {text}", file=sys.stderr)
        print(
            "  (benchmark-only timing belongs in benchmarks/; diagnostics "
            f"may annotate the line with '# {WALLCLOCK_PRAGMA}', robustness "
            f"opt-outs with '# {ROBUSTNESS_PRAGMA}')",
            file=sys.stderr,
        )
        return 1
    print(f"determinism lint: clean ({root})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
