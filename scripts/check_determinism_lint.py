#!/usr/bin/env python3
"""Determinism + robustness lint for the measurement code.

Every artifact this repo produces — datasets, monitor snapshots,
telemetry traces, Prometheus exports — must be a pure function of the
seed.  The easiest way to break that silently is a wall-clock read, so
this lint greps ``src/`` for the usual suspects:

* ``time.time(``
* ``datetime.now(`` / ``datetime.utcnow(``
* ``perf_counter(``

Robustness rules ride along (PR 4): measurement code must not swallow
arbitrary exceptions (``except:`` hides the very failures the taxonomy
is supposed to classify) and must never sleep on the wall clock
(``time.sleep`` — retry backoff is charged to *simulated* time).

Performance rules ride along too (PR 5): under ``src/repro/analysis/``,
``src/repro/service/``, ``src/repro/obs/``, ``src/repro/monitor/``, and
``src/repro/netsim/`` a
``json.loads``/``json.dumps`` call inside a ``for`` loop is per-record
JSON — exactly the cost profile the
columnar artifact format and the week index exist to remove — and is
flagged.  The JSONL codecs themselves (the artifact reader, the spool
manifest, the ``/v1/domain`` response body) are the legitimate per-line
JSON loops and opt out with ``# jsonl-ok``.

Benchmarks (``benchmarks/``) legitimately measure wall-clock and are
not scanned.  A source line may opt out with the pattern's pragma when
the value is *diagnostics only* and never enters an artifact (e.g. the
scanner's stderr throughput line): ``# wallclock-ok`` for clock reads,
``# robustness-ok`` for the robustness rules, ``# jsonl-ok`` for the
JSON-in-loop rule; DESIGN.md documents all three.

Exit status: 0 when clean, 1 with one ``path:line: text`` per offender.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

WALLCLOCK_PRAGMA = "wallclock-ok"
ROBUSTNESS_PRAGMA = "robustness-ok"
JSONLOOP_PRAGMA = "jsonl-ok"

#: ``json.load``/``json.loads``/``json.dump``/``json.dumps`` — any
#: per-record JSON codec call.
_JSON_CALL = re.compile(r"\bjson\.(?:loads?|dumps?)\(")
_FOR_STMT = re.compile(r"^(\s*)(?:async\s+)?for\b")

#: (pattern, opt-out pragma) pairs; a line matching a pattern passes
#: only when it carries that pattern's pragma.
FORBIDDEN = (
    # Wall-clock reads that would make outputs machine/run dependent.
    (re.compile(r"\btime\.time\("), WALLCLOCK_PRAGMA),
    (re.compile(r"\bdatetime\.now\("), WALLCLOCK_PRAGMA),
    (re.compile(r"\bdatetime\.utcnow\("), WALLCLOCK_PRAGMA),
    (re.compile(r"\bperf_counter\("), WALLCLOCK_PRAGMA),
    # Robustness: a bare except swallows failures the taxonomy must
    # see; time.sleep stalls the scanner on the wall clock.
    (re.compile(r"^\s*except\s*:"), ROBUSTNESS_PRAGMA),
    (re.compile(r"\btime\.sleep\("), ROBUSTNESS_PRAGMA),
)


def find_violations(root: Path) -> list[tuple[Path, int, str]]:
    violations: list[tuple[Path, int, str]] = []
    for path in sorted(root.rglob("*.py")):
        for number, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            for pattern, pragma in FORBIDDEN:
                if pattern.search(line) and pragma not in line:
                    violations.append((path, number, line.strip()))
                    break
    for hot_layer in (
        "analysis",
        "service",
        "obs",
        "monitor",
        "netsim",
        # The scan engine's hot path: shard scheduler, cbr IPC, and the
        # checkpoint writer must never fall back to per-record JSON.
        "web",
        "internet",
        "faults",
    ):
        layer_root = root / "repro" / hot_layer
        if layer_root.is_dir():
            violations.extend(find_json_loop_violations(layer_root))
    return violations


def find_json_loop_violations(root: Path) -> list[tuple[Path, int, str]]:
    """JSON codec calls inside ``for`` loops (per-record JSON cost).

    Indentation-scoped: a ``for`` header opens a loop body at any deeper
    indent; a JSON call in such a body without ``# jsonl-ok`` is flagged.
    """
    violations: list[tuple[Path, int, str]] = []
    for path in sorted(root.rglob("*.py")):
        loop_stack: list[int] = []  # indents of enclosing `for` headers
        for number, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            indent = len(line) - len(line.lstrip())
            while loop_stack and indent <= loop_stack[-1]:
                loop_stack.pop()
            if (
                loop_stack
                and _JSON_CALL.search(line)
                and JSONLOOP_PRAGMA not in line
            ):
                violations.append((path, number, stripped))
            header = _FOR_STMT.match(line)
            if header is not None:
                loop_stack.append(len(header.group(1)))
    return violations


def main(argv: list[str] | None = None) -> int:
    args = argv if argv is not None else sys.argv[1:]
    root = Path(args[0]) if args else Path(__file__).resolve().parent.parent / "src"
    if not root.is_dir():
        print(f"determinism lint: no such directory: {root}", file=sys.stderr)
        return 2
    violations = find_violations(root)
    if violations:
        print(
            "determinism lint: forbidden constructs in measurement code "
            f"({len(violations)}):",
            file=sys.stderr,
        )
        for path, number, text in violations:
            print(f"  {path}:{number}: {text}", file=sys.stderr)
        print(
            "  (benchmark-only timing belongs in benchmarks/; diagnostics "
            f"may annotate the line with '# {WALLCLOCK_PRAGMA}', robustness "
            f"opt-outs with '# {ROBUSTNESS_PRAGMA}'; per-record JSON in the "
            f"analysis layer belongs in the cbr codec — the JSONL codec "
            f"itself opts out with '# {JSONLOOP_PRAGMA}')",
            file=sys.stderr,
        )
        return 1
    print(f"determinism lint: clean ({root})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
