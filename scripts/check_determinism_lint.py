#!/usr/bin/env python3
"""Determinism lint: no wall-clock reads in the measurement code.

Every artifact this repo produces — datasets, monitor snapshots,
telemetry traces, Prometheus exports — must be a pure function of the
seed.  The easiest way to break that silently is a wall-clock read, so
this lint greps ``src/`` for the usual suspects:

* ``time.time(``
* ``datetime.now(`` / ``datetime.utcnow(``
* ``perf_counter(``

and fails if any appear.  Benchmarks (``benchmarks/``) legitimately
measure wall-clock and are not scanned.  A source line may opt out with
a ``# wallclock-ok`` pragma when the value is *diagnostics only* and
never enters an artifact (e.g. the scanner's stderr throughput line);
DESIGN.md documents the rule.

Exit status: 0 when clean, 1 with one ``path:line: text`` per offender.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Wall-clock reads that would make outputs machine/run dependent.
FORBIDDEN = (
    re.compile(r"\btime\.time\("),
    re.compile(r"\bdatetime\.now\("),
    re.compile(r"\bdatetime\.utcnow\("),
    re.compile(r"\bperf_counter\("),
)

PRAGMA = "wallclock-ok"


def find_violations(root: Path) -> list[tuple[Path, int, str]]:
    violations: list[tuple[Path, int, str]] = []
    for path in sorted(root.rglob("*.py")):
        for number, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            if PRAGMA in line:
                continue
            if any(pattern.search(line) for pattern in FORBIDDEN):
                violations.append((path, number, line.strip()))
    return violations


def main(argv: list[str] | None = None) -> int:
    args = argv if argv is not None else sys.argv[1:]
    root = Path(args[0]) if args else Path(__file__).resolve().parent.parent / "src"
    if not root.is_dir():
        print(f"determinism lint: no such directory: {root}", file=sys.stderr)
        return 2
    violations = find_violations(root)
    if violations:
        print(
            "determinism lint: wall-clock reads in measurement code "
            f"({len(violations)}):",
            file=sys.stderr,
        )
        for path, number, text in violations:
            print(f"  {path}:{number}: {text}", file=sys.stderr)
        print(
            "  (benchmark-only timing belongs in benchmarks/; "
            f"diagnostics may annotate the line with '# {PRAGMA}')",
            file=sys.stderr,
        )
        return 1
    print(f"determinism lint: clean ({root})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
