#!/usr/bin/env bash
# Chaos smoke test: run a small scan under every fault kind at once and
# assert the robustness guarantees hold end to end:
#
#   1. the scan completes (exit 0) with a nonzero fault plan,
#   2. datasets and qlogs are byte-identical at --workers 1 vs the
#      4-worker work-stealing pool (--force-pool), batch and --stream,
#   3. the failure-taxonomy summary is byte-identical across workers,
#   4. a checkpointed campaign with a deleted shard resumes to the same
#      merged dataset as an uninterrupted run,
#   5. the monitor survives corrupt datagrams deterministically,
#   6. injected connection migrations (NAT rebinds, CID rotations,
#      path migrations) plus multiplexed TCP flows stay deterministic,
#      keep linkable flows un-split under CID linkage, split without it,
#      and classify non-QUIC traffic instead of erroring,
#   7. a service campaign tick leaves the directory healthy: the
#      'repro status --exit-code' SLO gate passes and the span log
#      covers the whole pipeline.
#
# Everything runs in a throwaway temp directory; the repo tree is not
# touched.
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

FAULTS="blackhole:0.03,handshake-stall:0.05,vn-failure:0.03,reset:0.05,slow-server:0.05,loss-burst:0.05,qlog-truncate:0.3,corrupt-datagram:0.05"
COMMON=(--czds 600 --toplist 100 --seed 417 --fault "$FAULTS"
        --connect-timeout-ms 20000 --retries 1
        --breaker-threshold 4 --breaker-cooldown 6
        --qlog-sample-rate 0.05)

echo "== chaos smoke: faulted scan, workers 1 vs 4 (work-stealing pool) =="
# --force-pool makes the 4-worker arm run the real work-stealing pool
# (cbr IPC, cost-aware shards, straggler splitting) even on hosts with
# too few cores for the engine to pick it on its own — the identity
# guarantee must hold through the scheduler, not just the fallback.
python -m repro.cli scan "${COMMON[@]}" --workers 1 \
    --out "$WORK/w1.jsonl" --qlog-out "$WORK/w1-qlog.jsonl" 2>"$WORK/w1.err"
python -m repro.cli scan "${COMMON[@]}" --workers 4 --force-pool \
    --out "$WORK/w4.jsonl" --qlog-out "$WORK/w4-qlog.jsonl" 2>"$WORK/w4.err"
cmp "$WORK/w1.jsonl" "$WORK/w4.jsonl"
cmp "$WORK/w1-qlog.jsonl" "$WORK/w4-qlog.jsonl"
grep '^failures:' "$WORK/w1.err"
cmp <(grep '^failures:' "$WORK/w1.err") <(grep '^failures:' "$WORK/w4.err")

echo "== chaos smoke: failure taxonomy is worker-independent =="
python -m repro.cli analyze "$WORK/w1.jsonl" --section failures \
    2>/dev/null >"$WORK/tax1.txt"
python -m repro.cli analyze "$WORK/w4.jsonl" --section failures \
    2>/dev/null >"$WORK/tax4.txt"
cmp "$WORK/tax1.txt" "$WORK/tax4.txt"
cat "$WORK/tax1.txt"

echo "== chaos smoke: checkpoint / crash / resume =="
python -m repro.cli scan "${COMMON[@]}" --chunk-size 128 \
    --checkpoint-dir "$WORK/ckpt" --out "$WORK/ckpt-full.jsonl" 2>/dev/null
rm "$WORK/ckpt/shard-00002.cbr"   # simulate a crash losing one shard
python -m repro.cli scan "${COMMON[@]}" --chunk-size 128 --workers 4 --force-pool \
    --checkpoint-dir "$WORK/ckpt" --out "$WORK/ckpt-resumed.jsonl" 2>/dev/null
cmp "$WORK/ckpt-full.jsonl" "$WORK/ckpt-resumed.jsonl"
cmp "$WORK/ckpt-full.jsonl" "$WORK/w1.jsonl"

echo "== chaos smoke: streaming scan matches batch under faults =="
# The streaming population + bounded-window scan must emit identical
# records at any worker count, faults and all (no breaker: the
# breaker's post-merge pass needs the full result list).
STREAM=(--czds 600 --toplist 100 --seed 417 --fault "$FAULTS"
        --connect-timeout-ms 20000 --retries 1 --qlog-sample-rate 0.05)
python -m repro.cli scan "${STREAM[@]}" --stream --workers 1 \
    --out "$WORK/stream1.jsonl" 2>/dev/null
python -m repro.cli scan "${STREAM[@]}" --stream --workers 4 --force-pool \
    --out "$WORK/stream4.jsonl" 2>/dev/null
cmp "$WORK/stream1.jsonl" "$WORK/stream4.jsonl"

echo "== chaos smoke: checkpoint merge via frame copy =="
python -m repro.cli convert "$WORK/ckpt" "$WORK/merged.cbr" 2>/dev/null
python -m repro.cli analyze "$WORK/merged.cbr" --section failures \
    2>/dev/null >"$WORK/tax-merged.txt"
cmp "$WORK/tax-merged.txt" "$WORK/tax1.txt"

echo "== chaos smoke: monitor under corrupt datagrams =="
python -m repro.cli monitor --flows 60 --seed 7 \
    --fault "corrupt-datagram:0.05" --out "$WORK/m1.jsonl" 2>/dev/null
python -m repro.cli monitor --flows 60 --seed 7 \
    --fault "corrupt-datagram:0.05" --out "$WORK/m2.jsonl" 2>/dev/null
cmp "$WORK/m1.jsonl" "$WORK/m2.jsonl"
python - "$WORK/m1.jsonl" <<'PY'
import json
import sys

with open(sys.argv[1], encoding="utf-8") as stream:
    summary = [json.loads(line) for line in stream][-1]
assert summary["type"] == "summary", summary
assert summary["parse_errors"] > 0, "corrupt datagrams were not counted"
print(f"monitor counted {summary['parse_errors']} parse errors, no crash")
PY

echo "== chaos smoke: connection migration + mixed transports =="
MIGRATE="nat-rebind:0.35,cid-rotation:0.35,path-migration:0.1"
python -m repro.cli monitor --flows 60 --seed 7 \
    --migrate "$MIGRATE" --tcp-flows 8 --out "$WORK/mig1.jsonl" 2>/dev/null
python -m repro.cli monitor --flows 60 --seed 7 \
    --migrate "$MIGRATE" --tcp-flows 8 --out "$WORK/mig2.jsonl" 2>/dev/null
cmp "$WORK/mig1.jsonl" "$WORK/mig2.jsonl"
python -m repro.cli monitor --flows 60 --seed 7 --no-cid-linkage \
    --migrate "$MIGRATE" --tcp-flows 8 --out "$WORK/mig-nolink.jsonl" 2>/dev/null
python - "$WORK/mig1.jsonl" "$WORK/mig-nolink.jsonl" <<'PY'
import json
import sys

def summary(path):
    with open(path, encoding="utf-8") as stream:
        return [json.loads(line) for line in stream][-1]

linked = summary(sys.argv[1])["migration"]
unlinked = summary(sys.argv[2])["migration"]
assert linked["flows_split"] == 0, f"linkable migrations split: {linked}"
assert linked["flows_migrated"] > 0, f"no migrations tracked: {linked}"
assert linked["rebinds_seen"] > 0, f"no rebinds observed: {linked}"
assert linked["transport_mix"]["tcp"] > 0, f"no TCP classified: {linked}"
assert linked["transport_mix"]["unparseable"] == 0, linked
assert unlinked["flows_split"] > 0, f"control arm did not split: {unlinked}"
print(
    f"migration OK: {linked['flows_migrated']} migrated / "
    f"{linked['rebinds_seen']} rebinds / 0 split with linkage; "
    f"{unlinked['flows_split']} split without"
)
PY
python -m repro.cli analyze --section migration --flows 30 --tcp-flows 4 \
    --seed 7 --migrate "$MIGRATE" 2>/dev/null >"$WORK/mig-study.txt"
grep -q "CID linkage" "$WORK/mig-study.txt"

echo "== chaos smoke: service tick + SLO health gate =="
python -m repro.cli service run-once --dir "$WORK/svc" \
    --telemetry-out "$WORK/svc/telemetry" \
    --seed 417 --czds 200 --toplist 50 \
    --first-week cw20-2023 --last-week cw20-2023 >/dev/null 2>&1
python -m repro.cli status --dir "$WORK/svc" --exit-code
python - "$WORK/svc/telemetry/spans.jsonl" <<'PY'
import json
import sys

with open(sys.argv[1], encoding="utf-8") as stream:
    rows = [json.loads(line) for line in stream]
stages = {row["name"].partition(":")[0] for row in rows}
missing = {"campaign", "scan", "domain", "spool", "index", "status"} - stages
assert not missing, f"span log misses pipeline stages: {sorted(missing)}"
roots = [row["name"] for row in rows if row["parent"] is None]
assert roots == ["campaign"], f"expected one campaign root, got {roots}"
print(f"span log OK: {len(rows)} spans, stages {sorted(stages)}")
PY

echo "chaos smoke: OK"
