#!/usr/bin/env bash
# Per-PR perf gate: run the tier-1 tests, then the scan-throughput
# benchmark, and append the benchmark result (stamped with commit and
# timestamp) to BENCH_history.jsonl so every PR records its perf delta.
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 tests =="
python -m pytest -x -q tests

echo "== scan-throughput benchmark =="
python -m pytest -q -s benchmarks/test_perf_scan_throughput.py

python - <<'PY'
import datetime
import json
import pathlib
import subprocess

result = json.loads(pathlib.Path("BENCH_scan_throughput.json").read_text())
result["commit"] = subprocess.run(
    ["git", "rev-parse", "--short", "HEAD"], capture_output=True, text=True
).stdout.strip() or None
result["timestamp"] = datetime.datetime.now(datetime.timezone.utc).isoformat(
    timespec="seconds"
)
with open("BENCH_history.jsonl", "a", encoding="utf-8") as history:
    history.write(json.dumps(result) + "\n")
print(f"appended {result['benchmark']} @ {result['commit']} to BENCH_history.jsonl")
PY
