#!/usr/bin/env bash
# Per-PR perf gate: run the tier-1 tests, then the perf benchmarks
# (scan, monitor, and analyze throughput; telemetry, fault, profiler,
# and migration-resolver overhead; query pushdown and service query
# latency),
# and append each benchmark's result (stamped with commit and timestamp)
# to BENCH_history.jsonl so every PR records its perf delta.  The cbr
# round-trip identity gate runs first: no perf run is recorded from a
# codec that does not reproduce its records bit-identically.
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== determinism lint =="
python scripts/check_determinism_lint.py

echo "== tier-1 tests =="
python -m pytest -x -q tests

echo "== cbr round-trip identity gate =="
# A perf number from a codec that does not round trip is meaningless;
# refuse to record anything unless encode -> decode is bit-identical.
python - <<'PY'
import io
import sys

from repro.artifacts.cbr import CbrReader, write_records_cbr
from repro.internet.population import PopulationConfig, build_population
from repro.web.scanner import ScanConfig, Scanner

population = build_population(
    PopulationConfig(toplist_domains=400, czds_domains=3_000, seed=20230520)
)
dataset = Scanner(population, ScanConfig()).scan(
    week_label="cw20-2023", ip_version=4
)
records = list(dataset.connection_records())
first = io.BytesIO()
write_records_cbr(records, first)
first.seek(0)
decoded = list(CbrReader(first).iter_records())
if decoded != records:
    sys.exit("cbr round-trip identity FAILED: decoded records differ")
second = io.BytesIO()
write_records_cbr(decoded, second)
if second.getvalue() != first.getvalue():
    sys.exit("cbr round-trip identity FAILED: re-encoded bytes differ")
print(f"cbr round-trip identity OK ({len(records)} records)")
PY

echo "== scan-throughput benchmark =="
python -m pytest -q -s benchmarks/test_perf_scan_throughput.py

echo "== scan scaling gate =="
# The work-stealing pool must actually scale where the hardware allows
# it: >=2x sequential at 4 workers on a >=4-core host.  On smaller
# hosts the arm is constrained (in-process fallback) and the gate is
# skipped with a notice rather than asserting a number the machine
# cannot produce.
python - <<'PY'
import json
import sys

result = json.loads(open("BENCH_scan_throughput.json", encoding="utf-8").read())
cpu_count = result["cpu_count"]
arm = result["results"]["workers_4"]
speedup = arm["speedup_vs_sequential"]
if cpu_count >= 4:
    if arm.get("constrained"):
        sys.exit(f"scaling gate FAILED: workers_4 constrained on {cpu_count} cores")
    if speedup < 2.0:
        sys.exit(
            f"scaling gate FAILED: workers_4 speedup {speedup:.2f}x < 2.0x "
            f"sequential on {cpu_count} cores"
        )
    print(f"scaling gate OK: workers_4 {speedup:.2f}x sequential on {cpu_count} cores")
else:
    print(
        f"scaling gate SKIPPED ({cpu_count} core(s)): workers_4 ran "
        f"constrained at {speedup:.2f}x; >=4 cores required to assert >=2.0x"
    )
PY

echo "== monitor-throughput benchmark =="
python -m pytest -q -s benchmarks/test_perf_monitor_throughput.py

echo "== analyze-throughput benchmark =="
python -m pytest -q -s benchmarks/test_perf_analyze_throughput.py

echo "== telemetry-overhead benchmark =="
python -m pytest -q -s benchmarks/test_perf_telemetry_overhead.py

echo "== fault-overhead benchmark =="
python -m pytest -q -s benchmarks/test_perf_fault_overhead.py

echo "== profile-overhead benchmark =="
python -m pytest -q -s benchmarks/test_perf_profile_overhead.py

echo "== migration-overhead benchmark =="
python -m pytest -q -s benchmarks/test_perf_migration_overhead.py

echo "== query-pushdown benchmark =="
python -m pytest -q -s benchmarks/test_perf_query_pushdown.py

echo "== service-query benchmark =="
python -m pytest -q -s benchmarks/test_perf_service_query.py

echo "== chaos smoke =="
bash scripts/chaos_smoke.sh

python - <<'PY'
import datetime
import json
import pathlib
import subprocess

commit = subprocess.run(
    ["git", "rev-parse", "--short", "HEAD"], capture_output=True, text=True
).stdout.strip() or None
timestamp = datetime.datetime.now(datetime.timezone.utc).isoformat(
    timespec="seconds"
)
for result_file in (
    "BENCH_scan_throughput.json",
    "BENCH_monitor_throughput.json",
    "BENCH_analyze_throughput.json",
    "BENCH_telemetry_overhead.json",
    "BENCH_fault_overhead.json",
    "BENCH_profile_overhead.json",
    "BENCH_migration_overhead.json",
    "BENCH_query_pushdown.json",
    "BENCH_service_query.json",
):
    result = json.loads(pathlib.Path(result_file).read_text())
    result["commit"] = commit
    result["timestamp"] = timestamp
    with open("BENCH_history.jsonl", "a", encoding="utf-8") as history:
        history.write(json.dumps(result) + "\n")
    print(f"appended {result['benchmark']} @ {commit} to BENCH_history.jsonl")
PY
