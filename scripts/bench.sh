#!/usr/bin/env bash
# Per-PR perf gate: run the tier-1 tests, then the perf benchmarks
# (scan throughput, monitor throughput), and append each benchmark's
# result (stamped with commit and timestamp) to BENCH_history.jsonl so
# every PR records its perf delta.
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== determinism lint =="
python scripts/check_determinism_lint.py

echo "== tier-1 tests =="
python -m pytest -x -q tests

echo "== scan-throughput benchmark =="
python -m pytest -q -s benchmarks/test_perf_scan_throughput.py

echo "== monitor-throughput benchmark =="
python -m pytest -q -s benchmarks/test_perf_monitor_throughput.py

echo "== telemetry-overhead benchmark =="
python -m pytest -q -s benchmarks/test_perf_telemetry_overhead.py

echo "== fault-overhead benchmark =="
python -m pytest -q -s benchmarks/test_perf_fault_overhead.py

echo "== chaos smoke =="
bash scripts/chaos_smoke.sh

python - <<'PY'
import datetime
import json
import pathlib
import subprocess

commit = subprocess.run(
    ["git", "rev-parse", "--short", "HEAD"], capture_output=True, text=True
).stdout.strip() or None
timestamp = datetime.datetime.now(datetime.timezone.utc).isoformat(
    timespec="seconds"
)
for result_file in (
    "BENCH_scan_throughput.json",
    "BENCH_monitor_throughput.json",
    "BENCH_telemetry_overhead.json",
    "BENCH_fault_overhead.json",
):
    result = json.loads(pathlib.Path(result_file).read_text())
    result["commit"] = commit
    result["timestamp"] = timestamp
    with open("BENCH_history.jsonl", "a", encoding="utf-8") as history:
        history.write(json.dumps(result) + "\n")
    print(f"appended {result['benchmark']} @ {commit} to BENCH_history.jsonl")
PY
