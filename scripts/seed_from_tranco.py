#!/usr/bin/env python3
"""Convert a Tranco-style ranking CSV into a service seed batch.

The paper's target population starts from the Tranco top list (plus
CZDS zone files); a running measurement service takes new targets
through ``POST /v1/seeds``.  This script is the bridge: it reads the
``rank,domain`` CSV shape Tranco publishes and either

* writes the ``{"domains": [...]}`` batch as JSON (stdout or ``--out``,
  ready for an offline seed file or a later ``curl``), or
* POSTs it straight to a running service with ``--post URL`` (the bare
  service root or the full ``/v1/seeds`` endpoint both work).

Usage::

    python scripts/seed_from_tranco.py top-1m.csv --top 500 --out seeds.json
    python scripts/seed_from_tranco.py top-1m.csv --post http://127.0.0.1:8323

Rows are taken in file order (Tranco files are rank-sorted), ``--top``
caps how many survive, and malformed rows (no domain column, empty
names) are skipped with a note on stderr.  Exit status is non-zero on
an empty batch or a failed POST.
"""

from __future__ import annotations

import argparse
import json
import sys
import urllib.error
import urllib.request
from pathlib import Path

SEEDS_ENDPOINT = "/v1/seeds"


def parse_tranco_csv(lines, top: int | None = None) -> tuple[list[str], int]:
    """Domains in rank order from ``rank,domain`` lines.

    Tolerates a header row, bare-domain lines (no rank column), comment
    lines, and surrounding whitespace; returns ``(domains, skipped)``.
    """
    domains: list[str] = []
    seen: set[str] = set()
    skipped = 0
    for line in lines:
        row = line.strip()
        if not row or row.startswith("#"):
            continue
        cells = [cell.strip() for cell in row.split(",")]
        name = cells[-1].lower()
        if cells[0].lower() in ("rank", "position") or name in ("domain", ""):
            continue  # header row or rank-only line
        if "." not in name or " " in name:
            skipped += 1
            continue
        if name in seen:
            continue
        seen.add(name)
        domains.append(name)
        if top is not None and len(domains) >= top:
            break
    return domains, skipped


def post_seeds(url: str, domains: list[str]) -> dict:
    """POST the batch to a service; returns the decoded JSON reply."""
    if not url.rstrip("/").endswith(SEEDS_ENDPOINT):
        url = url.rstrip("/") + SEEDS_ENDPOINT
    body = json.dumps({"domains": domains}).encode("utf-8")
    request = urllib.request.Request(
        url,
        data=body,
        method="POST",
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request) as response:
        return json.loads(response.read().decode("utf-8"))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="convert a Tranco-style CSV into a /v1/seeds batch"
    )
    parser.add_argument(
        "csv",
        help="Tranco-style CSV path ('rank,domain' rows), or '-' for stdin",
    )
    parser.add_argument(
        "--top", type=int, default=None,
        help="keep only the first N ranked domains",
    )
    parser.add_argument(
        "--out", default=None,
        help="write the JSON batch to this file instead of stdout",
    )
    parser.add_argument(
        "--post", default=None, metavar="URL",
        help="POST the batch to a running service instead of printing it",
    )
    args = parser.parse_args(argv)

    if args.csv == "-":
        lines = sys.stdin.read().splitlines()
    else:
        try:
            lines = Path(args.csv).read_text(encoding="utf-8").splitlines()
        except OSError as error:
            print(f"seed_from_tranco: error: {error}", file=sys.stderr)
            return 2
    domains, skipped = parse_tranco_csv(lines, top=args.top)
    if skipped:
        print(
            f"seed_from_tranco: skipped {skipped} malformed row(s)",
            file=sys.stderr,
        )
    if not domains:
        print("seed_from_tranco: error: no domains in the input", file=sys.stderr)
        return 2

    if args.post is not None:
        try:
            reply = post_seeds(args.post, domains)
        except (urllib.error.URLError, OSError, json.JSONDecodeError) as error:
            print(f"seed_from_tranco: error: POST failed: {error}", file=sys.stderr)
            return 1
        print(json.dumps(reply, sort_keys=True))
        return 0

    batch = json.dumps({"domains": domains}, indent=1) + "\n"
    if args.out is not None:
        Path(args.out).write_text(batch, encoding="utf-8")
        print(
            f"seed_from_tranco: wrote {len(domains)} domain(s) to {args.out}",
            file=sys.stderr,
        )
    else:
        sys.stdout.write(batch)
    return 0


if __name__ == "__main__":
    sys.exit(main())
