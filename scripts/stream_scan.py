#!/usr/bin/env python3
"""Streaming-population scan demo: millions of domains, bounded RSS.

Validates the scan engine's bounded-memory claim end to end: a
:class:`~repro.internet.streaming.StreamingPopulation` generates the
target list per index (never as a Python list), ``Scanner.scan_stream``
keeps only a bounded window of shards in flight, and results flow
straight into the artifact writer.  The parent process's resident set
must therefore stay flat no matter how many domains the scan covers.

The script samples ``VmRSS`` from ``/proc/self/status`` as the scan
progresses and reports the kernel's high-water mark (``VmHWM``) at the
end, alongside throughput.  ``--max-rss-mb`` turns the report into a
gate: exit nonzero when the parent's peak RSS exceeds the bound.

Examples::

    # the acceptance run: 1M domains, bounded RSS, records discarded
    python scripts/stream_scan.py --toplist 30000 --czds 970000

    # export an artifact while streaming, pool forced on a small host
    python scripts/stream_scan.py --czds 200000 --workers 4 \
        --force-pool --out /tmp/stream.cbr
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.artifacts import write_records  # noqa: E402
from repro.internet.population import PopulationConfig  # noqa: E402
from repro.internet.streaming import StreamingPopulation  # noqa: E402
from repro.web.parallel import ParallelScanConfig  # noqa: E402
from repro.web.scanner import ScanConfig, Scanner  # noqa: E402


def _status_kb(field: str) -> int:
    """Read one kB-valued field (VmRSS, VmHWM) from /proc/self/status."""
    try:
        with open("/proc/self/status", encoding="ascii") as stream:
            for line in stream:
                if line.startswith(field + ":"):
                    return int(line.split()[1])
    except OSError:
        pass
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--toplist", type=int, default=30_000)
    parser.add_argument("--czds", type=int, default=970_000)
    parser.add_argument("--seed", type=int, default=20230520)
    parser.add_argument("--week", default="cw20-2023")
    parser.add_argument("--ip-version", type=int, default=4, choices=(4, 6))
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--chunk-size", type=int, default=None)
    parser.add_argument("--force-pool", action="store_true")
    parser.add_argument(
        "--out", default=None, help="artifact path (default: discard, count only)"
    )
    parser.add_argument(
        "--progress-every",
        type=int,
        default=50_000,
        help="print a progress + RSS line every N domains",
    )
    parser.add_argument(
        "--max-rss-mb",
        type=float,
        default=None,
        help="fail when the parent's peak RSS exceeds this bound",
    )
    args = parser.parse_args(argv)

    population = StreamingPopulation(
        PopulationConfig(
            toplist_domains=args.toplist, czds_domains=args.czds, seed=args.seed
        )
    )
    parallel = ParallelScanConfig(
        workers=args.workers,
        chunk_size=args.chunk_size,
        force_pool=args.force_pool,
    )
    total = population.domain_count
    baseline_kb = _status_kb("VmRSS")
    print(
        f"streaming scan: {total} domains, {args.workers} worker(s), "
        f"baseline RSS {baseline_kb / 1024:.1f} MB",
        flush=True,
    )

    scanner = Scanner(population, ScanConfig(), parallel=parallel)
    stats: dict = {}
    state = {"domains": 0, "connections": 0, "quic": 0, "next_mark": 0}
    started = time.perf_counter()

    def results():
        for result in scanner.scan_stream(
            week_label=args.week, ip_version=args.ip_version, stats=stats
        ):
            state["domains"] += 1
            state["connections"] += len(result.connections)
            if result.quic_support:
                state["quic"] += 1
            if state["domains"] >= state["next_mark"]:
                state["next_mark"] += args.progress_every
                rss_kb = _status_kb("VmRSS")
                elapsed = time.perf_counter() - started
                rate = state["domains"] / elapsed if elapsed else 0.0
                print(
                    f"  {state['domains']:>9}/{total} domains  "
                    f"{rate:8.0f}/s  RSS {rss_kb / 1024:7.1f} MB",
                    flush=True,
                )
            yield result

    try:
        if args.out:
            written = write_records(
                (
                    record
                    for result in results()
                    for record in result.connections
                ),
                args.out,
            )
        else:
            for result in results():
                pass
            written = 0
    finally:
        scanner.close()

    elapsed = time.perf_counter() - started
    peak_kb = _status_kb("VmHWM")
    print(
        f"done: {state['domains']} domains ({state['quic']} QUIC-capable), "
        f"{state['connections']} connections in {elapsed:.1f} s "
        f"({state['domains'] / elapsed:.0f} domains/s)"
    )
    if args.out:
        print(f"wrote {written} connection records to {args.out}")
    if stats:
        print(
            f"scheduler: pool={stats.get('pool')} shards={stats.get('shards')} "
            f"max_outstanding={stats.get('max_outstanding')}"
        )
    print(
        f"parent peak RSS {peak_kb / 1024:.1f} MB "
        f"(baseline {baseline_kb / 1024:.1f} MB)"
    )
    if args.max_rss_mb is not None and peak_kb / 1024 > args.max_rss_mb:
        print(
            f"RSS gate FAILED: peak {peak_kb / 1024:.1f} MB > "
            f"bound {args.max_rss_mb:.1f} MB",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
