"""qlog-compatible trace capture (Marx et al.) with spin-bit extension.

The scanner records one trace per connection; the analysis pipeline can
consume either the in-memory :class:`TraceRecorder` (fast path) or a
qlog JSON document round-tripped through writer/reader (artifact path).
"""

from repro.qlog.reader import (
    JsonlReadResult,
    QlogParseError,
    qlog_to_recorder,
    read_qlog,
    read_qlog_jsonl,
)
from repro.qlog.recorder import PacketEvent, RttEvent, TraceRecorder
from repro.qlog.writer import recorder_to_qlog, write_qlog, write_qlog_jsonl

__all__ = [
    "JsonlReadResult",
    "PacketEvent",
    "QlogParseError",
    "RttEvent",
    "TraceRecorder",
    "qlog_to_recorder",
    "read_qlog",
    "read_qlog_jsonl",
    "recorder_to_qlog",
    "write_qlog",
    "write_qlog_jsonl",
]
