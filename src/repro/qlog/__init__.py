"""qlog-compatible trace capture (Marx et al.) with spin-bit extension.

The scanner records one trace per connection; the analysis pipeline can
consume either the in-memory :class:`TraceRecorder` (fast path) or a
qlog JSON document round-tripped through writer/reader (artifact path).
"""

from repro.qlog.reader import QlogParseError, qlog_to_recorder, read_qlog
from repro.qlog.recorder import PacketEvent, RttEvent, TraceRecorder
from repro.qlog.writer import recorder_to_qlog, write_qlog

__all__ = [
    "PacketEvent",
    "QlogParseError",
    "RttEvent",
    "TraceRecorder",
    "qlog_to_recorder",
    "read_qlog",
    "recorder_to_qlog",
    "write_qlog",
]
