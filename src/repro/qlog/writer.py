"""Serialize connection traces to qlog JSON documents.

Produces one qlog document per connection, shaped like the output of
the paper's extended quic-go: a top-level ``qlog_version`` / ``traces``
structure whose events carry packet headers with the spin-bit extension
field and recovery metric updates.  The reader
(:mod:`repro.qlog.reader`) round-trips these documents back into
:class:`~repro.qlog.recorder.TraceRecorder` objects, and the analysis
pipeline accepts either representation.
"""

from __future__ import annotations

import json
from typing import IO, Iterable

from repro.qlog import events as ev
from repro.qlog.recorder import PacketEvent, TraceRecorder

__all__ = ["recorder_to_qlog", "write_qlog", "write_qlog_jsonl"]


def _packet_event(event: PacketEvent, name: str) -> list:
    header: dict = {
        "packet_type": event.packet_type,
        "packet_number": event.packet_number,
    }
    if event.spin_bit is not None:
        header[ev.SPIN_BIT_FIELD] = event.spin_bit
        if event.vec:
            header[ev.VEC_FIELD] = event.vec
    data = {"header": header, "raw": {"length": event.size_bytes}}
    return [event.time_ms, name, data]


def recorder_to_qlog(recorder: TraceRecorder, title: str = "") -> dict:
    """Convert a trace recorder into a qlog JSON document (as a dict)."""
    events: list[list] = []
    for event in recorder.sent:
        events.append(_packet_event(event, ev.PACKET_SENT))
    for event in recorder.received:
        events.append(_packet_event(event, ev.PACKET_RECEIVED))
    for sample in recorder.rtt_samples:
        events.append(
            [
                sample.time_ms,
                ev.METRICS_UPDATED,
                {
                    "latest_rtt": sample.latest_rtt_ms,
                    "adjusted_rtt": sample.adjusted_rtt_ms,
                    "ack_delay": sample.ack_delay_ms,
                    "smoothed_rtt": sample.smoothed_rtt_ms,
                    "min_rtt": sample.min_rtt_ms,
                },
            ]
        )
    events.sort(key=lambda entry: entry[0])
    trace = {
        "vantage_point": {"type": recorder.vantage_point},
        "common_fields": {
            "ODCID": recorder.odcid_hex,
            "time_format": "relative",
            "reference_time": 0,
        },
        "events": events,
    }
    if recorder.metadata:
        trace["common_fields"]["custom_fields"] = dict(recorder.metadata)
    return {
        "qlog_version": ev.QLOG_VERSION,
        "qlog_format": ev.QLOG_FORMAT,
        "title": title or "repro spin-bit scan",
        "traces": [trace],
    }


def write_qlog(recorder: TraceRecorder, stream: IO[str], title: str = "") -> None:
    """Write a recorder's qlog document to a text stream."""
    json.dump(recorder_to_qlog(recorder, title=title), stream, separators=(",", ":"))


def write_qlog_jsonl(documents: Iterable[dict], stream: IO[str]) -> int:
    """Write qlog documents as JSON Lines, one document per line.

    The scan exporter's bulk format: a sampled campaign produces one
    line per captured connection.  Returns the number of lines written.
    """
    count = 0
    for document in documents:
        stream.write(json.dumps(document, separators=(",", ":")))
        stream.write("\n")
        count += 1
    return count
