"""In-memory per-connection trace recording.

The paper's adapted quic-go writes one qlog file per connection; the
authors then extract, per received packet, the spin-bit state, the
packet number, and the timestamp, plus the stack's RTT estimates
(Section 3.3).  :class:`TraceRecorder` is the in-memory equivalent: the
endpoints append compact event tuples while a connection runs, and
:mod:`repro.qlog.writer` / :mod:`repro.qlog.reader` convert between this
structure and qlog JSON documents.

Keeping the hot path tuple-based (rather than building JSON dicts per
packet) is what lets the adoption benchmarks scan populations of tens of
thousands of domains in seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["PacketEvent", "RttEvent", "TraceRecorder"]


@dataclass(frozen=True)
class PacketEvent:
    """One ``packet_sent`` or ``packet_received`` event.

    ``spin_bit`` is ``None`` for long-header packets, which do not carry
    the bit.  ``packet_number`` is the full (reconstructed) number.
    """

    time_ms: float
    packet_type: str
    packet_number: int
    spin_bit: bool | None
    size_bytes: int
    vec: int = 0


@dataclass(frozen=True)
class RttEvent:
    """One ``recovery:metrics_updated`` event (an RTT sample)."""

    time_ms: float
    latest_rtt_ms: float
    adjusted_rtt_ms: float
    ack_delay_ms: float
    smoothed_rtt_ms: float
    min_rtt_ms: float


@dataclass
class TraceRecorder:
    """Collects the events of one connection at one vantage point.

    ``vantage_point`` follows qlog terminology: the scanner records at
    the ``"client"``.
    """

    vantage_point: str = "client"
    odcid_hex: str = ""
    sent: list[PacketEvent] = field(default_factory=list)
    received: list[PacketEvent] = field(default_factory=list)
    rtt_samples: list[RttEvent] = field(default_factory=list)
    metadata: dict = field(default_factory=dict)

    def on_packet_sent(
        self,
        time_ms: float,
        packet_type: str,
        packet_number: int,
        spin_bit: bool | None,
        size_bytes: int,
        vec: int = 0,
    ) -> None:
        """Record an outgoing packet."""
        self.sent.append(
            PacketEvent(time_ms, packet_type, packet_number, spin_bit, size_bytes, vec)
        )

    def on_packet_received(
        self,
        time_ms: float,
        packet_type: str,
        packet_number: int,
        spin_bit: bool | None,
        size_bytes: int,
        vec: int = 0,
    ) -> None:
        """Record an incoming packet, in arrival order."""
        self.received.append(
            PacketEvent(time_ms, packet_type, packet_number, spin_bit, size_bytes, vec)
        )

    def on_rtt_sample(
        self,
        time_ms: float,
        latest_rtt_ms: float,
        adjusted_rtt_ms: float,
        ack_delay_ms: float,
        smoothed_rtt_ms: float,
        min_rtt_ms: float,
    ) -> None:
        """Record a stack RTT estimator update."""
        self.rtt_samples.append(
            RttEvent(
                time_ms,
                latest_rtt_ms,
                adjusted_rtt_ms,
                ack_delay_ms,
                smoothed_rtt_ms,
                min_rtt_ms,
            )
        )

    def received_short_header_packets(self) -> list[PacketEvent]:
        """The observer's input: received 1-RTT packets, arrival order."""
        return [event for event in self.received if event.spin_bit is not None]

    def stack_rtts_ms(self) -> list[float]:
        """The stack's adjusted RTT samples (the paper's *QUIC* series)."""
        return [event.adjusted_rtt_ms for event in self.rtt_samples]
