"""Parse qlog JSON documents back into connection traces.

Accepts the documents produced by :mod:`repro.qlog.writer` — and, by
design, any qlog v0.3 document whose packet events carry the spin-bit
extension field, so externally captured traces (e.g. from the paper's
released quic-go) can be fed straight into the analysis pipeline.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import IO

from repro.qlog import events as ev
from repro.qlog.recorder import TraceRecorder

__all__ = [
    "JsonlReadResult",
    "QlogParseError",
    "qlog_to_recorder",
    "read_qlog",
    "read_qlog_jsonl",
]


class QlogParseError(ValueError):
    """Raised when a document is not a usable qlog trace."""


def qlog_to_recorder(document: dict) -> TraceRecorder:
    """Convert a qlog document (dict) into a :class:`TraceRecorder`.

    Only the first trace of the document is read, matching the
    one-connection-per-file capture of the scanner.
    """
    if "traces" not in document or not document["traces"]:
        raise QlogParseError("document has no traces")
    trace = document["traces"][0]
    vantage = trace.get("vantage_point", {}).get("type", "client")
    common = trace.get("common_fields", {})
    recorder = TraceRecorder(
        vantage_point=vantage, odcid_hex=common.get("ODCID", "")
    )
    recorder.metadata = dict(common.get("custom_fields", {}))

    for entry in trace.get("events", []):
        try:
            time_ms, name, data = entry
        except (TypeError, ValueError) as exc:
            raise QlogParseError(f"malformed event entry: {entry!r}") from exc
        if name in (ev.PACKET_SENT, ev.PACKET_RECEIVED):
            header = data.get("header", {})
            spin = header.get(ev.SPIN_BIT_FIELD)
            record = (
                recorder.on_packet_sent
                if name == ev.PACKET_SENT
                else recorder.on_packet_received
            )
            record(
                float(time_ms),
                header.get("packet_type", "1RTT"),
                int(header.get("packet_number", 0)),
                None if spin is None else bool(spin),
                int(data.get("raw", {}).get("length", 0)),
                int(header.get(ev.VEC_FIELD, 0)),
            )
        elif name == ev.METRICS_UPDATED:
            recorder.on_rtt_sample(
                float(time_ms),
                float(data.get("latest_rtt", 0.0)),
                float(data.get("adjusted_rtt", data.get("latest_rtt", 0.0))),
                float(data.get("ack_delay", 0.0)),
                float(data.get("smoothed_rtt", 0.0)),
                float(data.get("min_rtt", 0.0)),
            )
        # Unknown event names are tolerated: real qlog files carry many
        # event types the analysis does not need.
    return recorder


def read_qlog(stream: IO[str]) -> TraceRecorder:
    """Read one qlog document from a text stream."""
    try:
        document = json.load(stream)
    except json.JSONDecodeError as exc:
        raise QlogParseError(f"not valid JSON: {exc}") from exc
    if not isinstance(document, dict):
        raise QlogParseError("qlog document must be a JSON object")
    return qlog_to_recorder(document)


@dataclass
class JsonlReadResult:
    """Outcome of a tolerant JSON Lines qlog read.

    ``corrupt_records`` counts lines that were skipped because they did
    not parse (truncated final record of a crashed exporter, disk
    corruption) or did not contain a usable trace.
    """

    recorders: list[TraceRecorder] = field(default_factory=list)
    corrupt_records: int = 0


def read_qlog_jsonl(stream: IO[str]) -> JsonlReadResult:
    """Read qlog documents from a JSON Lines stream, tolerantly.

    A campaign killed mid-write leaves a truncated final line; rather
    than losing the whole capture file, malformed lines are skipped and
    counted so callers can surface the damage without failing.
    """
    result = JsonlReadResult()
    for line in stream:
        line = line.strip()
        if not line:
            continue
        try:
            document = json.loads(line)
            if not isinstance(document, dict):
                raise QlogParseError("qlog document must be a JSON object")
            result.recorders.append(qlog_to_recorder(document))
        except (json.JSONDecodeError, QlogParseError):
            result.corrupt_records += 1
    return result
