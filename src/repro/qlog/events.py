"""qlog event vocabulary used by this package.

The paper captures connections in the qlog format (Marx et al., 2023)
extended with the spin-bit state.  We emit the subset of the qlog v0.3
vocabulary the analysis needs:

* ``transport:packet_sent`` / ``transport:packet_received`` — with
  ``header.packet_type``, ``header.packet_number``, ``raw.length``, and
  the extension field ``header.spin_bit`` (plus ``header.vec`` when the
  Valid Edge Counter extension is active);
* ``recovery:metrics_updated`` — ``latest_rtt``, ``smoothed_rtt``,
  ``min_rtt``, ``ack_delay`` (all in milliseconds, qlog's default).

These constants centralize the names so writer, reader, and tests stay
consistent.
"""

from __future__ import annotations

QLOG_VERSION = "0.3"
QLOG_FORMAT = "JSON"

PACKET_SENT = "transport:packet_sent"
PACKET_RECEIVED = "transport:packet_received"
METRICS_UPDATED = "recovery:metrics_updated"

#: Extension field carrying the spin-bit state, as added by the
#: authors' modified quic-go qlog output.
SPIN_BIT_FIELD = "spin_bit"
VEC_FIELD = "vec"

PACKET_TYPES = ("initial", "handshake", "0RTT", "1RTT", "retry")
