"""The streaming monitoring pipeline: tap stream in, metrics out.

:class:`MonitorPipeline` is the on-path service loop: every
server-to-client datagram is demultiplexed by a bounded
:class:`~repro.core.flow_table.SpinFlowTable`, spin-RTT samples are
retired *immediately* into the windowed aggregation layer (flows hold
O(1) observer state via
:class:`~repro.core.observer.StreamingSpinObserver`, no per-sample
storage anywhere), and every closed window is published through the
``on_snapshot`` callback.  Memory is bounded by ``max_flows`` plus one
open window — independent of how long the stream runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.core.flow_resolver import FlowKeyResolver
from repro.core.flow_table import FlowRecord, SpinFlowTable
from repro.core.observer import StreamingSpinObserver
from repro.monitor.aggregate import WindowAggregator, WindowConfig, WindowSnapshot
from repro.monitor.traffic import TapDatagram

__all__ = ["MonitorConfig", "MonitorPipeline", "MonitorSummary"]


@dataclass(frozen=True)
class MonitorConfig:
    """Sizing of the monitoring plane (flow table + windows)."""

    short_dcid_length: int = 8
    max_flows: int = 10_000
    idle_timeout_ms: float = 30_000.0
    overflow_policy: str = "evict-lru"
    window: WindowConfig = field(default_factory=WindowConfig)
    #: Attach a :class:`~repro.core.flow_resolver.FlowKeyResolver`:
    #: flow keys survive NAT rebinds / CID rotations and non-QUIC
    #: datagrams are classified.  Off by default — the resolver-less
    #: pipeline emits byte-identical snapshots to pre-migration builds.
    track_migration: bool = False
    #: With tracking on, whether unknown CIDs may be linked to live
    #: flows via 4-tuple continuity; ``False`` is the degraded control
    #: arm (``analyze --section migration`` compares the two).
    cid_linkage: bool = True


@dataclass
class MonitorSummary:
    """Final run summary (the last JSONL line of a monitor run)."""

    duration_ms: float
    windows: int
    datagrams: int
    packets: int
    short_header_packets: int
    parse_errors: int
    flows_created: int
    flows_evicted: int
    flows_expired: int
    flows_active_at_end: int
    overflow_drops: int
    peak_flows: int
    spin_flows: int
    samples: dict
    #: Migration/classification counters; present only when the run
    #: tracked migration (keeps legacy summaries byte-identical).
    migration: dict | None = None

    def as_dict(self) -> dict:
        if self.migration is not None:
            return {**self._base_dict(), "migration": self.migration}
        return self._base_dict()

    def _base_dict(self) -> dict:
        return {
            "duration_ms": round(self.duration_ms, 3),
            "windows": self.windows,
            "datagrams": self.datagrams,
            "packets": self.packets,
            "short_header_packets": self.short_header_packets,
            "parse_errors": self.parse_errors,
            "flows": {
                "created": self.flows_created,
                "evicted": self.flows_evicted,
                "expired": self.flows_expired,
                "active_at_end": self.flows_active_at_end,
                "overflow_drops": self.overflow_drops,
                "peak": self.peak_flows,
                "spinning": self.spin_flows,
            },
            "samples": self.samples,
        }


class MonitorPipeline:
    """Feeds a tapped datagram stream through bounded per-flow state.

    ``on_snapshot`` receives each closed :class:`WindowSnapshot` as the
    stream time passes its end — during processing, not at the end of
    the run, which is what makes this a *streaming* service rather than
    a batch replay.
    """

    def __init__(
        self,
        config: MonitorConfig | None = None,
        on_snapshot: Callable[[WindowSnapshot], None] | None = None,
        telemetry=None,
    ):
        self.config = config or MonitorConfig()
        self.on_snapshot = on_snapshot
        #: Optional :class:`repro.telemetry.Telemetry` bundle: the flow
        #: table reports into its registry, window closes and the final
        #: summary become trace events (stamped with *stream* time), and
        #: ``finish()`` folds the lifetime RTT histogram into the
        #: ``monitor.rtt_ms`` series — zero per-sample hot-path cost.
        self.telemetry = telemetry
        self.aggregator = WindowAggregator(self.config.window)
        self.resolver = (
            FlowKeyResolver(cid_linkage=self.config.cid_linkage)
            if self.config.track_migration
            else None
        )
        self.table = SpinFlowTable(
            short_dcid_length=self.config.short_dcid_length,
            max_flows=self.config.max_flows,
            idle_timeout_ms=self.config.idle_timeout_ms,
            overflow_policy=self.config.overflow_policy,
            retain_retired=False,
            observer_factory=self._make_observer,
            on_retire=self._on_retire,
            on_packet=self._on_packet,
            resolver=self.resolver,
            metrics=telemetry.registry if telemetry is not None else None,
        )
        self._last_time_ms = 0.0
        self._spin_flows_retired = 0

    # -- ingestion ------------------------------------------------------

    def process(self, time_ms: float, data: bytes, tuple4: tuple | None = None) -> None:
        """Ingest one tapped server-to-client datagram."""
        aggregator = self.aggregator
        for snapshot in aggregator.roll(time_ms, self._table_health()):
            self._publish(snapshot)
        self._last_time_ms = time_ms
        window = aggregator.window_for(time_ms)
        table = self.table
        stats = table.stats
        packets_before = stats.packets
        errors_before = stats.parse_errors
        created_before = stats.flows_created
        evicted_before = stats.flows_evicted
        expired_before = stats.flows_expired
        drops_before = stats.overflow_drops
        table.on_server_datagram(time_ms, data, tuple4)
        window.datagrams += 1
        window.packets += stats.packets - packets_before
        window.parse_errors += stats.parse_errors - errors_before
        window.flows_created += stats.flows_created - created_before
        window.flows_evicted += stats.flows_evicted - evicted_before
        window.flows_expired += stats.flows_expired - expired_before
        window.overflow_drops += stats.overflow_drops - drops_before

    def process_stream(self, stream: Iterable[TapDatagram]) -> MonitorSummary:
        """Consume an entire tap stream and return the final summary."""
        process = self.process
        for tap in stream:
            process(tap.time_ms, tap.data, getattr(tap, "tuple4", None))
        return self.finish()

    def finish(self) -> MonitorSummary:
        """Flush the trailing window and compute the run summary."""
        for snapshot in self.aggregator.flush(self._table_health()):
            self._publish(snapshot)
        stats = self.table.stats
        spin_flows = self._spin_flows_retired + sum(
            1
            for flow in self.table.flows.values()
            if len(flow._observer.values_seen) == 2
        )
        summary = MonitorSummary(
            duration_ms=self._last_time_ms,
            windows=self.aggregator.windows_emitted,
            datagrams=stats.datagrams,
            packets=stats.packets,
            short_header_packets=stats.short_header_packets,
            parse_errors=stats.parse_errors,
            flows_created=stats.flows_created,
            flows_evicted=stats.flows_evicted,
            flows_expired=stats.flows_expired,
            flows_active_at_end=len(self.table.flows),
            overflow_drops=stats.overflow_drops,
            peak_flows=stats.peak_flows,
            spin_flows=spin_flows,
            samples=self.aggregator.lifetime.summary(),
            migration=(
                self.resolver.counters() if self.resolver is not None else None
            ),
        )
        if self.telemetry is not None:
            registry = self.telemetry.registry
            lifetime = self.aggregator.lifetime
            metric = registry.histogram("monitor.rtt_ms")
            if metric.hist.count == 0 and (
                metric.hist.min_value,
                metric.hist.max_value,
                metric.hist.bins_per_decade,
            ) != (
                lifetime.min_value,
                lifetime.max_value,
                lifetime.bins_per_decade,
            ):
                # Adopt the monitor's own binning so the lifetime
                # histogram folds in losslessly whatever WindowConfig
                # the run used.
                metric.hist = self.config.window.make_histogram()
            metric.hist.merge(lifetime)
            registry.counter("monitor.spin_flows").inc(spin_flows)
            if self.resolver is not None:
                resolver = self.resolver
                registry.counter("monitor.flows_migrated").inc(
                    resolver.flows_migrated
                )
                registry.counter("monitor.flows_split").inc(resolver.flows_split)
                registry.counter("monitor.rebinds_seen").inc(resolver.rebinds_seen)
                for transport, count in (
                    ("quic", resolver.quic_datagrams),
                    ("tcp", resolver.tcp_datagrams),
                    ("unparseable", resolver.unparseable_datagrams),
                ):
                    registry.counter(
                        "monitor.transport_datagrams", transport=transport
                    ).inc(count)
            self.telemetry.tracer.event(
                "monitor.summary",
                time_ms=summary.duration_ms,
                windows=summary.windows,
                datagrams=summary.datagrams,
                flows_created=summary.flows_created,
                spin_flows=spin_flows,
                samples=summary.samples.get("count", 0),
            )
            # One span for the whole monitor run, stamped with stream
            # time — the monitor's deterministic clock — so span logs
            # cover the on-path pipeline alongside the scan plane.
            span_attrs = {
                "windows": summary.windows,
                "datagrams": summary.datagrams,
                "spin_flows": spin_flows,
            }
            if self.resolver is not None:
                span_attrs["flows_migrated"] = self.resolver.flows_migrated
                span_attrs["flows_split"] = self.resolver.flows_split
                span_attrs["rebinds_seen"] = self.resolver.rebinds_seen
            monitor_span = self.telemetry.spans.span("monitor", **span_attrs)
            monitor_span.end(summary.duration_ms)
        return summary

    def _publish(self, snapshot: WindowSnapshot) -> None:
        """Deliver one closed window: callback + trace event."""
        if self.on_snapshot is not None:
            self.on_snapshot(snapshot)
        if self.telemetry is not None:
            self.telemetry.registry.counter("monitor.windows_closed").inc()
            self.telemetry.tracer.event(
                "monitor.window",
                time_ms=snapshot.end_ms,
                index=snapshot.index,
                datagrams=snapshot.datagrams,
                samples=snapshot.samples.get("count", 0),
            )

    # -- flow-table hooks ----------------------------------------------

    def _make_observer(self, flow_key: str) -> StreamingSpinObserver:
        return StreamingSpinObserver(on_sample=self.aggregator.record_sample)

    def _on_retire(self, flow: FlowRecord, reason: str) -> None:
        if len(flow._observer.values_seen) == 2:
            self._spin_flows_retired += 1

    def _on_packet(self, flow: FlowRecord, time_ms: float) -> None:
        self.aggregator.window_for(time_ms).flow_keys.add(flow.flow_key)

    def _table_health(self) -> dict:
        """Gauges + cumulative counters at this instant."""
        stats = self.table.stats
        health = {
            "active_flows": len(self.table.flows),
            "peak_flows": stats.peak_flows,
            "flows_created": stats.flows_created,
            "flows_evicted": stats.flows_evicted,
            "flows_expired": stats.flows_expired,
            "overflow_drops": stats.overflow_drops,
            "parse_errors": stats.parse_errors,
            "idle_sweeps": stats.idle_sweeps,
        }
        if self.resolver is not None:
            # Only-when-present: resolver-less window snapshots stay
            # byte-identical to pre-migration builds.
            health["migration"] = self.resolver.counters()
        return health
