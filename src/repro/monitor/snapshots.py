"""Snapshot export: periodic JSONL metrics + final run summary.

Schema (one JSON object per line, ``sort_keys`` for stable diffs):

* ``{"type": "window", "schema": 1, ...}`` — one line per closed
  aggregation window, written *while the stream is being consumed*:
  window geometry (``index``/``start_ms``/``end_ms``), traffic counters
  (``datagrams``/``packets``/``parse_errors``), per-window flow counts
  (``flows``: distinct/created/evicted/expired/overflow_drops),
  streaming RTT statistics (``samples``: count/mean/min/max/p50/p90/p99
  in ms), table health gauges at close time (``table``), and — when
  sliding windows are enabled — a ``sliding`` block merging the last N
  windows.
* ``{"type": "summary", "schema": 1, ...}`` — the final line: totals
  for the whole run (see
  :class:`repro.monitor.pipeline.MonitorSummary`).

Migration-tracking runs add a ``migration`` block (resolver counters
plus the generator's injected ground truth) to the summary and to each
window's ``table`` health dict; resolver-less runs emit byte-identical
output to pre-migration builds.

Everything is keyed to *simulated stream time*; no wall-clock values
appear, so two runs with the same seed produce byte-identical files —
the property ``repro monitor``'s determinism guarantee rests on.
"""

from __future__ import annotations

import dataclasses
import json
import sys
from typing import IO

from repro.monitor.aggregate import WindowSnapshot
from repro.monitor.pipeline import MonitorConfig, MonitorPipeline, MonitorSummary
from repro.monitor.traffic import TrafficConfig, TrafficMux

__all__ = ["SCHEMA_VERSION", "SnapshotWriter", "run_monitor"]

SCHEMA_VERSION = 1


class SnapshotWriter:
    """Writes window snapshots and the run summary as JSONL."""

    def __init__(self, stream: IO[str]):
        self._stream = stream
        self.lines_written = 0

    def write_window(self, snapshot: WindowSnapshot) -> None:
        self._write({"type": "window", **snapshot.as_dict()})

    def write_summary(self, summary: MonitorSummary) -> None:
        self._write({"type": "summary", **summary.as_dict()})

    def _write(self, payload: dict) -> None:
        payload["schema"] = SCHEMA_VERSION
        self._stream.write(json.dumps(payload, sort_keys=True) + "\n")
        self.lines_written += 1


def run_monitor(
    traffic: TrafficConfig,
    monitor: MonitorConfig | None = None,
    out: IO[str] | None = None,
    verbose: bool = False,
    telemetry=None,
    faults=None,
) -> MonitorSummary:
    """Run the full monitoring service once: mux → pipeline → snapshots.

    Generates the interleaved tap stream for ``traffic``, feeds it
    through a :class:`MonitorPipeline` sized by ``monitor``, and writes
    window snapshots plus the final summary to ``out`` (omitted when
    ``out`` is ``None``).  Returns the summary.  ``telemetry``
    optionally threads a :class:`repro.telemetry.Telemetry` bundle
    through the traffic generator, the flow table, and the pipeline.

    ``faults`` optionally takes a :class:`repro.faults.FaultPlan`; a
    ``corrupt-datagram`` spec truncates the drawn fraction of tap
    datagrams mid-flight (seeded from the traffic seed, so runs stay
    byte-identical).  The flow table counts the damage as
    ``parse_errors`` instead of crashing — the malformed-packet policy
    an on-path monitor needs.
    """
    writer = SnapshotWriter(out) if out is not None else None
    mixed_transport = traffic.migration_active or traffic.tcp_flows > 0
    if mixed_transport and monitor is not None and not monitor.track_migration:
        # Injected chaos without a resolver would silently shatter
        # flows; tracking is an output-side addition (extra counters),
        # so auto-enabling cannot perturb the non-chaos byte streams.
        monitor = dataclasses.replace(monitor, track_migration=True)
    elif mixed_transport and monitor is None:
        monitor = MonitorConfig(track_migration=True)
    pipeline = MonitorPipeline(
        monitor,
        on_snapshot=writer.write_window if writer else None,
        telemetry=telemetry,
    )
    mux = TrafficMux(
        traffic,
        metrics=telemetry.registry if telemetry is not None else None,
    )
    stream = mux.stream()
    if faults is not None and not faults.is_empty:
        from repro._util.rng import derive_rng
        from repro.faults.spec import FaultKind, corrupt_datagram_stream

        spec = faults.spec(FaultKind.CORRUPT_DATAGRAM)
        if spec is not None and spec.probability > 0.0:
            stream = corrupt_datagram_stream(
                stream,
                spec.probability,
                derive_rng(traffic.seed, "monitor", "faults"),
            )
    summary = pipeline.process_stream(stream)
    if summary.migration is not None and mixed_transport:
        # Ground truth from the generator side, so snapshot consumers
        # can compare observed counters against what was injected.
        summary.migration["injected"] = mux.injected_summary()
    if writer is not None:
        writer.write_summary(summary)
    if verbose:
        samples = summary.samples
        p50 = samples.get("p50_ms")
        print(
            f"monitored {summary.flows_created} flows / "
            f"{summary.datagrams} datagrams over "
            f"{summary.duration_ms / 1000.0:.1f} s of stream time: "
            f"{samples.get('count', 0)} RTT samples"
            + (f", p50 {p50:.1f} ms" if p50 is not None else "")
            + f", {summary.windows} windows, peak {summary.peak_flows} flows",
            file=sys.stderr,
        )
        if summary.migration is not None:
            migration = summary.migration
            mix = migration.get("transport_mix", {})
            print(
                f"migration: {migration.get('flows_migrated', 0)} migrated, "
                f"{migration.get('rebinds_seen', 0)} rebinds, "
                f"{migration.get('flows_split', 0)} split; transport mix "
                f"quic={mix.get('quic', 0)} tcp={mix.get('tcp', 0)} "
                f"unparseable={mix.get('unparseable', 0)}",
                file=sys.stderr,
            )
    return summary
