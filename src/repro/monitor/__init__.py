"""Streaming on-path spin-bit monitoring of interleaved many-flow traffic.

The operator-side counterpart to the scanner: where :mod:`repro.web`
measures one connection at a time from the client, this subpackage
implements the long-running *monitoring plane* the paper motivates —
an on-path service that ingests one interleaved packet stream from many
concurrent users and continuously publishes windowed RTT statistics.

* :mod:`repro.monitor.traffic` — the traffic multiplexer: N concurrent
  simulated connections (mixed stacks, mixed path classes, staggered
  starts) on one shared simulator, emitted as a single time-ordered
  tap stream;
* :mod:`repro.monitor.pipeline` — the bounded-memory streaming
  pipeline around :class:`~repro.core.flow_table.SpinFlowTable`,
  optionally migration-aware via
  :class:`~repro.core.flow_resolver.FlowKeyResolver`;
* :mod:`repro.monitor.aggregate` — tumbling/sliding windows with
  fixed-bin log-histogram RTT percentiles;
* :mod:`repro.monitor.snapshots` — JSONL metric snapshots and the
  ``repro monitor`` service entry point.
"""

from repro.monitor.aggregate import (
    LogHistogram,
    WindowAggregator,
    WindowConfig,
    WindowSnapshot,
)
from repro.monitor.pipeline import MonitorConfig, MonitorPipeline, MonitorSummary
from repro.monitor.snapshots import SCHEMA_VERSION, SnapshotWriter, run_monitor
from repro.monitor.traffic import (
    DEFAULT_PATH_CLASSES,
    DEFAULT_STACK_MIX,
    SERVER_ADDR,
    FlowSpec,
    PathClass,
    TapDatagram,
    TrafficConfig,
    TrafficMux,
)

__all__ = [
    "DEFAULT_PATH_CLASSES",
    "DEFAULT_STACK_MIX",
    "FlowSpec",
    "LogHistogram",
    "MonitorConfig",
    "MonitorPipeline",
    "MonitorSummary",
    "PathClass",
    "SCHEMA_VERSION",
    "SERVER_ADDR",
    "SnapshotWriter",
    "TapDatagram",
    "TrafficConfig",
    "TrafficMux",
    "WindowAggregator",
    "WindowConfig",
    "WindowSnapshot",
    "run_monitor",
]
