"""Synthetic many-flow traffic: a tap's-eye view of a busy link.

The scanner replays one connection at a time; an on-path operator sees
thousands of users at once.  :class:`TrafficMux` closes that gap: it
drives N concurrent simulated HTTP/3 connections — mixed server stacks,
mixed path classes (RTT / loss / reordering), staggered starts — on one
shared discrete-event simulator and emits the *interleaved*
server-to-client datagram stream exactly as a mid-path tap would
observe it.

Determinism mirrors the scanner: each flow's randomness is derived
independently from ``(seed, "monitor", "flow", index)`` via the same
:class:`~repro._util.rng.SeedPrefix` scheme, so the stream is
bit-identical across runs *and* any single flow can be re-simulated in
isolation (:meth:`TrafficMux.replay_single`) yielding exactly its slice
of the interleaved stream — the property the flow-table equivalence
tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, NamedTuple

from repro._util.rng import SeedPrefix, derive_rng
from repro._util.stats import weighted_choice
from repro.core.spin import SpinPolicy, resolve_connection_policy
from repro.netsim.delays import LogNormalDelay, UniformDelay
from repro.netsim.events import Simulator
from repro.netsim.migration import DrawnMigration, MigrationPlan, draw_client_addr
from repro.netsim.path import PathProfile
from repro.netsim.tcp import draw_tcp_flow_spec, schedule_tcp_flow
from repro.quic.connection import ConnectionConfig
from repro.web.http3 import ResponsePlan, build_exchange
from repro.web.server_profiles import stack_by_name

__all__ = [
    "DEFAULT_PATH_CLASSES",
    "DEFAULT_STACK_MIX",
    "FlowSpec",
    "PathClass",
    "TapDatagram",
    "TrafficConfig",
    "TrafficMux",
]

#: The monitored origin as the tap addresses it; client addresses are
#: drawn per flow, so the 4-tuple's entropy lives entirely client-side.
SERVER_ADDR = ("198.18.0.1", 443)


class TapDatagram(NamedTuple):
    """One server-to-client datagram as seen by the mid-path tap.

    ``tuple4`` is the datagram's addressing as the tap observed it —
    ``(client_ip, client_port, server_ip, server_port)`` — and changes
    mid-flow under NAT rebinds and path migrations.  ``transport`` is
    the *ground truth* of what was sent (the monitor must classify from
    the bytes, never from this field).
    """

    time_ms: float
    flow_index: int
    data: bytes
    tuple4: tuple | None = None
    transport: str = "quic"


@dataclass(frozen=True)
class PathClass:
    """One population of network paths the monitored users sit behind."""

    name: str
    min_delay_ms: float
    max_delay_ms: float
    jitter_ms: float
    loss_probability: float
    reorder_probability: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.min_delay_ms <= self.max_delay_ms:
            raise ValueError("invalid one-way delay range")


#: RTT diversity of the monitored user population, metro access to
#: intercontinental transit, with impairments growing with distance.
DEFAULT_PATH_CLASSES: tuple[tuple[PathClass, float], ...] = (
    (PathClass("metro", 1.5, 8.0, 0.3, 0.0003, 0.0005), 0.25),
    (PathClass("regional", 8.0, 25.0, 0.8, 0.001, 0.0015), 0.40),
    (PathClass("continental", 25.0, 60.0, 1.5, 0.003, 0.003), 0.25),
    (PathClass("intercontinental", 60.0, 140.0, 2.5, 0.008, 0.005), 0.10),
)

#: Server-stack mix of the monitored traffic, roughly the deployment
#: shares behind the paper's Tables 2/3 (LiteSpeed dominating spin
#: support, hyperscalers without it, a rare-behaviour tail).
DEFAULT_STACK_MIX: tuple[tuple[str, float], ...] = (
    ("litespeed", 0.30),
    ("cloudflare", 0.22),
    ("nginx", 0.18),
    ("gws", 0.10),
    ("fastly", 0.06),
    ("imunify360", 0.05),
    ("caddy-spin", 0.04),
    ("litespeed-draft", 0.03),
    ("gws-spin", 0.01),
    ("allone-appliance", 0.004),
    ("grease-packet", 0.003),
    ("grease-connection", 0.003),
)


@dataclass(frozen=True)
class TrafficConfig:
    """Shape of the monitored traffic aggregate."""

    flows: int = 100
    seed: int = 20230520
    #: Flow starts are staggered uniformly over this span, so the tap
    #: always sees ramp-up, steady interleaving, and drain-out phases.
    arrival_window_ms: float = 5_000.0
    short_dcid_length: int = 8
    client_spin_policy: SpinPolicy = SpinPolicy.SPIN
    server_flush_dispatch_ms: tuple[float, float] = (0.8, 2.5)
    stack_mix: tuple[tuple[str, float], ...] = DEFAULT_STACK_MIX
    path_classes: tuple[tuple[PathClass, float], ...] = DEFAULT_PATH_CLASSES
    #: Simulated-time granularity at which the stream generator yields
    #: batches; smaller values bound the tap buffer tighter.
    drain_window_ms: float = 250.0
    #: Event-cascade runaway guard; ``None`` scales with ``flows``.
    max_events: int | None = None
    #: Connection-migration chaos (repro.netsim.migration); ``None`` or
    #: an all-zero plan leaves every flow's event cascade — and so the
    #: tap stream's payload bytes — untouched.
    migration: MigrationPlan | None = None
    #: TCP-with-spin-signal flows multiplexed into the tap stream
    #: (repro.netsim.tcp); their indices follow the QUIC flows'.
    tcp_flows: int = 0

    def __post_init__(self) -> None:
        if self.flows < 1:
            raise ValueError("flows must be positive")
        if self.arrival_window_ms < 0:
            raise ValueError("arrival_window_ms must be non-negative")
        if self.drain_window_ms <= 0:
            raise ValueError("drain_window_ms must be positive")
        if self.tcp_flows < 0:
            raise ValueError("tcp_flows must be non-negative")

    @property
    def migration_active(self) -> bool:
        return self.migration is not None and not self.migration.is_empty

    @property
    def event_budget(self) -> int:
        return self.max_events or max(400_000, 6_000 * self.flows)


@dataclass(frozen=True)
class FlowSpec:
    """Everything needed to (re-)simulate one flow deterministically."""

    index: int
    host: str
    start_ms: float
    stack_name: str
    path_class: str
    propagation_delay_ms: float
    jitter_ms: float
    loss_probability: float
    reorder_probability: float
    server_policy: SpinPolicy
    retry_required: bool
    plan: ResponsePlan
    exchange_seed: int


def _spec_for(config: TrafficConfig, prefix: SeedPrefix, index: int) -> FlowSpec:
    """Draw flow ``index``'s parameters from its own derived stream."""
    rng = prefix.derive(index)
    start_ms = rng.random() * config.arrival_window_ms
    classes = [entry[0] for entry in config.path_classes]
    class_weights = [entry[1] for entry in config.path_classes]
    path_class = weighted_choice(rng, classes, class_weights)
    propagation = rng.uniform(path_class.min_delay_ms, path_class.max_delay_ms)
    names = [entry[0] for entry in config.stack_mix]
    stack_weights = [entry[1] for entry in config.stack_mix]
    stack = stack_by_name(weighted_choice(rng, names, stack_weights))
    server_policy = resolve_connection_policy(stack.spin_config, rng)
    retry_required = (
        stack.retry_probability > 0.0 and rng.random() < stack.retry_probability
    )
    plan = stack.sample_plan(rng, redirect_target=None)
    return FlowSpec(
        index=index,
        host=f"flow-{index}.monitored.test",
        start_ms=start_ms,
        stack_name=stack.name,
        path_class=path_class.name,
        propagation_delay_ms=propagation,
        jitter_ms=path_class.jitter_ms,
        loss_probability=path_class.loss_probability,
        reorder_probability=path_class.reorder_probability,
        server_policy=server_policy,
        retry_required=retry_required,
        plan=plan,
        exchange_seed=rng.getrandbits(64),
    )


class _FlowWire:
    """Mutable per-flow wire context the tap reads at append time.

    The tap lambda captures this holder, not a tuple value, so a
    scheduled NAT rebind swaps ``tuple4`` mid-flow and every later
    datagram is stamped with the new path — exactly what a mid-path tap
    would observe.
    """

    __slots__ = ("tuple4",)

    def __init__(self, tuple4: tuple):
        self.tuple4 = tuple4


#: Retry cadence/cap for a CID switch racing the NEW_CONNECTION_ID
#: flight (the alternates may still be in the air at the drawn time).
_MIGRATE_RETRY_MS = 50.0
_MIGRATE_RETRY_MAX = 40


class TrafficMux:
    """N concurrent flows, one time-ordered interleaved tap stream.

    All flows share one simulator; each is wired up via
    :func:`repro.web.http3.build_exchange` with its ``connect()``
    scheduled at the flow's staggered start.  A tap on each flow's
    downlink (mid-path, position 0.5) appends the observed datagrams to
    a shared buffer, which :meth:`stream` drains in simulated-time
    windows — so the generator yields a strictly time-ordered stream
    while only ever buffering one window's worth of datagrams and the
    state of currently-active connections.

    Migration chaos and TCP flows ride the same determinism scheme from
    their own derived streams — ``(seed, "monitor", "tuple", index)``
    for client addresses, ``(seed, "monitor", "migration", index)`` for
    migration draws, ``(seed, "monitor", "tcp", index)`` for TCP flow
    shapes — so enabling them never perturbs the QUIC flow draws, and a
    disabled plan leaves the stream byte-identical.
    """

    def __init__(self, config: TrafficConfig | None = None, metrics=None):
        self.config = config or TrafficConfig()
        #: Optional telemetry registry: the shared simulator and every
        #: launched endpoint report into it during :meth:`stream`.
        self.metrics = metrics
        prefix = SeedPrefix(self.config.seed, "monitor", "flow")
        self.specs: list[FlowSpec] = [
            _spec_for(self.config, prefix, index)
            for index in range(self.config.flows)
        ]
        #: Ground truth: flow index -> drawn migration (linkable or not).
        self.migrations: dict[int, DrawnMigration] = {}
        if self.config.migration_active:
            for spec in self.specs:
                rng = derive_rng(self.config.seed, "monitor", "migration", spec.index)
                drawn = self.config.migration.draw(rng, spec.start_ms)
                if drawn is not None:
                    self.migrations[spec.index] = drawn
        #: Migrations actually applied during the last :meth:`stream` /
        #: :meth:`replay_single` run (a drawn migration is a no-op when
        #: the flow finishes first).
        self.migration_log: list[dict] = []

    def client_tuple(self, index: int) -> tuple:
        """Flow ``index``'s initial 4-tuple (client side drawn per flow)."""
        rng = derive_rng(self.config.seed, "monitor", "tuple", index)
        ip, port = draw_client_addr(rng)
        return (ip, port, *SERVER_ADDR)

    def injected_summary(self) -> dict:
        """Ground-truth migration/TCP injection counts (for snapshots)."""
        kinds: dict[str, int] = {}
        for drawn in self.migrations.values():
            kinds[drawn.kind.value] = kinds.get(drawn.kind.value, 0) + 1
        return {
            "flows_drawn": len(self.migrations),
            "by_kind": dict(sorted(kinds.items())),
            "applied": len(self.migration_log),
            "tcp_flows": self.config.tcp_flows,
        }

    def stream(self) -> Iterator[TapDatagram]:
        """Yield the interleaved server-to-client stream in time order."""
        simulator = Simulator(metrics=self.metrics)
        buffer: list[TapDatagram] = []
        self.migration_log = []
        for spec in self.specs:
            self._launch(simulator, spec, buffer, metrics=self.metrics)
        for tcp_index in range(self.config.tcp_flows):
            self._launch_tcp(simulator, tcp_index, buffer)
        budget = self.config.event_budget
        window = self.config.drain_window_ms
        while simulator.pending_events:
            deadline = simulator.next_event_time_ms + window
            simulator.run_until(deadline, max_events=budget)
            if buffer:
                yield from buffer
                buffer.clear()

    def replay_single(self, index: int) -> list[TapDatagram]:
        """Re-simulate flow ``index`` alone.

        Returns exactly the flow's datagrams from the interleaved
        stream (same payloads, same tap times): flow randomness is
        per-flow derived and flows share no simulator state beyond the
        event queue, so isolation does not perturb the flow — including
        its migration draw, which is re-derived from the same stream.
        """
        simulator = Simulator()
        buffer: list[TapDatagram] = []
        self.migration_log = []
        self._launch(simulator, self.specs[index], buffer)
        simulator.run(max_events=self.config.event_budget)
        return buffer

    # ------------------------------------------------------------------

    def _launch(
        self,
        simulator: Simulator,
        spec: FlowSpec,
        buffer: list[TapDatagram],
        metrics=None,
    ) -> None:
        profile = PathProfile(
            propagation_delay_ms=spec.propagation_delay_ms,
            jitter=UniformDelay(0.0, spec.jitter_ms),
            loss_probability=spec.loss_probability,
            reorder_probability=spec.reorder_probability,
            reorder_extra_delay=LogNormalDelay(median_ms=5.0, sigma=1.2),
        )
        stack = stack_by_name(spec.stack_name)
        migration = self.migrations.get(spec.index)
        client_config = None
        if migration is not None and migration.kind.changes_cid:
            # The client must issue alternates or a downlink CID switch
            # has nothing to switch to (RFC 9000 5.1.1).
            client_config = ConnectionConfig(issue_alternate_cids=2)
        handle = build_exchange(
            simulator,
            spec.host,
            [spec.plan],
            self.config.client_spin_policy,
            spec.server_policy,
            profile,
            profile,
            derive_rng(spec.exchange_seed, "exchange"),
            client_config=client_config,
            server_config=ConnectionConfig(
                flush_dispatch_ms=self.config.server_flush_dispatch_ms,
                version=stack.supported_versions[0],
                supported_versions=stack.supported_versions,
                retry_required=spec.retry_required,
                ack_delay_exponent=stack.ack_delay_exponent,
                max_ack_delay_ms=stack.max_ack_delay_ms,
            ),
            start_ms=spec.start_ms,
            metrics=metrics,
        )
        wire = _FlowWire(self.client_tuple(spec.index))
        handle.downlink.install_tap(
            lambda time_ms, data, index=spec.index, wire=wire: buffer.append(
                TapDatagram(time_ms, index, data, wire.tuple4)
            ),
            position=0.5,
        )
        if migration is not None:
            self._schedule_migration(simulator, spec.index, migration, handle, wire)

    def _schedule_migration(
        self, simulator, index: int, migration: DrawnMigration, handle, wire: _FlowWire
    ) -> None:
        kind = migration.kind
        new_tuple = (
            (*migration.new_client_addr, *SERVER_ADDR)
            if migration.new_client_addr is not None
            else None
        )

        def log(at_ms: float) -> None:
            self.migration_log.append(
                {"flow_index": index, "kind": kind.value, "time_ms": at_ms}
            )

        if not kind.changes_cid:
            # NAT rebind: pure wire-level path change, endpoints unaware.
            def rebind() -> None:
                if handle.server.closed:
                    return
                wire.tuple4 = new_tuple
                log(simulator.now_ms)

            simulator.schedule_at(migration.at_ms, rebind)
            return

        # CID rotation / path migration: the server re-addresses its
        # short headers to a client-issued alternate.  The alternates may
        # still be in flight at the drawn time, so retry on a fixed
        # deterministic cadence.  For a path migration the tuple swaps in
        # the same instant the CID does — the unlinkability RFC 9000 9.5
        # demands — never before.
        def attempt(retries: int = 0) -> None:
            if handle.server.closed:
                return
            switched = handle.server.migrate_to_alternate_cid()
            if switched is not None:
                if new_tuple is not None:
                    wire.tuple4 = new_tuple
                log(simulator.now_ms)
            elif retries < _MIGRATE_RETRY_MAX:
                simulator.schedule(
                    _MIGRATE_RETRY_MS, lambda: attempt(retries + 1)
                )

        simulator.schedule_at(migration.at_ms, attempt)

    def _launch_tcp(
        self, simulator: Simulator, tcp_index: int, buffer: list[TapDatagram]
    ) -> None:
        flow_index = self.config.flows + tcp_index
        rng = derive_rng(self.config.seed, "monitor", "tcp", tcp_index)
        spec = draw_tcp_flow_spec(rng, flow_index, self.config.arrival_window_ms)
        client_ip, client_port = draw_client_addr(rng)
        tuple4 = (client_ip, client_port, *SERVER_ADDR)
        schedule_tcp_flow(
            simulator,
            spec,
            client_port,
            lambda time_ms, data: buffer.append(
                TapDatagram(time_ms, flow_index, data, tuple4, "tcp")
            ),
        )
