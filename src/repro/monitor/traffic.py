"""Synthetic many-flow traffic: a tap's-eye view of a busy link.

The scanner replays one connection at a time; an on-path operator sees
thousands of users at once.  :class:`TrafficMux` closes that gap: it
drives N concurrent simulated HTTP/3 connections — mixed server stacks,
mixed path classes (RTT / loss / reordering), staggered starts — on one
shared discrete-event simulator and emits the *interleaved*
server-to-client datagram stream exactly as a mid-path tap would
observe it.

Determinism mirrors the scanner: each flow's randomness is derived
independently from ``(seed, "monitor", "flow", index)`` via the same
:class:`~repro._util.rng.SeedPrefix` scheme, so the stream is
bit-identical across runs *and* any single flow can be re-simulated in
isolation (:meth:`TrafficMux.replay_single`) yielding exactly its slice
of the interleaved stream — the property the flow-table equivalence
tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, NamedTuple

from repro._util.rng import SeedPrefix, derive_rng
from repro._util.stats import weighted_choice
from repro.core.spin import SpinPolicy, resolve_connection_policy
from repro.netsim.delays import LogNormalDelay, UniformDelay
from repro.netsim.events import Simulator
from repro.netsim.path import PathProfile
from repro.quic.connection import ConnectionConfig
from repro.web.http3 import ResponsePlan, build_exchange
from repro.web.server_profiles import stack_by_name

__all__ = [
    "DEFAULT_PATH_CLASSES",
    "DEFAULT_STACK_MIX",
    "FlowSpec",
    "PathClass",
    "TapDatagram",
    "TrafficConfig",
    "TrafficMux",
]


class TapDatagram(NamedTuple):
    """One server-to-client datagram as seen by the mid-path tap."""

    time_ms: float
    flow_index: int
    data: bytes


@dataclass(frozen=True)
class PathClass:
    """One population of network paths the monitored users sit behind."""

    name: str
    min_delay_ms: float
    max_delay_ms: float
    jitter_ms: float
    loss_probability: float
    reorder_probability: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.min_delay_ms <= self.max_delay_ms:
            raise ValueError("invalid one-way delay range")


#: RTT diversity of the monitored user population, metro access to
#: intercontinental transit, with impairments growing with distance.
DEFAULT_PATH_CLASSES: tuple[tuple[PathClass, float], ...] = (
    (PathClass("metro", 1.5, 8.0, 0.3, 0.0003, 0.0005), 0.25),
    (PathClass("regional", 8.0, 25.0, 0.8, 0.001, 0.0015), 0.40),
    (PathClass("continental", 25.0, 60.0, 1.5, 0.003, 0.003), 0.25),
    (PathClass("intercontinental", 60.0, 140.0, 2.5, 0.008, 0.005), 0.10),
)

#: Server-stack mix of the monitored traffic, roughly the deployment
#: shares behind the paper's Tables 2/3 (LiteSpeed dominating spin
#: support, hyperscalers without it, a rare-behaviour tail).
DEFAULT_STACK_MIX: tuple[tuple[str, float], ...] = (
    ("litespeed", 0.30),
    ("cloudflare", 0.22),
    ("nginx", 0.18),
    ("gws", 0.10),
    ("fastly", 0.06),
    ("imunify360", 0.05),
    ("caddy-spin", 0.04),
    ("litespeed-draft", 0.03),
    ("gws-spin", 0.01),
    ("allone-appliance", 0.004),
    ("grease-packet", 0.003),
    ("grease-connection", 0.003),
)


@dataclass(frozen=True)
class TrafficConfig:
    """Shape of the monitored traffic aggregate."""

    flows: int = 100
    seed: int = 20230520
    #: Flow starts are staggered uniformly over this span, so the tap
    #: always sees ramp-up, steady interleaving, and drain-out phases.
    arrival_window_ms: float = 5_000.0
    short_dcid_length: int = 8
    client_spin_policy: SpinPolicy = SpinPolicy.SPIN
    server_flush_dispatch_ms: tuple[float, float] = (0.8, 2.5)
    stack_mix: tuple[tuple[str, float], ...] = DEFAULT_STACK_MIX
    path_classes: tuple[tuple[PathClass, float], ...] = DEFAULT_PATH_CLASSES
    #: Simulated-time granularity at which the stream generator yields
    #: batches; smaller values bound the tap buffer tighter.
    drain_window_ms: float = 250.0
    #: Event-cascade runaway guard; ``None`` scales with ``flows``.
    max_events: int | None = None

    def __post_init__(self) -> None:
        if self.flows < 1:
            raise ValueError("flows must be positive")
        if self.arrival_window_ms < 0:
            raise ValueError("arrival_window_ms must be non-negative")
        if self.drain_window_ms <= 0:
            raise ValueError("drain_window_ms must be positive")

    @property
    def event_budget(self) -> int:
        return self.max_events or max(400_000, 6_000 * self.flows)


@dataclass(frozen=True)
class FlowSpec:
    """Everything needed to (re-)simulate one flow deterministically."""

    index: int
    host: str
    start_ms: float
    stack_name: str
    path_class: str
    propagation_delay_ms: float
    jitter_ms: float
    loss_probability: float
    reorder_probability: float
    server_policy: SpinPolicy
    retry_required: bool
    plan: ResponsePlan
    exchange_seed: int


def _spec_for(config: TrafficConfig, prefix: SeedPrefix, index: int) -> FlowSpec:
    """Draw flow ``index``'s parameters from its own derived stream."""
    rng = prefix.derive(index)
    start_ms = rng.random() * config.arrival_window_ms
    classes = [entry[0] for entry in config.path_classes]
    class_weights = [entry[1] for entry in config.path_classes]
    path_class = weighted_choice(rng, classes, class_weights)
    propagation = rng.uniform(path_class.min_delay_ms, path_class.max_delay_ms)
    names = [entry[0] for entry in config.stack_mix]
    stack_weights = [entry[1] for entry in config.stack_mix]
    stack = stack_by_name(weighted_choice(rng, names, stack_weights))
    server_policy = resolve_connection_policy(stack.spin_config, rng)
    retry_required = (
        stack.retry_probability > 0.0 and rng.random() < stack.retry_probability
    )
    plan = stack.sample_plan(rng, redirect_target=None)
    return FlowSpec(
        index=index,
        host=f"flow-{index}.monitored.test",
        start_ms=start_ms,
        stack_name=stack.name,
        path_class=path_class.name,
        propagation_delay_ms=propagation,
        jitter_ms=path_class.jitter_ms,
        loss_probability=path_class.loss_probability,
        reorder_probability=path_class.reorder_probability,
        server_policy=server_policy,
        retry_required=retry_required,
        plan=plan,
        exchange_seed=rng.getrandbits(64),
    )


class TrafficMux:
    """N concurrent flows, one time-ordered interleaved tap stream.

    All flows share one simulator; each is wired up via
    :func:`repro.web.http3.build_exchange` with its ``connect()``
    scheduled at the flow's staggered start.  A tap on each flow's
    downlink (mid-path, position 0.5) appends the observed datagrams to
    a shared buffer, which :meth:`stream` drains in simulated-time
    windows — so the generator yields a strictly time-ordered stream
    while only ever buffering one window's worth of datagrams and the
    state of currently-active connections.
    """

    def __init__(self, config: TrafficConfig | None = None, metrics=None):
        self.config = config or TrafficConfig()
        #: Optional telemetry registry: the shared simulator and every
        #: launched endpoint report into it during :meth:`stream`.
        self.metrics = metrics
        prefix = SeedPrefix(self.config.seed, "monitor", "flow")
        self.specs: list[FlowSpec] = [
            _spec_for(self.config, prefix, index)
            for index in range(self.config.flows)
        ]

    def stream(self) -> Iterator[TapDatagram]:
        """Yield the interleaved server-to-client stream in time order."""
        simulator = Simulator(metrics=self.metrics)
        buffer: list[TapDatagram] = []
        for spec in self.specs:
            self._launch(simulator, spec, buffer, metrics=self.metrics)
        budget = self.config.event_budget
        window = self.config.drain_window_ms
        while simulator.pending_events:
            deadline = simulator.next_event_time_ms + window
            simulator.run_until(deadline, max_events=budget)
            if buffer:
                yield from buffer
                buffer.clear()

    def replay_single(self, index: int) -> list[TapDatagram]:
        """Re-simulate flow ``index`` alone.

        Returns exactly the flow's datagrams from the interleaved
        stream (same payloads, same tap times): flow randomness is
        per-flow derived and flows share no simulator state beyond the
        event queue, so isolation does not perturb the flow.
        """
        simulator = Simulator()
        buffer: list[TapDatagram] = []
        self._launch(simulator, self.specs[index], buffer)
        simulator.run(max_events=self.config.event_budget)
        return buffer

    # ------------------------------------------------------------------

    def _launch(
        self,
        simulator: Simulator,
        spec: FlowSpec,
        buffer: list[TapDatagram],
        metrics=None,
    ) -> None:
        profile = PathProfile(
            propagation_delay_ms=spec.propagation_delay_ms,
            jitter=UniformDelay(0.0, spec.jitter_ms),
            loss_probability=spec.loss_probability,
            reorder_probability=spec.reorder_probability,
            reorder_extra_delay=LogNormalDelay(median_ms=5.0, sigma=1.2),
        )
        stack = stack_by_name(spec.stack_name)
        handle = build_exchange(
            simulator,
            spec.host,
            [spec.plan],
            self.config.client_spin_policy,
            spec.server_policy,
            profile,
            profile,
            derive_rng(spec.exchange_seed, "exchange"),
            server_config=ConnectionConfig(
                flush_dispatch_ms=self.config.server_flush_dispatch_ms,
                version=stack.supported_versions[0],
                supported_versions=stack.supported_versions,
                retry_required=spec.retry_required,
                ack_delay_exponent=stack.ack_delay_exponent,
                max_ack_delay_ms=stack.max_ack_delay_ms,
            ),
            start_ms=spec.start_ms,
            metrics=metrics,
        )
        handle.downlink.install_tap(
            lambda time_ms, data, index=spec.index: buffer.append(
                TapDatagram(time_ms, index, data)
            ),
            position=0.5,
        )
