"""Windowed aggregation for the streaming monitor.

A long-running monitoring plane cannot keep per-sample data: it
publishes *windowed* statistics and forgets the raw samples.  Two
pieces implement that here:

* :class:`~repro._util.histogram.LogHistogram` (re-exported here for
  back-compat) — a fixed-bin log-scale histogram (constant memory,
  exact count/mean/min/max, approximate percentiles with a relative
  error bounded by the bin ratio — ~±3.7 % at the default 32 bins per
  decade).  This is the standard telemetry trick (Prometheus /
  HdrHistogram style) for streaming RTT percentiles; the telemetry
  plane (:mod:`repro.telemetry`) uses the same class for its metric
  histograms.
* :class:`WindowAggregator` — tumbling windows over *stream* time, each
  accumulating flow/packet/sample counters plus a histogram; an
  optional sliding view merges the last ``slide_windows`` tumbling
  windows (pane-based sliding windows, no sample replay).

All state is O(bins + active flow keys per window); nothing grows with
stream length.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro._util.histogram import LogHistogram

__all__ = [
    "LogHistogram",
    "WindowConfig",
    "WindowSnapshot",
    "WindowAggregator",
]


@dataclass(frozen=True)
class WindowConfig:
    """Window geometry and histogram binning of the aggregation layer."""

    window_ms: float = 1_000.0
    #: Sliding view = merge of the last N tumbling windows; 1 disables
    #: the sliding block in snapshots (pure tumbling).
    slide_windows: int = 1
    hist_min_ms: float = 0.1
    hist_max_ms: float = 60_000.0
    hist_bins_per_decade: int = 32

    def __post_init__(self) -> None:
        if self.window_ms <= 0:
            raise ValueError("window_ms must be positive")
        if self.slide_windows < 1:
            raise ValueError("slide_windows must be >= 1")

    def make_histogram(self) -> LogHistogram:
        return LogHistogram(
            self.hist_min_ms, self.hist_max_ms, self.hist_bins_per_decade
        )


class _WindowState:
    """Mutable accumulator for one open tumbling window."""

    __slots__ = (
        "index",
        "start_ms",
        "end_ms",
        "datagrams",
        "packets",
        "parse_errors",
        "flows_created",
        "flows_evicted",
        "flows_expired",
        "overflow_drops",
        "flow_keys",
        "samples",
    )

    def __init__(self, index: int, start_ms: float, end_ms: float, samples):
        self.index = index
        self.start_ms = start_ms
        self.end_ms = end_ms
        self.datagrams = 0
        self.packets = 0
        self.parse_errors = 0
        self.flows_created = 0
        self.flows_evicted = 0
        self.flows_expired = 0
        self.overflow_drops = 0
        self.flow_keys: set[str] = set()
        self.samples = samples


@dataclass(frozen=True)
class WindowSnapshot:
    """One closed window, ready for JSONL export."""

    index: int
    start_ms: float
    end_ms: float
    datagrams: int
    packets: int
    parse_errors: int
    flows: dict
    samples: dict
    table: dict
    sliding: dict | None = None

    def as_dict(self) -> dict:
        data = {
            "index": self.index,
            "start_ms": round(self.start_ms, 3),
            "end_ms": round(self.end_ms, 3),
            "datagrams": self.datagrams,
            "packets": self.packets,
            "parse_errors": self.parse_errors,
            "flows": self.flows,
            "samples": self.samples,
            "table": self.table,
        }
        if self.sliding is not None:
            data["sliding"] = self.sliding
        return data


class WindowAggregator:
    """Tumbling (and optionally sliding) windows over stream time.

    The caller feeds monotonically non-decreasing event times; windows
    are aligned to multiples of ``window_ms`` starting at the first
    event.  :meth:`roll` closes every window that ends at or before the
    given time and returns the snapshots; windows with no traffic at
    all are skipped rather than emitted as empty lines (an idle tap
    publishes nothing, like a real exporter between scrapes).
    """

    def __init__(self, config: WindowConfig | None = None):
        self.config = config or WindowConfig()
        self.lifetime = self.config.make_histogram()
        self.windows_emitted = 0
        self._current: _WindowState | None = None
        self._recent: deque[_WindowState] = deque(
            maxlen=self.config.slide_windows
        )
        self._next_index = 0

    # -- recording ------------------------------------------------------

    def window_for(self, time_ms: float) -> _WindowState:
        """The open window containing ``time_ms`` (creating it lazily)."""
        current = self._current
        if current is None or time_ms >= current.end_ms:
            width = self.config.window_ms
            index = int(time_ms // width)
            current = _WindowState(
                index=index,
                start_ms=index * width,
                end_ms=(index + 1) * width,
                samples=self.config.make_histogram(),
            )
            self._current = current
        return current

    def record_sample(self, time_ms: float, rtt_ms: float) -> None:
        """One spin RTT sample retired from the flow table."""
        self.window_for(time_ms).samples.add(rtt_ms)
        self.lifetime.add(rtt_ms)

    # -- window lifecycle ----------------------------------------------

    def roll(self, time_ms: float, table_health: dict) -> list[WindowSnapshot]:
        """Close windows ending at or before ``time_ms``.

        ``table_health`` is attached to each closed snapshot — gauges
        read at close time (the pipeline passes the flow table's
        current counters).
        """
        current = self._current
        if current is None or time_ms < current.end_ms:
            return []
        return [self._close(table_health)]

    def flush(self, table_health: dict) -> list[WindowSnapshot]:
        """Close the trailing partial window at end of stream."""
        if self._current is None:
            return []
        return [self._close(table_health)]

    def _close(self, table_health: dict) -> WindowSnapshot:
        window = self._current
        self._current = None
        self._recent.append(window)
        self.windows_emitted += 1
        sliding = None
        if self.config.slide_windows > 1:
            sliding = self._sliding_summary()
        return WindowSnapshot(
            index=window.index,
            start_ms=window.start_ms,
            end_ms=window.end_ms,
            datagrams=window.datagrams,
            packets=window.packets,
            parse_errors=window.parse_errors,
            flows={
                "distinct": len(window.flow_keys),
                "created": window.flows_created,
                "evicted": window.flows_evicted,
                "expired": window.flows_expired,
                "overflow_drops": window.overflow_drops,
            },
            samples=window.samples.summary(),
            table=table_health,
            sliding=sliding,
        )

    def _sliding_summary(self) -> dict:
        """Merge of the last ``slide_windows`` closed windows."""
        merged = self.config.make_histogram()
        datagrams = packets = 0
        flow_keys: set[str] = set()
        for window in self._recent:
            merged.merge(window.samples)
            datagrams += window.datagrams
            packets += window.packets
            flow_keys |= window.flow_keys
        return {
            "windows": len(self._recent),
            "span_ms": round(
                self._recent[-1].end_ms - self._recent[0].start_ms, 3
            ),
            "datagrams": datagrams,
            "packets": packets,
            "flows_distinct": len(flow_keys),
            "samples": merged.summary(),
        }
