"""Cost-aware shard planning for the parallel scan engine.

A fixed ``chunk_size`` splits the target list into equal *domain*
counts, but domains are nowhere near equal in scan cost: an unresolved
name costs one RNG draw, a healthy QUIC exchange costs a full packet
simulation, and a blackholed domain runs the simulator all the way to
its connect timeout (plus retries).  A shard that happens to collect
the blackholes takes many times longer than its siblings and stalls the
pool at the tail.

This module prices every domain with a deterministic cost model — the
same derived fault stream the scanner itself will draw, so the estimate
sees exactly the blackholes and stalls the scan will hit — and cuts the
target list into shards of approximately equal *total cost* instead of
equal length.  Fault-heavy and slow-server stretches get fewer domains
per shard.  The shard count stays ``ceil(n / chunk)`` (the layout the
fixed-chunk path would produce), only the boundaries move; merge order
is positional either way, so the plan cannot affect result bytes.

Costs are relative units: 1.0 ≈ one healthy QUIC exchange.  The model
does not need to be accurate — only *monotone* in actual cost — for
longest-processing-time-first dispatch and tail splitting to win.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.internet.population import DomainRecord, Population
    from repro.web.scanner import ScanConfig

__all__ = ["ShardCostModel", "ShardRange", "plan_shards", "split_shard"]

#: Relative cost of one domain that fails to resolve (one RNG draw).
_COST_UNRESOLVED = 0.05
#: Resolved but QUIC-less: DNS plus provider lookups, no simulation.
_COST_NO_QUIC = 0.3
#: A blackholed connection runs the simulator to its timeout budget.
_COST_BLACKHOLE = 5.0
#: Resets and VN dead-ends abort mid-exchange (and may retry).
_COST_ABORTED_EXCHANGE = 0.8


@dataclass(frozen=True)
class ShardRange:
    """One contiguous slice of the target list, priced for dispatch.

    ``index`` is the shard's merge position (and, under a checkpoint,
    its shard-file number); a split shard yields several ShardRanges
    sharing one ``index`` that reassemble by ``start``.
    """

    index: int
    start: int
    count: int
    cost: float

    @property
    def stop(self) -> int:
        return self.start + self.count


class ShardCostModel:
    """Deterministic per-domain scan-cost estimates.

    The provider component is cached per provider name (mean
    propagation delay stretches every simulated round trip); the fault
    component replays the scanner's own per-domain fault draw — derived
    from ``(seed, "scan", week, ip_version, domain, probe, "faults")``,
    never from the measurement stream — so pricing a domain cannot
    perturb its measurement.
    """

    def __init__(
        self,
        population: "Population",
        config: "ScanConfig",
        week_label: str,
        ip_version: int,
        probe: int,
    ) -> None:
        from repro._util.rng import SeedPrefix

        self._population = population
        self._ip_version = ip_version
        self._probe = probe
        self._provider_cost: dict[str, float] = {}
        faults = config.faults
        self._faults = faults if faults is not None and not faults.is_empty else None
        self._retry_attempts = 1
        if config.resilience is not None and config.resilience.retry is not None:
            self._retry_attempts = config.resilience.retry.max_attempts
        self._seed_prefix = (
            SeedPrefix(population.config.seed, "scan", week_label, ip_version)
            if self._faults is not None
            else None
        )

    def domain_cost(self, domain: "DomainRecord") -> float:
        if not domain.resolves or (self._ip_version == 6 and not domain.has_aaaa):
            return _COST_UNRESOLVED
        if not domain.quic_enabled:
            return _COST_NO_QUIC
        cost = self._base_exchange_cost(domain.provider_name)
        if self._faults is not None:
            cost += self._fault_cost(domain.name)
        return cost

    def _base_exchange_cost(self, provider_name: str | None) -> float:
        cached = self._provider_cost.get(provider_name)
        if cached is None:
            from repro.internet.population import _provider

            provider = _provider(provider_name)
            # A slow path stretches the exchange: more simulated time,
            # more timer events.  50 ms one-way is the reference pace.
            cached = 1.0 + provider.propagation_delay.mean_ms() / 50.0
            self._provider_cost[provider_name] = cached
        return cached

    def _fault_cost(self, domain_name: str) -> float:
        drawn = self._faults.draw(
            self._seed_prefix.derive(domain_name, self._probe, "faults")
        )
        if not drawn.any_active:
            return 0.0
        cost = 0.0
        retries = float(self._retry_attempts)
        if drawn.blackhole:
            cost += _COST_BLACKHOLE * retries
        if drawn.reset_after_packets is not None:
            cost += _COST_ABORTED_EXCHANGE * retries
        if drawn.vn_failure:
            cost += _COST_ABORTED_EXCHANGE * retries
        cost += drawn.handshake_stall_ms / 1000.0
        cost += drawn.slow_server_stall_ms / 1000.0
        if drawn.loss_burst is not None:
            cost += 0.5  # retransmission flights
        return cost


def plan_shards(
    n_targets: int,
    chunk: int,
    cost_of: Callable[[int], float] | None = None,
    fixed: bool = False,
) -> list[ShardRange]:
    """Cut ``n_targets`` domains into ``ceil(n / chunk)`` shard ranges.

    With ``fixed=True`` (or no cost function) boundaries fall every
    ``chunk`` domains — the layout a :class:`CheckpointStore` requires,
    since shard files must cover identical ranges across resumes.
    Otherwise boundaries equalize total cost: each shard closes once it
    reaches the average per-shard cost, subject to leaving at least one
    domain for every remaining shard.  Pure function of its inputs —
    worker count and completion timing never move a boundary.
    """
    if n_targets == 0:
        return []
    n_shards = -(-n_targets // chunk)
    if fixed or cost_of is None or n_shards == 1:
        return _fixed_plan(n_targets, chunk, cost_of)
    costs = [cost_of(i) for i in range(n_targets)]
    budget = sum(costs) / n_shards
    shards: list[ShardRange] = []
    start = 0
    acc = 0.0
    for i in range(n_targets):
        acc += costs[i]
        shards_left = n_shards - len(shards)
        domains_left_after = n_targets - (i + 1)
        if shards_left > 1 and (
            domains_left_after == shards_left - 1
            or (acc >= budget and domains_left_after >= shards_left - 1)
        ):
            shards.append(
                ShardRange(
                    index=len(shards), start=start, count=i + 1 - start, cost=acc
                )
            )
            start = i + 1
            acc = 0.0
    shards.append(
        ShardRange(
            index=len(shards), start=start, count=n_targets - start, cost=acc
        )
    )
    return shards


def _fixed_plan(
    n_targets: int,
    chunk: int,
    cost_of: Callable[[int], float] | None,
) -> list[ShardRange]:
    shards = []
    for index, start in enumerate(range(0, n_targets, chunk)):
        stop = min(start + chunk, n_targets)
        cost = (
            sum(cost_of(i) for i in range(start, stop))
            if cost_of is not None
            else float(stop - start)
        )
        shards.append(
            ShardRange(index=index, start=start, count=stop - start, cost=cost)
        )
    return shards


def split_shard(
    shard: ShardRange, costs: Sequence[float] | None = None
) -> tuple[ShardRange, ShardRange] | None:
    """Split one queued shard into two sub-ranges at its cost midpoint.

    ``None`` when the shard is a single domain.  Both halves keep the
    parent's ``index`` — they are still the same merge (and checkpoint
    shard-file) slot, reassembled by ``start``.  Only *queued* work is
    ever split: a running task cannot be preempted, but the scheduler
    splits the remaining tail so free workers never idle behind it.
    """
    if shard.count < 2:
        return None
    if costs is None:
        mid = shard.count // 2
        left_cost = shard.cost * (mid / shard.count)
    else:
        half = shard.cost / 2.0
        acc = 0.0
        mid = shard.count // 2
        for offset in range(shard.count - 1):
            acc += costs[shard.start + offset]
            if acc >= half:
                mid = offset + 1
                break
        left_cost = sum(costs[shard.start : shard.start + mid])
    mid = max(1, min(shard.count - 1, mid))
    left = ShardRange(
        index=shard.index, start=shard.start, count=mid, cost=left_cost
    )
    right = ShardRange(
        index=shard.index,
        start=shard.start + mid,
        count=shard.count - mid,
        cost=shard.cost - left_cost,
    )
    return left, right
