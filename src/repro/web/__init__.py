"""Web measurement substrate: HTTP/3 exchanges, server stacks, scanner."""

from repro.web.http3 import (
    ExchangeHandle,
    ExchangeResult,
    ResponsePlan,
    SessionResult,
    build_exchange,
    run_exchange,
    run_session,
)
from repro.web.scanner import (
    ConnectionRecord,
    DomainScanResult,
    ParallelScanConfig,
    ScanConfig,
    ScanDataset,
    Scanner,
)
from repro.web.server_profiles import STACKS, ServerStackProfile, stack_by_name

__all__ = [
    "ConnectionRecord",
    "DomainScanResult",
    "ExchangeHandle",
    "ExchangeResult",
    "ParallelScanConfig",
    "ResponsePlan",
    "STACKS",
    "ScanConfig",
    "SessionResult",
    "ScanDataset",
    "Scanner",
    "ServerStackProfile",
    "build_exchange",
    "run_exchange",
    "run_session",
    "stack_by_name",
]
