"""The zgrab2-equivalent HTTP/3 scanner (Section 3.2 of the paper).

For every domain of the target population the scanner prepends ``www.``,
attempts an HTTP/3 fetch of the landing page, follows up to three
redirects (each redirect is a *new* QUIC connection, re-rolling the
server's per-connection spin decision), and captures a per-connection
trace.  The trace is immediately reduced to the per-connection record
the paper's released artifact contains — spin observation, spin-bit RTT
series (received and sorted order), stack RTT estimates, behaviour
classification — so large scans stay memory-bounded; full qlog capture
is available for a sampled subset.
"""

from __future__ import annotations

import random
import sys
import time
from contextlib import nullcontext
from dataclasses import dataclass, field, replace

from repro._util.rng import SeedPrefix, fork_rng
from repro.obs.spans import trace_id_for
from repro.core.classify import SpinBehaviour, classify_connection
from repro.core.observer import SpinObservation, observe_recorder
from repro.core.spin import SpinPolicy, resolve_connection_policy
from repro.faults.resilience import ResilienceConfig
from repro.faults.spec import (
    VN_FAULT_VERSION,
    BlackholeImpairment,
    DrawnFaults,
    FaultPlan,
)
from repro.faults.taxonomy import RETRYABLE_KINDS, FailureKind, classify_exchange
from repro.internet.asdb import IpAddr
from repro.internet.population import DomainRecord, Population
from repro.netsim.delays import LogNormalDelay, UniformDelay
from repro.netsim.path import PathProfile
from repro.quic.connection import ConnectionConfig
from repro.qlog.writer import recorder_to_qlog
from repro.telemetry import Telemetry
from repro.web.http3 import run_exchange
from repro.web.parallel import (
    ParallelScanConfig,
    close_pool,
    scan_sharded,
    scan_stream_sharded,
)
from repro.web.server_profiles import ServerStackProfile, stack_by_name


def _epoch_of(week_label: str) -> int:
    """Week serial for the stack-churn process; 0 for ad-hoc labels."""
    from repro.campaign.schedule import CalendarWeek

    try:
        return max(0, CalendarWeek.from_label(week_label).serial)
    except (ValueError, TypeError):
        return 0

__all__ = [
    "ConnectionRecord",
    "DomainScanResult",
    "ParallelScanConfig",
    "ScanConfig",
    "Scanner",
    "ScanDataset",
]

_MAX_REDIRECTS = 3


def _stamp_week(results: list["DomainScanResult"], week_label: str) -> None:
    """Stamp every connection record with the measurement week."""
    for result in results:
        for record in result.connections:
            record.week = week_label


@dataclass(frozen=True)
class ScanConfig:
    """Scanner tunables.

    ``loss_probability`` and ``reorder_probability`` are per-packet path
    impairments; ``jitter_ms`` bounds the uniform per-packet queueing
    jitter.  ``qlog_sample_rate`` controls for what fraction of
    connections the full qlog document is retained (artifact export).
    """

    loss_probability: float = 0.001
    reorder_probability: float = 0.0015
    #: Median of the log-normal extra delay a reordered packet picks up.
    #: The heavy tail occasionally displaces a packet across a spin
    #: phase boundary — the Fig. 1b failure mode — while typical events
    #: swap packets within a flight and stay invisible.
    reorder_extra_delay_ms: float = 5.0
    jitter_ms: float = 0.8
    server_flush_dispatch_ms: tuple[float, float] = (0.8, 2.5)
    qlog_sample_rate: float = 0.0
    client_spin_policy: SpinPolicy = SpinPolicy.SPIN
    #: Send the final two-PING detection probe before teardown (see
    #: DESIGN.md Sec. 7); disabling it models a teardown-happy client
    #: that misses spinners on single-flight responses.
    final_probe: bool = True
    #: Fault-injection plan (:mod:`repro.faults.spec`); ``None`` or an
    #: empty plan leaves every connection — and every artifact byte —
    #: exactly as an un-faulted scan.
    faults: FaultPlan | None = None
    #: Resilience machinery (timeouts, retries, circuit breaker); with
    #: ``None`` the scanner behaves exactly as before this layer existed.
    resilience: ResilienceConfig | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.qlog_sample_rate <= 1.0:
            raise ValueError("qlog_sample_rate must be in [0, 1]")

    @property
    def faults_active(self) -> bool:
        """Whether any fault injection or resilience handling is on."""
        return (
            self.faults is not None and not self.faults.is_empty
        ) or self.resilience is not None


@dataclass(slots=True)
class ConnectionRecord:
    """The per-connection artifact record (cf. paper Appendix B)."""

    domain: str
    host: str
    ip: IpAddr
    ip_version: int
    provider_name: str
    server_header: str | None
    status: int | None
    success: bool
    behaviour: SpinBehaviour
    observation: SpinObservation
    stack_rtts_ms: list[float]
    qlog: dict | None = None
    #: Wire version the connection ended up using (after any Version
    #: Negotiation); ``None`` when the exchange failed early.
    negotiated_version: int | None = None
    #: Failure taxonomy entry (:class:`repro.faults.FailureKind`) for a
    #: failed exchange; ``None`` on success or when neither faults nor
    #: resilience are configured (classification off keeps legacy scans
    #: byte-identical).
    failure: FailureKind | None = None
    #: Calendar-week label of the measurement that produced this record
    #: (``"cw20-2023"``); stamped by the scanner so merged multi-week
    #: artifacts stay sliceable by week.  ``None`` on records from
    #: pre-week datasets.
    week: str | None = None

    @property
    def shows_spin_activity(self) -> bool:
        """Spin values 0 and 1 both seen (Table 1's Spin criterion)."""
        return self.observation.spins

    @property
    def spin_rtts_received_ms(self) -> list[float]:
        return self.observation.rtts_received_ms

    @property
    def spin_rtts_sorted_ms(self) -> list[float]:
        return self.observation.rtts_sorted_ms


@dataclass(slots=True)
class DomainScanResult:
    """Everything the scanner learned about one domain in one week."""

    domain: DomainRecord
    resolved: bool
    quic_support: bool
    #: The address DNS resolution returned (also for domains that then
    #: failed to answer HTTP/3) — feeds the Resolved-IP totals of
    #: Tables 1 and 4.
    resolved_ip: IpAddr | None = None
    connections: list[ConnectionRecord] = field(default_factory=list)
    #: Domain-level failure kind when no connection of the chain
    #: succeeded (the last connection's classification); ``None`` on
    #: success or with classification off.
    failure: FailureKind | None = None

    @property
    def shows_spin_activity(self) -> bool:
        return any(c.shows_spin_activity for c in self.connections)


@dataclass
class ScanDataset:
    """One weekly scan over one IP version."""

    week_label: str
    ip_version: int
    results: list[DomainScanResult] = field(default_factory=list)

    def connection_records(self) -> list[ConnectionRecord]:
        """All connections of the scan, in domain order."""
        return [c for result in self.results for c in result.connections]


class Scanner:
    """Scans a population, one HTTP/3 fetch chain per domain per week.

    ``parallel`` shards the target list over a process pool (see
    :mod:`repro.web.parallel`); the default single-worker configuration
    runs fully in-process.  Both paths produce bit-identical datasets
    because every domain's randomness is derived independently.
    """

    def __init__(
        self,
        population: Population,
        config: ScanConfig | None = None,
        parallel: ParallelScanConfig | None = None,
        telemetry: Telemetry | None = None,
    ):
        self.population = population
        self.config = config or ScanConfig()
        self.parallel = parallel or ParallelScanConfig()
        #: Optional :class:`repro.telemetry.Telemetry` bundle.  All scan
        #: metrics and trace events are deterministic functions of the
        #: scan arguments: event timestamps are *simulated* milliseconds
        #: (each domain's event cascade), never wall-clock, and the
        #: per-domain emission order is population order regardless of
        #: worker count (parallel shards are absorbed in shard order).
        self.telemetry = telemetry

    def close(self) -> None:
        """Release the scanner's worker pool, deterministically.

        Blocks until every pool worker has exited.  Idempotent, and the
        scanner stays usable — a later ``scan()`` simply builds a fresh
        pool.  Long-lived callers (campaign runner, CLI, service
        daemon) close their scanner when a campaign ends instead of
        leaking live worker processes until garbage collection.
        """
        close_pool(self)

    def __enter__(self) -> "Scanner":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def scan(
        self,
        week_label: str = "cw20-2023",
        ip_version: int = 4,
        domains: list[DomainRecord] | None = None,
        probe: int = 0,
        verbose: bool = False,
        checkpoint_dir=None,
    ) -> ScanDataset:
        """Run one measurement week over ``domains`` (default: all).

        Deterministic in (population seed, week label, IP version,
        probe) — independent of worker count and sharding.  ``probe``
        distinguishes repeated measurements *within* the same week —
        the follow-up methodology of Section 6 re-rolls per-connection
        randomness (spin disabling, paths) while keeping the week's
        deployment state fixed.  ``verbose`` prints a one-line summary
        (domains, elapsed, throughput, workers) to stderr.

        ``checkpoint_dir`` enables crash-safe resume: completed shards
        are written there as they finish, and a re-run of the *same*
        scan (seed, week, IP version, probe, targets, config) loads them
        back instead of re-scanning.  The shard size is fixed by the
        chunk configuration, not the worker count, so a campaign can be
        resumed with a different ``--workers`` and still merge
        bit-identically.
        """
        targets = domains if domains is not None else self.population.domains
        workers = self.parallel.workers if len(targets) > 1 else 1
        store = None
        if checkpoint_dir is not None:
            from repro.faults.checkpoint import CheckpointStore, scan_fingerprint
            from repro.faults.shardwriter import AsyncCheckpointWriter

            # The async facade moves shard persistence onto a writer
            # thread so checkpoint disk I/O overlaps scan compute; its
            # close() below guarantees every finished shard is on disk
            # before scan() returns (or re-raises).
            store = AsyncCheckpointWriter(
                CheckpointStore(
                    checkpoint_dir,
                    fingerprint=scan_fingerprint(
                        self.population.config.seed,
                        week_label,
                        ip_version,
                        probe,
                        targets,
                        repr(self.config),
                    ),
                    chunk=self.parallel.chunk_size or 256,
                )
            )
        started = time.perf_counter()  # wallclock-ok: stderr diagnostics only
        scan_span = None
        profiler = self.telemetry.profiler if self.telemetry is not None else None
        scan_phase = profiler.phase("scan") if profiler is not None else None
        if scan_phase is not None:
            scan_phase.__enter__()
        if self.telemetry is not None:
            # Deliberately no worker count here: scan.begin is part of
            # the deterministic trace, which must not depend on sharding.
            self.telemetry.tracer.event(
                "scan.begin",
                week=week_label,
                ip_version=ip_version,
                domains=len(targets),
            )
            spans = self.telemetry.spans
            if spans.trace_id is None:
                # Standalone scan: the scan itself is the trace root.
                # Under the campaign daemon the trace id is already the
                # campaign's and this scan nests beneath it.
                spans.trace_id = trace_id_for(
                    "scan",
                    self.population.config.seed,
                    week_label,
                    ip_version,
                    probe,
                )
            scan_span = spans.span(
                f"scan:{week_label}",
                ip_version=ip_version,
                domains=len(targets),
            )
        try:
            if workers > 1:
                results = scan_sharded(
                    self, targets, week_label, ip_version, probe, self.parallel,
                    checkpoint=store,
                )
            else:
                results = self.scan_sequential(
                    targets, week_label, ip_version, probe, checkpoint=store
                )
        except BaseException:
            # A crashed scan still persists every shard that completed:
            # drain the writer (suppressing secondary write errors, the
            # scan failure is what the caller must see) before
            # propagating.
            if store is not None:
                store.close(suppress_errors=True)
            raise
        if store is not None:
            store.close()
        if scan_span is not None:
            # The merge marker closes the scan stage of the pipeline in
            # both execution paths (the sequential path "merges" one
            # shard) so the deterministic span stream never depends on
            # how the work was split.
            self.telemetry.spans.span("merge", domains=len(results)).end()
        resilience = self.config.resilience
        if resilience is not None and resilience.breaker is not None:
            # A deterministic post-merge pass (never inside the scan
            # loop): breaker decisions depend only on the merged result
            # order, so they are identical for any worker count, and
            # checkpoint shards always hold pre-breaker results.
            from repro.faults.breaker import apply_circuit_breaker

            apply_circuit_breaker(
                results,
                resilience.breaker,
                lambda r: self.population.provider_of(r.domain).name,
                telemetry=self.telemetry,
            )
        if scan_span is not None:
            scan_span.annotate(
                quic=sum(1 for r in results if r.quic_support)
            )
            scan_span.end()
        if scan_phase is not None:
            scan_phase.__exit__(None, None, None)
        if verbose:
            elapsed = time.perf_counter() - started  # wallclock-ok: diagnostics
            rate = len(targets) / elapsed if elapsed > 0 else float("inf")
            print(
                f"scanned {len(targets)} domains in {elapsed:.1f} s "
                f"({rate:.0f} domains/s, {workers} worker(s))",
                file=sys.stderr,
            )
        return ScanDataset(
            week_label=week_label, ip_version=ip_version, results=results
        )

    def scan_stream(
        self,
        week_label: str = "cw20-2023",
        ip_version: int = 4,
        probe: int = 0,
        verbose: bool = False,
        stats: dict | None = None,
    ):
        """Scan the whole population as a bounded-memory result stream.

        Yields one :class:`DomainScanResult` per domain, in population
        order, bit-identical to ``scan()`` over the same targets — but
        never holds more than a small window of shards in memory, so a
        10 M+ domain :class:`~repro.internet.streaming.
        StreamingPopulation` scan runs in bounded RSS (the parent
        re-materializes each shard's records on demand; workers
        regenerate their own slices from range descriptors).

        Streaming trades away the post-merge passes: the circuit
        breaker (which needs the full merged result order) and
        checkpointing (whose fingerprint walks the full target list)
        are rejected up front.  Telemetry works as usual and stays
        byte-identical across worker counts.
        """
        resilience = self.config.resilience
        if resilience is not None and resilience.breaker is not None:
            raise ValueError(
                "streaming scans cannot apply the circuit breaker "
                "(a post-merge pass over the full result order); "
                "drop the breaker or use scan()"
            )
        total = self.population.domain_count
        started = time.perf_counter()  # wallclock-ok: stderr diagnostics only
        scan_span = None
        if self.telemetry is not None:
            self.telemetry.tracer.event(
                "scan.begin",
                week=week_label,
                ip_version=ip_version,
                domains=total,
            )
            spans = self.telemetry.spans
            if spans.trace_id is None:
                spans.trace_id = trace_id_for(
                    "scan",
                    self.population.config.seed,
                    week_label,
                    ip_version,
                    probe,
                )
            scan_span = spans.span(
                f"scan:{week_label}", ip_version=ip_version, domains=total
            )
        emitted = 0
        quic = 0
        for result in scan_stream_sharded(
            self, week_label, ip_version, probe, self.parallel, stats=stats
        ):
            emitted += 1
            if result.quic_support:
                quic += 1
            yield result
        if scan_span is not None:
            self.telemetry.spans.span("merge", domains=emitted).end()
            scan_span.annotate(quic=quic)
            scan_span.end()
        if verbose:
            elapsed = time.perf_counter() - started  # wallclock-ok: diagnostics
            rate = emitted / elapsed if elapsed > 0 else float("inf")
            print(
                f"scanned {emitted} domains in {elapsed:.1f} s "
                f"({rate:.0f} domains/s, streaming)",
                file=sys.stderr,
            )

    def scan_sequential(
        self,
        targets: list[DomainRecord],
        week_label: str,
        ip_version: int,
        probe: int = 0,
        checkpoint=None,
    ) -> list[DomainScanResult]:
        """Scan ``targets`` in-process; one result per domain, in order.

        The per-scan invariants — the week's churn epoch and the
        ``(seed, "scan", week, ip_version)`` seed prefix — are computed
        once here instead of once per domain; both are pure functions of
        the arguments, so sharded workers recompute identical values.

        With a :class:`repro.faults.CheckpointStore`, targets are walked
        in fixed-size shards; each shard is loaded from disk when a
        valid checkpoint exists and scanned-then-saved otherwise.
        Loaded shards contribute no telemetry (their events were emitted
        by the run that produced them).
        """
        epoch = _epoch_of(week_label)
        seed_prefix = SeedPrefix(
            self.population.config.seed, "scan", week_label, ip_version
        )
        if checkpoint is None:
            results = [
                self._scan_domain(domain, ip_version, probe, epoch, seed_prefix)
                for domain in targets
            ]
            _stamp_week(results, week_label)
            return results
        results = []
        chunk = checkpoint.chunk
        for shard_index, start in enumerate(range(0, len(targets), chunk)):
            shard_targets = targets[start : start + chunk]
            shard = checkpoint.load_shard(shard_index, shard_targets)
            if shard is None:
                shard = [
                    self._scan_domain(domain, ip_version, probe, epoch, seed_prefix)
                    for domain in shard_targets
                ]
                # Stamp before the shard is persisted, so checkpoint
                # artifacts merged via ``repro convert`` stay queryable
                # by week.
                _stamp_week(shard, week_label)
                checkpoint.save_shard(shard_index, shard)
            results.extend(shard)
        # Loaded shards may predate week stamping; normalize everything.
        _stamp_week(results, week_label)
        return results

    # ------------------------------------------------------------------

    def _scan_domain(
        self,
        domain: DomainRecord,
        ip_version: int,
        probe: int,
        epoch: int,
        seed_prefix: SeedPrefix,
    ) -> DomainScanResult:
        """One domain: a ``domain:<name>`` span around the fetch chain.

        The span's clock is the domain's *simulated* time (the same
        value the ``scan.domain`` trace event carries), so span logs
        stay a pure function of the seed.
        """
        telemetry = self.telemetry
        if telemetry is None:
            return self._scan_domain_impl(
                domain, ip_version, probe, epoch, seed_prefix
            )
        span = telemetry.spans.span(f"domain:{domain.name}")
        profiler = telemetry.profiler
        with (
            profiler.phase("scan.domain")
            if profiler is not None
            else nullcontext()
        ):
            result = self._scan_domain_impl(
                domain, ip_version, probe, epoch, seed_prefix
            )
        span.annotate(
            resolved=result.resolved,
            quic=result.quic_support,
            spins=result.shows_spin_activity,
            connections=len(result.connections),
        )
        span.end(self._domain_sim_ms)
        return result

    def _scan_domain_impl(
        self,
        domain: DomainRecord,
        ip_version: int,
        probe: int,
        epoch: int,
        seed_prefix: SeedPrefix,
    ) -> DomainScanResult:
        telemetry = self.telemetry
        registry = telemetry.registry if telemetry is not None else None
        self._domain_sim_ms = 0.0
        if registry is not None:
            registry.counter("scan.domains").inc()

        rng = seed_prefix.derive(domain.name, probe)
        if not domain.resolves or (ip_version == 6 and not domain.has_aaaa):
            if telemetry is not None:
                telemetry.tracer.event(
                    "scan.domain", domain=domain.name, resolved=False
                )
            return DomainScanResult(domain=domain, resolved=False, quic_support=False)

        ip = self.population.host_of(domain, ip_version)
        result = DomainScanResult(
            domain=domain, resolved=True, quic_support=False, resolved_ip=ip
        )
        stack_name = (
            self.population.stack_of(domain, ip_version, epoch)
            if domain.quic_enabled
            else None
        )
        if registry is not None:
            registry.counter("scan.domains_resolved").inc()
        if stack_name is None:
            if telemetry is not None:
                telemetry.tracer.event(
                    "scan.domain", domain=domain.name, resolved=True, quic=False
                )
            return result
        stack = stack_by_name(stack_name)
        provider = self.population.provider_of(domain)

        # Fault draws come from a *separate* stream derived alongside —
        # never from — the measurement stream ``rng``, so an all-zero
        # (or absent) plan leaves every measurement byte untouched, and
        # any worker split sees the same faults for the same domain.
        drawn = None
        faults = self.config.faults
        if faults is not None and not faults.is_empty:
            drawn = faults.draw(seed_prefix.derive(domain.name, probe, "faults"))

        host = f"www.{domain.name}"
        redirects_left = _MAX_REDIRECTS
        while True:
            record = self._connect_once(
                domain, host, ip, ip_version, provider.name, stack,
                provider.propagation_delay, rng, allow_redirect=redirects_left > 0,
                drawn_faults=drawn,
            )
            result.connections.append(record)
            if record.success:
                result.quic_support = True
            if record.status in (301, 302, 307, 308) and redirects_left > 0:
                redirects_left -= 1
                if registry is not None:
                    registry.counter("scan.redirects_followed").inc()
                # Landing-page redirects overwhelmingly stay on the same
                # host (http→https, apex→www); the scanner reconnects.
                continue
            break
        if not result.quic_support and result.connections:
            result.failure = result.connections[-1].failure
        if registry is not None:
            if result.quic_support:
                registry.counter("scan.domains_quic").inc()
            if result.shows_spin_activity:
                registry.counter("scan.domains_spinning").inc()
        if telemetry is not None:
            telemetry.tracer.event(
                "scan.domain",
                time_ms=self._domain_sim_ms,
                domain=domain.name,
                resolved=True,
                quic=result.quic_support,
                spins=result.shows_spin_activity,
                connections=len(result.connections),
            )
        return result

    def _connect_once(
        self,
        domain: DomainRecord,
        host: str,
        ip: IpAddr,
        ip_version: int,
        provider_name: str,
        stack: ServerStackProfile,
        propagation_delay,
        rng: random.Random,
        allow_redirect: bool,
        drawn_faults: DrawnFaults | None = None,
    ) -> ConnectionRecord:
        config = self.config
        resilience = config.resilience
        classify_enabled = config.faults_active
        server_policy = resolve_connection_policy(stack.spin_config, rng)
        retry_required = (
            stack.retry_probability > 0.0 and rng.random() < stack.retry_probability
        )
        plan = stack.sample_plan(
            rng, redirect_target=f"https://{host}/start" if allow_redirect else None
        )

        impairment = None
        server_versions = stack.supported_versions
        handshake_stall_ms = 0.0
        reset_after = None
        if drawn_faults is not None and drawn_faults.any_active:
            if drawn_faults.slow_server_stall_ms > 0.0:
                plan = replace(
                    plan,
                    think_time_ms=plan.think_time_ms
                    + drawn_faults.slow_server_stall_ms,
                )
            if drawn_faults.vn_failure:
                # The server only accepts a version the client will
                # never offer, forcing Version Negotiation to dead-end.
                server_versions = (VN_FAULT_VERSION,)
            handshake_stall_ms = drawn_faults.handshake_stall_ms
            reset_after = drawn_faults.reset_after_packets
            if drawn_faults.blackhole:
                impairment = BlackholeImpairment()
            elif drawn_faults.loss_burst is not None:
                impairment = drawn_faults.loss_burst

        one_way = propagation_delay.sample(rng)
        jitter = UniformDelay(0.0, config.jitter_ms)
        profile = PathProfile(
            propagation_delay_ms=one_way,
            jitter=jitter,
            loss_probability=config.loss_probability,
            reorder_probability=config.reorder_probability,
            reorder_extra_delay=LogNormalDelay(
                median_ms=config.reorder_extra_delay_ms, sigma=1.2
            ),
        )

        telemetry = self.telemetry
        registry = telemetry.registry if telemetry is not None else None
        retry = resilience.retry if resilience is not None else None
        max_attempts = retry.max_attempts if retry is not None else 1
        connect_timeout = (
            resilience.connect_timeout_ms if resilience is not None else None
        )
        domain_budget = (
            resilience.domain_budget_ms if resilience is not None else None
        )

        profiler = telemetry.profiler if telemetry is not None else None
        attempt = 0
        kind: FailureKind | None = None
        while True:
            with (
                profiler.phase("exchange")
                if profiler is not None
                else nullcontext()
            ):
                exchange = run_exchange(
                    host,
                    plan,
                    config.client_spin_policy,
                    server_policy,
                    uplink_profile=profile,
                    downlink_profile=profile,
                    rng=fork_rng(rng, "exchange"),
                    final_probe=config.final_probe,
                    server_config=ConnectionConfig(
                        flush_dispatch_ms=config.server_flush_dispatch_ms,
                        version=server_versions[0],
                        supported_versions=server_versions,
                        retry_required=retry_required,
                        ack_delay_exponent=stack.ack_delay_exponent,
                        max_ack_delay_ms=stack.max_ack_delay_ms,
                        handshake_stall_ms=handshake_stall_ms,
                        reset_after_packets=reset_after,
                    ),
                    metrics=registry,
                    timeout_ms=connect_timeout,
                    impairment=impairment,
                )
                sim_end_ms = exchange.client.simulator.now_ms
                if profiler is not None:
                    # In simulated mode this charges the exchange's sim
                    # duration to the open stack; in wall mode the phase
                    # measured itself and the charge is a no-op.
                    profiler.charge(sim_end_ms)
            self._domain_sim_ms += sim_end_ms
            if registry is not None:
                registry.counter("scan.connections").inc()
                outcome = "success" if exchange.success else "failure"
                registry.counter("scan.handshakes", outcome=outcome).inc()
                registry.histogram("scan.exchange_sim_ms").observe(sim_end_ms)
            if telemetry is not None:
                telemetry.tracer.event(
                    "scan.connection",
                    time_ms=sim_end_ms,
                    host=host,
                    status=exchange.status,
                    success=exchange.success,
                )
            kind = (
                classify_exchange(exchange)
                if classify_enabled and not exchange.success
                else None
            )
            if kind is None or kind not in RETRYABLE_KINDS:
                break
            if attempt + 1 >= max_attempts:
                break
            if domain_budget is not None and self._domain_sim_ms >= domain_budget:
                break
            # Deterministic exponential backoff charged to *simulated*
            # time — the scanner never sleeps on the wall clock.
            self._domain_sim_ms += retry.delay_ms(attempt, rng)
            attempt += 1
            if registry is not None:
                registry.counter("scan.retries").inc()
        if kind is not None and registry is not None:
            registry.counter("scan.failures", kind=kind.value).inc()

        with (
            profiler.phase("classify")
            if profiler is not None
            else nullcontext()
        ):
            observation = observe_recorder(exchange.recorder)
            stack_rtts = exchange.recorder.stack_rtts_ms()
            behaviour = classify_connection(observation, stack_rtts)
        qlog_doc = None
        if config.qlog_sample_rate and rng.random() < config.qlog_sample_rate:
            exchange.recorder.metadata = {
                "domain": domain.name,
                "ip": str(ip),
                "provider": provider_name,
            }
            with (
                profiler.phase("qlog")
                if profiler is not None
                else nullcontext()
            ):
                qlog_doc = recorder_to_qlog(exchange.recorder, title=host)
        return ConnectionRecord(
            domain=domain.name,
            host=host,
            ip=ip,
            ip_version=ip_version,
            provider_name=provider_name,
            server_header=exchange.server_header,
            status=exchange.status,
            success=exchange.success,
            behaviour=behaviour,
            observation=observation,
            stack_rtts_ms=stack_rtts,
            qlog=qlog_doc,
            negotiated_version=(
                exchange.client.version if exchange.success else None
            ),
            failure=kind,
        )
