"""Webserver stack profiles.

Each profile models one server software deployment the scanner can hit:
its HTTP ``server:`` header, its spin-bit deployment policy (the
decisive property for this study), and its response behaviour — think
time, page size, and whether the body is written in one go (static /
cached) or dribbles out of a dynamic backend.  The dribble gaps are the
end-host delays that inflate spin-bit RTT estimates (Section 5.2 /
Section 6 of the paper).

The catalog mirrors the stacks the paper identifies:

* **LiteSpeed** — the stack behind the overwhelming share of spin-bit
  support (>80 % of spinning connections), deployed by shared hosters;
* **imunify360-webshield** — a LiteSpeed-derived security proxy, ~7 %;
* **Cloudflare**, **Google (gws)**, **Fastly** — hyperscaler stacks
  that do not implement the spin bit (always zero);
* **nginx** — widespread QUIC support without the spin bit;
* a small tail of experimental stacks producing the paper's rare
  All-One and per-packet-greasing observations (Table 3).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.spin import SpinDeploymentConfig, SpinPolicy
from repro.quic.version import SUPPORTED_VERSIONS, QuicVersion
from repro.netsim.delays import (
    ConstantDelay,
    DelayModel,
    LogNormalDelay,
    UniformDelay,
)
from repro.web.http3 import ResponsePlan

__all__ = ["ServerStackProfile", "STACKS", "stack_by_name"]


@dataclass(frozen=True)
class ServerStackProfile:
    """Behavioural description of one webserver stack.

    ``dynamic_fraction`` of responses come from a dynamic backend:
    their body is written in chunks separated by ``dribble_gap`` delays
    instead of a single write.  ``redirect_probability`` is the chance
    the landing page answers with a redirect (the scanner follows up to
    three).
    """

    name: str
    server_header: str
    spin_config: SpinDeploymentConfig
    think_time: DelayModel = ConstantDelay(20.0)
    page_size: DelayModel = LogNormalDelay(median_ms=40_000.0, sigma=1.0)
    dynamic_fraction: float = 0.0
    dribble_gap: DelayModel = ConstantDelay(0.0)
    dribble_chunk_bytes: int = 11_000
    redirect_probability: float = 0.05
    min_page_bytes: int = 1_200
    max_page_bytes: int = 400_000
    #: QUIC versions the stack accepts, preference-first.  Stacks that
    #: lag behind the RFC answer the scanner's v1 Initial with Version
    #: Negotiation (the paper's scanner supports drafts 27-34 for them).
    supported_versions: tuple[QuicVersion, ...] = SUPPORTED_VERSIONS
    #: Probability that a connection must pass Retry address validation.
    retry_probability: float = 0.0
    #: Announced transport parameters (RFC 9000 Sec. 18): the exponent
    #: scaling ACK delay fields and the delayed-ack bound the peer's
    #: RFC 9002 estimator must honour.
    ack_delay_exponent: int = 3
    max_ack_delay_ms: float = 25.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.dynamic_fraction <= 1.0:
            raise ValueError("dynamic_fraction must be in [0, 1]")
        if not 0.0 <= self.retry_probability <= 1.0:
            raise ValueError("retry_probability must be in [0, 1]")
        if not self.supported_versions:
            raise ValueError("a stack must support at least one version")
        if not 0.0 <= self.redirect_probability < 1.0:
            raise ValueError("redirect_probability must be in [0, 1)")
        if self.min_page_bytes <= 0 or self.max_page_bytes < self.min_page_bytes:
            raise ValueError("invalid page size bounds")

    def sample_plan(self, rng: random.Random, redirect_target: str | None) -> ResponsePlan:
        """Draw one concrete :class:`ResponsePlan` for a request.

        ``redirect_target`` is the location to redirect to if this
        response is chosen to be a redirect (pass ``None`` to force a
        final response, e.g. at the scanner's redirect limit).
        """
        think = self.think_time.sample(rng)
        if redirect_target is not None and rng.random() < self.redirect_probability:
            return ResponsePlan(
                server_header=self.server_header,
                status=301,
                think_time_ms=think,
                write_gaps_ms=(0.0,),
                write_sizes=(600,),
                redirect_location=redirect_target,
            )
        size = int(self.page_size.sample(rng))
        size = max(self.min_page_bytes, min(size, self.max_page_bytes))
        if rng.random() < self.dynamic_fraction:
            chunk = self.dribble_chunk_bytes
            chunk_count = max(1, (size + chunk - 1) // chunk)
            gaps = [0.0] + [
                self.dribble_gap.sample(rng) for _ in range(chunk_count - 1)
            ]
            sizes = [min(chunk, size - index * chunk) for index in range(chunk_count)]
            return ResponsePlan(
                server_header=self.server_header,
                think_time_ms=think,
                write_gaps_ms=tuple(gaps),
                write_sizes=tuple(sizes),
            )
        return ResponsePlan(
            server_header=self.server_header,
            think_time_ms=think,
            write_gaps_ms=(0.0,),
            write_sizes=(size,),
        )


def _spin(disable_one_in_n: int = 16) -> SpinDeploymentConfig:
    return SpinDeploymentConfig(
        base_policy=SpinPolicy.SPIN,
        disable_one_in_n=disable_one_in_n,
        disabled_policy=SpinPolicy.ALWAYS_ZERO,
    )


_NO_SPIN = SpinDeploymentConfig(base_policy=SpinPolicy.ALWAYS_ZERO)

#: The stack catalog, keyed by name.
STACKS: dict[str, ServerStackProfile] = {
    stack.name: stack
    for stack in (
        # Shared-hosting LiteSpeed: spins, moderate think time, and a
        # large dynamic share (WordPress/PHP) whose output dribbles.
        ServerStackProfile(
            name="litespeed",
            server_header="LiteSpeed",
            spin_config=_spin(16),
            think_time=LogNormalDelay(median_ms=55.0, sigma=0.9),
            page_size=LogNormalDelay(median_ms=55_000.0, sigma=1.1),
            dynamic_fraction=0.76,
            dribble_gap=LogNormalDelay(median_ms=300.0, sigma=0.75),
            redirect_probability=0.06,
        ),
        ServerStackProfile(
            name="imunify360",
            server_header="imunify360-webshield/1.21",
            spin_config=_spin(16),
            think_time=LogNormalDelay(median_ms=65.0, sigma=0.9),
            page_size=LogNormalDelay(median_ms=45_000.0, sigma=1.0),
            dynamic_fraction=0.80,
            dribble_gap=LogNormalDelay(median_ms=320.0, sigma=0.75),
            redirect_probability=0.05,
        ),
        # Unupgraded LiteSpeed installations that still speak only the
        # draft versions the paper's scanner was extended for.
        ServerStackProfile(
            name="litespeed-draft",
            server_header="LiteSpeed",
            spin_config=_spin(16),
            think_time=LogNormalDelay(median_ms=60.0, sigma=0.9),
            page_size=LogNormalDelay(median_ms=50_000.0, sigma=1.1),
            dynamic_fraction=0.70,
            dribble_gap=LogNormalDelay(median_ms=300.0, sigma=0.75),
            supported_versions=(QuicVersion.DRAFT_29, QuicVersion.DRAFT_27),
        ),
        # A niche stack that spins and discloses itself as Caddy.
        ServerStackProfile(
            name="caddy-spin",
            server_header="Caddy",
            spin_config=_spin(16),
            ack_delay_exponent=8,
            max_ack_delay_ms=25.0,
            think_time=LogNormalDelay(median_ms=25.0, sigma=0.7),
            page_size=LogNormalDelay(median_ms=30_000.0, sigma=1.0),
            dynamic_fraction=0.35,
            dribble_gap=LogNormalDelay(median_ms=80.0, sigma=0.9),
        ),
        # Hyperscaler edges: fast, cached, no spin bit.
        ServerStackProfile(
            name="cloudflare",
            server_header="cloudflare",
            spin_config=_NO_SPIN,
            think_time=LogNormalDelay(median_ms=8.0, sigma=0.6),
            page_size=LogNormalDelay(median_ms=35_000.0, sigma=1.0),
            redirect_probability=0.08,
            retry_probability=0.03,
        ),
        ServerStackProfile(
            name="gws",
            server_header="gws",
            spin_config=_NO_SPIN,
            think_time=LogNormalDelay(median_ms=10.0, sigma=0.6),
            page_size=LogNormalDelay(median_ms=45_000.0, sigma=0.8),
            redirect_probability=0.10,
            retry_probability=0.25,
        ),
        # Google's rare spin-enabled experiment population (rank 54 in
        # Table 2 with 0.11 % of its connections spinning).
        ServerStackProfile(
            name="gws-spin",
            server_header="gws",
            spin_config=_spin(16),
            think_time=LogNormalDelay(median_ms=10.0, sigma=0.6),
            page_size=LogNormalDelay(median_ms=45_000.0, sigma=0.8),
        ),
        ServerStackProfile(
            name="fastly",
            server_header="Fastly",
            spin_config=_NO_SPIN,
            think_time=LogNormalDelay(median_ms=7.0, sigma=0.6),
            page_size=LogNormalDelay(median_ms=30_000.0, sigma=1.0),
        ),
        ServerStackProfile(
            name="nginx",
            server_header="nginx",
            spin_config=_NO_SPIN,
            think_time=LogNormalDelay(median_ms=35.0, sigma=0.9),
            page_size=LogNormalDelay(median_ms=50_000.0, sigma=1.1),
            dynamic_fraction=0.45,
            dribble_gap=LogNormalDelay(median_ms=100.0, sigma=1.0),
        ),
        # The rare All-One observation of Table 3: a stack that fixes
        # the bit at one instead of zero.
        ServerStackProfile(
            name="allone-appliance",
            server_header="BigIP-ish/0.9",
            spin_config=SpinDeploymentConfig(base_policy=SpinPolicy.ALWAYS_ONE),
            think_time=LogNormalDelay(median_ms=30.0, sigma=0.8),
        ),
        # Per-packet greasing (RFC 9312's recommended disable), rare in
        # the wild: caught by the paper's grease filter.
        ServerStackProfile(
            name="grease-packet",
            server_header="quiche-experimental",
            spin_config=SpinDeploymentConfig(base_policy=SpinPolicy.GREASE_PER_PACKET),
            think_time=LogNormalDelay(median_ms=30.0, sigma=0.8),
        ),
        # Per-connection greasing: indistinguishable from a constant
        # value on any single connection.
        ServerStackProfile(
            name="grease-connection",
            server_header="mvfst-like",
            spin_config=SpinDeploymentConfig(
                base_policy=SpinPolicy.GREASE_PER_CONNECTION
            ),
            think_time=LogNormalDelay(median_ms=30.0, sigma=0.8),
        ),
    )
}


def stack_by_name(name: str) -> ServerStackProfile:
    """Look up a stack profile; raises :class:`KeyError` with context."""
    try:
        return STACKS[name]
    except KeyError:
        raise KeyError(
            f"unknown stack {name!r}; known: {sorted(STACKS)}"
        ) from None
