"""HTTP/3-style request/response application layer.

The paper's scanner issues one HTTP/3 GET for the landing page of each
domain.  This module drives a :class:`repro.quic.QuicEndpoint` pair with
exactly that workload: the client sends a GET once handshake keys are
available, the server produces the response according to a
:class:`ResponsePlan` — an initial *think time* plus a sequence of
timed body writes, which is where end-host delay enters the spin-bit
signal — and the client records everything in a qlog trace.

Responses use a compact textual header block (``HTTP/3 <status>``,
``server:``, ``location:`` …) so that webserver attribution and redirect
following parse real bytes off the stream, as zgrab2 does.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro._util.rng import fork_rng
from repro.core.spin import EndpointRole, SpinPolicy
from repro.netsim.events import Simulator
from repro.netsim.path import PathProfile, duplex_paths
from repro.qlog.recorder import TraceRecorder
from repro.quic.connection import ConnectionConfig, QuicEndpoint

__all__ = [
    "ExchangeHandle",
    "ExchangeResult",
    "ResponsePlan",
    "SessionResult",
    "build_exchange",
    "run_exchange",
    "run_session",
]

#: HTTP/3 control overhead is ignored; stream 0 carries the request.
_REQUEST_STREAM_ID = 0

_USER_AGENT = "repro-spinbit-scanner/1.0 (research; opt-out via abuse@)"


@dataclass(frozen=True)
class ResponsePlan:
    """A server's answer to one GET.

    ``think_time_ms`` is the delay between receiving the full request
    and the first response byte (request processing: PHP, database,
    cache lookups).  ``write_gaps_ms`` / ``write_sizes`` describe the
    subsequent body generation: after each gap the server hands the next
    chunk to the transport.  A static file is one instantaneous write; a
    slow dynamic page dribbles chunks hundreds of milliseconds apart —
    the paper's primary suspected source of spin-bit RTT inflation.
    """

    server_header: str
    status: int = 200
    think_time_ms: float = 30.0
    write_gaps_ms: tuple[float, ...] = (0.0,)
    write_sizes: tuple[int, ...] = (16_000,)
    redirect_location: str | None = None

    def __post_init__(self) -> None:
        if len(self.write_gaps_ms) != len(self.write_sizes):
            raise ValueError("write_gaps_ms and write_sizes must align")
        if not self.write_sizes:
            raise ValueError("a response needs at least one write")
        if self.think_time_ms < 0 or any(g < 0 for g in self.write_gaps_ms):
            raise ValueError("delays must be non-negative")
        if self.status in (301, 302, 307, 308) and not self.redirect_location:
            raise ValueError("a redirect response needs a location")

    @property
    def is_redirect(self) -> bool:
        return self.redirect_location is not None

    def header_block(self) -> bytes:
        """The textual response head preceding the body bytes."""
        total = sum(self.write_sizes)
        lines = [
            f"HTTP/3 {self.status}",
            f"server: {self.server_header}",
            f"content-length: {total}",
        ]
        if self.redirect_location:
            lines.append(f"location: {self.redirect_location}")
        return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii")


@dataclass
class ExchangeResult:
    """Outcome of one simulated connection."""

    success: bool
    failure_reason: str | None
    recorder: TraceRecorder
    status: int | None = None
    server_header: str | None = None
    redirect_location: str | None = None
    body_bytes: int = 0
    client: QuicEndpoint | None = None
    server: QuicEndpoint | None = None
    #: The exchange was cut off by a caller-imposed timeout budget
    #: (see ``run_exchange``'s ``timeout_ms``), not by its own events.
    timed_out: bool = False


class _ServerApp:
    """Server-side request handling: one :class:`ResponsePlan` per
    request stream (stream IDs 0, 4, 8, ... for sequential requests)."""

    def __init__(
        self,
        simulator: Simulator,
        endpoint: QuicEndpoint,
        plans: list[ResponsePlan],
    ):
        self.simulator = simulator
        self.endpoint = endpoint
        self.plans = plans
        self._requests: dict[int, bytearray] = {}
        self._responded: set[int] = set()
        endpoint.on_stream_data = self._on_stream_data

    def _on_stream_data(self, stream_id: int, data: bytes, fin: bool) -> None:
        if stream_id % 4 != 0 or stream_id in self._responded:
            return
        index = stream_id // 4
        if index >= len(self.plans):
            return
        self._requests.setdefault(stream_id, bytearray()).extend(data)
        if fin:
            self._responded.add(stream_id)
            plan = self.plans[index]
            self.simulator.schedule(
                plan.think_time_ms, lambda: self._start_response(stream_id, plan)
            )

    def _start_response(self, stream_id: int, plan: ResponsePlan) -> None:
        if self.endpoint.closed:
            return
        self._write(stream_id, plan, 0, plan.header_block())

    def _write(self, stream_id: int, plan: ResponsePlan, index: int, prefix: bytes) -> None:
        if self.endpoint.closed:
            return
        gap = plan.write_gaps_ms[index]
        chunk = prefix + b"x" * plan.write_sizes[index]
        last = index == len(plan.write_sizes) - 1

        def emit() -> None:
            if self.endpoint.closed:
                return
            self.endpoint.send_stream(stream_id, chunk, fin=last)
            if not last:
                self._write(stream_id, plan, index + 1, b"")

        if gap > 0:
            self.simulator.schedule(gap, emit)
        else:
            emit()


class _ClientApp:
    """Client-side session logic: sequential GETs, then teardown.

    One request per path entry; request ``k`` uses stream ``4 * k`` and
    is sent ``think_gaps_ms[k - 1]`` after response ``k - 1`` completed
    (a simple browsing-session model).  The single-fetch scan uses one
    path and no gaps.
    """

    def __init__(
        self,
        simulator: Simulator,
        endpoint: QuicEndpoint,
        host: str,
        paths: list[str] | None = None,
        think_gaps_ms: list[float] | None = None,
        final_probe: bool = True,
    ):
        self.simulator = simulator
        self.endpoint = endpoint
        self.host = host
        self.final_probe = final_probe
        self.paths = paths or ["/"]
        self.think_gaps_ms = think_gaps_ms or [0.0] * (len(self.paths) - 1)
        if len(self.think_gaps_ms) < len(self.paths) - 1:
            raise ValueError("need a think gap for every follow-up request")
        self.responses: dict[int, bytearray] = {}
        self._next_request = 0
        self.completed_requests = 0
        self.done = False
        endpoint.on_handshake_keys = self._send_next_request
        endpoint.on_stream_data = self._on_stream_data

    @property
    def response(self) -> bytearray:
        """The first response's bytes (single-fetch compatibility)."""
        return self.responses.get(0, bytearray())

    def _send_next_request(self) -> None:
        if self.endpoint.closed:
            return
        index = self._next_request
        self._next_request += 1
        request = (
            f"GET {self.paths[index]} HTTP/3\r\n"
            f"host: {self.host}\r\n"
            f"user-agent: {_USER_AGENT}\r\n\r\n"
        ).encode("ascii")
        self.endpoint.send_stream(4 * index, request, fin=True)

    def _on_stream_data(self, stream_id: int, data: bytes, fin: bool) -> None:
        if stream_id % 4 != 0:
            return
        self.responses.setdefault(stream_id, bytearray()).extend(data)
        if not fin:
            return
        self.completed_requests += 1
        if self._next_request < len(self.paths):
            gap = self.think_gaps_ms[self._next_request - 1]
            if gap > 0:
                self.simulator.schedule(gap, self._send_next_request)
            else:
                self._send_next_request()
        elif not self.done:
            self.done = True
            if not self.final_probe:
                self._close()
                return
            # A final keep-alive probe before teardown (quic-go behaves
            # alike): the server's acknowledgment reflects the client's
            # latest spin value, so a spinning server is reliably
            # detectable even on single-flight responses.  Two probe
            # packets cross the peer's ack-eliciting threshold, so the
            # acknowledgment returns without delayed-ack inflation.
            self.endpoint.on_ping_acked = self._close
            self.endpoint.send_ping()
            self.endpoint.send_ping()

    def _close(self) -> None:
        self.endpoint.close()

    def parse_response(self) -> tuple[int | None, str | None, str | None, int]:
        """Extract (status, server header, redirect location, body size)."""
        raw = bytes(self.response)
        head_end = raw.find(b"\r\n\r\n")
        if head_end < 0:
            return None, None, None, 0
        head = raw[:head_end].decode("ascii", errors="replace")
        body_bytes = len(raw) - head_end - 4
        status: int | None = None
        server: str | None = None
        location: str | None = None
        for line_number, line in enumerate(head.split("\r\n")):
            if line_number == 0:
                parts = line.split()
                if len(parts) >= 2 and parts[1].isdigit():
                    status = int(parts[1])
                continue
            name, _, value = line.partition(":")
            name = name.strip().lower()
            value = value.strip()
            if name == "server":
                server = value
            elif name == "location":
                location = value
        return status, server, location, body_bytes


@dataclass
class ExchangeHandle:
    """Live handles of one connection wired into a simulator.

    Returned by :func:`build_exchange` before any event has run:
    callers that own the simulator (the scanner's per-connection
    :func:`run_exchange`, or the monitor's traffic multiplexer driving
    hundreds of connections on one shared event queue) keep whichever
    handles they need and let the rest be garbage-collected once the
    connection's events drain.
    """

    host: str
    client: QuicEndpoint
    server: QuicEndpoint
    uplink: "Path"
    downlink: "Path"
    client_app: _ClientApp
    recorder: TraceRecorder | None

    @property
    def done(self) -> bool:
        """Whether the client session completed all its requests."""
        return self.client_app.done


def build_exchange(
    simulator: Simulator,
    host: str,
    plans: list[ResponsePlan],
    client_spin_policy: SpinPolicy,
    server_spin_policy: SpinPolicy,
    uplink_profile: PathProfile,
    downlink_profile: PathProfile,
    rng: random.Random,
    client_config: ConnectionConfig | None = None,
    server_config: ConnectionConfig | None = None,
    paths: list[str] | None = None,
    think_gaps_ms: list[float] | None = None,
    recorder: TraceRecorder | None = None,
    final_probe: bool = True,
    wire_observer=None,
    start_ms: float | None = None,
    metrics=None,
) -> ExchangeHandle:
    """Wire one HTTP/3 connection into ``simulator`` without running it.

    ``plans[k]`` answers request ``k`` on ``paths[k]`` (default: one GET
    of ``/``).  With ``start_ms`` set, the client's ``connect()`` is
    scheduled at that absolute simulated time instead of being invoked
    immediately — this is how the traffic multiplexer staggers many
    concurrent connections on one shared simulator.  ``recorder`` is
    optional: a monitoring tap that observes from the path does not need
    the client-side qlog trace.

    RNG stream derivation (client / server / paths forks, in that
    order) is identical to the historical in-:func:`run_exchange`
    setup, so single-connection results are bit-identical.
    """
    client_config = client_config or ConnectionConfig()
    server_config = server_config or ConnectionConfig()

    client = QuicEndpoint(
        simulator,
        EndpointRole.CLIENT,
        client_config,
        client_spin_policy,
        fork_rng(rng, "client"),
        recorder=recorder,
        metrics=metrics,
    )
    server = QuicEndpoint(
        simulator,
        EndpointRole.SERVER,
        server_config,
        server_spin_policy,
        fork_rng(rng, "server"),
        metrics=metrics,
    )

    uplink, downlink = duplex_paths(
        simulator,
        uplink_profile,
        downlink_profile,
        client.receive_datagram,
        server.receive_datagram,
        fork_rng(rng, "paths"),
    )
    client.attach_transport(uplink.send)
    server.attach_transport(downlink.send)

    if wire_observer is not None:
        from repro.core.wire_observer import tap_paths

        tap_paths(simulator, uplink, downlink, wire_observer)

    client_app = _ClientApp(
        simulator,
        client,
        host,
        paths or ["/"] * len(plans),
        think_gaps_ms,
        final_probe=final_probe,
    )
    _ServerApp(simulator, server, plans)

    if start_ms is None:
        client.connect()
    else:
        simulator.schedule_at(start_ms, client.connect)
    return ExchangeHandle(
        host=host,
        client=client,
        server=server,
        uplink=uplink,
        downlink=downlink,
        client_app=client_app,
        recorder=recorder,
    )


def run_exchange(
    host: str,
    plan: ResponsePlan,
    client_spin_policy: SpinPolicy,
    server_spin_policy: SpinPolicy,
    uplink_profile: PathProfile,
    downlink_profile: PathProfile,
    rng: random.Random,
    client_config: ConnectionConfig | None = None,
    server_config: ConnectionConfig | None = None,
    path: str = "/",
    max_events: int = 200_000,
    wire_observer=None,
    final_probe: bool = True,
    metrics=None,
    timeout_ms: float | None = None,
    impairment=None,
) -> ExchangeResult:
    """Simulate one complete HTTP/3 fetch and return its trace.

    Creates a fresh simulator, endpoint pair, and duplex path; runs until
    the event cascade drains.  The returned recorder is the client-side
    qlog-equivalent trace the analysis pipeline consumes.

    ``wire_observer`` optionally installs an on-path
    :class:`repro.core.wire_observer.WireObserver` tap that sees every
    raw datagram of the connection (the network operator's view).

    ``timeout_ms`` imposes a simulated-time budget: if the client is
    still working at the deadline the exchange is abandoned and the
    result carries ``timed_out=True``.  ``impairment`` installs a
    fault-injection drop predicate (:mod:`repro.faults.spec`) on both
    path directions.  Both default to off, leaving the event cascade —
    and therefore every artifact byte — exactly as without them.
    """
    simulator = Simulator(metrics=metrics)
    recorder = TraceRecorder(vantage_point="client")
    handle = build_exchange(
        simulator,
        host,
        [plan],
        client_spin_policy,
        server_spin_policy,
        uplink_profile,
        downlink_profile,
        rng,
        client_config=client_config,
        server_config=server_config,
        paths=[path],
        recorder=recorder,
        final_probe=final_probe,
        wire_observer=wire_observer,
        metrics=metrics,
    )
    if impairment is not None:
        handle.uplink.install_impairment(impairment)
        handle.downlink.install_impairment(impairment)

    timed_out = False
    if timeout_ms is None:
        simulator.run(max_events=max_events)
    else:
        simulator.run_until(timeout_ms, max_events=max_events, settle=False)
        finished = (
            handle.client_app.done
            or handle.client.closed
            or handle.client.failed is not None
        )
        if finished or not simulator.pending_events:
            # The connection resolved within budget; stale events past
            # the deadline (queued PTO timers of a closed endpoint) are
            # harmless to drain and keep the cascade byte-identical to
            # an unbudgeted run.
            simulator.run(max_events=max_events)
        else:
            timed_out = True

    client, server, client_app = handle.client, handle.server, handle.client_app
    recorder.odcid_hex = client.local_cid.hex
    status, server_header, location, body_bytes = client_app.parse_response()
    success = client_app.done and client.failed is None
    failure = None
    if not success:
        if client.failed is not None:
            failure = client.failed
        elif timed_out:
            failure = "timeout budget exceeded"
        elif client.peer_close_error_code:
            failure = f"closed by peer (error 0x{client.peer_close_error_code:x})"
        else:
            failure = server.failed or "incomplete response"
    return ExchangeResult(
        success=success,
        failure_reason=failure,
        recorder=recorder,
        status=status,
        server_header=server_header,
        redirect_location=location,
        body_bytes=body_bytes,
        client=client,
        server=server,
        timed_out=timed_out,
    )


@dataclass
class SessionResult:
    """Outcome of a multi-request session on one connection."""

    success: bool
    failure_reason: str | None
    recorder: TraceRecorder
    completed_requests: int
    total_body_bytes: int
    client: QuicEndpoint | None = None
    server: QuicEndpoint | None = None


def run_session(
    host: str,
    plans: list[ResponsePlan],
    client_spin_policy: SpinPolicy,
    server_spin_policy: SpinPolicy,
    uplink_profile: PathProfile,
    downlink_profile: PathProfile,
    rng: random.Random,
    think_gaps_ms: list[float] | None = None,
    client_config: ConnectionConfig | None = None,
    server_config: ConnectionConfig | None = None,
    max_events: int = 400_000,
    wire_observer=None,
) -> SessionResult:
    """Simulate a browsing session: sequential requests, one connection.

    ``plans[k]`` answers request ``k``; ``think_gaps_ms[k]`` is the
    client think time between response ``k`` and request ``k + 1``.
    Longer sessions expose the spin bit to more steady-state spin
    cycles — the "longer connections" accuracy question the paper's
    Section 6 raises.
    """
    simulator = Simulator()
    recorder = TraceRecorder(vantage_point="client")
    handle = build_exchange(
        simulator,
        host,
        plans,
        client_spin_policy,
        server_spin_policy,
        uplink_profile,
        downlink_profile,
        rng,
        client_config=client_config,
        server_config=server_config,
        paths=[f"/page-{index}" for index in range(len(plans))],
        think_gaps_ms=think_gaps_ms,
        recorder=recorder,
        wire_observer=wire_observer,
    )
    simulator.run(max_events=max_events)

    client, server, client_app = handle.client, handle.server, handle.client_app
    recorder.odcid_hex = client.local_cid.hex
    success = client_app.done and client.failed is None
    total_bytes = sum(len(body) for body in client_app.responses.values())
    return SessionResult(
        success=success,
        failure_reason=None if success else (client.failed or "incomplete session"),
        recorder=recorder,
        completed_requests=client_app.completed_requests,
        total_body_bytes=total_bytes,
        client=client,
        server=server,
    )
