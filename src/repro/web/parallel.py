"""Parallel sharded scan engine.

The paper's measurement covers >200 M domains per week; at that scale a
single-core scanner is the bottleneck of the whole pipeline.  Scanning
is embarrassingly parallel, though: every domain's randomness is
independently derived from ``(population seed, week, ip_version,
domain, probe)`` (see :mod:`repro._util.rng`), so no state flows
between domains and the target list can be sharded freely.

This module fans domain shards out over a process pool and merges the
per-shard :class:`~repro.web.scanner.DomainScanResult` lists back in
original domain order.  Because each domain's stream depends only on
the derivation labels, the merged dataset is **bit-identical** to the
sequential scan — same classifications, same RTT series, same sampled
qlogs — which the test suite verifies record by record.

Workers ship back only the reduced per-connection records (never
recorders or full traces), so IPC volume stays proportional to the
artifact size, exactly like the sequential path's memory profile.
"""

from __future__ import annotations

import os
import weakref
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.internet.population import DomainRecord, Population
    from repro.web.scanner import DomainScanResult, ScanConfig, Scanner

__all__ = ["ParallelScanConfig", "scan_sharded"]


@dataclass(frozen=True)
class ParallelScanConfig:
    """Worker-pool shape of a scan.

    ``workers=1`` (the default) runs fully in-process — no pool, no
    pickling, zero overhead — so tests and small scans behave exactly
    like the pre-parallel scanner.  ``chunk_size=None`` picks a shard
    size that gives each worker several shards for tail balancing.

    Even with ``workers > 1`` the engine falls back to the in-process
    path when a pool cannot help: a single pending shard, or fewer
    usable cores than two (a pool on one core only adds pickling on top
    of the same serial execution).  ``force_pool=True`` disables the
    fallback — tests use it to exercise the real pool on any machine.
    """

    workers: int = 1
    chunk_size: int | None = None
    force_pool: bool = False

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValueError("chunk_size must be >= 1 when given")

    @classmethod
    def auto(cls) -> "ParallelScanConfig":
        """One worker per available core."""
        return cls(workers=max(1, os.cpu_count() or 1))

    def resolve_chunk_size(self, n_targets: int) -> int:
        """The shard size used for ``n_targets`` domains.

        Aims for ~4 shards per worker (so a slow shard cannot stall the
        pool at the tail) while capping shards at 512 domains to keep
        per-result IPC messages bounded.
        """
        if self.chunk_size is not None:
            return self.chunk_size
        balanced = -(-n_targets // (self.workers * 4))
        return max(1, min(512, balanced))


# ----------------------------------------------------------------------
# Worker side.  The population and scan config are shipped once per
# worker via the pool initializer; each task then carries only its
# domain shard, so task payloads stay small.
# ----------------------------------------------------------------------

_WORKER_SCANNER: "Scanner | None" = None
_WORKER_TELEMETRY_ENABLED = False


def _init_worker(
    population: "Population",
    scan_config: "ScanConfig",
    telemetry_enabled: bool = False,
) -> None:
    global _WORKER_SCANNER, _WORKER_TELEMETRY_ENABLED
    from repro.web.scanner import Scanner

    _WORKER_SCANNER = Scanner(population, scan_config)
    _WORKER_TELEMETRY_ENABLED = telemetry_enabled


def _scan_shard(task: tuple[int, Sequence["DomainRecord"], str, int, int]):
    """Scan one shard; ships back results plus the shard's telemetry.

    When telemetry is enabled each shard records into a *fresh*
    :class:`~repro.telemetry.Telemetry` bundle (registry + trace
    events); the parent folds the bundles back in shard order, which
    reproduces the sequential emission order exactly.
    """
    shard_index, domains, week_label, ip_version, probe = task
    scanner = _WORKER_SCANNER
    assert scanner is not None, "worker pool not initialized"
    if _WORKER_TELEMETRY_ENABLED:
        from repro.telemetry import Telemetry

        scanner.telemetry = Telemetry()
    results = scanner.scan_sequential(domains, week_label, ip_version, probe)
    if scanner.telemetry is not None:
        shard_telemetry = scanner.telemetry
        scanner.telemetry = None
        return (
            shard_index,
            results,
            shard_telemetry.registry,
            shard_telemetry.tracer.events,
            shard_telemetry.tracer.diag_events,
            # Span records are path-relative to the shard; the parent's
            # absorb re-roots them under its open scan span.
            shard_telemetry.spans.records,
            shard_telemetry.spans.diag_records,
        )
    return shard_index, results, None, (), (), (), ()


def _pool_for(
    scanner: "Scanner", workers: int, telemetry_enabled: bool
) -> ProcessPoolExecutor:
    """The scanner's persistent worker pool, (re)built on shape change.

    Pool start-up (process forks + population pickling through the
    initializer) dominated short scans when every ``scan()`` call built
    a fresh executor; campaigns run many weekly scans over one scanner,
    so the pool is cached on the scanner and reused.  A finalizer tears
    it down when the scanner is collected.
    """
    key = (workers, telemetry_enabled)
    cached = getattr(scanner, "_shard_pool", None)
    if cached is not None:
        if cached[0] == key:
            return cached[1]
        cached[1].shutdown(wait=False)
    pool = ProcessPoolExecutor(
        max_workers=workers,
        initializer=_init_worker,
        initargs=(scanner.population, scanner.config, telemetry_enabled),
    )
    scanner._shard_pool = (key, pool)
    weakref.finalize(scanner, pool.shutdown, wait=False)
    return pool


def _drop_pool(scanner: "Scanner") -> None:
    cached = getattr(scanner, "_shard_pool", None)
    if cached is not None:
        scanner._shard_pool = None
        cached[1].shutdown(wait=False)


def scan_sharded(
    scanner: "Scanner",
    targets: Sequence["DomainRecord"],
    week_label: str,
    ip_version: int,
    probe: int,
    parallel: ParallelScanConfig,
    checkpoint=None,
) -> list["DomainScanResult"]:
    """Scan ``targets`` over a worker pool; results in original order.

    The deterministic merge is trivial: shards are indexed at submit
    time and reassembled by index, so the concatenation equals the
    sequential iteration order regardless of completion order.

    With a ``checkpoint`` (:class:`repro.faults.CheckpointStore`),
    shards already on disk are loaded instead of scanned and fresh
    shards are saved as they complete; the shard size then comes from
    the store (fixed at campaign start) so a resume may use a different
    worker count and still merge bit-identically.  Loaded shards
    contribute no telemetry — their events belong to the run that
    produced them.

    When a pool cannot win — one pending shard, or at most one usable
    core — the shards run in-process instead (identical results *and*
    identical telemetry bytes, since the same per-shard bundles are
    produced in the same order).  ``parallel.force_pool`` overrides the
    fallback.
    """
    chunk = (
        checkpoint.chunk
        if checkpoint is not None
        else parallel.resolve_chunk_size(len(targets))
    )
    tasks = [
        (shard_index, targets[start : start + chunk], week_label, ip_version, probe)
        for shard_index, start in enumerate(range(0, len(targets), chunk))
    ]
    telemetry = scanner.telemetry
    merged: list[list["DomainScanResult"] | None] = [None] * len(tasks)
    shard_telemetry: list[tuple | None] = [None] * len(tasks)
    pending = []
    if checkpoint is not None:
        for task in tasks:
            loaded = checkpoint.load_shard(task[0], task[1])
            if loaded is None:
                pending.append(task)
            else:
                merged[task[0]] = loaded
    else:
        pending = tasks
    usable = min(parallel.workers, os.cpu_count() or 1)
    use_pool = parallel.force_pool or (usable > 1 and len(pending) > 1)
    if pending and not use_pool:
        _run_shards_inline(scanner, pending, merged, shard_telemetry, checkpoint)
    elif pending:
        workers = parallel.workers if parallel.force_pool else usable
        pool = _pool_for(scanner, workers, telemetry is not None)
        # chunksize batches several shard tasks per IPC message, cutting
        # the per-task pickling round trips that dominated small shards.
        chunksize = max(1, len(pending) // (workers * 4))
        try:
            for (
                shard_index,
                results,
                registry,
                events,
                diag_events,
                spans,
                diag_spans,
            ) in pool.map(_scan_shard, pending, chunksize=chunksize):
                merged[shard_index] = results
                if checkpoint is not None:
                    checkpoint.save_shard(shard_index, results)
                if registry is not None:
                    shard_telemetry[shard_index] = (
                        registry,
                        events,
                        diag_events,
                        spans,
                        diag_spans,
                    )
        except Exception:
            # A broken pool must not poison later scans on this scanner.
            _drop_pool(scanner)
            raise
    if telemetry is not None:
        # Absorb in shard order — completion order must not leak into
        # the trace — and note the shard layout as diagnostics only.
        for shard_index, shard in enumerate(shard_telemetry):
            if shard is None:
                continue
            registry, events, diag_events, spans, diag_spans = shard
            telemetry.absorb_shard(
                registry, events, diag_events, spans, diag_spans
            )
            telemetry.tracer.event(
                "scan.shard",
                diag=True,
                shard=shard_index,
                domains=len(tasks[shard_index][1]),
            )
            # The shard's existence is a sharding artifact, so its span
            # lives in the diag stream, never the deterministic one.
            telemetry.spans.span(
                f"shard:{shard_index}",
                diag=True,
                domains=len(tasks[shard_index][1]),
            ).end()
    return [result for shard in merged for result in shard]  # type: ignore[union-attr]


def _run_shards_inline(
    scanner: "Scanner",
    pending: list,
    merged: list,
    shard_telemetry: list,
    checkpoint,
) -> None:
    """Run pending shards in-process, mimicking the pool's semantics.

    Results are trivially identical (per-domain randomness is derived,
    not threaded); telemetry matches byte-for-byte because each shard
    still records into a fresh bundle, absorbed in shard order by the
    caller — exactly what the pool workers do.
    """
    telemetry = scanner.telemetry
    try:
        for task in pending:
            shard_index, domains, week_label, ip_version, probe = task
            if telemetry is not None:
                from repro.telemetry import Telemetry

                scanner.telemetry = Telemetry()
            results = scanner.scan_sequential(domains, week_label, ip_version, probe)
            merged[shard_index] = results
            if checkpoint is not None:
                checkpoint.save_shard(shard_index, results)
            if telemetry is not None:
                bundle = scanner.telemetry
                shard_telemetry[shard_index] = (
                    bundle.registry,
                    bundle.tracer.events,
                    bundle.tracer.diag_events,
                    bundle.spans.records,
                    bundle.spans.diag_records,
                )
    finally:
        scanner.telemetry = telemetry
