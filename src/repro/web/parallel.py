"""Parallel sharded scan engine.

The paper's measurement covers >200 M domains per week; at that scale a
single-core scanner is the bottleneck of the whole pipeline.  Scanning
is embarrassingly parallel, though: every domain's randomness is
independently derived from ``(population seed, week, ip_version,
domain, probe)`` (see :mod:`repro._util.rng`), so no state flows
between domains and the target list can be sharded freely.

This module fans domain shards out over a process pool and merges the
per-shard :class:`~repro.web.scanner.DomainScanResult` lists back in
original domain order.  Because each domain's stream depends only on
the derivation labels, the merged dataset is **bit-identical** to the
sequential scan — same classifications, same RTT series, same sampled
qlogs — which the test suite verifies record by record.

Workers ship back only the reduced per-connection records (never
recorders or full traces), so IPC volume stays proportional to the
artifact size, exactly like the sequential path's memory profile.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.internet.population import DomainRecord, Population
    from repro.web.scanner import DomainScanResult, ScanConfig, Scanner

__all__ = ["ParallelScanConfig", "scan_sharded"]


@dataclass(frozen=True)
class ParallelScanConfig:
    """Worker-pool shape of a scan.

    ``workers=1`` (the default) runs fully in-process — no pool, no
    pickling, zero overhead — so tests and small scans behave exactly
    like the pre-parallel scanner.  ``chunk_size=None`` picks a shard
    size that gives each worker several shards for tail balancing.
    """

    workers: int = 1
    chunk_size: int | None = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValueError("chunk_size must be >= 1 when given")

    @classmethod
    def auto(cls) -> "ParallelScanConfig":
        """One worker per available core."""
        return cls(workers=max(1, os.cpu_count() or 1))

    def resolve_chunk_size(self, n_targets: int) -> int:
        """The shard size used for ``n_targets`` domains.

        Aims for ~4 shards per worker (so a slow shard cannot stall the
        pool at the tail) while capping shards at 512 domains to keep
        per-result IPC messages bounded.
        """
        if self.chunk_size is not None:
            return self.chunk_size
        balanced = -(-n_targets // (self.workers * 4))
        return max(1, min(512, balanced))


# ----------------------------------------------------------------------
# Worker side.  The population and scan config are shipped once per
# worker via the pool initializer; each task then carries only its
# domain shard, so task payloads stay small.
# ----------------------------------------------------------------------

_WORKER_SCANNER: "Scanner | None" = None
_WORKER_TELEMETRY_ENABLED = False


def _init_worker(
    population: "Population",
    scan_config: "ScanConfig",
    telemetry_enabled: bool = False,
) -> None:
    global _WORKER_SCANNER, _WORKER_TELEMETRY_ENABLED
    from repro.web.scanner import Scanner

    _WORKER_SCANNER = Scanner(population, scan_config)
    _WORKER_TELEMETRY_ENABLED = telemetry_enabled


def _scan_shard(task: tuple[int, Sequence["DomainRecord"], str, int, int]):
    """Scan one shard; ships back results plus the shard's telemetry.

    When telemetry is enabled each shard records into a *fresh*
    :class:`~repro.telemetry.Telemetry` bundle (registry + trace
    events); the parent folds the bundles back in shard order, which
    reproduces the sequential emission order exactly.
    """
    shard_index, domains, week_label, ip_version, probe = task
    scanner = _WORKER_SCANNER
    assert scanner is not None, "worker pool not initialized"
    if _WORKER_TELEMETRY_ENABLED:
        from repro.telemetry import Telemetry

        scanner.telemetry = Telemetry()
    results = scanner.scan_sequential(domains, week_label, ip_version, probe)
    if scanner.telemetry is not None:
        shard_telemetry = scanner.telemetry
        scanner.telemetry = None
        return (
            shard_index,
            results,
            shard_telemetry.registry,
            shard_telemetry.tracer.events,
            shard_telemetry.tracer.diag_events,
        )
    return shard_index, results, None, (), ()


def scan_sharded(
    scanner: "Scanner",
    targets: Sequence["DomainRecord"],
    week_label: str,
    ip_version: int,
    probe: int,
    parallel: ParallelScanConfig,
    checkpoint=None,
) -> list["DomainScanResult"]:
    """Scan ``targets`` over a worker pool; results in original order.

    The deterministic merge is trivial: shards are indexed at submit
    time and reassembled by index, so the concatenation equals the
    sequential iteration order regardless of completion order.

    With a ``checkpoint`` (:class:`repro.faults.CheckpointStore`),
    shards already on disk are loaded instead of scanned and fresh
    shards are saved as they complete; the shard size then comes from
    the store (fixed at campaign start) so a resume may use a different
    worker count and still merge bit-identically.  Loaded shards
    contribute no telemetry — their events belong to the run that
    produced them.
    """
    chunk = (
        checkpoint.chunk
        if checkpoint is not None
        else parallel.resolve_chunk_size(len(targets))
    )
    tasks = [
        (shard_index, targets[start : start + chunk], week_label, ip_version, probe)
        for shard_index, start in enumerate(range(0, len(targets), chunk))
    ]
    telemetry = scanner.telemetry
    merged: list[list["DomainScanResult"] | None] = [None] * len(tasks)
    shard_telemetry: list[tuple | None] = [None] * len(tasks)
    pending = []
    if checkpoint is not None:
        for task in tasks:
            loaded = checkpoint.load_shard(task[0], task[1])
            if loaded is None:
                pending.append(task)
            else:
                merged[task[0]] = loaded
    else:
        pending = tasks
    if pending:
        with ProcessPoolExecutor(
            max_workers=min(parallel.workers, len(pending)) or 1,
            initializer=_init_worker,
            initargs=(scanner.population, scanner.config, telemetry is not None),
        ) as pool:
            for shard_index, results, registry, events, diag_events in pool.map(
                _scan_shard, pending
            ):
                merged[shard_index] = results
                if checkpoint is not None:
                    checkpoint.save_shard(shard_index, results)
                if registry is not None:
                    shard_telemetry[shard_index] = (registry, events, diag_events)
    if telemetry is not None:
        # Absorb in shard order — completion order must not leak into
        # the trace — and note the shard layout as diagnostics only.
        for shard_index, shard in enumerate(shard_telemetry):
            if shard is None:
                continue
            registry, events, diag_events = shard
            telemetry.absorb_shard(registry, events, diag_events)
            telemetry.tracer.event(
                "scan.shard",
                diag=True,
                shard=shard_index,
                domains=len(tasks[shard_index][1]),
            )
    return [result for shard in merged for result in shard]  # type: ignore[union-attr]
