"""Parallel sharded scan engine.

The paper's measurement covers >200 M domains per week; at that scale a
single-core scanner is the bottleneck of the whole pipeline.  Scanning
is embarrassingly parallel, though: every domain's randomness is
independently derived from ``(population seed, week, ip_version,
domain, probe)`` (see :mod:`repro._util.rng`), so no state flows
between domains and the target list can be sharded freely.

This module schedules domain shards over a process pool with three
mechanisms the naive ``pool.map`` dispatch lacked:

* **Work stealing.**  Shards are priced by a deterministic cost model
  (:mod:`repro.web.shardplan`: fault draws, provider delay) and
  dispatched longest-first via ``submit``; when free workers outnumber
  the queued shards at the tail, the costliest queued shard is *split*
  and its halves dispatched separately, so a straggler never idles the
  rest of the pool.
* **cbr-frame IPC.**  Workers encode finished shards to columnar
  ``cbr`` bytes (:func:`repro.faults.checkpoint.encode_domain_results`)
  instead of pickling ``DomainScanResult`` object graphs; the parent
  decodes once and, under a checkpoint, persists shards by CRC-verified
  frame copy — a worker payload becomes a shard file without re-encode.
* **Bounded-memory streaming.**  :func:`scan_stream_sharded` drives the
  same pool from a range-addressed population: task descriptors carry
  ``(start, count)`` instead of pickled domain records, workers
  materialize their own slice, and the parent holds at most a small
  window of in-flight shards — a 10 M+ domain scan runs in bounded
  memory on both sides of the process boundary.

The merge is positional, so the merged dataset is **bit-identical** to
the sequential scan at any worker count, split layout, or completion
order — same classifications, same RTT series, same sampled qlogs —
which the test suite verifies record by record.
"""

from __future__ import annotations

import os
import weakref
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Sequence

from repro.web.shardplan import ShardCostModel, ShardRange, plan_shards, split_shard

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.internet.population import DomainRecord, Population
    from repro.web.scanner import DomainScanResult, ScanConfig, Scanner

__all__ = [
    "ParallelScanConfig",
    "close_pool",
    "scan_sharded",
    "scan_stream_sharded",
]


@dataclass(frozen=True)
class ParallelScanConfig:
    """Worker-pool shape of a scan.

    ``workers=1`` (the default) runs fully in-process — no pool, no
    pickling, zero overhead — so tests and small scans behave exactly
    like the pre-parallel scanner.  ``chunk_size=None`` picks a shard
    size that gives each worker several shards for tail balancing.

    Even with ``workers > 1`` the engine falls back to the in-process
    path when a pool cannot help: a single pending shard, or fewer
    usable cores than two (a pool on one core only adds pickling on top
    of the same serial execution).  ``force_pool=True`` disables the
    fallback — tests use it to exercise the real pool on any machine.
    """

    workers: int = 1
    chunk_size: int | None = None
    force_pool: bool = False

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValueError("chunk_size must be >= 1 when given")

    @classmethod
    def auto(cls) -> "ParallelScanConfig":
        """One worker per available core."""
        return cls(workers=max(1, os.cpu_count() or 1))

    def resolve_chunk_size(self, n_targets: int) -> int:
        """The shard size used for ``n_targets`` domains.

        Aims for ~4 shards per worker (so a slow shard cannot stall the
        pool at the tail) while capping shards at 512 domains to keep
        per-result IPC messages bounded.
        """
        if self.chunk_size is not None:
            return self.chunk_size
        balanced = -(-n_targets // (self.workers * 4))
        return max(1, min(512, balanced))


# ----------------------------------------------------------------------
# Worker side.  The population (or, for a streaming population, just its
# config) and the scan config are shipped once per worker via the pool
# initializer; each task then carries only a range descriptor — or, for
# ad-hoc target lists, its domain records — so task payloads stay small.
# ----------------------------------------------------------------------

_WORKER_SCANNER: "Scanner | None" = None
_WORKER_TELEMETRY_ENABLED = False


def _population_payload(population: "Population"):
    """What the pool initializer ships: spec for streaming, else object.

    A streaming population regenerates any domain from its config, so
    pickling the object graph (10 M+ records) through the initializer
    would defeat its whole point; the workers rebuild it from the
    config instead.
    """
    spawn = getattr(population, "spawn_spec", None)
    if spawn is not None:
        return spawn()
    return ("object", population)


def _init_worker(
    population_payload,
    scan_config: "ScanConfig",
    telemetry_enabled: bool = False,
) -> None:
    global _WORKER_SCANNER, _WORKER_TELEMETRY_ENABLED
    from repro.web.scanner import Scanner

    kind, value = population_payload
    if kind == "streaming":
        from repro.internet.streaming import StreamingPopulation

        population = StreamingPopulation(value)
    else:
        population = value
    _WORKER_SCANNER = Scanner(population, scan_config)
    _WORKER_TELEMETRY_ENABLED = telemetry_enabled


def _scan_unit(task):
    """Scan one unit (a shard or a split half); returns cbr bytes.

    ``task`` is ``(start, count, domains, week_label, ip_version,
    probe)``; ``domains=None`` means "materialize ``[start, start +
    count)`` from the worker's own population" (range descriptors ship
    no records at all).  The results cross back to the parent as one
    ``KIND_DOMAINS`` cbr payload — compact columnar frames instead of a
    pickled object graph — plus the unit's telemetry bundle.

    When telemetry is enabled each unit records into a *fresh*
    :class:`~repro.telemetry.Telemetry` bundle; the parent folds the
    bundles back in target order, which reproduces the sequential
    emission order exactly.
    """
    start, count, domains, week_label, ip_version, probe = task
    scanner = _WORKER_SCANNER
    assert scanner is not None, "worker pool not initialized"
    from repro.faults.checkpoint import encode_domain_results

    if domains is None:
        domains = scanner.population.materialize_range(start, start + count)
    if _WORKER_TELEMETRY_ENABLED:
        from repro.telemetry import Telemetry

        scanner.telemetry = Telemetry()
    results = scanner.scan_sequential(domains, week_label, ip_version, probe)
    payload = encode_domain_results(results)
    scanner.population.trim_caches()
    telem = None
    if scanner.telemetry is not None:
        bundle = scanner.telemetry
        scanner.telemetry = None
        telem = (
            bundle.registry,
            bundle.tracer.events,
            bundle.tracer.diag_events,
            # Span records are path-relative to the unit; the parent's
            # absorb re-roots them under its open scan span.
            bundle.spans.records,
            bundle.spans.diag_records,
        )
    return start, count, payload, telem


# ----------------------------------------------------------------------
# Pool lifecycle.
# ----------------------------------------------------------------------


def _pool_for(
    scanner: "Scanner", workers: int, telemetry_enabled: bool
) -> ProcessPoolExecutor:
    """The scanner's persistent worker pool, (re)built on shape change.

    Pool start-up (process forks + population pickling through the
    initializer) dominated short scans when every ``scan()`` call built
    a fresh executor; campaigns run many weekly scans over one scanner,
    so the pool is cached on the scanner and reused.  A shape change
    shuts the old pool down *deterministically* (``wait=True`` — no
    orphaned workers lingering through the rest of a campaign); the
    owning scanner's ``close()`` does the same, and a GC finalizer
    remains only as a backstop for scanners that are never closed.
    """
    key = (workers, telemetry_enabled)
    cached = getattr(scanner, "_shard_pool", None)
    if cached is not None:
        if cached[0] == key:
            return cached[1]
        scanner._shard_pool = None
        cached[1].shutdown(wait=True)
    pool = ProcessPoolExecutor(
        max_workers=workers,
        initializer=_init_worker,
        initargs=(
            _population_payload(scanner.population),
            scanner.config,
            telemetry_enabled,
        ),
    )
    scanner._shard_pool = (key, pool)
    weakref.finalize(scanner, pool.shutdown, wait=False)
    return pool


def close_pool(scanner: "Scanner") -> None:
    """Deterministically shut down the scanner's cached worker pool.

    Blocks until every worker process has exited (``wait=True``), so a
    long campaign that closes its scanner releases all pool resources
    at that point instead of at garbage-collection time.  Idempotent;
    a later scan on the same scanner simply builds a fresh pool.
    """
    cached = getattr(scanner, "_shard_pool", None)
    if cached is not None:
        scanner._shard_pool = None
        cached[1].shutdown(wait=True)


def _drop_pool(scanner: "Scanner") -> None:
    """Discard a (possibly broken) pool without waiting on it."""
    cached = getattr(scanner, "_shard_pool", None)
    if cached is not None:
        scanner._shard_pool = None
        cached[1].shutdown(wait=False)


# ----------------------------------------------------------------------
# Batch path: scan a materialized target list.
# ----------------------------------------------------------------------


def scan_sharded(
    scanner: "Scanner",
    targets: Sequence["DomainRecord"],
    week_label: str,
    ip_version: int,
    probe: int,
    parallel: ParallelScanConfig,
    checkpoint=None,
) -> list["DomainScanResult"]:
    """Scan ``targets`` over a worker pool; results in original order.

    The deterministic merge is positional: every unit is a contiguous
    ``(start, count)`` slice of ``targets`` and reassembles by
    ``start``, so the concatenation equals the sequential iteration
    order regardless of completion order, dispatch order, or how often
    the scheduler split a shard.

    With a ``checkpoint`` (:class:`repro.faults.CheckpointStore` or its
    async writer facade), shards already on disk are loaded instead of
    scanned and fresh shards are saved as they complete; the shard
    boundaries then come from the store's fixed chunk (set at campaign
    start) so a resume may use a different worker count — and a
    different split layout — and still merge bit-identically.  Loaded
    shards contribute no telemetry — their events belong to the run
    that produced them.

    When a pool cannot win — one pending shard, or at most one usable
    core — the shards run in-process instead (identical results *and*
    identical telemetry bytes, since the same per-shard bundles are
    produced in the same order).  ``parallel.force_pool`` overrides the
    fallback.
    """
    chunk = (
        checkpoint.chunk
        if checkpoint is not None
        else parallel.resolve_chunk_size(len(targets))
    )
    telemetry = scanner.telemetry
    usable = min(parallel.workers, os.cpu_count() or 1)
    n_shards = -(-len(targets) // chunk) if targets else 0

    cost_model = None
    costs: list[float] | None = None
    if parallel.force_pool or (usable > 1 and n_shards > 1):
        # Only a pool dispatch consults prices; the sequential fallback
        # runs shards in order no matter what they cost.
        cost_model = ShardCostModel(
            scanner.population, scanner.config, week_label, ip_version, probe
        )
        costs = [cost_model.domain_cost(domain) for domain in targets]

    shards = plan_shards(
        len(targets),
        chunk,
        cost_of=(costs.__getitem__ if costs is not None else None),
        # Checkpoint shard files must cover identical ranges across
        # resumes, so their boundaries stay chunk-aligned; cost pricing
        # still drives dispatch order and tail splitting.
        fixed=checkpoint is not None,
    )
    merged: list[list["DomainScanResult"] | None] = [None] * len(shards)
    telem_buffer: list[tuple[int, tuple]] = []
    pending: list[ShardRange] = []
    if checkpoint is not None:
        for shard in shards:
            loaded = checkpoint.load_shard(
                shard.index, targets[shard.start : shard.stop]
            )
            if loaded is None:
                pending.append(shard)
            else:
                merged[shard.index] = loaded
    else:
        pending = list(shards)

    use_pool = parallel.force_pool or (usable > 1 and len(pending) > 1)
    if pending and not use_pool:
        _run_shards_inline(
            scanner, targets, pending, week_label, ip_version, probe,
            merged, telem_buffer, checkpoint,
        )
    elif pending:
        workers = parallel.workers if parallel.force_pool else usable
        _run_shards_pool(
            scanner, targets, pending, costs, week_label, ip_version, probe,
            workers, telemetry is not None, merged, telem_buffer, checkpoint,
        )
    if telemetry is not None:
        _absorb_in_order(telemetry, shards, telem_buffer)
    return [result for shard in merged for result in shard]  # type: ignore[union-attr]


def _absorb_in_order(telemetry, shards: list[ShardRange], telem_buffer) -> None:
    """Fold unit telemetry back in target order (= sequential order).

    Units are contiguous slices, so absorbing their bundles by ``start``
    offset concatenates events exactly as a sequential scan would have
    emitted them — completion order and split layout never leak into
    the deterministic streams.  The shard layout itself is noted as
    diagnostics only (``diag=True``), interleaved after each shard's
    bundles just as the one-bundle-per-shard absorb always did.
    """
    by_start = sorted(telem_buffer, key=lambda item: item[0])
    position = 0
    for shard in shards:
        absorbed = False
        while position < len(by_start) and by_start[position][0] < shard.stop:
            registry, events, diag_events, spans, diag_spans = by_start[position][1]
            telemetry.absorb_shard(registry, events, diag_events, spans, diag_spans)
            absorbed = True
            position += 1
        if not absorbed:
            continue  # loaded from checkpoint: no telemetry of ours
        telemetry.tracer.event(
            "scan.shard", diag=True, shard=shard.index, domains=shard.count
        )
        # The shard's existence is a sharding artifact, so its span
        # lives in the diag stream, never the deterministic one.
        telemetry.spans.span(
            f"shard:{shard.index}", diag=True, domains=shard.count
        ).end()


def _run_shards_inline(
    scanner: "Scanner",
    targets: Sequence["DomainRecord"],
    pending: list[ShardRange],
    week_label: str,
    ip_version: int,
    probe: int,
    merged: list,
    telem_buffer: list,
    checkpoint,
) -> None:
    """Run pending shards in-process, mimicking the pool's semantics.

    Results are trivially identical (per-domain randomness is derived,
    not threaded); telemetry matches byte-for-byte because each shard
    still records into a fresh bundle, absorbed in target order by the
    caller — exactly what the pool workers produce.
    """
    telemetry = scanner.telemetry
    try:
        for shard in pending:
            domains = targets[shard.start : shard.stop]
            if telemetry is not None:
                from repro.telemetry import Telemetry

                scanner.telemetry = Telemetry()
            results = scanner.scan_sequential(
                domains, week_label, ip_version, probe
            )
            merged[shard.index] = results
            if checkpoint is not None:
                checkpoint.save_shard(shard.index, results)
            if telemetry is not None:
                bundle = scanner.telemetry
                telem_buffer.append(
                    (
                        shard.start,
                        (
                            bundle.registry,
                            bundle.tracer.events,
                            bundle.tracer.diag_events,
                            bundle.spans.records,
                            bundle.spans.diag_records,
                        ),
                    )
                )
    finally:
        scanner.telemetry = telemetry


def _run_shards_pool(
    scanner: "Scanner",
    targets: Sequence["DomainRecord"],
    pending: list[ShardRange],
    costs: list[float] | None,
    week_label: str,
    ip_version: int,
    probe: int,
    workers: int,
    telemetry_enabled: bool,
    merged: list,
    telem_buffer: list,
    checkpoint,
) -> None:
    """Work-stealing dispatch: longest-first submit, tail splitting.

    The queue holds priced units sorted by descending cost (classic
    longest-processing-time-first, which bounds makespan); whenever the
    pool has more free slots than queued units — the tail — the
    costliest splittable unit is cut at its cost midpoint and both
    halves dispatched, so the last heavy shard is shared between
    workers instead of idling all but one of them.  Results flow back
    as cbr payloads; a checkpoint shard whose units have all arrived is
    persisted by frame copy on the background writer.
    """
    from repro.faults.checkpoint import results_from_cbr_payload

    range_tasks = targets is getattr(scanner.population, "domains", None)
    pool = _pool_for(scanner, workers, telemetry_enabled)

    def priced(unit: ShardRange) -> tuple:
        return (-unit.cost, unit.start)

    queue = sorted(pending, key=priced)
    inflight: dict = {}
    parts: dict[int, dict[int, tuple[list, bytes]]] = {
        shard.index: {} for shard in pending
    }
    outstanding = {shard.index: shard.count for shard in pending}
    splits = 0
    try:
        while queue or inflight:
            free = workers - len(inflight)
            # Tail splitting: free workers outnumber queued units, so
            # cut the costliest splittable unit and dispatch its halves.
            while free > len(queue):
                candidates = [unit for unit in queue if unit.count >= 2]
                if not candidates:
                    break
                biggest = min(candidates, key=priced)
                queue.remove(biggest)
                left, right = split_shard(biggest, costs)
                queue.extend((left, right))
                queue.sort(key=priced)
                splits += 1
            while queue and len(inflight) < workers:
                unit = queue.pop(0)
                task = (
                    unit.start,
                    unit.count,
                    None if range_tasks else tuple(
                        targets[unit.start : unit.stop]
                    ),
                    week_label,
                    ip_version,
                    probe,
                )
                inflight[pool.submit(_scan_unit, task)] = unit
            if not inflight:
                continue
            done, _ = wait(inflight, return_when=FIRST_COMPLETED)
            for future in done:
                unit = inflight.pop(future)
                start, count, payload, telem = future.result()
                results = results_from_cbr_payload(
                    payload, targets[start : start + count], strict=True
                )
                parts[unit.index][start] = (results, payload)
                if telem is not None:
                    telem_buffer.append((start, telem))
                outstanding[unit.index] -= count
                if outstanding[unit.index] == 0:
                    ordered = sorted(parts.pop(unit.index).items())
                    merged[unit.index] = [
                        result for _, (results_, _) in ordered
                        for result in results_
                    ]
                    if checkpoint is not None:
                        checkpoint.save_shard_payloads(
                            unit.index,
                            [payload_ for _, (_, payload_) in ordered],
                        )
    except Exception:
        # A broken pool must not poison later scans on this scanner.
        _drop_pool(scanner)
        raise
    scanner.last_scan_stats = {
        "units": len(pending) + splits,
        "splits": splits,
        "workers": workers,
    }


# ----------------------------------------------------------------------
# Streaming path: scan a range-addressed population in bounded memory.
# ----------------------------------------------------------------------


def scan_stream_sharded(
    scanner: "Scanner",
    week_label: str,
    ip_version: int,
    probe: int,
    parallel: ParallelScanConfig,
    stats: dict | None = None,
) -> Iterator["DomainScanResult"]:
    """Yield every domain's result in population order, bounded memory.

    Tasks are pure range descriptors — workers materialize their own
    slice from the (streaming) population, scan it, and return cbr
    bytes — and the parent keeps at most ``workers * 3`` shards
    outstanding (in flight or completed-but-not-yet-emittable), so peak
    RSS is proportional to the window, never the population.  Emission
    order is strictly ascending shard order, making the stream
    bit-identical to a sequential scan at any worker count.

    ``stats``, when given, is filled with the run's shape (shard count,
    chunk, max outstanding window) for diagnostics and tests.
    """
    population = scanner.population
    total = population.domain_count
    chunk = parallel.resolve_chunk_size(total)
    n_shards = -(-total // chunk) if total else 0
    telemetry = scanner.telemetry
    usable = min(parallel.workers, os.cpu_count() or 1)
    use_pool = parallel.force_pool or (usable > 1 and n_shards > 1)
    workers = parallel.workers if parallel.force_pool else usable
    window = max(2, workers * 3)
    if stats is not None:
        stats.update(
            {
                "shards": n_shards,
                "chunk": chunk,
                "pool": bool(use_pool),
                "workers": workers if use_pool else 1,
                "max_outstanding": 0,
            }
        )

    def emit_shard(ordinal: int, results: list) -> Iterator["DomainScanResult"]:
        population.trim_caches()
        yield from results

    if not use_pool:
        for ordinal in range(n_shards):
            start = ordinal * chunk
            stop = min(start + chunk, total)
            domains = population.materialize_range(start, stop)
            telem = None
            if telemetry is not None:
                from repro.telemetry import Telemetry

                scanner.telemetry = Telemetry()
            try:
                results = scanner.scan_sequential(
                    domains, week_label, ip_version, probe
                )
            finally:
                if telemetry is not None:
                    bundle = scanner.telemetry
                    telem = (
                        bundle.registry,
                        bundle.tracer.events,
                        bundle.tracer.diag_events,
                        bundle.spans.records,
                        bundle.spans.diag_records,
                    )
                    scanner.telemetry = telemetry
            _absorb_stream_shard(telemetry, ordinal, len(domains), telem)
            if stats is not None:
                stats["max_outstanding"] = max(stats["max_outstanding"], 1)
            yield from emit_shard(ordinal, results)
        return

    from repro.faults.checkpoint import results_from_cbr_payload

    pool = _pool_for(scanner, workers, telemetry is not None)
    next_submit = 0
    next_emit = 0
    buffered: dict[int, tuple[int, int, bytes, tuple | None]] = {}
    inflight: dict = {}
    try:
        while next_emit < n_shards:
            while (
                next_submit < n_shards
                and len(inflight) < workers
                and len(inflight) + len(buffered) < window
            ):
                start = next_submit * chunk
                count = min(chunk, total - start)
                task = (start, count, None, week_label, ip_version, probe)
                inflight[pool.submit(_scan_unit, task)] = next_submit
                next_submit += 1
            if stats is not None:
                stats["max_outstanding"] = max(
                    stats["max_outstanding"], len(inflight) + len(buffered)
                )
            while next_emit in buffered:
                start, count, payload, telem = buffered.pop(next_emit)
                domains = population.materialize_range(start, start + count)
                results = results_from_cbr_payload(
                    payload, domains, strict=True
                )
                _absorb_stream_shard(telemetry, next_emit, count, telem)
                ordinal = next_emit
                next_emit += 1
                yield from emit_shard(ordinal, results)
            if next_emit >= n_shards or not inflight:
                continue
            done, _ = wait(inflight, return_when=FIRST_COMPLETED)
            for future in done:
                ordinal = inflight.pop(future)
                start, count, payload, telem = future.result()
                buffered[ordinal] = (start, count, payload, telem)
    except Exception:
        _drop_pool(scanner)
        raise


def _absorb_stream_shard(
    telemetry, ordinal: int, count: int, telem: tuple | None
) -> None:
    if telemetry is None or telem is None:
        return
    registry, events, diag_events, spans, diag_spans = telem
    telemetry.absorb_shard(registry, events, diag_events, spans, diag_spans)
    telemetry.tracer.event(
        "scan.shard", diag=True, shard=ordinal, domains=count
    )
    telemetry.spans.span(f"shard:{ordinal}", diag=True, domains=count).end()
