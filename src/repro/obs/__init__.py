"""repro.obs — observability over the telemetry plane.

Three instruments, one contract (everything deterministic stays a pure
function of the seed):

* :mod:`repro.obs.spans` — causal spans with derived trace/span ids on
  the simulated clock, threaded scan → spool → index → query.
* :mod:`repro.obs.profile` — charge-driven sampling profiler for the
  scan/analyze hot paths (simulated or injected wall clock).
* :mod:`repro.obs.slo` — declarative SLOs evaluated as burn rates over
  exported metrics snapshots, yielding structured health reports.

:mod:`repro.obs.console` renders a one-shot operator console from a
running ``repro serve``.
"""

from .profile import PhaseProfiler, merge_profiles
from .slo import (
    HealthEngine,
    HealthReport,
    SLOResult,
    SLOSpec,
    collect_service_gauges,
    default_service_slos,
    parse_slo_specs,
)
from .spans import (
    SPANS_DIAG_FILENAME,
    SPANS_FILENAME,
    ObsSpan,
    SpanLog,
    SpanRecord,
    read_spans,
    render_span_summary,
    span_id_for,
    span_rows,
    trace_id_for,
    write_spans_jsonl,
)

__all__ = [
    "HealthEngine",
    "HealthReport",
    "ObsSpan",
    "PhaseProfiler",
    "SLOResult",
    "SLOSpec",
    "SPANS_DIAG_FILENAME",
    "SPANS_FILENAME",
    "SpanLog",
    "SpanRecord",
    "collect_service_gauges",
    "default_service_slos",
    "merge_profiles",
    "parse_slo_specs",
    "read_spans",
    "render_span_summary",
    "span_id_for",
    "span_rows",
    "trace_id_for",
    "write_spans_jsonl",
]
