"""Deterministic sampling profiler for the scan/analyze hot paths.

Classic sampling profilers interrupt the process on a wall-clock timer,
which makes two things impossible here: the sample counts would differ
between runs (breaking the reproducibility contract if they ever enter
an artifact) and the overhead would be probe-dependent.  This profiler
inverts the approach: the *instrumented code* tells the profiler where
time went, and the profiler converts those charges into synthetic
"samples" at a fixed interval — so the report looks like a collapsed
flame stack, but equal seeds produce equal reports.

Two time sources, one accounting model:

* **Simulated mode** (``clock=None``): hot paths call
  :meth:`PhaseProfiler.charge` with simulated-clock durations (a
  domain's exchange cascade).  Reports are deterministic per seed.
* **Wall mode** (``clock=callable``): the CLI injects a monotonic
  clock (``time.perf_counter``) and :meth:`phase` measures elapsed
  time itself.  This is the ``repro profile`` mode — diagnostics only,
  never written into an artifact, which is why the clock must be
  injected rather than read here (the determinism lint covers this
  package).

Phases nest lexically like spans; cost is attributed as **self time**:
a parent's report excludes the time its children accounted for, so the
per-phase table sums to (approximately) total wall time and "coverage"
is an honest fraction.
"""

from __future__ import annotations

from typing import Callable, Sequence

__all__ = ["PhaseProfiler", "merge_profiles"]


class _Phase:
    """An open phase frame; context manager around one hot-path region."""

    __slots__ = ("_profiler", "_name", "_begin", "_child_elapsed")

    def __init__(self, profiler: "PhaseProfiler", name: str):
        self._profiler = profiler
        self._name = name
        self._begin = 0.0
        self._child_elapsed = 0.0

    def __enter__(self) -> "_Phase":
        self._profiler._push(self)
        if self._profiler._clock is not None:
            self._begin = self._profiler._clock()
        return self

    def __exit__(self, *exc_info) -> None:
        elapsed = 0.0
        if self._profiler._clock is not None:
            elapsed = (self._profiler._clock() - self._begin) * 1000.0
        self._profiler._pop(self, elapsed)


class PhaseProfiler:
    """Stack-sampling profiler driven by explicit time charges.

    ``sample_interval_ms`` sets the granularity: every full interval of
    charged time becomes one sample against the current stack.  The
    sub-interval remainder is carried per stack, not dropped, so total
    sample counts converge on total time regardless of how finely the
    hot path slices its charges.
    """

    def __init__(
        self,
        sample_interval_ms: float = 1.0,
        clock: Callable[[], float] | None = None,
    ):
        if sample_interval_ms <= 0:
            raise ValueError("sample_interval_ms must be positive")
        self.sample_interval_ms = sample_interval_ms
        self._clock = clock
        self._stack: list[_Phase] = []
        #: stack tuple -> accumulated self-time milliseconds
        self.self_ms: dict[tuple[str, ...], float] = {}
        self.total_ms = 0.0

    # -- phase instrumentation -----------------------------------------

    def phase(self, name: str) -> _Phase:
        """Open a nested phase; use as a context manager."""
        return _Phase(self, name)

    def charge(self, duration_ms: float) -> None:
        """Attribute ``duration_ms`` of simulated time to the open stack.

        In wall mode the elapsed time a charge represents was already
        measured by the enclosing phase, so charges are ignored there —
        instrumented code can call :meth:`charge` unconditionally.
        """
        if self._clock is not None or duration_ms <= 0 or not self._stack:
            return
        path = tuple(frame._name for frame in self._stack)
        self._account(path, duration_ms)

    def _push(self, frame: _Phase) -> None:
        self._stack.append(frame)

    def _pop(self, frame: _Phase, elapsed_ms: float) -> None:
        if not self._stack or self._stack[-1] is not frame:
            raise RuntimeError("profiler phases must close in LIFO order")
        path = tuple(f._name for f in self._stack)
        self._stack.pop()
        if self._clock is None:
            return
        self_ms = max(0.0, elapsed_ms - frame._child_elapsed)
        self._account(path, self_ms)
        if self._stack:
            self._stack[-1]._child_elapsed += elapsed_ms

    def _account(self, path: tuple[str, ...], self_ms: float) -> None:
        if not path:
            return
        self.self_ms[path] = self.self_ms.get(path, 0.0) + self_ms
        self.total_ms += self_ms

    # -- reporting ------------------------------------------------------

    def samples(self) -> dict[tuple[str, ...], int]:
        """Synthetic sample counts per stack (floor of charged intervals).

        Stacks that accumulated less than one interval still report one
        sample so no phase silently vanishes from the report.
        """
        out = {}
        for path, ms in self.self_ms.items():
            out[path] = max(1, int(ms / self.sample_interval_ms))
        return out

    def collapsed(self) -> list[str]:
        """Collapsed-stack lines (``a;b;c <samples>``), flamegraph-ready."""
        counts = self.samples()
        return [f"{';'.join(path)} {counts[path]}" for path in sorted(counts)]

    def phase_table(self) -> list[dict]:
        """Per-phase self-time table, heaviest first."""
        total = self.total_ms or 1.0
        rows = []
        for path in sorted(
            self.self_ms, key=lambda p: (-self.self_ms[p], p)
        ):
            ms = self.self_ms[path]
            rows.append(
                {
                    "phase": ";".join(path),
                    "self_ms": round(ms, 3),
                    "share": round(ms / total, 4),
                }
            )
        return rows

    def coverage(self, span_ms: float) -> float:
        """Fraction of ``span_ms`` attributed to named phases."""
        if span_ms <= 0:
            return 1.0 if self.total_ms > 0 else 0.0
        return min(1.0, self.total_ms / span_ms)

    def render_report(self, title: str = "profile") -> str:
        lines = [
            f"{title}: {self.total_ms:.3f} ms attributed across "
            f"{len(self.self_ms)} phases"
        ]
        for row in self.phase_table():
            lines.append(
                f"  {row['share'] * 100.0:6.2f}%  {row['self_ms']:10.3f} ms"
                f"  {row['phase']}"
            )
        return "\n".join(lines)


def merge_profiles(profiles: Sequence[PhaseProfiler]) -> PhaseProfiler:
    """Sum several profilers' accounts (e.g. per-shard) into one report."""
    merged = PhaseProfiler(
        sample_interval_ms=profiles[0].sample_interval_ms if profiles else 1.0
    )
    for profiler in profiles:
        for path, ms in profiler.self_ms.items():
            merged.self_ms[path] = merged.self_ms.get(path, 0.0) + ms
            merged.total_ms += ms
    return merged
