"""Declarative SLOs with burn-rate evaluation over exported telemetry.

The operator question the service plane could not answer before this
module is not "what are the counters?" but "is the campaign *healthy*?"
— a judgement that needs objectives, not numbers.  An :class:`SLOSpec`
declares the objective; the :class:`HealthEngine` evaluates every spec
against a metrics snapshot (the exact dict `MetricsRegistry.snapshot`
produces and ``/v1/metrics`` serves) and renders a structured
:class:`HealthReport` with per-SLO verdicts and an overall one.

Evaluation is *pure*: snapshot in, report out.  No scanning, no
clock reads, no network — which is what lets ``repro status`` run the
same engine against a live server's ``/v1/metrics`` or against the
``metrics.json`` a finished campaign left on disk.

Verdicts come from the **burn rate** — how fast the measured value
consumes its objective (``actual / objective``, inverted for
lower-bound objectives so burn > 1 always means "worse than target"):

======== =============================
burn     verdict
======== =============================
<= warn  ``ok``
<= fail  ``degraded``
>  fail  ``failing``
missing  ``no_data`` (never degrades)
======== =============================

Spec kinds:

* ``max_value`` / ``min_value`` — gauge (or counter) bound.
* ``max_ratio`` — numerator/denominator counters (e.g. error rate);
  evaluated over the *delta* from a prior snapshot when one is given,
  so a long-lived server's old errors do not haunt its current health.
* ``quantile_max`` — histogram percentile bound (p50/p90/p99) using
  the log-histogram summary quantiles.
"""

from __future__ import annotations

import json
from typing import NamedTuple, Sequence

__all__ = [
    "HealthEngine",
    "HealthReport",
    "SLOResult",
    "SLOSpec",
    "collect_service_gauges",
    "default_service_slos",
    "parse_slo_specs",
]

VERDICT_ORDER = ("ok", "no_data", "degraded", "failing")

_KINDS = ("max_value", "min_value", "max_ratio", "quantile_max")


class SLOSpec(NamedTuple):
    """One declarative objective over a telemetry series."""

    name: str
    kind: str
    metric: str
    objective: float
    #: Denominator series for ``max_ratio``.
    total: str | None = None
    #: Quantile key for ``quantile_max`` (50, 90, or 99).
    quantile: int | None = None
    warn_burn: float = 1.0
    fail_burn: float = 2.0
    description: str = ""


class SLOResult(NamedTuple):
    spec: SLOSpec
    verdict: str
    actual: float | None
    burn: float | None

    def to_dict(self) -> dict:
        return {
            "name": self.spec.name,
            "kind": self.spec.kind,
            "metric": self.spec.metric,
            "objective": self.spec.objective,
            "actual": self.actual,
            "burn": None if self.burn is None else round(self.burn, 4),
            "verdict": self.verdict,
            "description": self.spec.description,
        }


class HealthReport(NamedTuple):
    overall: str
    results: tuple[SLOResult, ...]

    def to_dict(self) -> dict:
        return {
            "overall": self.overall,
            "slos": [result.to_dict() for result in self.results],
        }

    def render(self) -> str:
        lines = [f"health: {self.overall}"]
        for result in self.results:
            actual = "n/a" if result.actual is None else f"{result.actual:g}"
            burn = "-" if result.burn is None else f"{result.burn:.2f}"
            lines.append(
                f"  [{result.verdict:8s}] {result.spec.name:18s}"
                f" {result.spec.metric} = {actual}"
                f" (objective {result.spec.objective:g}, burn {burn})"
            )
        return "\n".join(lines)

    @property
    def exit_code(self) -> int:
        """Shell-gate mapping: ok/no_data 0, degraded 1, failing 2."""
        if self.overall == "failing":
            return 2
        if self.overall == "degraded":
            return 1
        return 0


def _series_value(table: dict, metric: str) -> float | None:
    """Look up ``metric`` in a counters/gauges table, summing labelled
    series when the bare name is queried (``name{...}`` ids)."""
    if metric in table:
        return float(table[metric])
    total = None
    prefix = metric + "{"
    for series_id, value in table.items():
        if series_id.startswith(prefix):
            total = (total or 0.0) + float(value)
    return total


def _scalar(snapshot: dict, metric: str) -> float | None:
    for section in ("gauges", "counters"):
        value = _series_value(snapshot.get(section, {}), metric)
        if value is not None:
            return value
    return None


class HealthEngine:
    """Evaluates a set of SLO specs against metrics snapshots."""

    def __init__(self, specs: Sequence[SLOSpec]):
        self.specs = tuple(specs)

    def evaluate(self, snapshot: dict, prior: dict | None = None) -> HealthReport:
        results = tuple(
            self._evaluate_one(spec, snapshot, prior) for spec in self.specs
        )
        overall = "ok"
        for result in results:
            if VERDICT_ORDER.index(result.verdict) > VERDICT_ORDER.index(overall):
                overall = result.verdict
        # A report that is nothing but missing data is not "ok".
        if results and all(r.verdict == "no_data" for r in results):
            overall = "no_data"
        elif overall == "no_data":
            overall = "ok"
        return HealthReport(overall, results)

    def _evaluate_one(
        self, spec: SLOSpec, snapshot: dict, prior: dict | None
    ) -> SLOResult:
        actual = self._measure(spec, snapshot, prior)
        if actual is None:
            return SLOResult(spec, "no_data", None, None)
        burn = self._burn(spec, actual)
        if burn <= spec.warn_burn:
            verdict = "ok"
        elif burn <= spec.fail_burn:
            verdict = "degraded"
        else:
            verdict = "failing"
        return SLOResult(spec, verdict, actual, burn)

    def _measure(
        self, spec: SLOSpec, snapshot: dict, prior: dict | None
    ) -> float | None:
        if spec.kind in ("max_value", "min_value"):
            return _scalar(snapshot, spec.metric)
        if spec.kind == "max_ratio":
            numerator = _scalar(snapshot, spec.metric)
            denominator = _scalar(snapshot, spec.total or "")
            if denominator is None:
                return None
            # A missing numerator with a live denominator means the
            # event never happened (error counters only appear on the
            # first error) — that is a ratio of zero, not missing data.
            if numerator is None:
                numerator = 0.0
            if prior is not None:
                numerator -= _scalar(prior, spec.metric) or 0.0
                denominator -= _scalar(prior, spec.total or "") or 0.0
            if denominator <= 0:
                return None
            return max(0.0, numerator) / denominator
        if spec.kind == "quantile_max":
            histogram = snapshot.get("histograms", {}).get(spec.metric)
            if not histogram or not histogram.get("count"):
                return None
            key = f"p{spec.quantile or 99}_ms"
            value = histogram.get(key)
            return None if value is None else float(value)
        raise ValueError(f"unknown SLO kind: {spec.kind!r}")

    def _burn(self, spec: SLOSpec, actual: float) -> float:
        objective = spec.objective
        if spec.kind == "min_value":
            # Lower bound: burn is how far *below* target we are.
            if actual <= 0:
                return float("inf") if objective > 0 else 1.0
            return objective / actual
        if objective <= 0:
            # Zero-tolerance objective: any positive actual is a breach.
            return float("inf") if actual > 0 else 0.0
        return actual / objective


def parse_slo_specs(text: str) -> list[SLOSpec]:
    """Parse a JSON SLO spec file (a list of spec objects).

    Required keys: ``name``, ``kind``, ``metric``, ``objective``; the
    rest default as in :class:`SLOSpec`.  Raises ``ValueError`` with a
    one-line message on malformed input (the CLI maps it to the usual
    ``repro: error:`` convention).
    """
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValueError(f"SLO spec is not valid JSON: {exc}") from exc
    if not isinstance(payload, list):
        raise ValueError("SLO spec must be a JSON list of objects")
    specs = []
    for i, entry in enumerate(payload):
        if not isinstance(entry, dict):
            raise ValueError(f"SLO spec entry {i} is not an object")
        missing = [k for k in ("name", "kind", "metric", "objective") if k not in entry]
        if missing:
            raise ValueError(
                f"SLO spec entry {i} missing keys: {', '.join(missing)}"
            )
        if entry["kind"] not in _KINDS:
            raise ValueError(
                f"SLO spec entry {i}: unknown kind {entry['kind']!r}"
                f" (expected one of {', '.join(_KINDS)})"
            )
        specs.append(
            SLOSpec(
                name=str(entry["name"]),
                kind=str(entry["kind"]),
                metric=str(entry["metric"]),
                objective=float(entry["objective"]),
                total=entry.get("total"),
                quantile=entry.get("quantile"),
                warn_burn=float(entry.get("warn_burn", 1.0)),
                fail_burn=float(entry.get("fail_burn", 2.0)),
                description=str(entry.get("description", "")),
            )
        )
    return specs


def collect_service_gauges(spool, indexer) -> dict[str, float]:
    """Service-plane gauges derived from a spool + index directory pair.

    Duck-typed over :class:`~repro.service.SpoolStore` and
    :class:`~repro.service.WeekIndexer`; reads only the artifact
    listing and the ledger — never a chunk, never a scan — which is
    what lets ``repro status --dir`` judge a finished campaign offline
    with the same SLOs the live ``/v1/status`` endpoint uses.
    """
    ledger = indexer.ledger()
    entries = spool.artifacts()
    backlog = sum(1 for entry in entries if entry.fingerprint not in ledger)
    return {
        "service.spool_backlog": float(backlog),
        "service.artifacts_spooled": float(len(entries)),
        "service.weeks_indexed": float(len(indexer.weeks())),
    }


def default_service_slos() -> list[SLOSpec]:
    """The built-in objectives for the campaign service plane."""
    return [
        SLOSpec(
            name="scan-throughput",
            kind="min_value",
            metric="service.scan_domains_per_s",
            objective=50.0,
            fail_burn=4.0,
            description="sustained scan rate (domains/s, wall clock)",
        ),
        SLOSpec(
            name="indexer-lag",
            kind="max_value",
            metric="service.spool_backlog",
            objective=1.0,
            fail_burn=4.0,
            description="spooled artifacts not yet folded into week summaries",
        ),
        SLOSpec(
            name="campaign-backlog",
            kind="max_value",
            metric="service.pending_weeks",
            objective=1.0,
            fail_burn=3.0,
            description="scheduled weeks not yet scanned",
        ),
        SLOSpec(
            name="api-p50",
            kind="quantile_max",
            metric="api.request_ms",
            objective=25.0,
            quantile=50,
            description="median API latency (ms)",
        ),
        SLOSpec(
            name="api-p99",
            kind="quantile_max",
            metric="api.request_ms",
            objective=250.0,
            quantile=99,
            description="tail API latency (ms)",
        ),
        SLOSpec(
            name="api-errors",
            kind="max_ratio",
            metric="service.requests_errored",
            total="service.requests_total",
            objective=0.05,
            description="API 5xx/4xx error ratio",
        ),
    ]
