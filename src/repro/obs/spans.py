"""Causal spans: trace-id/span-id parentage on the simulated clock.

A *span* is one named step of the measurement pipeline — a weekly scan,
one scanned domain, a spool submission, an index fold — recorded with
its causal position, not just its name.  The design goal is the same
one the trace plane already enforces: the span log of a seeded campaign
must be a **pure function of the seed**, byte-identical at any worker
count, which rules out the two things distributed tracers normally
lean on (wall-clock timestamps and random span ids).

Both are replaced by derivation:

* **Identity is the causal path.**  Every span carries a ``path`` — the
  tuple of span names from the campaign root down to itself, e.g.
  ``("campaign", "scan:cw19-2023", "domain:example.com")``.  The span
  id is a digest of ``(trace_id, path)`` and the parent id is the
  digest of ``path[:-1]``, so parentage needs no shared mutable state:
  a worker process can emit spans without ever knowing the campaign's
  ids.  A re-run of the same logical step reuses its id — exactly the
  idempotence the spool ledger gives artifacts, and what makes
  crash-resumed campaigns produce duplicate-free span logs.
* **Time is simulated.**  ``start_ms``/``end_ms`` are the traced unit's
  simulated clock (a scanned domain's event cascade); orchestration
  spans that have no simulator carry zero timestamps and express their
  cost through attributes (records, bytes, weeks).

Like trace events, spans come in a deterministic stream and a ``diag``
stream: anything whose *existence* depends on sharding (per-shard
spans, API request spans) goes to diag so it can never contaminate the
reproducibility contract.  DESIGN.md Sec. 12 discusses the split.

Nesting is lexical: :meth:`SpanLog.span` pushes the name onto a stack
and pops it when the span ends, so spans opened inside an open span
become its children.  Worker shards record into a fresh empty log;
:meth:`SpanLog.absorb` prefixes the absorbed records with the parent's
*currently open* path, which is how a shard's ``domain:*`` spans end up
parented under the campaign's ``scan:<week>`` span.
"""

from __future__ import annotations

import hashlib
import json
from typing import IO, Iterable, NamedTuple, Sequence

__all__ = [
    "ObsSpan",
    "SPANS_DIAG_FILENAME",
    "SPANS_FILENAME",
    "SpanLog",
    "SpanRecord",
    "read_spans",
    "render_span_summary",
    "span_id_for",
    "span_rows",
    "trace_id_for",
    "write_spans_jsonl",
]

SPANS_FILENAME = "spans.jsonl"
SPANS_DIAG_FILENAME = "spans_diag.jsonl"

#: Trace id used when no campaign/scan identity was ever attached.
UNKNOWN_TRACE_ID = "0" * 16


def trace_id_for(*parts: object) -> str:
    """Deterministic trace id from a campaign/scan identity tuple."""
    canonical = "\x1f".join(str(part) for part in parts)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def span_id_for(trace_id: str, path: Sequence[str]) -> str:
    """Deterministic span id: digest of the causal path within a trace."""
    canonical = trace_id + "|" + "/".join(path)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


class SpanRecord(NamedTuple):
    """One finished span: causal path, simulated interval, attributes."""

    path: tuple[str, ...]
    start_ms: float
    end_ms: float
    attrs: dict

    @property
    def duration_ms(self) -> float:
        return self.end_ms - self.start_ms

    @property
    def name(self) -> str:
        return self.path[-1]

    @property
    def stage(self) -> str:
        """The span's stage: the name up to the first ``:`` qualifier."""
        name = self.path[-1]
        head, _, _ = name.partition(":")
        return head


class ObsSpan:
    """An open span; records itself into the log when ended.

    Usable imperatively (``span = log.span(...); ...; span.end(t)``) or
    as a context manager.  Ending is idempotent; the first call wins.
    """

    __slots__ = ("_log", "path", "start_ms", "attrs", "_diag", "_ended")

    def __init__(
        self,
        log: "SpanLog",
        path: tuple[str, ...],
        start_ms: float,
        attrs: dict,
        diag: bool,
    ):
        self._log = log
        self.path = path
        self.start_ms = start_ms
        self.attrs = attrs
        self._diag = diag
        self._ended = False

    def annotate(self, **attrs: object) -> None:
        """Attach attributes before the span ends."""
        self.attrs.update(attrs)

    def end(self, time_ms: float | None = None) -> None:
        """Close the span at simulated ``time_ms`` (default: start)."""
        if self._ended:
            return
        self._ended = True
        end_ms = self.start_ms if time_ms is None else time_ms
        self._log._finish(self, end_ms)

    def __enter__(self) -> "ObsSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        self.end()


class SpanLog:
    """Collects span records; emission order is the export order.

    The order contract mirrors the tracer's: spans are appended when
    they *end*, per-domain spans are emitted in population order, and
    worker shards are absorbed in shard order — so equal seeds yield
    byte-identical span files at any worker count.
    """

    def __init__(self) -> None:
        self.records: list[SpanRecord] = []
        self.diag_records: list[SpanRecord] = []
        #: Campaign/scan identity; set once by whoever owns the root
        #: span (the daemon, or the scanner for standalone scans).
        self.trace_id: str | None = None
        self._stack: list[str] = []

    def span(
        self,
        name: str,
        start_ms: float = 0.0,
        diag: bool = False,
        **attrs: object,
    ) -> ObsSpan:
        """Open a child span of the innermost open span."""
        self._stack.append(name)
        return ObsSpan(self, tuple(self._stack), start_ms, dict(attrs), diag)

    def _finish(self, span: ObsSpan, end_ms: float) -> None:
        # Spans close lexically (context managers / paired end calls),
        # so the innermost open name is the one being popped.
        if self._stack and self._stack[-1] == span.path[-1]:
            self._stack.pop()
        record = SpanRecord(span.path, span.start_ms, end_ms, span.attrs)
        (self.diag_records if span._diag else self.records).append(record)

    def record_diag(self, name: str, **attrs: object) -> None:
        """Append a flat diag span without touching the nesting stack.

        For spans recorded from server threads (API requests): a single
        ``list.append`` keeps concurrent recording from ever corrupting
        the stack the deterministic stream depends on.  Timestamps are
        zero — request latency is wall-clock and belongs in the
        ``api.request_ms`` histogram, not in a span file.
        """
        self.diag_records.append(SpanRecord((name,), 0.0, 0.0, dict(attrs)))

    def absorb(
        self,
        records: Iterable[SpanRecord],
        diag_records: Iterable[SpanRecord] = (),
    ) -> None:
        """Fold a shard's span records in, re-rooted under the open path.

        Shard logs are recorded relative to the shard (workers know
        nothing about the campaign); prefixing with the absorbing log's
        currently open stack restores the full causal path.  Must be
        called in shard order — that is what makes the merged log equal
        the sequential emission order.
        """
        prefix = tuple(self._stack)
        for record in records:
            self.records.append(record._replace(path=prefix + record.path))
        for record in diag_records:
            self.diag_records.append(record._replace(path=prefix + record.path))


def span_rows(
    records: Sequence[SpanRecord], trace_id: str | None
) -> list[dict]:
    """Export-shape dicts (ids assigned) for ``records``."""
    resolved = trace_id or UNKNOWN_TRACE_ID
    rows = []
    for step, record in enumerate(records):
        parent = (
            span_id_for(resolved, record.path[:-1])
            if len(record.path) > 1
            else None
        )
        rows.append(
            {
                "step": step,
                "trace": resolved,
                "span": span_id_for(resolved, record.path),
                "parent": parent,
                "name": record.name,
                "path": "/".join(record.path),
                "start_ms": round(record.start_ms, 6),
                "end_ms": round(record.end_ms, 6),
                "attrs": record.attrs,
            }
        )
    return rows


def write_spans_jsonl(
    records: Sequence[SpanRecord], trace_id: str | None, stream: IO[str]
) -> int:
    """Write the span log as JSONL; returns the line count."""
    count = 0
    for row in span_rows(records, trace_id):
        stream.write(json.dumps(row, sort_keys=True) + "\n")  # jsonl-ok: the span codec
        count += 1
    return count


def read_spans(stream: IO[str]) -> list[dict]:
    """Load a spans JSONL stream back into row dicts."""
    return [json.loads(line) for line in stream if line.strip()]


# ----------------------------------------------------------------------
# Rendering: span tree + per-stage latency percentiles (the summarize
# and console backends).
# ----------------------------------------------------------------------


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile over an already-sorted sequence."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, int(q / 100.0 * len(sorted_values))))
    return sorted_values[rank]


def stage_latency_table(rows: Sequence[dict]) -> list[dict]:
    """Per-stage duration percentiles from span rows.

    A *stage* is the span name up to its first ``:`` (``domain``,
    ``scan``, ``spool``, ...).  Stages whose spans carry no duration
    (orchestration markers) report counts only.
    """
    by_stage: dict[str, list[float]] = {}
    for row in rows:
        stage = str(row.get("name", "")).partition(":")[0]
        duration = float(row.get("end_ms", 0.0)) - float(row.get("start_ms", 0.0))
        by_stage.setdefault(stage, []).append(duration)
    table = []
    for stage in sorted(by_stage):
        durations = sorted(by_stage[stage])
        entry = {"stage": stage, "count": len(durations)}
        if durations[-1] > 0.0:
            entry.update(
                p50_ms=round(_percentile(durations, 50.0), 3),
                p90_ms=round(_percentile(durations, 90.0), 3),
                p99_ms=round(_percentile(durations, 99.0), 3),
                max_ms=round(durations[-1], 3),
            )
        table.append(entry)
    return table


def render_span_summary(rows: Sequence[dict]) -> str:
    """Human-readable digest of a span log: tree + stage percentiles.

    The tree collapses sibling spans of the same *stage* (one line for
    a thousand ``domain:*`` spans) so campaign logs stay readable; the
    latency table below gives each stage's duration percentiles.
    """
    if not rows:
        return "spans: (none recorded)"
    lines = [f"spans: {len(rows)} records (trace {rows[0].get('trace')})"]
    # Aggregate by the stage-collapsed path, preserving first-seen order
    # of each aggregate so the tree reads in pipeline order.
    aggregates: dict[tuple[str, ...], int] = {}
    for row in rows:
        path = tuple(
            segment.partition(":")[0] for segment in str(row["path"]).split("/")
        )
        aggregates[path] = aggregates.get(path, 0) + 1
    for path in sorted(aggregates):
        indent = "  " * len(path)
        count = aggregates[path]
        suffix = f" x{count}" if count > 1 else ""
        lines.append(f"{indent}{path[-1]}{suffix}")
    table = stage_latency_table(rows)
    timed = [entry for entry in table if "p50_ms" in entry]
    if timed:
        lines.append("stage latency (simulated ms):")
        for entry in timed:
            lines.append(
                f"  {entry['stage']:16s} count={entry['count']}"
                f" p50={entry['p50_ms']:g}"
                f" p90={entry['p90_ms']:g}"
                f" p99={entry['p99_ms']:g}"
                f" max={entry['max_ms']:g}"
            )
    return "\n".join(lines)
