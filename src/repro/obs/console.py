"""`repro top`: a one-shot text console over a running `repro serve`.

Deliberately not a curses loop: one fetch, one render, exit.  That
keeps it scriptable (watch(1) gives you the refresh loop for free),
testable (``render_console`` is a pure function of the four payloads),
and honest about what it is — a view over ``/v1/*``, with zero state
of its own.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

from .slo import HealthReport, SLOResult, SLOSpec
from .spans import stage_latency_table

__all__ = ["fetch_json", "health_from_payload", "render_console"]


def fetch_json(url: str, timeout: float = 5.0):
    """GET ``url`` and decode the JSON body.

    Raises ``ConnectionError`` with a one-line message on any transport
    or decode failure; the CLI maps it to the ``repro: error:`` form.
    """
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            body = response.read()
    except (urllib.error.URLError, OSError) as exc:
        raise ConnectionError(f"cannot reach {url}: {exc}") from exc
    try:
        return json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ConnectionError(f"bad JSON from {url}: {exc}") from exc


def health_from_payload(payload: dict) -> HealthReport:
    """Rehydrate a HealthReport from the ``/v1/status`` wire shape."""
    results = []
    for row in payload.get("slos", []):
        spec = SLOSpec(
            name=row.get("name", "?"),
            kind=row.get("kind", "max_value"),
            metric=row.get("metric", "?"),
            objective=float(row.get("objective", 0.0)),
            description=row.get("description", ""),
        )
        results.append(
            SLOResult(
                spec,
                row.get("verdict", "no_data"),
                row.get("actual"),
                row.get("burn"),
            )
        )
    return HealthReport(payload.get("overall", "no_data"), tuple(results))


def render_console(
    healthz: dict, status: dict, metrics: dict, spans_payload: dict
) -> str:
    """Render the operator console from the four API payloads."""
    # /v1/metrics wraps the snapshot as {"metrics": {...}}; accept both
    # the wire shape and a bare snapshot.
    metrics = metrics.get("metrics", metrics)
    lines = ["repro service console"]

    weeks = healthz.get("weeks_indexed", healthz.get("weeks"))
    if isinstance(weeks, (list, tuple)):
        weeks = len(weeks)
    artifacts = healthz.get("artifacts_indexed", healthz.get("artifacts"))
    progress = []
    if weeks is not None:
        progress.append(f"weeks indexed: {weeks}")
    if artifacts is not None:
        progress.append(f"artifacts: {artifacts}")
    gauges = metrics.get("gauges", {})
    if "service.pending_weeks" in gauges:
        progress.append(f"pending weeks: {gauges['service.pending_weeks']:g}")
    if "service.spool_backlog" in gauges:
        progress.append(f"spool backlog: {gauges['service.spool_backlog']:g}")
    if progress:
        lines.append("campaign: " + " | ".join(progress))

    rows = spans_payload.get("spans", [])
    timed = [e for e in stage_latency_table(rows) if "p50_ms" in e]
    if timed:
        lines.append("per-stage latency (simulated ms):")
        for entry in timed:
            lines.append(
                f"  {entry['stage']:16s} count={entry['count']:<6d}"
                f" p50={entry['p50_ms']:g} p90={entry['p90_ms']:g}"
                f" p99={entry['p99_ms']:g}"
            )

    histograms = metrics.get("histograms", {})
    api_hist = histograms.get("api.request_ms")
    if api_hist and api_hist.get("count"):
        lines.append(
            f"api latency: count={api_hist['count']}"
            f" p50={api_hist.get('p50_ms', 0):g}ms"
            f" p99={api_hist.get('p99_ms', 0):g}ms"
        )

    lines.append(health_from_payload(status).render())
    return "\n".join(lines)
