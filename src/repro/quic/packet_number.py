"""Packet-number encoding and decoding (RFC 9000, Section 17.1 / Appendix A).

QUIC transmits only the least-significant 1-4 bytes of a packet number;
the receiver reconstructs the full value from the largest packet number
it has seen.  The spin-bit mechanism depends on packet numbers because a
server reflects the spin value of the *highest-numbered* packet received
so far — reordering detection (the R vs. S analysis of Section 5) is
likewise keyed on reconstructed packet numbers.
"""

from __future__ import annotations

__all__ = ["decode_packet_number", "encode_packet_number", "packet_number_length"]

MAX_PACKET_NUMBER = (1 << 62) - 1


def packet_number_length(full_pn: int, largest_acked: int | None) -> int:
    """Choose the minimal on-wire length for ``full_pn``.

    Per RFC 9000 Appendix A.2 the encoding must cover a range twice the
    number of unacknowledged packets.  ``largest_acked`` is ``None``
    before any acknowledgment has been received.
    """
    if full_pn < 0 or full_pn > MAX_PACKET_NUMBER:
        raise ValueError(f"packet number out of range: {full_pn}")
    if largest_acked is None:
        num_unacked = full_pn + 1
    else:
        num_unacked = full_pn - largest_acked
    min_bits = max(num_unacked.bit_length() + 1, 1)
    length = (min_bits + 7) // 8
    if length > 4:
        raise ValueError("packet number range too large to encode")
    return max(length, 1)


def encode_packet_number(full_pn: int, largest_acked: int | None) -> bytes:
    """Encode ``full_pn`` truncated relative to ``largest_acked``."""
    length = packet_number_length(full_pn, largest_acked)
    return (full_pn & ((1 << (8 * length)) - 1)).to_bytes(length, "big")


def decode_packet_number(truncated: int, length_bytes: int, largest_pn: int | None) -> int:
    """Reconstruct a full packet number (RFC 9000 Appendix A.3).

    ``largest_pn`` is the largest packet number successfully processed so
    far in this packet-number space (``None`` if no packet has been
    processed yet, in which case the truncated value is taken as-is).
    """
    if length_bytes not in (1, 2, 3, 4):
        raise ValueError(f"invalid packet number length: {length_bytes}")
    pn_nbits = 8 * length_bytes
    pn_win = 1 << pn_nbits
    pn_hwin = pn_win // 2
    pn_mask = pn_win - 1
    if truncated < 0 or truncated > pn_mask:
        raise ValueError("truncated packet number does not fit its length")
    if largest_pn is None:
        return truncated
    expected = largest_pn + 1
    candidate = (expected & ~pn_mask) | truncated
    if candidate <= expected - pn_hwin and candidate < (1 << 62) - pn_win:
        return candidate + pn_win
    if candidate > expected + pn_hwin and candidate >= pn_win:
        return candidate - pn_win
    return candidate
