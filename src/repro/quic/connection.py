"""Simulated QUIC endpoints.

:class:`QuicEndpoint` implements enough of RFC 9000/9001/9002 to carry a
realistic HTTP/3-style web fetch whose *observable* behaviour matches
what the paper's scanner saw: a three-space handshake (Initial /
Handshake / 1-RTT), byte-exact packets on the wire, honest ``ack_delay``
reporting, an RFC 9002 RTT estimator on the client, slow-start-paced
response flights on the server, loss recovery via PTO retransmission,
and — centrally — the RFC 9000 spin-bit state machine on every 1-RTT
packet.

The TLS exchange is structural, not cryptographic (DESIGN.md Section 6):
each handshake flight is an opaque byte blob with a 4-byte length
prefix, sized like real ClientHello / ServerHello / certificate flights,
so packetization, coalescing, acknowledgment, and loss recovery all
behave as they would for the real thing.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable

from repro.core.spin import EndpointRole, SpinBitState, SpinPolicy
from repro.core.vec import VecSenderState
from repro.netsim.events import Simulator
from repro.qlog.recorder import TraceRecorder
from repro.quic.connection_id import ConnectionId
from repro.quic.datagram import (
    ParsedPacket,
    QuicPacket,
    decode_datagram,
    encode_datagram,
)
from repro.quic.frames import (
    AckFrame,
    ConnectionCloseFrame,
    CryptoFrame,
    Frame,
    HandshakeDoneFrame,
    NewConnectionIdFrame,
    PaddingFrame,
    PingFrame,
    StreamFrame,
)
from repro.quic.packet import (
    LongHeader,
    LongPacketType,
    PacketType,
    ShortHeader,
    VersionNegotiationHeader,
)
from repro.quic.packet_number import decode_packet_number
from repro.quic.rtt import RttEstimator
from repro.quic.transport_params import (
    TransportParameters,
    decode_transport_parameters,
)
from repro.quic.version import SUPPORTED_VERSIONS, QuicVersion

__all__ = ["ConnectionConfig", "PacketSpace", "QuicEndpoint"]

#: Synthetic handshake-flight sizes (bytes), shaped like typical TLS 1.3
#: exchanges: ClientHello, ServerHello, the server's EncryptedExtensions+
#: Certificate+Verify+Finished flight, and the client Finished.
CLIENT_HELLO_SIZE = 280
SERVER_HELLO_SIZE = 123
SERVER_HANDSHAKE_FLIGHT_SIZE = 2644
CLIENT_FINISHED_SIZE = 52

_INITIAL_PACKET_MIN_SIZE = 1200


class PacketSpace(Enum):
    """The three packet-number spaces of a QUIC connection."""

    INITIAL = "initial"
    HANDSHAKE = "handshake"
    APPLICATION = "application"


_SPACE_TO_PACKET_TYPE = {
    PacketSpace.INITIAL: PacketType.INITIAL,
    PacketSpace.HANDSHAKE: PacketType.HANDSHAKE,
    PacketSpace.APPLICATION: PacketType.ONE_RTT,
}
_PACKET_TYPE_TO_SPACE = {
    PacketType.INITIAL: PacketSpace.INITIAL,
    PacketType.HANDSHAKE: PacketSpace.HANDSHAKE,
    PacketType.ONE_RTT: PacketSpace.APPLICATION,
}


@dataclass(frozen=True)
class ConnectionConfig:
    """Tunables of one endpoint; defaults follow quic-go's behaviour."""

    version: QuicVersion = QuicVersion.VERSION_1
    #: Versions this endpoint can speak, in preference order.  The
    #: client offers ``version`` first and falls back via Version
    #: Negotiation; a server answers VN for unsupported versions.
    supported_versions: tuple[QuicVersion, ...] = SUPPORTED_VERSIONS
    #: Server-side address validation: demand a Retry round trip before
    #: accepting the handshake.
    retry_required: bool = False
    cid_length: int = 8
    ack_delay_exponent: int = 3
    max_ack_delay_ms: float = 25.0
    mtu_bytes: int = 1200
    initial_congestion_window_packets: int = 10
    max_congestion_window_packets: int = 256
    pto_initial_ms: float = 600.0
    pto_max_retries: int = 5
    ack_eliciting_threshold: int = 2
    #: Enable the Valid Edge Counter extension (repro.core.vec) in the
    #: two reserved short-header bits.  Off by default: RFC-compliant
    #: endpoints send zeroed reserved bits.
    enable_vec: bool = False
    #: Scheduling latency between an ACK freeing congestion window and
    #: the next stream flight leaving the host (kernel/event-loop
    #: wake-up).  Real servers never react in zero time; this keeps
    #: passive spin samples from randomly undercutting the stack's
    #: minimum RTT (which would trip the grease filter).
    flush_dispatch_ms: tuple[float, float] = (0.0, 0.0)
    #: Initiate a key update (RFC 9001 Section 6: the key-phase bit
    #: flips) after every N 1-RTT packets sent; ``None`` disables.  The
    #: spin observer must stay oblivious to key-phase flips.
    key_update_interval_packets: int | None = None
    #: Rotate to a peer-issued connection ID after sending N 1-RTT
    #: packets (RFC 9000 Section 5.1.1); ``None`` disables.  Endpoints
    #: are unaffected, but CID-keyed passive observers see the flow
    #: split — a real limitation of on-path spin monitoring.
    rotate_cid_after_packets: int | None = None
    #: Fault injection (repro.faults): a server holds the ClientHello
    #: for this long before answering — an overloaded or tarpitting
    #: origin.  0 disables (the default, and the fault-free fast path).
    handshake_stall_ms: float = 0.0
    #: Fault injection (repro.faults): close the connection with a
    #: nonzero transport error after sending N 1-RTT packets — the
    #: mid-exchange reset failure mode.  ``None`` disables.
    reset_after_packets: int | None = None
    #: Issue N alternate connection IDs to the peer (one
    #: NEW_CONNECTION_ID frame each, in a single 1-RTT packet) once the
    #: handshake is confirmed.  Client-side this is what makes a
    #: *downlink* CID switch observable: the server can only re-address
    #: its short headers to a client-issued alternate.  0 disables (the
    #: default, preserving pre-migration byte streams).
    issue_alternate_cids: int = 0


@dataclass
class _SentPacketInfo:
    time_ms: float
    frames: tuple[Frame, ...]
    ack_eliciting: bool
    acked: bool = False
    retransmitted: bool = False


class _SpaceState:
    """Per-packet-number-space send/receive bookkeeping."""

    def __init__(self) -> None:
        self.next_pn = 0
        self.largest_acked_by_peer: int | None = None
        self.largest_received: int | None = None
        self.largest_received_time_ms = 0.0
        self.received_pns: set[int] = set()
        self.sent: dict[int, _SentPacketInfo] = {}
        self.pending_ack_eliciting = 0
        self.ack_timer_generation = 0
        # Reassembly buffer for the peer's crypto stream in this space.
        self.crypto_chunks: dict[int, bytes] = {}
        self.crypto_message: bytes | None = None


class QuicEndpoint:
    """One side of a simulated QUIC connection.

    Wire bytes go out through ``transport`` (set via
    :meth:`attach_transport`) and come back in through
    :meth:`receive_datagram`.  Application callbacks:

    * ``on_handshake_keys`` — fired once the endpoint can send 1-RTT
      data (client: after processing the server's handshake flight).
    * ``on_stream_data(stream_id, data, fin)`` — ordered stream bytes.
    * ``on_connection_close()`` — peer closed.
    """

    def __init__(
        self,
        simulator: Simulator,
        role: EndpointRole,
        config: ConnectionConfig,
        spin_policy: SpinPolicy,
        rng: random.Random,
        recorder: TraceRecorder | None = None,
        metrics=None,
    ):
        self.simulator = simulator
        self.role = role
        self.config = config
        self.rng = rng
        self.recorder = recorder
        # Telemetry bindings (repro.telemetry.MetricsRegistry).  The
        # role label splits client/server series; spin edges count
        # received short-header packets whose spin value flipped — the
        # raw signal every passive RTT estimate in the paper rests on.
        if metrics is not None:
            role_label = role.value
            self._m_packets_sent = metrics.counter(
                "quic.packets_sent", role=role_label
            )
            self._m_packets_received = metrics.counter(
                "quic.packets_received", role=role_label
            )
            self._m_spin_edges = metrics.counter(
                "quic.spin_edges", role=role_label
            )
        else:
            self._m_packets_sent = None
            self._m_packets_received = None
            self._m_spin_edges = None
        self._last_spin_rx: bool | None = None
        self.spin = SpinBitState(role, spin_policy, rng)
        self.vec_state = VecSenderState() if config.enable_vec else None
        self.rtt_estimator = RttEstimator(max_ack_delay_ms=config.max_ack_delay_ms)

        self.local_cid = ConnectionId.generate(rng, config.cid_length)
        self.remote_cid: ConnectionId | None = None
        #: The version currently in use; may change once via VN.
        self.version = int(config.version)
        self._retry_token = b""
        self._version_negotiated = False

        self.spaces = {space: _SpaceState() for space in PacketSpace}
        #: What this endpoint announces in its handshake flight.
        self.local_params = TransportParameters(
            ack_delay_exponent=config.ack_delay_exponent,
            max_ack_delay_ms=int(config.max_ack_delay_ms),
        )
        #: The peer's announced parameters (None until the handshake
        #: message carrying them is processed); ACK decoding and the
        #: RFC 9002 ack-delay clamp use these, not local assumptions.
        self.peer_params: TransportParameters | None = None
        self.handshake_complete = False  # 1-RTT keys available
        self.handshake_confirmed = False  # HANDSHAKE_DONE seen / FIN processed
        self.closed = False
        self.failed: str | None = None
        #: Error code of a CONNECTION_CLOSE received from the peer
        #: (``None`` until one arrives); a nonzero transport code is the
        #: wire signature of a reset, which the scanner's failure
        #: taxonomy classifies separately from silent losses.
        self.peer_close_error_code: int | None = None
        self._reset_fired = False

        self.transport: Callable[[bytes], None] | None = None
        self.on_handshake_keys: Callable[[], None] | None = None
        self.on_stream_data: Callable[[int, bytes, bool], None] | None = None
        self.on_connection_close: Callable[[], None] | None = None
        self.on_ping_acked: Callable[[], None] | None = None

        # Stream state: send queue of (stream_id, bytes, fin) chunks that
        # respect the congestion window, and per-stream receive buffers.
        self._stream_send_queue: list[tuple[int, bytes, bool]] = []
        self._stream_offsets_sent: dict[int, int] = {}
        self._stream_recv: dict[int, dict[int, bytes]] = {}
        self._stream_recv_delivered: dict[int, int] = {}
        self._stream_recv_fin_at: dict[int, int] = {}
        self._congestion_window = config.initial_congestion_window_packets
        self._app_packets_in_flight = 0
        self._key_phase = False
        self._app_packets_sent = 0
        #: Alternate CIDs the peer issued via NEW_CONNECTION_ID.
        self._peer_issued_cids: list[ConnectionId] = []
        self._cid_rotated = False

        self._crypto_send_offset = {space: 0 for space in PacketSpace}

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def attach_transport(self, send: Callable[[bytes], None]) -> None:
        """Connect the endpoint's output to a path's ``send``."""
        self.transport = send

    def set_remote_cid(self, cid: ConnectionId) -> None:
        """Learn the peer's connection ID (from the handshake exchange)."""
        self.remote_cid = cid

    # ------------------------------------------------------------------
    # Client-side handshake initiation
    # ------------------------------------------------------------------

    def connect(self) -> None:
        """Client: send the Initial packet carrying the ClientHello."""
        if self.role is not EndpointRole.CLIENT:
            raise RuntimeError("only a client can initiate a connection")
        if self.remote_cid is None:
            # The client invents the server's initial DCID (RFC 9000 7.2).
            self.remote_cid = ConnectionId.generate(self.rng, self.config.cid_length)
        self._send_client_hello()

    def _send_client_hello(self) -> None:
        hello = _length_prefixed(
            _handshake_body(self.local_params.encode(), CLIENT_HELLO_SIZE, 0x01)
        )
        frames: list[Frame] = [CryptoFrame(offset=0, data=hello)]
        self._crypto_send_offset[PacketSpace.INITIAL] = len(hello)
        self._send_packet(PacketSpace.INITIAL, frames, pad_to=_INITIAL_PACKET_MIN_SIZE)

    # ------------------------------------------------------------------
    # Application data
    # ------------------------------------------------------------------

    def send_stream(self, stream_id: int, data: bytes, fin: bool) -> None:
        """Queue stream data; it is sent as fast as the window allows."""
        if not self.handshake_complete:
            raise RuntimeError("cannot send 1-RTT data before handshake keys")
        offset = 0
        chunk_size = self.config.mtu_bytes
        while offset < len(data) or (fin and offset == 0 and not data):
            chunk = data[offset : offset + chunk_size]
            last = offset + len(chunk) >= len(data)
            self._stream_send_queue.append((stream_id, chunk, fin and last))
            offset += max(len(chunk), 1)
            if not chunk:
                break
        self._flush_stream_queue()

    def send_ping(self) -> None:
        """Send a PING packet (used by keep-alive style probes)."""
        self._send_packet(PacketSpace.APPLICATION, [PingFrame()])

    def close(self, error_code: int = 0, is_application: bool = True) -> None:
        """Send CONNECTION_CLOSE and stop participating."""
        if self.closed:
            return
        frame = ConnectionCloseFrame(error_code=error_code, is_application=is_application)
        space = (
            PacketSpace.APPLICATION if self.handshake_complete else PacketSpace.INITIAL
        )
        self._send_packet(space, [frame])
        self.closed = True

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------

    def receive_datagram(self, data: bytes) -> None:
        """Entry point for wire bytes delivered by the path."""
        if self.closed:
            return
        peer_exponent = (
            self.peer_params.ack_delay_exponent if self.peer_params is not None else 3
        )
        packets = decode_datagram(data, self.config.cid_length, peer_exponent)
        for packet in packets:
            self._receive_packet(packet)

    def _receive_packet(self, packet: ParsedPacket) -> None:
        header = packet.header
        now = self.simulator.now_ms
        if self._m_packets_received is not None:
            self._m_packets_received.inc()
            if isinstance(header, ShortHeader):
                if (
                    self._last_spin_rx is not None
                    and header.spin_bit != self._last_spin_rx
                ):
                    self._m_spin_edges.inc()
                self._last_spin_rx = header.spin_bit
        if isinstance(header, VersionNegotiationHeader):
            if self.recorder is not None:
                self.recorder.on_packet_received(
                    now, header.packet_type.value, 0, None, 0
                )
            self._handle_version_negotiation(header)
            return
        if isinstance(header, LongHeader) and header.long_type is LongPacketType.RETRY:
            if self.recorder is not None:
                self.recorder.on_packet_received(
                    now, header.packet_type.value, 0, None, 0
                )
            self._handle_retry(header)
            return
        if (
            self.role is EndpointRole.SERVER
            and isinstance(header, LongHeader)
            and header.long_type is LongPacketType.INITIAL
        ):
            if header.version not in {int(v) for v in self.config.supported_versions}:
                self._send_version_negotiation(header)
                return
            if self.config.retry_required and not header.token:
                self._send_retry(header)
                return
            self.version = header.version
        space = _PACKET_TYPE_TO_SPACE[header.packet_type]
        state = self.spaces[space]
        full_pn = decode_packet_number(
            header.packet_number, header.pn_length, state.largest_received
        )

        spin_bit = header.spin_bit if isinstance(header, ShortHeader) else None
        vec = header.vec if isinstance(header, ShortHeader) else 0
        if self.recorder is not None:
            self.recorder.on_packet_received(
                now, header.packet_type.value, full_pn, spin_bit, packet.wire_length, vec
            )

        if full_pn in state.received_pns:
            return  # duplicate: recorded, not reprocessed
        state.received_pns.add(full_pn)
        is_new_largest = state.largest_received is None or full_pn > state.largest_received
        if is_new_largest:
            state.largest_received = full_pn

        if isinstance(header, ShortHeader):
            self.spin.on_packet_received(full_pn, header.spin_bit)
            if self.vec_state is not None:
                self.vec_state.on_packet_received(full_pn, header.spin_bit, header.vec)
        elif isinstance(header, LongHeader) and self.remote_cid is None:
            self.remote_cid = header.source_cid
        elif (
            isinstance(header, LongHeader)
            and self.role is EndpointRole.CLIENT
            and header.long_type is LongPacketType.INITIAL
        ):
            # The server replaces the client-invented DCID with its own
            # source CID (RFC 9000 7.2).
            self.remote_cid = header.source_cid

        ack_eliciting = any(frame.is_ack_eliciting for frame in packet.frames)
        if ack_eliciting and is_new_largest:
            state.largest_received_time_ms = now

        for frame in packet.frames:
            self._handle_frame(space, frame)

        if ack_eliciting and not self.closed:
            self._on_ack_eliciting_received(space)

    def _handle_frame(self, space: PacketSpace, frame: Frame) -> None:
        if isinstance(frame, AckFrame):
            self._handle_ack(space, frame)
        elif isinstance(frame, CryptoFrame):
            self._handle_crypto(space, frame)
        elif isinstance(frame, StreamFrame):
            self._handle_stream(frame)
        elif isinstance(frame, NewConnectionIdFrame):
            self._peer_issued_cids.append(ConnectionId(frame.connection_id))
        elif isinstance(frame, HandshakeDoneFrame):
            first_confirm = not self.handshake_confirmed
            self.handshake_confirmed = True
            if (
                first_confirm
                and self.role is EndpointRole.CLIENT
                and self.config.issue_alternate_cids > 0
            ):
                self._issue_alternate_cids()
        elif isinstance(frame, ConnectionCloseFrame):
            self.closed = True
            self.peer_close_error_code = frame.error_code
            if self.on_connection_close is not None:
                self.on_connection_close()

    # ------------------------------------------------------------------
    # Version negotiation and address validation (Retry)
    # ------------------------------------------------------------------

    def _handle_version_negotiation(self, header: VersionNegotiationHeader) -> None:
        """Client: pick a mutually supported version and start over."""
        if (
            self.role is not EndpointRole.CLIENT
            or self.handshake_complete
            or self._version_negotiated
        ):
            return  # stale or spoofed VN packets are ignored (RFC 9000 6.2)
        chosen = next(
            (
                int(candidate)
                for candidate in self.config.supported_versions
                if int(candidate) in header.supported_versions
            ),
            None,
        )
        if chosen is None:
            self.failed = "version negotiation failed: no common version"
            self.closed = True
            return
        self._version_negotiated = True
        self.version = chosen
        self._abandon_initial_flight()
        self._send_client_hello()

    def _handle_retry(self, header: LongHeader) -> None:
        """Client: adopt the Retry token and the server's new CID."""
        if self.role is not EndpointRole.CLIENT or self.handshake_complete:
            return
        if self._retry_token:
            return  # at most one Retry per connection (RFC 9000 17.2.5)
        if not header.token:
            return
        self._retry_token = header.token
        self.remote_cid = header.source_cid
        self._abandon_initial_flight()
        self._send_client_hello()

    def _send_version_negotiation(self, received: LongHeader) -> None:
        """Server: offer the supported version list (RFC 9000 6.1)."""
        header = VersionNegotiationHeader(
            destination_cid=received.source_cid,
            source_cid=received.destination_cid,
            supported_versions=tuple(int(v) for v in self.config.supported_versions),
        )
        if self.recorder is not None:
            self.recorder.on_packet_sent(
                self.simulator.now_ms, header.packet_type.value, 0, None, 0
            )
        self.transport(header.encode())

    def _send_retry(self, received: LongHeader) -> None:
        """Server: demand address validation before committing state."""
        header = LongHeader(
            long_type=LongPacketType.RETRY,
            version=received.version,
            destination_cid=received.source_cid,
            source_cid=self.local_cid,
            token=b"retry:" + bytes(received.source_cid),
        )
        if self.recorder is not None:
            self.recorder.on_packet_sent(
                self.simulator.now_ms, header.packet_type.value, 0, None, 0
            )
        self.transport(header.encode())

    def _learn_peer_params(self, crypto_message: bytes | None) -> None:
        """Extract the peer's transport parameters from a crypto flight.

        Applies the RFC 9002 consequences immediately: the estimator's
        ack-delay clamp follows the *peer's* announced max_ack_delay.
        """
        if crypto_message is None or self.peer_params is not None:
            return
        if len(crypto_message) < 2:
            return
        tp_length = int.from_bytes(crypto_message[:2], "big")
        if 2 + tp_length > len(crypto_message):
            return
        try:
            params = decode_transport_parameters(crypto_message[2 : 2 + tp_length])
        except ValueError:
            return  # tolerate peers without a parseable block
        self.peer_params = params
        self.rtt_estimator.max_ack_delay_ms = float(params.max_ack_delay_ms)

    def _abandon_initial_flight(self) -> None:
        """Stop retransmitting pre-VN/pre-Retry Initial packets."""
        state = self.spaces[PacketSpace.INITIAL]
        for info in state.sent.values():
            info.acked = True
        state.crypto_chunks.clear()
        state.crypto_message = None

    # ------------------------------------------------------------------
    # ACK handling and generation
    # ------------------------------------------------------------------

    def _handle_ack(self, space: PacketSpace, frame: AckFrame) -> None:
        state = self.spaces[space]
        now = self.simulator.now_ms
        newly_acked_eliciting = 0
        for pn in frame.acked_packet_numbers():
            info = state.sent.get(pn)
            if info is None or info.acked:
                continue
            info.acked = True
            if self.on_ping_acked is not None and any(
                isinstance(f, PingFrame) for f in info.frames
            ):
                callback, self.on_ping_acked = self.on_ping_acked, None
                callback()
            if info.ack_eliciting:
                newly_acked_eliciting += 1
                if space is PacketSpace.APPLICATION:
                    self._app_packets_in_flight = max(0, self._app_packets_in_flight - 1)
            if pn == frame.largest_acknowledged and info.ack_eliciting:
                sample = self.rtt_estimator.on_ack_received(
                    now,
                    info.time_ms,
                    frame.ack_delay_us / 1000.0,
                    handshake_confirmed=self.handshake_confirmed,
                )
                if self.recorder is not None:
                    self.recorder.on_rtt_sample(
                        now,
                        sample.latest_rtt_ms,
                        sample.adjusted_rtt_ms,
                        sample.ack_delay_ms,
                        self.rtt_estimator.smoothed_rtt_ms,
                        self.rtt_estimator.min_rtt_ms or sample.latest_rtt_ms,
                    )
        if state.largest_acked_by_peer is None or (
            frame.largest_acknowledged > state.largest_acked_by_peer
        ):
            state.largest_acked_by_peer = frame.largest_acknowledged
        if space is PacketSpace.APPLICATION and newly_acked_eliciting:
            grown = self._congestion_window + newly_acked_eliciting
            self._congestion_window = min(
                grown, self.config.max_congestion_window_packets
            )
            low, high = self.config.flush_dispatch_ms
            if high > 0.0 and self._stream_send_queue:
                self.simulator.schedule(
                    self.rng.uniform(low, high), self._flush_stream_queue
                )
            else:
                self._flush_stream_queue()

    def _on_ack_eliciting_received(self, space: PacketSpace) -> None:
        state = self.spaces[space]
        state.pending_ack_eliciting += 1
        if space is not PacketSpace.APPLICATION:
            # Handshake spaces: acknowledge promptly (RFC 9002 6.2.1 —
            # our handshake choreography piggybacks these ACKs, so a
            # standalone ACK is only needed if nothing else was sent).
            return
        if state.pending_ack_eliciting >= self.config.ack_eliciting_threshold:
            self._send_ack_now(space)
        else:
            generation = state.ack_timer_generation
            delay = self.config.max_ack_delay_ms
            self.simulator.schedule(
                delay, lambda: self._delayed_ack_fired(space, generation)
            )

    def _delayed_ack_fired(self, space: PacketSpace, generation: int) -> None:
        state = self.spaces[space]
        if self.closed or state.ack_timer_generation != generation:
            return
        if state.pending_ack_eliciting > 0:
            self._send_ack_now(space)

    def _send_ack_now(self, space: PacketSpace) -> None:
        self._send_packet(space, [self._build_ack_frame(space)])

    def _build_ack_frame(self, space: PacketSpace) -> AckFrame:
        state = self.spaces[space]
        if state.largest_received is None:
            raise RuntimeError("nothing to acknowledge")
        ranges = _pns_to_ranges(state.received_pns)
        delay_ms = max(0.0, self.simulator.now_ms - state.largest_received_time_ms)
        state.pending_ack_eliciting = 0
        state.ack_timer_generation += 1
        return AckFrame(
            largest_acknowledged=state.largest_received,
            ack_delay_us=int(delay_ms * 1000.0),
            ranges=ranges,
            ack_delay_exponent=self.config.ack_delay_exponent,
        )

    # ------------------------------------------------------------------
    # Crypto (handshake) choreography
    # ------------------------------------------------------------------

    def _handle_crypto(self, space: PacketSpace, frame: CryptoFrame) -> None:
        state = self.spaces[space]
        if state.crypto_message is not None:
            return  # flight already fully processed (retransmission)
        state.crypto_chunks[frame.offset] = frame.data
        buffered = _contiguous_prefix(state.crypto_chunks)
        message = _try_extract_message(buffered)
        if message is None:
            return
        state.crypto_message = message
        self._on_crypto_message(space)

    def _on_crypto_message(self, space: PacketSpace) -> None:
        if self.role is EndpointRole.SERVER and space is PacketSpace.INITIAL:
            stall = self.config.handshake_stall_ms
            if stall > 0.0:
                self.simulator.schedule(stall, self._server_send_handshake_flight)
            else:
                self._server_send_handshake_flight()
        elif self.role is EndpointRole.CLIENT and space is PacketSpace.HANDSHAKE:
            self._client_finish_handshake()
        elif self.role is EndpointRole.SERVER and space is PacketSpace.HANDSHAKE:
            self._server_confirm_handshake()

    def _server_send_handshake_flight(self) -> None:
        """Server: ClientHello processed — send SH + handshake flight.

        The ClientHello carries the client's transport parameters; the
        server's EncryptedExtensions (inside the handshake flight)
        carries its own.
        """
        if self.closed:
            return  # a stalled flight may fire after the client gave up
        self._learn_peer_params(self.spaces[PacketSpace.INITIAL].crypto_message)
        server_hello = _length_prefixed(b"\x02" * SERVER_HELLO_SIZE)
        flight = _length_prefixed(
            _handshake_body(
                self.local_params.encode(), SERVER_HANDSHAKE_FLIGHT_SIZE, 0x0B
            )
        )
        chunk_size = self.config.mtu_bytes - 80  # leave header room
        chunks = [flight[i : i + chunk_size] for i in range(0, len(flight), chunk_size)]

        initial_packet = self._build_packet(
            PacketSpace.INITIAL,
            [self._build_ack_frame(PacketSpace.INITIAL), CryptoFrame(0, server_hello)],
        )
        first_handshake = self._build_packet(
            PacketSpace.HANDSHAKE, [CryptoFrame(0, chunks[0])]
        )
        self._transmit_datagram([initial_packet, first_handshake])
        offset = len(chunks[0])
        for chunk in chunks[1:]:
            self._send_packet(PacketSpace.HANDSHAKE, [CryptoFrame(offset, chunk)])
            offset += len(chunk)
        self.handshake_complete = True
        if self.on_handshake_keys is not None:
            self.on_handshake_keys()

    def _client_finish_handshake(self) -> None:
        """Client: server flight processed — send Finished, enable 1-RTT.

        The client's second flight coalesces an Initial ACK (so the
        server's ServerHello packet is acknowledged and its probe timer
        disarmed) with the Handshake packet carrying ACK + Finished.
        """
        self._learn_peer_params(self.spaces[PacketSpace.HANDSHAKE].crypto_message)
        finished = _length_prefixed(b"\x14" * CLIENT_FINISHED_SIZE)
        flight = []
        if self.spaces[PacketSpace.INITIAL].largest_received is not None:
            # The server's Initial may still be in flight (reordered
            # behind the handshake packets); ack it only if seen.
            flight.append(
                self._build_packet(
                    PacketSpace.INITIAL, [self._build_ack_frame(PacketSpace.INITIAL)]
                )
            )
        flight.append(
            self._build_packet(
                PacketSpace.HANDSHAKE,
                [self._build_ack_frame(PacketSpace.HANDSHAKE), CryptoFrame(0, finished)],
            )
        )
        self._transmit_datagram(flight)
        self.handshake_complete = True
        if self.on_handshake_keys is not None:
            self.on_handshake_keys()

    def _server_confirm_handshake(self) -> None:
        """Server: client Finished processed — confirm via HANDSHAKE_DONE."""
        self.handshake_confirmed = True
        handshake_ack = self._build_packet(
            PacketSpace.HANDSHAKE, [self._build_ack_frame(PacketSpace.HANDSHAKE)]
        )
        alternate = ConnectionId.generate(self.rng, self.config.cid_length)
        done = self._build_packet(
            PacketSpace.APPLICATION,
            [
                HandshakeDoneFrame(),
                NewConnectionIdFrame(
                    sequence_number=1,
                    retire_prior_to=0,
                    connection_id=bytes(alternate),
                ),
            ],
        )
        self._transmit_datagram([handshake_ack, done])

    # ------------------------------------------------------------------
    # Connection migration (RFC 9000 Section 5.1.1 / 9)
    # ------------------------------------------------------------------

    def _issue_alternate_cids(self) -> None:
        """Send the peer ``issue_alternate_cids`` fresh CIDs in one packet.

        Sequence numbers start at 1: per RFC 9000 5.1.1 they are scoped
        to the issuer, and this endpoint's handshake CID implicitly holds
        sequence number 0.
        """
        frames: list[Frame] = []
        for sequence in range(1, self.config.issue_alternate_cids + 1):
            alternate = ConnectionId.generate(self.rng, self.config.cid_length)
            frames.append(
                NewConnectionIdFrame(
                    sequence_number=sequence,
                    retire_prior_to=0,
                    connection_id=bytes(alternate),
                )
            )
        self._send_packet(PacketSpace.APPLICATION, frames)

    def migrate_to_alternate_cid(self) -> ConnectionId | None:
        """Switch outgoing short headers to a peer-issued alternate CID.

        Returns the CID now in use, or ``None`` when the connection is
        closed or the peer never issued one (the caller retries later:
        the NEW_CONNECTION_ID flight may still be in flight).  The old
        CID is implicitly retired — it is never reused.
        """
        if self.closed or not self._peer_issued_cids:
            return None
        previous = self.remote_cid
        self.remote_cid = self._peer_issued_cids.pop(0)
        self._cid_rotated = True
        if self.recorder is not None:
            self.recorder.metadata.setdefault("cid_updates", []).append(
                {
                    "time_ms": self.simulator.now_ms,
                    "previous": previous.hex if previous is not None else None,
                    "current": self.remote_cid.hex,
                }
            )
        return self.remote_cid

    # ------------------------------------------------------------------
    # Stream handling
    # ------------------------------------------------------------------

    def _handle_stream(self, frame: StreamFrame) -> None:
        chunks = self._stream_recv.setdefault(frame.stream_id, {})
        delivered = self._stream_recv_delivered.setdefault(frame.stream_id, 0)
        if frame.offset + len(frame.data) > delivered:
            chunks[frame.offset] = frame.data
        if frame.fin:
            self._stream_recv_fin_at[frame.stream_id] = frame.offset + len(frame.data)

        # Deliver any newly contiguous bytes, in order.
        data = _contiguous_from(chunks, delivered)
        if not data and frame.fin is False:
            return
        new_delivered = delivered + len(data)
        self._stream_recv_delivered[frame.stream_id] = new_delivered
        fin_at = self._stream_recv_fin_at.get(frame.stream_id)
        fin_reached = fin_at is not None and new_delivered >= fin_at
        if self.on_stream_data is not None and (data or fin_reached):
            self.on_stream_data(frame.stream_id, data, fin_reached)

    def _flush_stream_queue(self) -> None:
        while (
            self._stream_send_queue
            and self._app_packets_in_flight < self._congestion_window
            and not self.closed
        ):
            stream_id, chunk, fin = self._stream_send_queue.pop(0)
            offset = self._stream_offsets_sent.setdefault(stream_id, 0)
            frames: list[Frame] = []
            state = self.spaces[PacketSpace.APPLICATION]
            if state.pending_ack_eliciting > 0:
                frames.append(self._build_ack_frame(PacketSpace.APPLICATION))
            frames.append(StreamFrame(stream_id, offset, chunk, fin))
            self._stream_offsets_sent[stream_id] = offset + len(chunk)
            self._send_packet(PacketSpace.APPLICATION, frames)
            self._app_packets_in_flight += 1

    # ------------------------------------------------------------------
    # Packet construction and transmission
    # ------------------------------------------------------------------

    def _build_packet(
        self, space: PacketSpace, frames: list[Frame], pad_to: int = 0
    ) -> QuicPacket:
        state = self.spaces[space]
        pn = state.next_pn
        state.next_pn += 1
        if self.remote_cid is None:
            raise RuntimeError("remote connection ID unknown")
        header: ShortHeader | LongHeader
        if space is PacketSpace.APPLICATION:
            rotate_after = self.config.rotate_cid_after_packets
            if (
                rotate_after is not None
                and not self._cid_rotated
                and self._app_packets_sent >= rotate_after
                and self._peer_issued_cids
            ):
                self.remote_cid = self._peer_issued_cids.pop(0)
                self._cid_rotated = True
            spin_value = self.spin.outgoing_value()
            interval = self.config.key_update_interval_packets
            if interval and self._app_packets_sent and self._app_packets_sent % interval == 0:
                self._key_phase = not self._key_phase
            self._app_packets_sent += 1
            header = ShortHeader(
                destination_cid=self.remote_cid,
                packet_number=pn,
                spin_bit=spin_value,
                key_phase=self._key_phase,
                vec=(
                    self.vec_state.vec_for_outgoing(spin_value)
                    if self.vec_state is not None
                    else 0
                ),
                largest_acked=state.largest_acked_by_peer,
            )
        else:
            header = LongHeader(
                long_type=(
                    LongPacketType.INITIAL
                    if space is PacketSpace.INITIAL
                    else LongPacketType.HANDSHAKE
                ),
                version=self.version,
                destination_cid=self.remote_cid,
                source_cid=self.local_cid,
                packet_number=pn,
                token=(
                    self._retry_token
                    if space is PacketSpace.INITIAL
                    and self.role is EndpointRole.CLIENT
                    else b""
                ),
                largest_acked=state.largest_acked_by_peer,
            )
        if pad_to:
            trial_length = len(QuicPacket(header=header, frames=tuple(frames)).encode())
            if trial_length < pad_to:
                frames = list(frames) + [PaddingFrame(pad_to - trial_length)]
        packet = QuicPacket(header=header, frames=tuple(frames))
        state.sent[pn] = _SentPacketInfo(
            time_ms=self.simulator.now_ms,
            frames=tuple(frames),
            ack_eliciting=packet.is_ack_eliciting,
        )
        return packet

    def _send_packet(
        self, space: PacketSpace, frames: list[Frame], pad_to: int = 0
    ) -> None:
        packet = self._build_packet(space, frames, pad_to=pad_to)
        self._transmit_datagram([packet])
        if packet.is_ack_eliciting:
            self._arm_pto(space, packet.header.packet_number)

    def _transmit_datagram(self, packets: list[QuicPacket]) -> None:
        if self.transport is None:
            raise RuntimeError("endpoint has no transport attached")
        data = encode_datagram(packets)
        now = self.simulator.now_ms
        if self._m_packets_sent is not None:
            self._m_packets_sent.inc(len(packets))
        if self.recorder is not None:
            for packet in packets:
                is_short = isinstance(packet.header, ShortHeader)
                self.recorder.on_packet_sent(
                    now,
                    packet.header.packet_type.value,
                    packet.header.packet_number,
                    packet.header.spin_bit if is_short else None,
                    len(data) if len(packets) == 1 else 0,
                    packet.header.vec if is_short else 0,
                )
        for packet in packets:
            info = self.spaces[_PACKET_TYPE_TO_SPACE[packet.header.packet_type]].sent[
                packet.header.packet_number
            ]
            if packet.is_ack_eliciting and info.ack_eliciting and len(packets) > 1:
                self._arm_pto(
                    _PACKET_TYPE_TO_SPACE[packet.header.packet_type],
                    packet.header.packet_number,
                )
        self.transport(data)
        reset_after = self.config.reset_after_packets
        if (
            reset_after is not None
            and not self._reset_fired
            and not self.closed
            and self._app_packets_sent >= reset_after
        ):
            # The fault-injected reset: schedule the close instead of
            # issuing it inline, because close() itself transmits.
            self._reset_fired = True
            self.simulator.schedule(
                0.0, lambda: self.close(error_code=0x01, is_application=False)
            )

    # ------------------------------------------------------------------
    # Loss recovery (probe timeout)
    # ------------------------------------------------------------------

    def _pto_interval_ms(self) -> float:
        if self.rtt_estimator.has_sample:
            return (
                self.rtt_estimator.smoothed_rtt_ms
                + 4.0 * self.rtt_estimator.rttvar_ms
                + self.config.max_ack_delay_ms
            )
        return self.config.pto_initial_ms

    def _arm_pto(self, space: PacketSpace, pn: int, retries: int = 0) -> None:
        self.simulator.schedule(
            self._pto_interval_ms() * (2**retries),
            lambda: self._pto_fired(space, pn, retries),
        )

    def _pto_fired(self, space: PacketSpace, pn: int, retries: int) -> None:
        if self.closed:
            return
        state = self.spaces[space]
        info = state.sent.get(pn)
        if info is None or info.acked or info.retransmitted:
            return
        if retries >= self.config.pto_max_retries:
            self.failed = f"pto exhausted in {space.value} space (pn {pn})"
            self.closed = True
            return
        info.retransmitted = True
        if space is PacketSpace.APPLICATION:
            # Loss response (NewReno-flavoured): halve the window.  The
            # retransmission inherits the lost packet's congestion slot,
            # so in-flight accounting is settled by its acknowledgment.
            self._congestion_window = max(2, self._congestion_window // 2)
        # Re-send the retransmittable frames in a fresh packet.
        frames = [
            frame
            for frame in info.frames
            if isinstance(frame, (CryptoFrame, StreamFrame, HandshakeDoneFrame, PingFrame))
        ]
        if not frames:
            return
        packet = self._build_packet(space, frames)
        self._transmit_datagram([packet])
        self._arm_pto(space, packet.header.packet_number, retries + 1)


# ----------------------------------------------------------------------
# Small helpers
# ----------------------------------------------------------------------


def _handshake_body(tp_block: bytes, nominal_size: int, filler: int) -> bytes:
    """A crypto-flight body: 2-byte TP length, TP block, opaque filler.

    The filler keeps each flight at its realistic nominal size so
    packetization and loss behaviour stay unchanged.
    """
    head = len(tp_block).to_bytes(2, "big") + tp_block
    if len(head) >= nominal_size:
        return head
    return head + bytes([filler]) * (nominal_size - len(head))


def _length_prefixed(body: bytes) -> bytes:
    """Crypto-flight framing: 4-byte big-endian length plus body."""
    return len(body).to_bytes(4, "big") + body


def _try_extract_message(buffered: bytes) -> bytes | None:
    """Return the flight body once the full length-prefixed blob arrived."""
    if len(buffered) < 4:
        return None
    body_length = int.from_bytes(buffered[:4], "big")
    if len(buffered) < 4 + body_length:
        return None
    return buffered[4 : 4 + body_length]


def _contiguous_prefix(chunks: dict[int, bytes]) -> bytes:
    """Concatenate chunks starting at offset 0 while contiguous."""
    return _contiguous_from(chunks, 0, consume=False)


def _contiguous_from(chunks: dict[int, bytes], start: int, consume: bool = True) -> bytes:
    """Pull contiguous bytes from an offset-indexed chunk buffer.

    Overlapping retransmissions are tolerated: a chunk whose range was
    already (partly) delivered contributes only its new suffix.
    """
    parts: list[bytes] = []
    position = start
    while True:
        advanced = False
        for offset in sorted(chunks):
            data = chunks[offset]
            if offset <= position < offset + len(data):
                parts.append(data[position - offset :])
                position = offset + len(data)
                if consume:
                    del chunks[offset]
                advanced = True
                break
            if consume and offset + len(data) <= position:
                del chunks[offset]
        if not advanced:
            break
    return b"".join(parts)


def _pns_to_ranges(pns: set[int]):
    """Convert a set of packet numbers into descending AckRanges."""
    from repro.quic.frames import AckRange

    ordered = sorted(pns, reverse=True)
    ranges = []
    range_largest = ordered[0]
    previous = ordered[0]
    for pn in ordered[1:]:
        if pn == previous - 1:
            previous = pn
            continue
        ranges.append(AckRange(previous, range_largest))
        range_largest = pn
        previous = pn
    ranges.append(AckRange(previous, range_largest))
    return tuple(ranges)
