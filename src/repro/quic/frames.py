"""QUIC frames (RFC 9000, Section 19) — the subset the scanner exercises.

The measurement traffic of the paper is simple web traffic: handshake
CRYPTO exchanges, STREAM data for the HTTP/3 request/response, ACKs
(whose ``ack_delay`` feeds the stack's RTT estimator that Figures 3/4
use as the baseline), plus connection-management frames.  Every frame
here round-trips through its wire encoding; the endpoints exchange real
frame bytes inside packet payloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.quic.varint import decode_varint, encode_varint

__all__ = [
    "AckFrame",
    "AckRange",
    "ConnectionCloseFrame",
    "CryptoFrame",
    "Frame",
    "FrameParseError",
    "HandshakeDoneFrame",
    "NewConnectionIdFrame",
    "PaddingFrame",
    "PingFrame",
    "StreamFrame",
    "decode_frames",
    "encode_frames",
]


class FrameParseError(ValueError):
    """Raised when payload bytes cannot be parsed as QUIC frames."""


@dataclass
class Frame:
    """Base class for all frames."""

    def encode(self) -> bytes:  # pragma: no cover - abstract
        raise NotImplementedError

    @property
    def is_ack_eliciting(self) -> bool:
        """Whether receipt of this frame forces the peer to send an ACK."""
        return True


@dataclass
class PaddingFrame(Frame):
    """PADDING (type 0x00); ``length`` consecutive zero bytes."""

    length: int = 1

    def encode(self) -> bytes:
        return b"\x00" * self.length

    @property
    def is_ack_eliciting(self) -> bool:
        return False


@dataclass
class PingFrame(Frame):
    """PING (type 0x01)."""

    def encode(self) -> bytes:
        return b"\x01"


@dataclass(frozen=True)
class AckRange:
    """A contiguous range of acknowledged packet numbers, inclusive."""

    smallest: int
    largest: int

    def __post_init__(self) -> None:
        if self.smallest < 0 or self.largest < self.smallest:
            raise ValueError(f"invalid ack range [{self.smallest}, {self.largest}]")


@dataclass
class AckFrame(Frame):
    """ACK (type 0x02).

    ``ack_delay_us`` is the *decoded* delay in microseconds; the encoder
    applies ``ack_delay_exponent`` (default 3 per RFC 9000).  The RTT
    estimator subtracts this delay from the latest RTT sample, which is
    exactly the "processing delays as reported by the other host" the
    paper's Section 3.3 refers to.
    """

    largest_acknowledged: int
    ack_delay_us: int = 0
    ranges: Sequence[AckRange] = field(default_factory=tuple)
    ack_delay_exponent: int = 3

    def __post_init__(self) -> None:
        if not self.ranges:
            self.ranges = (AckRange(self.largest_acknowledged, self.largest_acknowledged),)
        ordered = sorted(self.ranges, key=lambda r: r.largest, reverse=True)
        if ordered[0].largest != self.largest_acknowledged:
            raise ValueError("largest_acknowledged must equal the top range's largest")
        self.ranges = tuple(ordered)

    @property
    def is_ack_eliciting(self) -> bool:
        return False

    def acked_packet_numbers(self) -> list[int]:
        """All packet numbers covered by this frame, descending."""
        numbers: list[int] = []
        for rng in self.ranges:
            numbers.extend(range(rng.largest, rng.smallest - 1, -1))
        return numbers

    def encode(self) -> bytes:
        parts = [b"\x02", encode_varint(self.largest_acknowledged)]
        parts.append(encode_varint(self.ack_delay_us >> self.ack_delay_exponent))
        parts.append(encode_varint(len(self.ranges) - 1))
        first = self.ranges[0]
        parts.append(encode_varint(first.largest - first.smallest))
        previous_smallest = first.smallest
        for rng in self.ranges[1:]:
            gap = previous_smallest - rng.largest - 2
            if gap < 0:
                raise ValueError("ack ranges overlap or touch")
            parts.append(encode_varint(gap))
            parts.append(encode_varint(rng.largest - rng.smallest))
            previous_smallest = rng.smallest
        return b"".join(parts)


@dataclass
class CryptoFrame(Frame):
    """CRYPTO (type 0x06) — carries handshake bytes."""

    offset: int
    data: bytes

    def encode(self) -> bytes:
        return b"\x06" + encode_varint(self.offset) + encode_varint(len(self.data)) + self.data


@dataclass
class StreamFrame(Frame):
    """STREAM (types 0x08-0x0f) with explicit offset, length, and FIN."""

    stream_id: int
    offset: int
    data: bytes
    fin: bool = False

    def encode(self) -> bytes:
        # OFF and LEN bits always set for unambiguous round-tripping.
        frame_type = 0x08 | 0x04 | 0x02 | (0x01 if self.fin else 0x00)
        return (
            bytes([frame_type])
            + encode_varint(self.stream_id)
            + encode_varint(self.offset)
            + encode_varint(len(self.data))
            + self.data
        )


@dataclass
class NewConnectionIdFrame(Frame):
    """NEW_CONNECTION_ID (type 0x18), simplified (no stateless reset token use)."""

    sequence_number: int
    retire_prior_to: int
    connection_id: bytes
    stateless_reset_token: bytes = b"\x00" * 16

    def __post_init__(self) -> None:
        if not 1 <= len(self.connection_id) <= 20:
            raise ValueError("NEW_CONNECTION_ID requires a 1..20 byte CID")
        if len(self.stateless_reset_token) != 16:
            raise ValueError("stateless reset token must be 16 bytes")

    def encode(self) -> bytes:
        return (
            b"\x18"
            + encode_varint(self.sequence_number)
            + encode_varint(self.retire_prior_to)
            + bytes([len(self.connection_id)])
            + self.connection_id
            + self.stateless_reset_token
        )


@dataclass
class HandshakeDoneFrame(Frame):
    """HANDSHAKE_DONE (type 0x1e), sent by the server only."""

    def encode(self) -> bytes:
        return b"\x1e"


@dataclass
class ConnectionCloseFrame(Frame):
    """CONNECTION_CLOSE (type 0x1c transport / 0x1d application)."""

    error_code: int = 0
    frame_type: int = 0
    reason: bytes = b""
    is_application: bool = False

    def encode(self) -> bytes:
        if self.is_application:
            return (
                b"\x1d"
                + encode_varint(self.error_code)
                + encode_varint(len(self.reason))
                + self.reason
            )
        return (
            b"\x1c"
            + encode_varint(self.error_code)
            + encode_varint(self.frame_type)
            + encode_varint(len(self.reason))
            + self.reason
        )

    @property
    def is_ack_eliciting(self) -> bool:
        return False


def encode_frames(frames: Sequence[Frame]) -> bytes:
    """Serialize a sequence of frames into a packet payload."""
    return b"".join(frame.encode() for frame in frames)


def decode_frames(payload: bytes, ack_delay_exponent: int = 3) -> list[Frame]:
    """Parse a packet payload into frames.

    Unknown frame types raise :class:`FrameParseError` — the endpoints in
    this package only ever emit the types above, so an unknown type
    indicates corruption.
    """
    frames: list[Frame] = []
    offset = 0
    length = len(payload)
    while offset < length:
        frame_type = payload[offset]
        if frame_type == 0x00:
            run_start = offset
            while offset < length and payload[offset] == 0x00:
                offset += 1
            frames.append(PaddingFrame(length=offset - run_start))
        elif frame_type == 0x01:
            frames.append(PingFrame())
            offset += 1
        elif frame_type == 0x02:
            frame, offset = _decode_ack(payload, offset + 1, ack_delay_exponent)
            frames.append(frame)
        elif frame_type == 0x06:
            frame, offset = _decode_crypto(payload, offset + 1)
            frames.append(frame)
        elif 0x08 <= frame_type <= 0x0F:
            frame, offset = _decode_stream(payload, offset, frame_type)
            frames.append(frame)
        elif frame_type == 0x18:
            frame, offset = _decode_new_connection_id(payload, offset + 1)
            frames.append(frame)
        elif frame_type == 0x1E:
            frames.append(HandshakeDoneFrame())
            offset += 1
        elif frame_type in (0x1C, 0x1D):
            frame, offset = _decode_connection_close(payload, offset + 1, frame_type)
            frames.append(frame)
        else:
            raise FrameParseError(f"unknown frame type 0x{frame_type:02x} at {offset}")
    return frames


def _decode_ack(payload: bytes, offset: int, ack_delay_exponent: int) -> tuple[AckFrame, int]:
    largest, offset = decode_varint(payload, offset)
    raw_delay, offset = decode_varint(payload, offset)
    range_count, offset = decode_varint(payload, offset)
    first_range, offset = decode_varint(payload, offset)
    ranges = [AckRange(largest - first_range, largest)]
    previous_smallest = largest - first_range
    for _ in range(range_count):
        gap, offset = decode_varint(payload, offset)
        range_length, offset = decode_varint(payload, offset)
        range_largest = previous_smallest - gap - 2
        range_smallest = range_largest - range_length
        if range_smallest < 0:
            raise FrameParseError("ACK range underflows packet number 0")
        ranges.append(AckRange(range_smallest, range_largest))
        previous_smallest = range_smallest
    frame = AckFrame(
        largest_acknowledged=largest,
        ack_delay_us=raw_delay << ack_delay_exponent,
        ranges=tuple(ranges),
        ack_delay_exponent=ack_delay_exponent,
    )
    return frame, offset


def _decode_crypto(payload: bytes, offset: int) -> tuple[CryptoFrame, int]:
    data_offset, offset = decode_varint(payload, offset)
    data_length, offset = decode_varint(payload, offset)
    if offset + data_length > len(payload):
        raise FrameParseError("CRYPTO frame data truncated")
    data = payload[offset : offset + data_length]
    return CryptoFrame(offset=data_offset, data=data), offset + data_length


def _decode_stream(payload: bytes, offset: int, frame_type: int) -> tuple[StreamFrame, int]:
    has_offset = bool(frame_type & 0x04)
    has_length = bool(frame_type & 0x02)
    fin = bool(frame_type & 0x01)
    offset += 1
    stream_id, offset = decode_varint(payload, offset)
    data_offset = 0
    if has_offset:
        data_offset, offset = decode_varint(payload, offset)
    if has_length:
        data_length, offset = decode_varint(payload, offset)
    else:
        data_length = len(payload) - offset
    if offset + data_length > len(payload):
        raise FrameParseError("STREAM frame data truncated")
    data = payload[offset : offset + data_length]
    return (
        StreamFrame(stream_id=stream_id, offset=data_offset, data=data, fin=fin),
        offset + data_length,
    )


def _decode_new_connection_id(payload: bytes, offset: int) -> tuple[NewConnectionIdFrame, int]:
    sequence_number, offset = decode_varint(payload, offset)
    retire_prior_to, offset = decode_varint(payload, offset)
    if offset >= len(payload):
        raise FrameParseError("NEW_CONNECTION_ID truncated at CID length")
    cid_length = payload[offset]
    offset += 1
    if offset + cid_length + 16 > len(payload):
        raise FrameParseError("NEW_CONNECTION_ID truncated")
    cid = payload[offset : offset + cid_length]
    offset += cid_length
    token = payload[offset : offset + 16]
    offset += 16
    return (
        NewConnectionIdFrame(
            sequence_number=sequence_number,
            retire_prior_to=retire_prior_to,
            connection_id=cid,
            stateless_reset_token=token,
        ),
        offset,
    )


def _decode_connection_close(
    payload: bytes, offset: int, frame_type: int
) -> tuple[ConnectionCloseFrame, int]:
    error_code, offset = decode_varint(payload, offset)
    inner_type = 0
    if frame_type == 0x1C:
        inner_type, offset = decode_varint(payload, offset)
    reason_length, offset = decode_varint(payload, offset)
    if offset + reason_length > len(payload):
        raise FrameParseError("CONNECTION_CLOSE reason truncated")
    reason = payload[offset : offset + reason_length]
    offset += reason_length
    return (
        ConnectionCloseFrame(
            error_code=error_code,
            frame_type=inner_type,
            reason=reason,
            is_application=(frame_type == 0x1D),
        ),
        offset,
    )
