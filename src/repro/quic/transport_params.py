"""QUIC transport parameters (RFC 9000, Section 18).

Endpoints announce their transport configuration inside the TLS
handshake as a sequence of ``(id, length, value)`` records.  Two of
them matter directly to this study's RTT machinery:

* ``ack_delay_exponent`` (0x0a) scales the ACK frame's delay field —
  an observer or peer decoding ACK delays with the wrong exponent
  mis-corrects every RTT sample;
* ``max_ack_delay`` (0x0b) bounds how much peer-reported delay the
  RFC 9002 estimator may subtract.

The codec is byte-exact; unknown parameter IDs are preserved opaquely
(QUIC requires ignoring them, and real stacks grease this space).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.quic.varint import decode_varint, encode_varint

__all__ = ["TransportParameters", "decode_transport_parameters"]

_ID_MAX_IDLE_TIMEOUT = 0x01
_ID_MAX_UDP_PAYLOAD_SIZE = 0x03
_ID_INITIAL_MAX_DATA = 0x04
_ID_ACK_DELAY_EXPONENT = 0x0A
_ID_MAX_ACK_DELAY = 0x0B
_ID_ACTIVE_CID_LIMIT = 0x0E


@dataclass(frozen=True)
class TransportParameters:
    """The announced transport configuration of one endpoint."""

    max_idle_timeout_ms: int = 30_000
    max_udp_payload_size: int = 1_452
    initial_max_data: int = 1_048_576
    ack_delay_exponent: int = 3
    max_ack_delay_ms: int = 25
    active_connection_id_limit: int = 4
    #: Unknown/greased parameters carried through opaquely.
    unknown: tuple[tuple[int, bytes], ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not 0 <= self.ack_delay_exponent <= 20:
            raise ValueError("ack_delay_exponent must be in [0, 20] (RFC 9000 18.2)")
        if self.max_ack_delay_ms < 0 or self.max_ack_delay_ms >= 2**14:
            raise ValueError("max_ack_delay must be in [0, 2^14) ms")

    def encode(self) -> bytes:
        """Serialize to the RFC 9000 wire format."""
        parts = []
        for param_id, value in (
            (_ID_MAX_IDLE_TIMEOUT, self.max_idle_timeout_ms),
            (_ID_MAX_UDP_PAYLOAD_SIZE, self.max_udp_payload_size),
            (_ID_INITIAL_MAX_DATA, self.initial_max_data),
            (_ID_ACK_DELAY_EXPONENT, self.ack_delay_exponent),
            (_ID_MAX_ACK_DELAY, self.max_ack_delay_ms),
            (_ID_ACTIVE_CID_LIMIT, self.active_connection_id_limit),
        ):
            encoded = encode_varint(value)
            parts.append(encode_varint(param_id))
            parts.append(encode_varint(len(encoded)))
            parts.append(encoded)
        for param_id, blob in self.unknown:
            parts.append(encode_varint(param_id))
            parts.append(encode_varint(len(blob)))
            parts.append(blob)
        return b"".join(parts)


def decode_transport_parameters(data: bytes) -> TransportParameters:
    """Parse a transport-parameter block.

    Raises :class:`ValueError` on truncation; unknown IDs are collected,
    not rejected.
    """
    offset = 0
    values: dict[int, int] = {}
    unknown: list[tuple[int, bytes]] = []
    known_ids = {
        _ID_MAX_IDLE_TIMEOUT,
        _ID_MAX_UDP_PAYLOAD_SIZE,
        _ID_INITIAL_MAX_DATA,
        _ID_ACK_DELAY_EXPONENT,
        _ID_MAX_ACK_DELAY,
        _ID_ACTIVE_CID_LIMIT,
    }
    while offset < len(data):
        param_id, offset = decode_varint(data, offset)
        length, offset = decode_varint(data, offset)
        if offset + length > len(data):
            raise ValueError(f"transport parameter 0x{param_id:x} truncated")
        blob = data[offset : offset + length]
        offset += length
        if param_id in known_ids:
            value, consumed = decode_varint(blob, 0)
            if consumed != len(blob):
                raise ValueError(f"transport parameter 0x{param_id:x} malformed")
            values[param_id] = value
        else:
            unknown.append((param_id, blob))
    defaults = TransportParameters()
    return TransportParameters(
        max_idle_timeout_ms=values.get(_ID_MAX_IDLE_TIMEOUT, defaults.max_idle_timeout_ms),
        max_udp_payload_size=values.get(
            _ID_MAX_UDP_PAYLOAD_SIZE, defaults.max_udp_payload_size
        ),
        initial_max_data=values.get(_ID_INITIAL_MAX_DATA, defaults.initial_max_data),
        ack_delay_exponent=values.get(
            _ID_ACK_DELAY_EXPONENT, defaults.ack_delay_exponent
        ),
        max_ack_delay_ms=values.get(_ID_MAX_ACK_DELAY, defaults.max_ack_delay_ms),
        active_connection_id_limit=values.get(
            _ID_ACTIVE_CID_LIMIT, defaults.active_connection_id_limit
        ),
        unknown=tuple(unknown),
    )
