"""QUIC connection identifiers.

Connection IDs matter to this study for two reasons: short headers carry
the destination connection ID (so a passive observer must know its
length to parse the header at all), and RFC 9312 allows greasing the
spin bit *per connection ID*, which the configuration analysis of the
paper (Table 3) has to distinguish from per-packet greasing.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

__all__ = ["ConnectionId"]


@dataclass(frozen=True)
class ConnectionId:
    """An immutable QUIC connection ID (0 to 20 bytes)."""

    value: bytes

    MAX_LENGTH = 20

    def __post_init__(self) -> None:
        if len(self.value) > self.MAX_LENGTH:
            raise ValueError(
                f"connection ID too long: {len(self.value)} > {self.MAX_LENGTH}"
            )

    @classmethod
    def generate(cls, rng: random.Random, length: int = 8) -> "ConnectionId":
        """Generate a random connection ID of ``length`` bytes.

        One ``rng.randbytes`` draw rather than a per-byte
        ``getrandbits(8)`` loop: a single underlying ``getrandbits``
        call instead of ``length`` of them.  Note this consumes the RNG
        stream differently than the per-byte form did, so CID values
        (and everything downstream of the same ``random.Random``
        instance) differ from pre-change runs at the same seed — see the
        seed-compatibility note in ``tests/test_connection_id.py``.
        """
        if not 0 <= length <= cls.MAX_LENGTH:
            raise ValueError(f"invalid connection ID length: {length}")
        return cls(rng.randbytes(length))

    def __len__(self) -> int:
        return len(self.value)

    def __bytes__(self) -> bytes:
        return self.value

    @property
    def hex(self) -> str:
        """Hexadecimal rendering used in qlog output."""
        return self.value.hex()

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.hex or "(empty)"
