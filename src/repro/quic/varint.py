"""QUIC variable-length integer encoding (RFC 9000, Section 16).

QUIC encodes integers in 1, 2, 4, or 8 bytes; the two most significant
bits of the first byte hold the length exponent.  Frame and header
parsing throughout :mod:`repro.quic` builds on these two functions, and
the property-based tests assert the round-trip and canonical-length
invariants the RFC specifies.
"""

from __future__ import annotations

__all__ = ["MAX_VARINT", "decode_varint", "encode_varint", "varint_length"]

MAX_VARINT = (1 << 62) - 1

_ONE_BYTE_MAX = (1 << 6) - 1
_TWO_BYTE_MAX = (1 << 14) - 1
_FOUR_BYTE_MAX = (1 << 30) - 1


class VarintError(ValueError):
    """Raised when a varint cannot be encoded or decoded."""


def varint_length(value: int) -> int:
    """Number of bytes the canonical encoding of ``value`` occupies."""
    if value < 0 or value > MAX_VARINT:
        raise VarintError(f"varint out of range: {value}")
    if value <= _ONE_BYTE_MAX:
        return 1
    if value <= _TWO_BYTE_MAX:
        return 2
    if value <= _FOUR_BYTE_MAX:
        return 4
    return 8


def encode_varint(value: int) -> bytes:
    """Encode ``value`` as a canonical (shortest-form) QUIC varint."""
    length = varint_length(value)
    if length == 1:
        return bytes([value])
    if length == 2:
        return bytes([0x40 | (value >> 8), value & 0xFF])
    if length == 4:
        encoded = value.to_bytes(4, "big")
        return bytes([0x80 | encoded[0]]) + encoded[1:]
    encoded = value.to_bytes(8, "big")
    return bytes([0xC0 | encoded[0]]) + encoded[1:]


def decode_varint(data: bytes, offset: int = 0) -> tuple[int, int]:
    """Decode a varint from ``data`` starting at ``offset``.

    Returns ``(value, new_offset)`` where ``new_offset`` points just past
    the consumed bytes.  Raises :class:`VarintError` on truncation.
    """
    if offset >= len(data):
        raise VarintError("varint truncated: no bytes available")
    first = data[offset]
    length = 1 << (first >> 6)
    if offset + length > len(data):
        raise VarintError(
            f"varint truncated: need {length} bytes, have {len(data) - offset}"
        )
    value = first & 0x3F
    for i in range(1, length):
        value = (value << 8) | data[offset + i]
    return value, offset + length
