"""QUIC packet headers: byte-exact encoding and decoding.

The passive observer in this study sees *wire bytes*, not parsed
structures, so the header codec implements the exact RFC 9000 layouts:

Short header (1-RTT; the only packets that carry the spin bit)::

    +-+-+-+-+-+-+-+-+
    |0|1|S|R|R|K|P P|   S = spin bit, K = key phase, PP = pn length - 1
    +-+-+-+-+-+-+-+-+
    | DCID (0..160) ...
    | Packet Number (8/16/24/32) ...
    | Protected Payload ...

Long header (Initial / 0-RTT / Handshake / Retry; never spins)::

    +-+-+-+-+-+-+-+-+
    |1|1|T T|X X X X|
    +-+-+-+-+-+-+-+-+
    | Version (32) | DCID Len (8) | DCID .. | SCID Len (8) | SCID ..
    | [type-specific fields] | Length | Packet Number | Payload ...

Encryption is *not* applied (see DESIGN.md Section 6): the spin bit and
every field the observer reads are unprotected in real QUIC as well, and
the analysis never looks at payload plaintext.  Reserved bits are
emitted as zero as the RFC requires post-header-protection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.quic.connection_id import ConnectionId
from repro.quic.packet_number import encode_packet_number
from repro.quic.varint import decode_varint, encode_varint

__all__ = [
    "HeaderParseError",
    "LongHeader",
    "LongPacketType",
    "PacketType",
    "ShortHeader",
    "VersionNegotiationHeader",
    "parse_header",
]

_FORM_BIT = 0x80
_FIXED_BIT = 0x40
_SPIN_BIT = 0x20
_RESERVED_MASK = 0x18
_RESERVED_SHIFT = 3
_KEY_PHASE_BIT = 0x04
_PN_LENGTH_MASK = 0x03
_LONG_TYPE_MASK = 0x30


class HeaderParseError(ValueError):
    """Raised when bytes cannot be parsed as a QUIC packet header."""


class LongPacketType(Enum):
    """The four long-header packet types of QUIC v1."""

    INITIAL = 0x0
    ZERO_RTT = 0x1
    HANDSHAKE = 0x2
    RETRY = 0x3


class PacketType(Enum):
    """Coarse packet classification used by endpoints and qlog."""

    INITIAL = "initial"
    ZERO_RTT = "0RTT"
    HANDSHAKE = "handshake"
    RETRY = "retry"
    ONE_RTT = "1RTT"
    VERSION_NEGOTIATION = "version_negotiation"

    @property
    def is_long_header(self) -> bool:
        return self is not PacketType.ONE_RTT


_LONG_TYPE_TO_PACKET_TYPE = {
    LongPacketType.INITIAL: PacketType.INITIAL,
    LongPacketType.ZERO_RTT: PacketType.ZERO_RTT,
    LongPacketType.HANDSHAKE: PacketType.HANDSHAKE,
    LongPacketType.RETRY: PacketType.RETRY,
}


@dataclass
class ShortHeader:
    """A parsed or to-be-encoded 1-RTT (short) packet header.

    ``vec`` occupies the two reserved bits.  In RFC-compliant QUIC these
    are always zero (post header protection); De Vaere et al.'s original
    three-bit spin proposal used them for the Valid Edge Counter, which
    this package implements as an optional extension
    (:mod:`repro.core.vec`).
    """

    destination_cid: ConnectionId
    packet_number: int
    spin_bit: bool = False
    key_phase: bool = False
    vec: int = 0
    largest_acked: int | None = None
    #: Filled in by :func:`parse_header`: the truncated on-wire packet
    #: number and its length; encoding recomputes them.
    pn_length: int = field(default=0)

    packet_type: PacketType = field(default=PacketType.ONE_RTT, init=False)

    def __post_init__(self) -> None:
        if not 0 <= self.vec <= 3:
            raise ValueError(f"VEC must be a 2-bit value, got {self.vec}")

    def encode(self) -> bytes:
        """Serialize the header (first byte through packet number)."""
        pn_bytes = encode_packet_number(self.packet_number, self.largest_acked)
        first = _FIXED_BIT | (len(pn_bytes) - 1) | (self.vec << _RESERVED_SHIFT)
        if self.spin_bit:
            first |= _SPIN_BIT
        if self.key_phase:
            first |= _KEY_PHASE_BIT
        # Short headers are encoded once per simulated packet, so this
        # is the hottest codec path; a single bytearray avoids the
        # intermediate bytes objects of chained concatenation.
        buf = bytearray((first,))
        buf += self.destination_cid.value
        buf += pn_bytes
        return bytes(buf)


@dataclass
class LongHeader:
    """A parsed or to-be-encoded long packet header."""

    long_type: LongPacketType
    version: int
    destination_cid: ConnectionId
    source_cid: ConnectionId
    packet_number: int = 0
    token: bytes = b""
    payload_length: int = 0
    largest_acked: int | None = None
    pn_length: int = field(default=0)

    @property
    def packet_type(self) -> PacketType:
        return _LONG_TYPE_TO_PACKET_TYPE[self.long_type]

    def encode(self) -> bytes:
        """Serialize the header (first byte through packet number)."""
        pn_bytes = encode_packet_number(self.packet_number, self.largest_acked)
        first = _FORM_BIT | _FIXED_BIT | (self.long_type.value << 4) | (len(pn_bytes) - 1)
        parts = [
            bytes((first,)),
            self.version.to_bytes(4, "big"),
            bytes((len(self.destination_cid),)),
            self.destination_cid.value,
            bytes((len(self.source_cid),)),
            self.source_cid.value,
        ]
        if self.long_type is LongPacketType.INITIAL:
            parts.append(encode_varint(len(self.token)))
            parts.append(self.token)
        if self.long_type is LongPacketType.RETRY:
            # The retry token runs to the end of the packet.
            parts.append(self.token)
        else:
            # Length covers packet number + payload (RFC 9000 17.2).
            parts.append(encode_varint(len(pn_bytes) + self.payload_length))
            parts.append(pn_bytes)
        return b"".join(parts)


@dataclass
class VersionNegotiationHeader:
    """A Version Negotiation packet (RFC 9000 Section 17.2.1).

    Sent by a server that does not support the version of a received
    Initial; carries the server's supported version list.  It has no
    packet number, no frames, and always occupies a whole datagram.
    """

    destination_cid: ConnectionId
    source_cid: ConnectionId
    supported_versions: tuple[int, ...]

    packet_type: PacketType = field(default=PacketType.VERSION_NEGOTIATION, init=False)

    def __post_init__(self) -> None:
        if not self.supported_versions:
            raise ValueError("a VN packet must list at least one version")

    def encode(self) -> bytes:
        parts = [
            bytes((_FORM_BIT | _FIXED_BIT,)),  # unused bits; fixed set
            (0).to_bytes(4, "big"),  # version 0 marks negotiation
            bytes((len(self.destination_cid),)),
            self.destination_cid.value,
            bytes((len(self.source_cid),)),
            self.source_cid.value,
        ]
        for version in self.supported_versions:
            parts.append(int(version).to_bytes(4, "big"))
        return b"".join(parts)


def parse_header(
    data: bytes, short_dcid_length: int
) -> tuple[ShortHeader | LongHeader | VersionNegotiationHeader, int]:
    """Parse a packet header from wire bytes.

    Returns ``(header, payload_offset)``.  ``short_dcid_length`` is the
    connection-ID length a deployment uses for short headers — passive
    observers must know it out of band, exactly as on-path spin-bit
    observers do in practice.

    The returned packet numbers are the *truncated* on-wire values;
    callers reconstruct full numbers via
    :func:`repro.quic.packet_number.decode_packet_number` with their own
    per-direction state.
    """
    if not data:
        raise HeaderParseError("empty packet")
    first = data[0]
    if not first & _FIXED_BIT:
        raise HeaderParseError("fixed bit is zero (not a QUIC v1/draft packet)")
    if first & _FORM_BIT:
        return _parse_long_header(data)
    return _parse_short_header(data, short_dcid_length)


def _parse_short_header(data: bytes, dcid_length: int) -> tuple[ShortHeader, int]:
    first = data[0]
    pn_length = (first & _PN_LENGTH_MASK) + 1
    offset = 1
    if len(data) < offset + dcid_length + pn_length:
        raise HeaderParseError("short header truncated")
    dcid = ConnectionId(data[offset : offset + dcid_length])
    offset += dcid_length
    truncated_pn = int.from_bytes(data[offset : offset + pn_length], "big")
    offset += pn_length
    header = ShortHeader(
        destination_cid=dcid,
        packet_number=truncated_pn,
        spin_bit=bool(first & _SPIN_BIT),
        key_phase=bool(first & _KEY_PHASE_BIT),
        vec=(first & _RESERVED_MASK) >> _RESERVED_SHIFT,
    )
    header.pn_length = pn_length
    return header, offset


def _parse_long_header(data: bytes) -> tuple[LongHeader | VersionNegotiationHeader, int]:
    first = data[0]
    if len(data) < 7:
        raise HeaderParseError("long header truncated before version")
    version = int.from_bytes(data[1:5], "big")
    if version == 0:
        return _parse_version_negotiation(data)
    long_type = LongPacketType((first & _LONG_TYPE_MASK) >> 4)
    offset = 5
    dcid_len = data[offset]
    offset += 1
    if dcid_len > ConnectionId.MAX_LENGTH or len(data) < offset + dcid_len + 1:
        raise HeaderParseError("long header DCID truncated")
    dcid = ConnectionId(data[offset : offset + dcid_len])
    offset += dcid_len
    scid_len = data[offset]
    offset += 1
    if scid_len > ConnectionId.MAX_LENGTH or len(data) < offset + scid_len:
        raise HeaderParseError("long header SCID truncated")
    scid = ConnectionId(data[offset : offset + scid_len])
    offset += scid_len

    token = b""
    if long_type is LongPacketType.INITIAL:
        token_length, offset = decode_varint(data, offset)
        if len(data) < offset + token_length:
            raise HeaderParseError("initial token truncated")
        token = data[offset : offset + token_length]
        offset += token_length

    if long_type is LongPacketType.RETRY:
        # A Retry carries its token (the integrity tag is not modelled)
        # in the remainder of the datagram; it is never coalesced.
        token = data[offset:]
        offset = len(data)
    header = LongHeader(
        long_type=long_type,
        version=version,
        destination_cid=dcid,
        source_cid=scid,
        token=token,
    )
    if long_type is LongPacketType.RETRY:
        return header, offset

    length, offset = decode_varint(data, offset)
    pn_length = (first & _PN_LENGTH_MASK) + 1
    if len(data) < offset + pn_length:
        raise HeaderParseError("long header packet number truncated")
    header.packet_number = int.from_bytes(data[offset : offset + pn_length], "big")
    header.pn_length = pn_length
    header.payload_length = length - pn_length
    offset += pn_length
    return header, offset


def _parse_version_negotiation(data: bytes) -> tuple[VersionNegotiationHeader, int]:
    offset = 5
    if offset >= len(data):
        raise HeaderParseError("VN packet truncated at DCID length")
    dcid_len = data[offset]
    offset += 1
    if dcid_len > ConnectionId.MAX_LENGTH or len(data) < offset + dcid_len + 1:
        raise HeaderParseError("VN packet DCID truncated")
    dcid = ConnectionId(data[offset : offset + dcid_len])
    offset += dcid_len
    scid_len = data[offset]
    offset += 1
    if scid_len > ConnectionId.MAX_LENGTH or len(data) < offset + scid_len:
        raise HeaderParseError("VN packet SCID truncated")
    scid = ConnectionId(data[offset : offset + scid_len])
    offset += scid_len
    remainder = data[offset:]
    if not remainder or len(remainder) % 4 != 0:
        raise HeaderParseError("VN version list malformed")
    versions = tuple(
        int.from_bytes(remainder[i : i + 4], "big") for i in range(0, len(remainder), 4)
    )
    return (
        VersionNegotiationHeader(
            destination_cid=dcid, source_cid=scid, supported_versions=versions
        ),
        len(data),
    )
