"""QUIC version handling.

The paper's scanner (zgrab2 + quic-go) speaks QUIC version 1 and was
extended for draft versions 27, 29, 32, and 34.  The spin bit is a
*version-specific* feature of QUIC v1 (RFC 9000 Section 17.4) that the
drafts in this range also carried, so the observer must know which
versions it may interpret the first short-header bit for.
"""

from __future__ import annotations

from enum import IntEnum

__all__ = ["QuicVersion", "SUPPORTED_VERSIONS", "is_spin_capable_version"]


class QuicVersion(IntEnum):
    """Wire values of the QUIC versions the reproduction scanner supports."""

    VERSION_1 = 0x00000001
    DRAFT_27 = 0xFF00001B
    DRAFT_29 = 0xFF00001D
    DRAFT_32 = 0xFF000020
    DRAFT_34 = 0xFF000022
    # Version negotiation packets carry version 0; kept for completeness.
    NEGOTIATION = 0x00000000

    @property
    def is_draft(self) -> bool:
        """True for pre-RFC draft versions (0xff00001b .. 0xff000022)."""
        return (int(self) & 0xFF000000) == 0xFF000000


#: Versions the scanner offers during the handshake, in preference order
#: (QUIC v1 first, matching the paper's quic-go configuration).
SUPPORTED_VERSIONS: tuple[QuicVersion, ...] = (
    QuicVersion.VERSION_1,
    QuicVersion.DRAFT_34,
    QuicVersion.DRAFT_32,
    QuicVersion.DRAFT_29,
    QuicVersion.DRAFT_27,
)


def is_spin_capable_version(version: int) -> bool:
    """Whether the latency spin bit is defined for ``version``.

    The spin bit was introduced in draft-ietf-quic-transport and is part
    of QUIC v1; for all versions the paper's scanner negotiates, the
    first bit after the key-phase layout of short headers carries it.
    """
    try:
        parsed = QuicVersion(version)
    except ValueError:
        return False
    return parsed is not QuicVersion.NEGOTIATION
