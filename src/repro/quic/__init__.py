"""Byte-level QUIC substrate: wire format, endpoints, RTT estimation.

This subpackage replaces the quic-go stack the paper's scanner used.  It
implements the RFC 9000 wire encodings (varints, long/short headers,
frames, packet-number truncation), an RFC 9002 RTT estimator, and a
simulated endpoint that performs a three-space handshake and carries
application streams — with the latency spin bit on every 1-RTT packet.
"""

from repro.quic.connection import ConnectionConfig, PacketSpace, QuicEndpoint
from repro.quic.connection_id import ConnectionId
from repro.quic.datagram import ParsedPacket, QuicPacket, decode_datagram, encode_datagram
from repro.quic.frames import (
    AckFrame,
    AckRange,
    ConnectionCloseFrame,
    CryptoFrame,
    Frame,
    HandshakeDoneFrame,
    PaddingFrame,
    PingFrame,
    StreamFrame,
    decode_frames,
    encode_frames,
)
from repro.quic.packet import (
    HeaderParseError,
    LongHeader,
    LongPacketType,
    PacketType,
    ShortHeader,
    VersionNegotiationHeader,
    parse_header,
)
from repro.quic.packet_number import (
    decode_packet_number,
    encode_packet_number,
    packet_number_length,
)
from repro.quic.rtt import RttEstimator, RttSample
from repro.quic.transport_params import TransportParameters, decode_transport_parameters
from repro.quic.varint import decode_varint, encode_varint
from repro.quic.version import SUPPORTED_VERSIONS, QuicVersion, is_spin_capable_version

__all__ = [
    "AckFrame",
    "AckRange",
    "ConnectionCloseFrame",
    "ConnectionConfig",
    "ConnectionId",
    "CryptoFrame",
    "Frame",
    "HandshakeDoneFrame",
    "HeaderParseError",
    "LongHeader",
    "LongPacketType",
    "PacketSpace",
    "PacketType",
    "PaddingFrame",
    "ParsedPacket",
    "PingFrame",
    "QuicEndpoint",
    "QuicPacket",
    "QuicVersion",
    "RttEstimator",
    "RttSample",
    "SUPPORTED_VERSIONS",
    "ShortHeader",
    "StreamFrame",
    "TransportParameters",
    "VersionNegotiationHeader",
    "decode_datagram",
    "decode_frames",
    "decode_packet_number",
    "decode_transport_parameters",
    "decode_varint",
    "encode_datagram",
    "encode_frames",
    "encode_packet_number",
    "encode_varint",
    "is_spin_capable_version",
    "packet_number_length",
    "parse_header",
]
