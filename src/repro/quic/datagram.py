"""Datagram assembly: packets into UDP datagrams and back.

QUIC coalesces multiple long-header packets into one datagram during the
handshake (RFC 9000 Section 12.2); the long-header ``Length`` field
delimits them and a short-header packet, if present, always comes last
and extends to the end of the datagram.  The passive observer parses
datagrams exactly this way, so the codec here is shared between
endpoints and observer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.quic.frames import Frame, decode_frames, encode_frames
from repro.quic.packet import (
    HeaderParseError,
    LongHeader,
    LongPacketType,
    ShortHeader,
    VersionNegotiationHeader,
    parse_header,
)

__all__ = ["ParsedPacket", "QuicPacket", "decode_datagram", "encode_datagram"]


@dataclass
class QuicPacket:
    """A packet ready for encoding: header plus plaintext frames."""

    header: ShortHeader | LongHeader
    frames: Sequence[Frame] = field(default_factory=tuple)

    def encode(self) -> bytes:
        """Serialize header and payload into wire bytes."""
        payload = encode_frames(self.frames)
        if isinstance(self.header, LongHeader):
            self.header.payload_length = len(payload)
        return self.header.encode() + payload

    @property
    def is_ack_eliciting(self) -> bool:
        """A packet elicits an ACK if any of its frames does."""
        return any(frame.is_ack_eliciting for frame in self.frames)


@dataclass
class ParsedPacket:
    """A packet recovered from wire bytes.

    ``header.packet_number`` still holds the *truncated* value; the
    receiving endpoint reconstructs the full number against its
    per-space state.  ``wire_length`` is the packet's size within the
    datagram (headers included), which qlog reports as ``raw.length``.
    """

    header: ShortHeader | LongHeader
    frames: list[Frame]
    wire_length: int


def encode_datagram(packets: Sequence[QuicPacket]) -> bytes:
    """Coalesce ``packets`` into one datagram.

    The caller must order packets per RFC 9000 12.2 (Initial before
    Handshake before 1-RTT); a short-header packet may only be last.
    """
    parts = []
    for index, packet in enumerate(packets):
        if isinstance(packet.header, ShortHeader) and index != len(packets) - 1:
            raise ValueError("a short-header packet must be the last in a datagram")
        parts.append(packet.encode())
    return b"".join(parts)


def decode_datagram(
    data: bytes, short_dcid_length: int, ack_delay_exponent: int = 3
) -> list[ParsedPacket]:
    """Split a datagram into its coalesced packets and parse each.

    Raises :class:`HeaderParseError` on malformed input; a datagram with
    trailing garbage that does not parse as a packet is rejected rather
    than silently truncated.
    """
    packets: list[ParsedPacket] = []
    offset = 0
    while offset < len(data):
        header, header_length = parse_header(data[offset:], short_dcid_length)
        if isinstance(header, VersionNegotiationHeader) or (
            isinstance(header, LongHeader)
            and header.long_type is LongPacketType.RETRY
        ):
            # VN and Retry packets have no frames and consume the rest
            # of the datagram (they are never coalesced).
            packets.append(
                ParsedPacket(
                    header=header, frames=[], wire_length=len(data) - offset
                )
            )
            break
        if isinstance(header, LongHeader):
            payload_length = header.payload_length
            end = offset + header_length + payload_length
            if payload_length < 0 or end > len(data):
                raise HeaderParseError("long header length field exceeds datagram")
        else:
            end = len(data)
        payload = data[offset + header_length : end]
        frames = decode_frames(payload, ack_delay_exponent)
        packets.append(
            ParsedPacket(header=header, frames=frames, wire_length=end - offset)
        )
        offset = end
    return packets
