"""RFC 9002 round-trip-time estimation.

This is the "QUIC stack estimate" the paper uses as its accuracy
baseline (Section 3.3): the time from sending an ack-eliciting packet to
receiving its acknowledgment, corrected by the peer-reported
``ack_delay``.  The estimator keeps ``latest_rtt``, ``min_rtt``,
``smoothed_rtt``, and ``rttvar`` exactly as RFC 9002 Section 5
prescribes; the accuracy analysis compares *spin* samples against the
per-connection client samples collected here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["RttEstimator", "RttSample"]

_INITIAL_RTT_MS = 333.0


@dataclass(frozen=True)
class RttSample:
    """One RTT measurement taken from an acknowledgment."""

    time_ms: float
    latest_rtt_ms: float
    adjusted_rtt_ms: float
    ack_delay_ms: float


@dataclass
class RttEstimator:
    """Stateful RFC 9002 RTT estimator for one connection endpoint.

    ``max_ack_delay_ms`` bounds how much reported ack delay is honoured
    once the handshake is confirmed (RFC 9002 Section 5.3).
    """

    max_ack_delay_ms: float = 25.0
    latest_rtt_ms: float | None = None
    min_rtt_ms: float | None = None
    smoothed_rtt_ms: float = _INITIAL_RTT_MS
    rttvar_ms: float = _INITIAL_RTT_MS / 2.0
    samples: list[RttSample] = field(default_factory=list)
    _has_sample: bool = False

    def on_ack_received(
        self,
        now_ms: float,
        send_time_ms: float,
        ack_delay_ms: float,
        handshake_confirmed: bool = True,
    ) -> RttSample:
        """Process an acknowledgment of a packet sent at ``send_time_ms``.

        Returns the recorded :class:`RttSample`.  Follows RFC 9002 5.3:
        ``min_rtt`` ignores ack delay; the smoothed estimate subtracts
        the (possibly clamped) ack delay only when doing so does not
        push the sample below ``min_rtt``.
        """
        if now_ms < send_time_ms:
            raise ValueError("acknowledgment cannot precede the send time")
        latest = now_ms - send_time_ms
        self.latest_rtt_ms = latest

        if self.min_rtt_ms is None or latest < self.min_rtt_ms:
            self.min_rtt_ms = latest

        delay = max(ack_delay_ms, 0.0)
        if handshake_confirmed:
            delay = min(delay, self.max_ack_delay_ms)
        adjusted = latest
        if latest >= self.min_rtt_ms + delay:
            adjusted = latest - delay

        if not self._has_sample:
            self.smoothed_rtt_ms = adjusted
            self.rttvar_ms = adjusted / 2.0
            self._has_sample = True
        else:
            deviation = abs(self.smoothed_rtt_ms - adjusted)
            self.rttvar_ms = 0.75 * self.rttvar_ms + 0.25 * deviation
            self.smoothed_rtt_ms = 0.875 * self.smoothed_rtt_ms + 0.125 * adjusted

        sample = RttSample(
            time_ms=now_ms,
            latest_rtt_ms=latest,
            adjusted_rtt_ms=adjusted,
            ack_delay_ms=delay,
        )
        self.samples.append(sample)
        return sample

    @property
    def has_sample(self) -> bool:
        """Whether at least one RTT sample has been taken."""
        return self._has_sample

    def adjusted_rtts(self) -> list[float]:
        """All adjusted RTT samples in ms — the paper's *QUIC* series."""
        return [sample.adjusted_rtt_ms for sample in self.samples]

    def mean_rtt_ms(self) -> float:
        """Mean of the adjusted samples (the per-connection *QUIC* mean)."""
        if not self.samples:
            raise ValueError("no RTT samples recorded")
        return sum(s.adjusted_rtt_ms for s in self.samples) / len(self.samples)
