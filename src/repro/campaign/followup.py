"""Two-phase RFC-compliance measurement (the paper's Section 6 proposal).

The weekly one-shot methodology behind Figure 2 convolves the RFC 9000
1-in-16 disable rule with long-term deployment churn; the paper's
discussion proposes a cleaner design: *first identify domains with an
enabled spin bit in a large-scale measurement and then follow up with
multiple measurements of a smaller target set, e.g., querying them
n = 16 times*.  Repeated probes within the same week hold the
deployment state fixed, so the per-connection disable probability can
be estimated directly.

:class:`FollowUpStudy` implements exactly that: phase one is any weekly
scan; phase two re-queries the spin-identified domains ``n`` times in
the same week and estimates the disable rate from the probe outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._util.stats import binomial_pmf
from repro.internet.population import DomainRecord, Population
from repro.web.scanner import ParallelScanConfig, ScanConfig, ScanDataset, Scanner

__all__ = ["FollowUpResult", "FollowUpStudy"]


@dataclass
class FollowUpResult:
    """Outcome of the repeated-probe phase."""

    week_label: str
    probes_per_domain: int
    #: Domain name → number of probes with spin activity.
    spin_counts: dict[str, int] = field(default_factory=dict)
    #: Domain name → number of probes with a working QUIC connection.
    connected_counts: dict[str, int] = field(default_factory=dict)

    @property
    def domains_probed(self) -> int:
        return len(self.spin_counts)

    def active_domains(self) -> list[str]:
        """Domains that spun in at least one probe (spin-enabled this
        week) and connected in every probe."""
        return [
            name
            for name, spins in self.spin_counts.items()
            if spins > 0
            and self.connected_counts.get(name, 0) == self.probes_per_domain
        ]

    def estimated_disable_rate(self) -> float:
        """The measured per-connection disable probability.

        Averaged over the spin-enabled domains: the complement of the
        fraction of probes that showed spin activity.  For a compliant
        RFC 9000 endpoint this estimates 1/16 = 6.25 % (1/8 = 12.5 %
        under the RFC 9312 reading), free of the deployment-churn bias
        that affects week-spaced samples.
        """
        active = self.active_domains()
        if not active:
            return 0.0
        total_probes = len(active) * self.probes_per_domain
        total_spins = sum(self.spin_counts[name] for name in active)
        return 1.0 - total_spins / total_probes

    def expected_count_distribution(self, disable_one_in_n: int) -> list[float]:
        """Reference P[k spinning probes] for a compliant endpoint."""
        p = 1.0 - 1.0 / disable_one_in_n
        return [
            binomial_pmf(k, self.probes_per_domain, p)
            for k in range(self.probes_per_domain + 1)
        ]

    def observed_count_distribution(self) -> list[float]:
        """Observed share of active domains per spin-probe count."""
        active = self.active_domains()
        counts = [0] * (self.probes_per_domain + 1)
        for name in active:
            counts[self.spin_counts[name]] += 1
        total = len(active)
        return [count / total if total else 0.0 for count in counts]


class FollowUpStudy:
    """Runs the two-phase measurement over a synthetic population."""

    def __init__(
        self,
        population: Population,
        scan_config: ScanConfig | None = None,
        parallel: ParallelScanConfig | None = None,
    ):
        self.population = population
        self.scanner = Scanner(population, scan_config, parallel=parallel)

    def close(self) -> None:
        """Release the study's scanner (and its worker pool)."""
        self.scanner.close()

    def __enter__(self) -> "FollowUpStudy":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def identify_candidates(
        self, week_label: str = "cw20-2023", ip_version: int = 4
    ) -> tuple[ScanDataset, list[DomainRecord]]:
        """Phase one: full scan; returns it plus the spin-active domains."""
        dataset = self.scanner.scan(week_label=week_label, ip_version=ip_version)
        candidates = [
            result.domain for result in dataset.results if result.shows_spin_activity
        ]
        return dataset, candidates

    def probe(
        self,
        candidates: list[DomainRecord],
        probes: int = 16,
        week_label: str = "cw20-2023",
        ip_version: int = 4,
    ) -> FollowUpResult:
        """Phase two: query each candidate ``probes`` times in-week."""
        if probes < 1:
            raise ValueError("at least one probe is required")
        result = FollowUpResult(week_label=week_label, probes_per_domain=probes)
        for domain in candidates:
            result.spin_counts[domain.name] = 0
            result.connected_counts[domain.name] = 0
        for probe_index in range(1, probes + 1):
            dataset = self.scanner.scan(
                week_label=week_label,
                ip_version=ip_version,
                domains=candidates,
                probe=probe_index,
            )
            for scan_result in dataset.results:
                name = scan_result.domain.name
                if scan_result.quic_support:
                    result.connected_counts[name] += 1
                if scan_result.shows_spin_activity:
                    result.spin_counts[name] += 1
        return result

    def run(
        self,
        probes: int = 16,
        week_label: str = "cw20-2023",
        ip_version: int = 4,
    ) -> FollowUpResult:
        """Both phases in sequence."""
        _, candidates = self.identify_candidates(week_label, ip_version)
        return self.probe(candidates, probes, week_label, ip_version)
