"""Measurement-campaign orchestration: calendar, weekly and longitudinal runs."""

from repro.campaign.followup import FollowUpResult, FollowUpStudy
from repro.campaign.runner import CampaignRunner, LongitudinalResult
from repro.campaign.schedule import DEFAULT_CAMPAIGN, CalendarWeek, Campaign

__all__ = [
    "Campaign",
    "CampaignRunner",
    "CalendarWeek",
    "DEFAULT_CAMPAIGN",
    "FollowUpResult",
    "FollowUpStudy",
    "LongitudinalResult",
]
