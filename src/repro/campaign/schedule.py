"""Measurement-campaign calendar (Section 3.2.2 of the paper).

The paper measures weekly over IPv4 from CW 15/2022 through CW 20/2023,
with IPv6 measurements in selected weeks.  Zonelist scans run Wednesday
through Friday, toplist scans Friday into Saturday; this module models
the calendar so longitudinal analyses (Figure 2) can select ``n``
measurement days spread across the campaign exactly as the paper does.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass

__all__ = ["CalendarWeek", "Campaign", "DEFAULT_CAMPAIGN"]


@dataclass(frozen=True, order=True)
class CalendarWeek:
    """One ISO calendar week."""

    year: int
    week: int

    def __post_init__(self) -> None:
        if not 1 <= self.week <= 53:
            raise ValueError(f"invalid ISO week {self.week}")

    @property
    def label(self) -> str:
        """Stable label used to seed weekly scans, e.g. ``"cw20-2023"``."""
        return f"cw{self.week:02d}-{self.year}"

    @property
    def serial(self) -> int:
        """Weeks elapsed since CW 1, 2022 (the stack-churn epoch base)."""
        origin = _dt.date.fromisocalendar(2022, 1, 1)
        return (self.start_date() - origin).days // 7

    @classmethod
    def from_label(cls, label: str) -> "CalendarWeek":
        """Parse a ``"cwWW-YYYY"`` label back into a week."""
        if not label.startswith("cw") or "-" not in label:
            raise ValueError(f"not a calendar week label: {label!r}")
        week_part, _, year_part = label[2:].partition("-")
        return cls(year=int(year_part), week=int(week_part))

    def start_date(self) -> _dt.date:
        """Monday of this ISO week."""
        return _dt.date.fromisocalendar(self.year, self.week, 1)

    def next(self) -> "CalendarWeek":
        """The following calendar week."""
        following = self.start_date() + _dt.timedelta(weeks=1)
        iso = following.isocalendar()
        return CalendarWeek(year=iso.year, week=iso.week)


@dataclass(frozen=True)
class Campaign:
    """A measurement campaign: weekly IPv4 scans, selected-week IPv6."""

    first: CalendarWeek
    last: CalendarWeek
    ipv6_every_n_weeks: int = 4

    def __post_init__(self) -> None:
        if self.last < self.first:
            raise ValueError("campaign ends before it starts")
        if self.ipv6_every_n_weeks < 1:
            raise ValueError("ipv6_every_n_weeks must be >= 1")

    def weeks(self) -> list[CalendarWeek]:
        """All IPv4 measurement weeks, in order."""
        result = [self.first]
        while result[-1] < self.last:
            result.append(result[-1].next())
        return result

    def ipv6_weeks(self) -> list[CalendarWeek]:
        """The selected weeks with an additional IPv6 measurement."""
        weeks = self.weeks()
        selected = weeks[:: self.ipv6_every_n_weeks]
        if weeks[-1] not in selected:
            selected.append(weeks[-1])
        return selected

    def select_spread_weeks(self, n: int) -> list[CalendarWeek]:
        """``n`` measurement weeks spread evenly across the campaign.

        This is the paper's Figure 2 selection ("first select n
        measurement days spread across our measurement campaign"); the
        first and last week are always included.
        """
        weeks = self.weeks()
        if n < 2 or n > len(weeks):
            raise ValueError(f"n must be between 2 and {len(weeks)}")
        if n == len(weeks):
            return weeks
        step = (len(weeks) - 1) / (n - 1)
        indices = sorted({round(index * step) for index in range(n)})
        return [weeks[index] for index in indices]


#: The paper's campaign: CW 15, 2022 through CW 20, 2023.
DEFAULT_CAMPAIGN = Campaign(
    first=CalendarWeek(2022, 15), last=CalendarWeek(2023, 20)
)
