"""Campaign execution: repeated weekly scans over one population.

Ties the calendar (:mod:`repro.campaign.schedule`) to the scanner: one
:class:`ScanDataset` per (week, IP version).  The longitudinal runner
used by Figure 2 scans the same domains in each selected week, so the
per-connection 1-in-16 spin disabling and the deployment churn model
both leave their statistical fingerprint in the week-over-week data.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.campaign.schedule import Campaign, CalendarWeek
from repro.internet.population import DomainRecord, Population
from repro.web.scanner import ParallelScanConfig, ScanConfig, ScanDataset, Scanner

__all__ = ["CampaignRunner", "LongitudinalResult"]


@dataclass
class LongitudinalResult:
    """Per-week scans of a fixed domain set (Figure 2's raw material)."""

    weeks: list[CalendarWeek]
    datasets: list[ScanDataset]

    def weekly_spin_activity(self) -> dict[str, list[bool]]:
        """Map domain name → per-week spin-activity flags.

        Only domains with a *working connection in every week* are
        included, mirroring the paper's selection ("we then select the
        domains to which we could establish a connection in every
        week").
        """
        total_weeks = len(self.datasets)
        activity: dict[str, list[bool]] = {}
        connected: dict[str, int] = {}
        for dataset in self.datasets:
            for result in dataset.results:
                name = result.domain.name
                if not result.quic_support:
                    continue
                connected[name] = connected.get(name, 0) + 1
                activity.setdefault(name, [False] * total_weeks)
        for week_index, dataset in enumerate(self.datasets):
            for result in dataset.results:
                flags = activity.get(result.domain.name)
                if flags is not None:
                    flags[week_index] = result.quic_support and result.shows_spin_activity
        return {
            name: flags
            for name, flags in activity.items()
            if connected.get(name, 0) == total_weeks
        }


class CampaignRunner:
    """Runs the paper's measurement schedule over a synthetic population."""

    def __init__(
        self,
        population: Population,
        campaign: Campaign,
        scan_config: ScanConfig | None = None,
        parallel: ParallelScanConfig | None = None,
    ):
        self.population = population
        self.campaign = campaign
        self.scanner = Scanner(population, scan_config, parallel=parallel)

    def close(self) -> None:
        """Release the campaign's scanner (and its worker pool).

        A longitudinal campaign reuses one pool across every weekly
        scan; closing the runner shuts it down deterministically at
        campaign end instead of leaking worker processes until garbage
        collection.
        """
        self.scanner.close()

    def __enter__(self) -> "CampaignRunner":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def run_week(
        self, week: CalendarWeek, ip_version: int = 4, verbose: bool = False
    ) -> ScanDataset:
        """One weekly measurement over the whole population."""
        return self.scanner.scan(
            week_label=week.label, ip_version=ip_version, verbose=verbose
        )

    def run_longitudinal(
        self,
        n_weeks: int,
        domains: list[DomainRecord] | None = None,
        ip_version: int = 4,
        verbose: bool = False,
    ) -> LongitudinalResult:
        """Scan ``domains`` in ``n_weeks`` spread campaign weeks.

        ``domains`` defaults to the full population; Figure 2 passes the
        spin-candidate subset to keep the workload focused, as the
        paper's follow-up methodology (Section 6) suggests.
        """
        weeks = self.campaign.select_spread_weeks(n_weeks)
        datasets = [
            self.scanner.scan(
                week_label=week.label,
                ip_version=ip_version,
                domains=domains,
                verbose=verbose,
            )
            for week in weeks
        ]
        return LongitudinalResult(weeks=weeks, datasets=datasets)
