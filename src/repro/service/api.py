"""HTTP/JSON query API over the week index — the service's front door.

A stdlib :class:`http.server.ThreadingHTTPServer` serving millisecond
answers from the indexer's summary files.  The hot path never decodes
artifact chunks: summaries are parsed once per index version and cached
(including the merged all-weeks view and the rendered ``repro
analyze`` text blocks), and every summary-backed response is a pure
function of those counters.  The one deliberately cold endpoint is
``/v1/domain/<name>``, which runs an index-backed point lookup against
the spooled ``cbr`` artifacts — its chunk decodes are *counted* in the
telemetry registry (``query.chunks_total`` …), which is how the
benchmark asserts the summary endpoints decode zero chunks.

Endpoints (all JSON unless noted)::

    GET  /v1/healthz                     liveness + index version info
    GET  /v1/weeks                       indexed week labels
    GET  /v1/adoption?week=cw20-2023     domain/connection adoption counters
    GET  /v1/compliance?week=...         behaviour-class distribution
    GET  /v1/analyze?week=...&section=   the repro-analyze text block
    GET  /v1/domain/<name>               the domain's records (JSONL body)
    GET  /v1/metrics                     telemetry registry snapshot
    GET  /v1/status                      SLO health report (repro.obs.slo)
    GET  /v1/spans                       causal span log of the campaign
    POST /v1/seeds                       register target domains

``week`` defaults to ``all`` (every indexed week merged).  Errors are
JSON too: ``{"error": ...}`` with a 4xx status.
"""

from __future__ import annotations

import json
import os
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, unquote, urlparse

from repro.obs.slo import (
    HealthEngine,
    HealthReport,
    collect_service_gauges,
    default_service_slos,
)
from repro.obs.spans import span_rows
from repro.service.daemon import CampaignDaemon
from repro.service.indexer import WeekIndexer
from repro.service.spool import SpoolStore

__all__ = ["ServiceState", "build_server", "serve_forever"]

_SEEDS_NAME = "seeds.json"
_MAX_BODY_BYTES = 4 << 20


class ServiceState:
    """Shared, cached view of one service directory.

    Week summaries and rendered analysis blocks are cached per *index
    version* (the ledger file's content): a fold by the daemon or an
    external ``repro service index`` bumps the version and the next
    request reloads.  Checking the version costs one small file read —
    that is the entire per-request filesystem footprint of the summary
    endpoints.
    """

    def __init__(
        self,
        spool: SpoolStore,
        indexer: WeekIndexer,
        telemetry=None,
        seeds_path=None,
        health_engine: HealthEngine | None = None,
    ) -> None:
        self.spool = spool
        self.indexer = indexer
        self.telemetry = telemetry
        self.seeds_path = seeds_path or (spool.directory / _SEEDS_NAME)
        self.health_engine = health_engine or HealthEngine(
            default_service_slos()
        )
        self._lock = threading.Lock()
        self._version: str | None = None
        self._summaries: dict = {}
        self._rendered: dict = {}

    def summary(self, week: str):
        """The (cached) summary for ``week`` or the merged ``all`` view."""
        with self._lock:
            self._refresh_locked()
            if week in self._summaries:
                return self._summaries[week]
            if week == "all":
                summary = self.indexer.load_combined()
            else:
                summary = self.indexer.load_week(week)
            if summary is not None:
                self._summaries[week] = summary
            return summary

    def analysis_text(self, week: str, section: str) -> str | None:
        """The rendered ``repro analyze`` block (cached per version)."""
        from repro.analysis.report import render_analysis_sections

        key = (week, section)
        with self._lock:
            self._refresh_locked()
            cached = self._rendered.get(key)
        if cached is not None:
            return cached
        summary = self.summary(week)
        if summary is None:
            return None
        text = render_analysis_sections(summary.analysis_results(), section)
        with self._lock:
            self._rendered[key] = text
        return text

    def domain_records(self, name: str):
        """Point lookup across every spooled artifact (the cold path).

        Yields JSONL lines; decodes are charged to the telemetry
        registry through the same :class:`QueryStats` counters the CLI
        query path emits.
        """
        from repro.analysis.artifacts import record_to_dict
        from repro.analysis.query import Eq, QueryStats, filter_batch
        from repro.artifacts import open_query_source

        predicate = Eq("domain", name)
        for entry in self.spool.artifacts():
            stats = QueryStats()
            with open_query_source(str(entry.path), predicate, stats=stats) as source:
                for batch in source.batches():
                    for record in filter_batch(batch, predicate, stats):
                        yield json.dumps(  # jsonl-ok: the JSONL response body
                            record_to_dict(record), separators=(",", ":")
                        )
            stats.emit(self.telemetry)

    def add_seeds(self, domains: list[str]) -> dict:
        """Merge a seed batch into the service's target backlog.

        The backlog is advisory input for future campaigns (the paper's
        Tranco/CZDS list intake); storage is a sorted, deduplicated JSON
        file so repeated batches are idempotent.
        """
        cleaned = sorted(
            {name.strip().lower() for name in domains if name and name.strip()}
        )
        if not cleaned:
            raise ValueError("no usable domain names in the seed batch")
        with self._lock:
            existing: list[str] = []
            if self.seeds_path.is_file():
                try:
                    existing = json.loads(
                        self.seeds_path.read_text(encoding="utf-8")
                    ).get("domains", [])
                except (OSError, json.JSONDecodeError):
                    existing = []
            merged = sorted(set(existing) | set(cleaned))
            payload = json.dumps(
                {"domains": merged}, sort_keys=True, indent=1
            )
            tmp = self.seeds_path.with_suffix(".tmp")
            tmp.write_text(payload + "\n", encoding="utf-8")
            os.replace(tmp, self.seeds_path)
        return {
            "accepted": len(cleaned),
            "new": len(merged) - len(existing),
            "total": len(merged),
        }

    def counter(self, name: str, amount: int = 1) -> None:
        if self.telemetry is not None:
            self.telemetry.registry.counter(name).inc(amount)

    def observe_request_ms(self, route: str, elapsed_ms: float, status: int) -> None:
        """Account one request: latency histogram + diag span."""
        if self.telemetry is None:
            return
        self.telemetry.registry.histogram("api.request_ms").observe(elapsed_ms)
        self.telemetry.spans.record_diag(f"request:{route}", status=status)

    def metrics_snapshot(self) -> dict:
        if self.telemetry is None:
            return {}
        return self.telemetry.registry.snapshot()

    def health_report(self) -> HealthReport:
        """Evaluate the configured SLOs over the current telemetry.

        The snapshot is the exported registry augmented with the
        directory-derived service gauges, so the report is meaningful
        even before the daemon's first tick set any gauges — and it is
        computed purely from telemetry, never by re-scanning.
        """
        snapshot = dict(self.metrics_snapshot())
        gauges = dict(snapshot.get("gauges", {}))
        gauges.update(collect_service_gauges(self.spool, self.indexer))
        snapshot["gauges"] = gauges
        return self.health_engine.evaluate(snapshot)

    def spans_payload(self) -> dict:
        """The campaign span log in export shape (`/v1/spans`)."""
        if self.telemetry is None:
            return {"trace": None, "spans": [], "diag": []}
        spans = self.telemetry.spans
        return {
            "trace": spans.trace_id,
            "spans": span_rows(spans.records, spans.trace_id),
            "diag": span_rows(spans.diag_records, spans.trace_id),
        }

    def _refresh_locked(self) -> None:
        version = self.indexer.version()
        if version != self._version:
            self._version = version
            self._summaries = {}
            self._rendered = {}


class _Handler(BaseHTTPRequestHandler):
    """Routes /v1/* onto the shared :class:`ServiceState`."""

    #: Set by :func:`build_server` on the subclass.
    state: ServiceState = None  # type: ignore[assignment]
    server_version = "repro-service/1"
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # requests are counted in telemetry, not printed

    def _send_json(self, payload: dict, status: int = 200) -> None:
        self._last_status = status
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, message: str, status: int = 400) -> None:
        self.state.counter("service.requests_errored")
        self._send_json({"error": message}, status=status)

    # -- routing -------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        # API latency is inherently wall-clock; it feeds the operator
        # histogram + SLOs and never enters a deterministic artifact.
        started = time.perf_counter()  # wallclock-ok: API latency histogram
        self._last_status = 200
        self._route_get()
        elapsed_ms = (time.perf_counter() - started) * 1000.0  # wallclock-ok
        self.state.observe_request_ms(
            urlparse(self.path).path, elapsed_ms, self._last_status
        )

    def _route_get(self) -> None:
        state = self.state
        state.counter("service.requests_total")
        url = urlparse(self.path)
        query = parse_qs(url.query)
        week = (query.get("week") or ["all"])[0]
        route = url.path.rstrip("/") or "/"
        if route == "/v1/healthz":
            self._send_json(
                {
                    "status": "ok",
                    "weeks": state.indexer.weeks(),
                    "artifacts": len(state.spool.artifacts()),
                }
            )
        elif route == "/v1/weeks":
            self._send_json({"weeks": state.indexer.weeks()})
        elif route == "/v1/adoption":
            self._summary_endpoint(week, lambda summary: summary.adoption())
        elif route == "/v1/compliance":
            self._summary_endpoint(week, lambda summary: summary.compliance())
        elif route == "/v1/analyze":
            section = (query.get("section") or ["all"])[0]
            self._analyze_endpoint(week, section)
        elif route.startswith("/v1/domain/"):
            self._domain_endpoint(unquote(route[len("/v1/domain/"):]))
        elif route == "/v1/metrics":
            self._send_json({"metrics": state.metrics_snapshot()})
        elif route == "/v1/status":
            self._send_json(state.health_report().to_dict())
        elif route == "/v1/spans":
            self._send_json(state.spans_payload())
        else:
            self._send_error_json(f"unknown endpoint {url.path}", status=404)

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        state = self.state
        state.counter("service.requests_total")
        url = urlparse(self.path)
        if url.path.rstrip("/") != "/v1/seeds":
            self._send_error_json(f"unknown endpoint {url.path}", status=404)
            return
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            length = -1
        if length <= 0 or length > _MAX_BODY_BYTES:
            self._send_error_json("a JSON body with Content-Length is required")
            return
        try:
            data = json.loads(self.rfile.read(length).decode("utf-8"))
            domains = data["domains"]
            if not isinstance(domains, list):
                raise TypeError("domains must be a list")
            result = state.add_seeds([str(name) for name in domains])
        except (ValueError, KeyError, TypeError, UnicodeDecodeError) as error:
            self._send_error_json(f"invalid seed batch: {error}")
            return
        state.counter("service.seeds_accepted", result["accepted"])
        self._send_json(result)

    # -- endpoint bodies -----------------------------------------------

    def _summary_endpoint(self, week: str, view) -> None:
        summary = self.state.summary(week)
        if summary is None:
            self._send_error_json(f"week {week!r} is not indexed", status=404)
            return
        self._send_json(view(summary))

    def _analyze_endpoint(self, week: str, section: str) -> None:
        sections = (
            "all", "orgs", "webservers", "accuracy", "versions", "filters",
            "failures",
        )
        if section not in sections:
            self._send_error_json(f"unknown section {section!r}")
            return
        text = self.state.analysis_text(week, section)
        if text is None:
            self._send_error_json(f"week {week!r} is not indexed", status=404)
            return
        self._send_json({"week": week, "section": section, "text": text})

    def _domain_endpoint(self, name: str) -> None:
        if not name:
            self._send_error_json("a domain name is required")
            return
        lines = list(self.state.domain_records(name))
        body = ("".join(line + "\n" for line in lines)).encode("utf-8")
        self._last_status = 200
        self.send_response(200)
        self.send_header("Content-Type", "application/jsonl")
        self.send_header("X-Record-Count", str(len(lines)))
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)


def build_server(
    state: ServiceState, host: str = "127.0.0.1", port: int = 0
) -> ThreadingHTTPServer:
    """A ready-to-serve HTTP server bound to ``host:port`` (0 = any)."""
    handler = type("ReproServiceHandler", (_Handler,), {"state": state})
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    return server


def serve_forever(
    daemon: CampaignDaemon,
    host: str = "127.0.0.1",
    port: int = 8323,
    interval_s: float | None = None,
    verbose: bool = True,
) -> None:
    """Run the query API, optionally with a background scan scheduler.

    ``interval_s`` enables the campaign scheduler on the wall clock;
    ``None`` serves the existing index only.  Blocks until interrupted.
    """
    import sys

    from repro.service.daemon import Scheduler, WallClock
    from repro.telemetry import Telemetry

    if daemon.telemetry is None:
        # The operator plane needs somewhere to account requests and
        # SLO inputs even when the daemon was built without telemetry.
        daemon.telemetry = Telemetry()
        daemon.spool.telemetry = daemon.telemetry
        daemon.indexer.telemetry = daemon.telemetry
    state = ServiceState(
        daemon.spool, daemon.indexer, telemetry=daemon.telemetry
    )
    server = build_server(state, host=host, port=port)
    stop = threading.Event()
    worker = None
    if interval_s is not None:
        scheduler = Scheduler(daemon, interval_s, clock=WallClock())
        worker = threading.Thread(
            target=scheduler.run,
            kwargs={"should_stop": stop.is_set, "verbose": verbose},
            daemon=True,
        )
        worker.start()
    if verbose:
        bound_host, bound_port = server.server_address[:2]
        print(
            f"service: listening on http://{bound_host}:{bound_port}/v1/ "
            + (
                f"(scan tick every {interval_s:g} s)"
                if interval_s is not None
                else "(serve-only: no scans scheduled)"
            ),
            file=sys.stderr,
        )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        stop.set()
        server.server_close()
