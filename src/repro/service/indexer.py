"""Incremental week indexer: fold each artifact exactly once.

The indexer is the middle layer of the service plane: it decodes each
freshly spooled ``cbr`` artifact *once*, groups its records by their
week stamp, and merges the per-week counter summaries
(:class:`~repro.service.summary.WeekSummary`) into persistent
``week-<label>.json`` files.  The query API then answers from those
files without ever touching raw chunks again.

Idempotence has two layers, mirroring how the checkpoint store treats
manifests as binding and shards as advisory:

* ``ledger.json`` — the fast path: a sorted list of artifact
  fingerprints already folded.  It is written *last*, after every week
  file, so it never claims work that was not completed.
* the per-week ``artifacts`` lists — the correctness mechanism: merging
  a week slice and recording the fingerprint happen in the same atomic
  file replace.  A crash between two week files therefore leaves a
  half-folded artifact whose re-fold skips exactly the weeks already
  carrying its fingerprint — the resumed summaries are byte-identical
  to an uninterrupted fold.

Deterministic fault injection (:mod:`repro.faults` discipline): the
constructor takes a ``fault_hook`` callable invoked with an event label
at every persistence point; tests crash the fold mid-flight by raising
from the hook, with no wall clock or signal handling involved.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Callable

from repro.service.summary import WeekSummary, summarize_records

__all__ = ["WeekIndexer"]

_LEDGER_NAME = "ledger.json"
_WEEK_PREFIX = "week-"

#: Week bucket for records predating the scanner's week stamping.
UNSTAMPED_WEEK = "unstamped"


class WeekIndexer:
    """Folds spooled artifacts into per-week summary files."""

    def __init__(
        self,
        directory: str | os.PathLike,
        asdb=None,
        fault_hook: Callable[[str], None] | None = None,
        telemetry=None,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._asdb = asdb
        self._fault_hook = fault_hook
        #: Optional :class:`repro.telemetry.Telemetry`.  Folds emit
        #: ``index:<fingerprint>`` spans with per-week children; both
        #: are pure functions of the folded content, so they live in the
        #: deterministic span stream.
        self.telemetry = telemetry

    @property
    def asdb(self):
        if self._asdb is None:
            from repro.internet.asdb import build_default_asdb

            self._asdb = build_default_asdb()
        return self._asdb

    # -- folding -------------------------------------------------------

    def fold_artifact(self, path: str | os.PathLike, fingerprint: str) -> bool:
        """Fold one artifact into the week summaries; ``True`` if folded.

        Returns ``False`` when the ledger already lists ``fingerprint``
        — the duplicate-submission no-op.  Partially folded artifacts
        (crash before the ledger write) re-enter here and finish only
        their missing weeks.
        """
        if fingerprint in self.ledger():
            return False
        telemetry = self.telemetry
        span = (
            telemetry.spans.span(f"index:{fingerprint}")
            if telemetry is not None
            else None
        )
        deltas = self._summarize(path, fingerprint)
        records = 0
        for week in sorted(deltas):
            if telemetry is not None:
                telemetry.spans.span(
                    f"week:{week}", records=deltas[week].connections_total
                ).end()
            self._merge_week(week, deltas[week], fingerprint)
            records += deltas[week].connections_total
        self._record_in_ledger(fingerprint)
        if span is not None:
            span.annotate(weeks=len(deltas), records=records)
            span.end()
            telemetry.registry.counter("index.artifacts_folded").inc()
            telemetry.registry.counter("index.weeks_merged").inc(len(deltas))
        return True

    def fold_pending(self, spool) -> list[str]:
        """Fold every spooled artifact the ledger does not list yet.

        Returns the fingerprints actually folded, in fingerprint order
        (which the ledger makes irrelevant for the resulting bytes).
        """
        folded = []
        ledger = self.ledger()
        for entry in spool.artifacts():
            if entry.fingerprint in ledger:
                continue
            if self.fold_artifact(entry.path, entry.fingerprint):
                folded.append(entry.fingerprint)
        return folded

    def _summarize(
        self, path: str | os.PathLike, fingerprint: str
    ) -> dict[str, WeekSummary]:
        """Decode once, group records by week stamp, summarize each."""
        from repro.artifacts import open_record_batches

        by_week: dict[str, list] = {}
        with open_record_batches(str(path), errors="count") as source:
            for batch in source.batches():
                for record in batch:
                    week = record.week or UNSTAMPED_WEEK
                    by_week.setdefault(week, []).append(record)
        asdb = self.asdb
        deltas = {}
        for week, records in by_week.items():
            delta = summarize_records(week, records, asdb)
            delta.artifacts = [fingerprint]
            deltas[week] = delta
        return deltas

    def _merge_week(
        self, week: str, delta: WeekSummary, fingerprint: str
    ) -> None:
        current = self.load_week(week)
        if current is None:
            current = WeekSummary(week=week)
        if fingerprint in current.artifacts:
            return  # already folded before a crash; resume skips it
        current.merge(delta)
        self._write_atomic(self.week_path(week), current.to_json())
        self._fault("week-written")

    # -- ledger --------------------------------------------------------

    def ledger(self) -> set[str]:
        """Fingerprints whose fold completed (every week file written)."""
        path = self.directory / _LEDGER_NAME
        if not path.is_file():
            return set()
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            # An unreadable ledger only costs re-checks against the
            # per-week artifact lists, never a double fold.
            return set()
        return set(data.get("artifacts") or [])

    def _record_in_ledger(self, fingerprint: str) -> None:
        artifacts = self.ledger()
        artifacts.add(fingerprint)
        payload = json.dumps(
            {"artifacts": sorted(artifacts)}, sort_keys=True, indent=1
        )
        self._write_atomic(self.directory / _LEDGER_NAME, payload + "\n")
        self._fault("ledger-written")

    def version(self) -> str:
        """Cache tag for the API layer: changes iff the index changed."""
        path = self.directory / _LEDGER_NAME
        try:
            return path.read_text(encoding="utf-8")
        except OSError:
            return ""

    # -- reading -------------------------------------------------------

    def week_path(self, week: str) -> Path:
        return self.directory / f"{_WEEK_PREFIX}{week}.json"

    def weeks(self) -> list[str]:
        """Indexed week labels, in calendar order (unstamped last)."""
        labels = [
            path.name[len(_WEEK_PREFIX):-len(".json")]
            for path in self.directory.glob(f"{_WEEK_PREFIX}*.json")
        ]
        return sorted(labels, key=_week_sort_key)

    def load_week(self, week: str) -> WeekSummary | None:
        path = self.week_path(week)
        if not path.is_file():
            return None
        return WeekSummary.from_json(path.read_text(encoding="utf-8"))

    def load_combined(self) -> WeekSummary:
        """All weeks merged into one ``week="all"`` summary.

        Counter merges are commutative and exact, so this equals the
        summary a single fold over the union of all records would give.
        """
        combined = WeekSummary(week="all")
        for week in self.weeks():
            summary = self.load_week(week)
            if summary is not None:
                combined.merge(summary)
        return combined

    # -- internals -----------------------------------------------------

    def _write_atomic(self, path: Path, text: str) -> None:
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_text(text, encoding="utf-8")
        os.replace(tmp, path)

    def _fault(self, event: str) -> None:
        if self._fault_hook is not None:
            self._fault_hook(event)


def _week_sort_key(label: str):
    from repro.campaign.schedule import CalendarWeek

    try:
        week = CalendarWeek.from_label(label)
    except (ValueError, TypeError):
        return (1, 0, 0, label)
    return (0, week.year, week.week, label)
