"""Mergeable per-week summary state for the measurement service.

A :class:`WeekSummary` holds, for one calendar week, exactly the integer
counters the analysis sections are computed from: the fold-internal
state of every :mod:`repro.analysis` section (org/webserver/version
counters, the accuracy series' :class:`~repro.analysis.accuracy.SeriesStats`,
the filter study's :class:`~repro.analysis.filter_study.FilterOutcomeStats`,
the failure taxonomy counts) plus the adoption/compliance counters the
HTTP API serves directly.

Everything merges by plain addition (dict-union-with-add for the
counter maps, bin-wise addition for histograms), which is commutative
and associative — so folding artifacts in any order, or re-merging
per-week summaries into an all-weeks summary, produces the same state a
single :class:`~repro.analysis.engine.AnalysisEngine` pass over the
union of records would.  Shares are only ever computed at render time
as the same exact ``int / int`` divisions the folds use, which is what
makes the service's answers *byte*-identical to ``repro analyze``, not
just numerically close.

Serialization is canonical: ``to_json`` emits sorted keys and sorted
artifact lists, so two summaries with equal state are equal bytes on
disk regardless of the submission order that built them.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.analysis.accuracy import AccuracyStudy, ReorderingImpact, SeriesStats
from repro.analysis.filter_study import FilterOutcomeStats, FilterStudy

__all__ = ["WeekSummary", "summarize_records"]

_SUMMARY_SCHEMA = 1

#: Domain flag bits: the domain had a successful connection / showed
#: spin activity at least once in the week.  OR-merge keeps them stable
#: under duplicate and out-of-order folds.
FLAG_SUCCESS = 1
FLAG_SPIN = 2

_ACCURACY_SERIES = (
    ("spin_received", "Spin (R)"),
    ("spin_sorted", "Spin (S)"),
    ("grease_received", "Grease (R)"),
    ("grease_sorted", "Grease (S)"),
)


@dataclass
class WeekSummary:
    """All per-week counters, mergeable and JSON-round-trippable."""

    week: str
    #: Content fingerprints of the artifacts folded in — the per-week
    #: idempotence ledger.  A crash between two week files leaves this
    #: list authoritative: re-folding an artifact skips weeks that
    #: already carry its fingerprint.
    artifacts: list[str] = field(default_factory=list)

    # adoption / compliance counters
    domains: dict[str, int] = field(default_factory=dict)
    connections_total: int = 0
    connections_success: int = 0
    connections_spinning: int = 0
    behaviours: dict[str, int] = field(default_factory=dict)

    # analysis-section counters (fold-internal state, persisted)
    org_totals: dict[str, int] = field(default_factory=dict)
    org_spins: dict[str, int] = field(default_factory=dict)
    webservers: dict[str, int] = field(default_factory=dict)
    versions: dict[int, int] = field(default_factory=dict)
    accuracy: dict[str, SeriesStats] = field(default_factory=dict)
    reordering: ReorderingImpact = field(default_factory=ReorderingImpact)
    filters: list[FilterOutcomeStats] = field(default_factory=list)
    failures_total: int = 0
    failures_succeeded: int = 0
    failure_kinds: dict[str, int] = field(default_factory=dict)

    # -- merging -------------------------------------------------------

    def merge(self, other: "WeekSummary") -> None:
        """Fold another summary in (commutative counter addition)."""
        for name in other.artifacts:
            if name not in self.artifacts:
                self.artifacts.append(name)
        for name, flags in other.domains.items():
            self.domains[name] = self.domains.get(name, 0) | flags
        self.connections_total += other.connections_total
        self.connections_success += other.connections_success
        self.connections_spinning += other.connections_spinning
        _add_counts(self.behaviours, other.behaviours)
        _add_counts(self.org_totals, other.org_totals)
        _add_counts(self.org_spins, other.org_spins)
        _add_counts(self.webservers, other.webservers)
        _add_counts(self.versions, other.versions)
        for key, series in other.accuracy.items():
            mine = self.accuracy.get(key)
            if mine is None:
                self.accuracy[key] = SeriesStats.from_dict(series.as_dict())
            else:
                mine.merge(series)
        impact = self.reordering
        impact.connections_compared += other.reordering.connections_compared
        impact.connections_changed += other.reordering.connections_changed
        impact.changed_below_1ms += other.reordering.changed_below_1ms
        impact.changed_improved += other.reordering.changed_improved
        if not self.filters:
            self.filters = [
                FilterOutcomeStats.from_dict(entry.as_dict())
                for entry in other.filters
            ]
        else:
            for mine, theirs in zip(self.filters, other.filters):
                mine.merge(theirs)
        self.failures_total += other.failures_total
        self.failures_succeeded += other.failures_succeeded
        _add_counts(self.failure_kinds, other.failure_kinds)

    # -- serving -------------------------------------------------------

    def analysis_results(self) -> dict:
        """The ``{section: result}`` mapping ``repro analyze`` renders.

        Each section is rebuilt from the persisted counters through the
        same ``*_from_counts`` constructors the folds' ``finish()`` use,
        so :func:`repro.analysis.report.render_analysis_sections` over
        this mapping is byte-identical to the CLI's output over the same
        records — without touching a single artifact chunk.
        """
        from repro.analysis.asorg import org_table_from_counts
        from repro.analysis.versions import version_distribution_from_counts
        from repro.analysis.webserver import webserver_shares_from_counts
        from repro.faults.taxonomy import failure_summary_from_counts

        accuracy = AccuracyStudy(
            spin_received=self._series("spin_received"),
            spin_sorted=self._series("spin_sorted"),
            grease_received=self._series("grease_received"),
            grease_sorted=self._series("grease_sorted"),
            reordering=self.reordering,
        )
        filters = self.filters or _empty_filter_stats()
        return {
            "orgs": org_table_from_counts(self.org_totals, self.org_spins),
            "webservers": webserver_shares_from_counts(self.webservers),
            "accuracy": accuracy,
            "versions": version_distribution_from_counts(self.versions),
            "filters": FilterStudy(*filters),
            "failures": failure_summary_from_counts(
                self.failures_total, self.failures_succeeded, self.failure_kinds
            ),
        }

    def adoption(self) -> dict:
        """The ``/v1/adoption`` payload: domain and connection adoption."""
        success = sum(1 for flags in self.domains.values() if flags & FLAG_SUCCESS)
        spinning = sum(1 for flags in self.domains.values() if flags & FLAG_SPIN)
        return {
            "week": self.week,
            "domains_seen": len(self.domains),
            "domains_success": success,
            "domains_spinning": spinning,
            "domain_spin_share": spinning / success if success else 0.0,
            "connections_total": self.connections_total,
            "connections_success": self.connections_success,
            "connections_spinning": self.connections_spinning,
            "connection_spin_share": (
                self.connections_spinning / self.connections_success
                if self.connections_success
                else 0.0
            ),
            "artifacts": len(self.artifacts),
        }

    def compliance(self) -> dict:
        """The ``/v1/compliance`` payload: behaviour-class distribution."""
        from repro.core.classify import SpinBehaviour

        order = [behaviour.value for behaviour in SpinBehaviour]
        total = self.connections_total
        counts = {
            key: self.behaviours.get(key, 0)
            for key in order + sorted(set(self.behaviours) - set(order))
        }
        return {
            "week": self.week,
            "connections_total": total,
            "behaviours": counts,
            "behaviour_shares": {
                key: (count / total if total else 0.0)
                for key, count in counts.items()
            },
        }

    def _series(self, key: str) -> SeriesStats:
        series = self.accuracy.get(key)
        if series is not None:
            return series
        label = dict(_ACCURACY_SERIES)[key]
        return SeriesStats(label=label)

    # -- serialization -------------------------------------------------

    def to_json(self) -> str:
        """Canonical JSON: equal state → equal bytes, any fold order."""
        data = {
            "schema": _SUMMARY_SCHEMA,
            "week": self.week,
            "artifacts": sorted(self.artifacts),
            "domains": self.domains,
            "connections_total": self.connections_total,
            "connections_success": self.connections_success,
            "connections_spinning": self.connections_spinning,
            "behaviours": self.behaviours,
            "org_totals": self.org_totals,
            "org_spins": self.org_spins,
            "webservers": self.webservers,
            "versions": {str(key): count for key, count in self.versions.items()},
            "accuracy": {
                key: series.as_dict() for key, series in self.accuracy.items()
            },
            "reordering": {
                "connections_compared": self.reordering.connections_compared,
                "connections_changed": self.reordering.connections_changed,
                "changed_below_1ms": self.reordering.changed_below_1ms,
                "changed_improved": self.reordering.changed_improved,
            },
            "filters": [entry.as_dict() for entry in self.filters],
            "failures_total": self.failures_total,
            "failures_succeeded": self.failures_succeeded,
            "failure_kinds": self.failure_kinds,
        }
        return json.dumps(data, sort_keys=True, indent=1) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "WeekSummary":
        data = json.loads(text)
        summary = cls(week=data["week"])
        summary.artifacts = list(data.get("artifacts") or [])
        summary.domains = {
            name: int(flags) for name, flags in (data.get("domains") or {}).items()
        }
        summary.connections_total = int(data.get("connections_total", 0))
        summary.connections_success = int(data.get("connections_success", 0))
        summary.connections_spinning = int(data.get("connections_spinning", 0))
        summary.behaviours = _int_counts(data.get("behaviours"))
        summary.org_totals = _int_counts(data.get("org_totals"))
        summary.org_spins = _int_counts(data.get("org_spins"))
        summary.webservers = _int_counts(data.get("webservers"))
        summary.versions = {
            int(key): int(count)
            for key, count in (data.get("versions") or {}).items()
        }
        summary.accuracy = {
            key: SeriesStats.from_dict(entry)
            for key, entry in (data.get("accuracy") or {}).items()
        }
        impact = data.get("reordering") or {}
        summary.reordering = ReorderingImpact(
            connections_compared=int(impact.get("connections_compared", 0)),
            connections_changed=int(impact.get("connections_changed", 0)),
            changed_below_1ms=int(impact.get("changed_below_1ms", 0)),
            changed_improved=int(impact.get("changed_improved", 0)),
        )
        summary.filters = [
            FilterOutcomeStats.from_dict(entry)
            for entry in (data.get("filters") or [])
        ]
        summary.failures_total = int(data.get("failures_total", 0))
        summary.failures_succeeded = int(data.get("failures_succeeded", 0))
        summary.failure_kinds = _int_counts(data.get("failure_kinds"))
        return summary


def summarize_records(week: str, records: list, asdb) -> WeekSummary:
    """Reduce one week's slice of an artifact to its counter summary.

    Runs the exact analysis folds over ``records`` and extracts their
    mergeable state — the single shared code path that guarantees
    summary-served sections match a direct fold.
    """
    from repro.analysis.accuracy import AccuracyFold
    from repro.analysis.asorg import OrgFold
    from repro.analysis.filter_study import FilterFold
    from repro.analysis.versions import VersionFold
    from repro.analysis.webserver import WebserverFold
    from repro.faults.taxonomy import FailureFold

    summary = WeekSummary(week=week)

    org_fold = OrgFold(asdb)
    webserver_fold = WebserverFold()
    accuracy_fold = AccuracyFold()
    version_fold = VersionFold()
    filter_fold = FilterFold()
    failure_fold = FailureFold()
    for fold in (
        org_fold, webserver_fold, accuracy_fold, version_fold, filter_fold,
        failure_fold,
    ):
        fold.update_many(records)

    for record in records:
        flags = 0
        if record.success:
            flags |= FLAG_SUCCESS
            summary.connections_success += 1
        if record.shows_spin_activity:
            flags |= FLAG_SPIN
            summary.connections_spinning += 1
        summary.connections_total += 1
        if flags:
            summary.domains[record.domain] = (
                summary.domains.get(record.domain, 0) | flags
            )
        else:
            summary.domains.setdefault(record.domain, 0)
        key = record.behaviour.value
        summary.behaviours[key] = summary.behaviours.get(key, 0) + 1

    summary.org_totals, summary.org_spins = org_fold.counts()
    summary.webservers = webserver_fold.counts()
    summary.versions = version_fold.counts()
    study = accuracy_fold.finish()
    summary.accuracy = {
        key: SeriesStats.from_summary(getattr(study, key))
        for key, _ in _ACCURACY_SERIES
    }
    summary.reordering = study.reordering
    summary.filters = [
        FilterOutcomeStats.from_outcome(outcome)
        for outcome in filter_fold.finish().outcomes()
    ]
    total, succeeded, kinds = failure_fold.counts()
    summary.failures_total = total
    summary.failures_succeeded = succeeded
    summary.failure_kinds = kinds
    return summary


def _add_counts(target: dict, source: dict) -> None:
    for key, count in source.items():
        target[key] = target.get(key, 0) + count


def _int_counts(data) -> dict:
    return {key: int(count) for key, count in (data or {}).items()}


def _empty_filter_stats() -> list[FilterOutcomeStats]:
    """The four filter-study rows of an empty record set.

    Labels must match :class:`~repro.analysis.filter_study.FilterFold`'s
    defaults so an empty week renders identically to an empty fold.
    """
    return [
        FilterOutcomeStats(label="raw"),
        FilterOutcomeStats(label="static >= 1 ms"),
        FilterOutcomeStats(label="hold-time 0.125"),
        FilterOutcomeStats(label="static + hold-time"),
    ]
