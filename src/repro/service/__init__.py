"""repro.service: the measurement-as-a-service plane.

The paper's campaign is a standing, weekly measurement whose results
people *query* — adoption per week, compliance distributions, one
domain's history.  This package turns the repo's one-shot pipeline into
that service, in three layers that only talk through files:

* :mod:`repro.service.daemon` — the campaign daemon: a clock-agnostic
  scheduler drives the regular scanner over the configured campaign,
  spooling each week's dataset as a content-addressed ``cbr`` artifact
  (:mod:`repro.service.spool`).  Every step resumes after a crash via
  existing machinery (scan checkpoints, content dedupe, fold ledger).
* :mod:`repro.service.indexer` — the incremental indexer: folds each
  artifact exactly once into persistent per-week counter summaries
  (:mod:`repro.service.summary`), idempotent and order-independent down
  to the summary bytes.
* :mod:`repro.service.api` — the HTTP/JSON query API: millisecond
  answers from the summaries, byte-identical to ``repro analyze`` over
  the same artifacts, with zero chunk decodes on the hot path.

DESIGN.md Sec. 11 documents the spool and ledger formats and the
byte-identity argument.
"""

from repro.service.api import ServiceState, build_server, serve_forever
from repro.service.daemon import (
    CampaignDaemon,
    Scheduler,
    ServiceConfig,
    SimulatedClock,
    WallClock,
)
from repro.service.indexer import WeekIndexer
from repro.service.spool import SpoolEntry, SpoolStore, artifact_fingerprint
from repro.service.summary import WeekSummary, summarize_records

__all__ = [
    "CampaignDaemon",
    "Scheduler",
    "ServiceConfig",
    "ServiceState",
    "SimulatedClock",
    "SpoolEntry",
    "SpoolStore",
    "WallClock",
    "WeekIndexer",
    "WeekSummary",
    "artifact_fingerprint",
    "build_server",
    "serve_forever",
    "summarize_records",
]
