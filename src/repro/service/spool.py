"""Content-addressed artifact spool for the measurement service.

The campaign daemon and external submitters drop finished ``cbr``
artifacts here; the incremental indexer folds them into week summaries.
Artifacts are stored under their own content fingerprint
(``sha256(payload)[:16]``), so resubmitting the same bytes — a retried
upload, a daemon restart, a replayed batch — lands on the same file and
is recognized as a duplicate before any decoding happens.

Two files per spool directory:

* ``artifacts/<fingerprint>.cbr`` — the payloads, written atomically
  (tmp + rename) so a crash mid-submit never leaves a torn artifact
  under a valid name;
* ``manifest.jsonl`` — one appended JSON line per event: artifact
  submissions (with size and source label) and completed daemon scans
  (with their :func:`repro.faults.scan_fingerprint` identity).  The
  manifest is advisory metadata: reading tolerates damaged lines, and
  the artifact set is always recoverable from the directory listing
  alone.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path

__all__ = ["SpoolEntry", "SpoolStore", "artifact_fingerprint", "scan_digest"]

_ARTIFACT_DIR = "artifacts"
_MANIFEST_NAME = "manifest.jsonl"


def artifact_fingerprint(payload: bytes) -> str:
    """Content address of one artifact payload."""
    return hashlib.sha256(payload).hexdigest()[:16]


@dataclass(frozen=True)
class SpoolEntry:
    """One spooled artifact: its content address and storage path."""

    fingerprint: str
    path: Path
    size: int
    #: ``False`` when the submission matched an already-spooled payload.
    new: bool = True


class SpoolStore:
    """Artifact intake under one directory (created on demand)."""

    def __init__(self, directory: str | os.PathLike, telemetry=None) -> None:
        self.directory = Path(directory)
        self.artifact_dir = self.directory / _ARTIFACT_DIR
        self.artifact_dir.mkdir(parents=True, exist_ok=True)
        self.manifest_path = self.directory / _MANIFEST_NAME
        #: Optional :class:`repro.telemetry.Telemetry`; intake volume
        #: counters only (content-derived, hence still deterministic).
        self.telemetry = telemetry

    def _count(self, name: str, amount: int = 1) -> None:
        if self.telemetry is not None:
            self.telemetry.registry.counter(name).inc(amount)

    # -- submissions ---------------------------------------------------

    def submit_bytes(self, payload: bytes, source: str = "submit") -> SpoolEntry:
        """Store one artifact payload; duplicates are no-ops.

        The returned entry's ``new`` flag tells the caller whether the
        payload was actually written (and hence whether the indexer has
        anything to do that the ledger will not already reject).
        """
        fingerprint = artifact_fingerprint(payload)
        path = self.artifact_path(fingerprint)
        self._count("spool.submissions")
        if path.is_file():
            self._count("spool.duplicates")
            return SpoolEntry(
                fingerprint=fingerprint, path=path, size=len(payload), new=False
            )
        self._count("spool.bytes", len(payload))
        tmp = path.with_suffix(".tmp")
        tmp.write_bytes(payload)
        os.replace(tmp, path)
        self._append_manifest(
            {
                "event": "artifact",
                "fingerprint": fingerprint,
                "bytes": len(payload),
                "source": source,
            }
        )
        return SpoolEntry(
            fingerprint=fingerprint, path=path, size=len(payload), new=True
        )

    def submit_file(self, path: str | os.PathLike, source: str | None = None) -> SpoolEntry:
        """Spool an existing artifact file by content."""
        payload = Path(path).read_bytes()
        return self.submit_bytes(payload, source=source or str(path))

    def artifact_path(self, fingerprint: str) -> Path:
        return self.artifact_dir / f"{fingerprint}.cbr"

    def artifacts(self) -> list[SpoolEntry]:
        """Every spooled artifact, in fingerprint order.

        Listed from the directory, not the manifest, so a lost or
        damaged manifest never hides payloads from the indexer.
        """
        entries = []
        for path in sorted(self.artifact_dir.glob("*.cbr")):
            entries.append(
                SpoolEntry(
                    fingerprint=path.stem,
                    path=path,
                    size=path.stat().st_size,
                    new=False,
                )
            )
        return entries

    # -- daemon scan ledger --------------------------------------------

    def record_scan(self, fingerprint: dict, artifact: str) -> None:
        """Mark one campaign scan as completed and spooled.

        ``fingerprint`` is the :func:`repro.faults.scan_fingerprint`
        dict; ``artifact`` the content address its dataset landed under.
        Written *after* the artifact itself, so a crash between the two
        re-runs the scan — which resubmits the identical payload and
        the indexer's ledger makes the re-fold a no-op.
        """
        self._append_manifest(
            {"event": "scan", "fingerprint": fingerprint, "artifact": artifact}
        )

    def completed_scans(self) -> dict[str, str]:
        """Map scan-identity digest → artifact fingerprint."""
        scans: dict[str, str] = {}
        for entry in self._manifest_entries():
            if entry.get("event") == "scan" and "artifact" in entry:
                scans[scan_digest(entry.get("fingerprint") or {})] = entry["artifact"]
        return scans

    def _manifest_entries(self) -> list[dict]:
        if not self.manifest_path.is_file():
            return []
        entries = []
        try:
            lines = self.manifest_path.read_text(encoding="utf-8").splitlines()
        except OSError:
            return []
        for line in lines:
            try:
                data = json.loads(line)  # jsonl-ok: the manifest codec itself
            except json.JSONDecodeError:
                continue  # torn tail after a crash mid-append
            if isinstance(data, dict):
                entries.append(data)
        return entries

    def _append_manifest(self, entry: dict) -> None:
        with open(self.manifest_path, "a", encoding="utf-8") as stream:
            stream.write(json.dumps(entry, sort_keys=True) + "\n")


def scan_digest(fingerprint: dict) -> str:
    """Stable digest of a scan-identity dict (manifest lookup key)."""
    canonical = json.dumps(fingerprint, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]
