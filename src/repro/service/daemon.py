"""Campaign daemon: scheduled scans feeding the spool and the index.

The daemon turns the one-shot ``repro scan`` workflow into a standing
measurement service.  Its unit of work is a *tick*: find the campaign
weeks whose scan is not yet recorded in the spool manifest, run the
next ones through the regular :class:`~repro.web.scanner.Scanner`
(checkpointed under the spool, so a crash mid-scan resumes shard by
shard), encode each dataset as a ``cbr`` artifact into the
content-addressed spool, and hand the spool to the
:class:`~repro.service.WeekIndexer`.

Crash-survivability is compositional, not bespoke: every step is either
idempotent or checkpointed by an existing layer —

* scan interrupted → :mod:`repro.faults.checkpoint` resumes shards;
* crash after the scan, before ``record_scan`` → the re-run produces
  the byte-identical dataset (scans are pure functions of the seed),
  whose submission dedupes on content and whose fold the ledger makes
  a no-op;
* crash mid-fold → the indexer's per-week fingerprint lists finish
  exactly the missing weeks.

Scheduling is clock-agnostic: :class:`Scheduler` paces ticks through a
pluggable clock.  Tests drive a :class:`SimulatedClock`; the ``repro
serve`` loop is the one place the service touches the wall clock, with
the determinism-lint pragmas marking that boundary.
"""

from __future__ import annotations

import io
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro.campaign.schedule import CalendarWeek, Campaign
from repro.obs.spans import trace_id_for
from repro.service.indexer import WeekIndexer
from repro.service.spool import SpoolStore, scan_digest

__all__ = [
    "CampaignDaemon",
    "Scheduler",
    "ServiceConfig",
    "SimulatedClock",
    "WallClock",
]


@dataclass(frozen=True)
class ServiceConfig:
    """What one service instance measures, and how."""

    seed: int = 20230520
    czds_domains: int = 2_000
    toplist_domains: int = 200
    first_week: str = "cw18-2023"
    last_week: str = "cw20-2023"
    ip_version: int = 4
    workers: int = 1

    def __post_init__(self) -> None:
        if self.czds_domains < 0 or self.toplist_domains < 0:
            raise ValueError("domain counts must be non-negative")
        if self.czds_domains + self.toplist_domains == 0:
            raise ValueError("the population must contain at least one domain")
        if self.ip_version not in (4, 6):
            raise ValueError(f"ip_version must be 4 or 6, not {self.ip_version}")
        if self.workers < 0:
            raise ValueError("workers must be >= 0 (0 = one per core)")
        # Validates both labels and their ordering up front, so a typoed
        # week surfaces as one configuration error before any scanning.
        self.campaign()

    def campaign(self) -> Campaign:
        first = CalendarWeek.from_label(self.first_week)
        last = CalendarWeek.from_label(self.last_week)
        return Campaign(first=first, last=last)


class CampaignDaemon:
    """Drives campaign scans into a spool + index directory pair."""

    def __init__(
        self,
        directory: str | Path,
        config: ServiceConfig,
        telemetry=None,
        fault_hook: Callable[[str], None] | None = None,
    ) -> None:
        self.directory = Path(directory)
        self.config = config
        self.telemetry = telemetry
        self.spool = SpoolStore(self.directory / "spool", telemetry=telemetry)
        self.indexer = WeekIndexer(
            self.directory / "index", fault_hook=fault_hook, telemetry=telemetry
        )
        self._population = None
        self._scanner = None

    def close(self) -> None:
        """Shut down the daemon's scanner pool deterministically."""
        if self._scanner is not None:
            self._scanner.close()

    def __enter__(self) -> "CampaignDaemon":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def campaign_trace_id(self) -> str:
        """The campaign's deterministic trace identity."""
        config = self.config
        return trace_id_for(
            "campaign",
            config.seed,
            config.first_week,
            config.last_week,
            config.ip_version,
            config.czds_domains,
            config.toplist_domains,
        )

    @property
    def population(self):
        if self._population is None:
            from repro.internet.population import (
                PopulationConfig,
                build_population,
            )

            self._population = build_population(
                PopulationConfig(
                    toplist_domains=self.config.toplist_domains,
                    czds_domains=self.config.czds_domains,
                    seed=self.config.seed,
                )
            )
        return self._population

    @property
    def scanner(self):
        if self._scanner is None:
            from repro.web.parallel import ParallelScanConfig
            from repro.web.scanner import Scanner

            workers = self.config.workers
            parallel = (
                ParallelScanConfig.auto()
                if workers == 0
                else ParallelScanConfig(workers=workers)
            )
            self._scanner = Scanner(
                self.population, parallel=parallel, telemetry=self.telemetry
            )
        return self._scanner

    def pending_weeks(self) -> list[CalendarWeek]:
        """Campaign weeks whose scan the spool manifest does not record."""
        completed = self.spool.completed_scans()
        return [
            week
            for week in self.config.campaign().weeks()
            if scan_digest(self._scan_fingerprint(week)) not in completed
        ]

    def run_once(self, max_weeks: int | None = None, verbose: bool = False) -> dict:
        """One daemon tick: scan pending weeks, spool, fold, report.

        Returns a machine-parseable status dict; folding covers *every*
        pending spooled artifact (also externally submitted ones), not
        just this tick's scans.
        """
        telemetry = self.telemetry
        campaign_span = None
        if telemetry is not None:
            spans = telemetry.spans
            if spans.trace_id is None:
                spans.trace_id = self.campaign_trace_id()
            campaign_span = spans.span(
                "campaign",
                first_week=self.config.first_week,
                last_week=self.config.last_week,
            )
        pending = self.pending_weeks()
        if max_weeks is not None:
            pending = pending[:max_weeks]
        scanned = []
        for week in pending:
            scanned.append(self._scan_week(week, verbose=verbose))
        folded = self.indexer.fold_pending(self.spool)
        # The tick's read-back — the "query" step of the pipeline: the
        # status report is served from the index the tick just wrote.
        status_span = (
            telemetry.spans.span("status") if telemetry is not None else None
        )
        still_pending = self.pending_weeks()
        indexed = self.indexer.weeks()
        if status_span is not None:
            status_span.annotate(
                pending_weeks=len(still_pending), indexed_weeks=len(indexed)
            )
            status_span.end()
        if telemetry is not None:
            registry = telemetry.registry
            registry.counter("service.ticks_total").inc()
            registry.counter("service.weeks_scanned").inc(len(scanned))
            registry.counter("service.artifacts_folded").inc(len(folded))
            registry.gauge("service.pending_weeks").set(len(still_pending))
            registry.gauge("service.weeks_indexed").set(len(indexed))
            registry.gauge("service.spool_backlog").set(
                sum(
                    1
                    for entry in self.spool.artifacts()
                    if entry.fingerprint not in self.indexer.ledger()
                )
            )
            campaign_span.annotate(
                scanned=len(scanned), folded=len(folded)
            )
            campaign_span.end()
        return {
            "scanned_weeks": scanned,
            "folded_artifacts": folded,
            "pending_weeks": len(still_pending),
            "indexed_weeks": indexed,
        }

    def _scan_week(self, week: CalendarWeek, verbose: bool = False) -> str:
        from repro.artifacts.cbr import write_records_cbr

        fingerprint = self._scan_fingerprint(week)
        digest = scan_digest(fingerprint)
        if verbose:
            print(
                f"service: scanning week {week.label} "
                f"(IPv{self.config.ip_version}) ...",
                file=sys.stderr,
            )
        import time

        started = time.perf_counter()  # wallclock-ok: throughput gauge only
        dataset = self.scanner.scan(
            week_label=week.label,
            ip_version=self.config.ip_version,
            verbose=verbose,
            checkpoint_dir=self.directory / "spool" / "checkpoints" / digest,
        )
        elapsed = time.perf_counter() - started  # wallclock-ok: gauge only
        telemetry = self.telemetry
        if telemetry is not None and elapsed > 0:
            # Wall-clock throughput is operational state, not a
            # measurement artifact: it feeds the scan-throughput SLO and
            # never enters the deterministic trace or span streams.
            telemetry.registry.gauge("service.scan_domains_per_s").set(
                len(dataset.results) / elapsed
            )
        spool_span = (
            telemetry.spans.span(f"spool:{week.label}")
            if telemetry is not None
            else None
        )
        buffer = io.BytesIO()
        write_records_cbr(dataset.connection_records(), buffer)
        entry = self.spool.submit_bytes(
            buffer.getvalue(), source=f"daemon:{week.label}"
        )
        self.spool.record_scan(fingerprint, entry.fingerprint)
        if spool_span is not None:
            spool_span.annotate(
                artifact=entry.fingerprint,
                bytes=entry.size,
                duplicate=not entry.new,
            )
            spool_span.end()
        return week.label

    def _scan_fingerprint(self, week: CalendarWeek) -> dict:
        """The scan's identity — same derivation the checkpoint layer uses."""
        from repro.faults.checkpoint import scan_fingerprint

        return scan_fingerprint(
            self.config.seed,
            week.label,
            self.config.ip_version,
            0,
            self.population.domains,
            repr(self.scanner.config),
        )


class SimulatedClock:
    """Deterministic clock for scheduler tests: sleeping advances time."""

    def __init__(self) -> None:
        self.now_s = 0.0
        self.sleeps: list[float] = []

    def monotonic(self) -> float:
        return self.now_s

    def sleep(self, seconds: float) -> None:
        self.sleeps.append(seconds)
        self.now_s += seconds


class WallClock:
    """The real clock — only the serve loop runs on it, never analysis."""

    def monotonic(self) -> float:
        import time

        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        import time

        time.sleep(seconds)  # robustness-ok: serve-loop pacing, not a scan


class Scheduler:
    """Paces daemon ticks on a fixed cadence through a pluggable clock."""

    def __init__(
        self,
        daemon: CampaignDaemon,
        interval_s: float,
        clock=None,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("tick interval must be positive")
        self.daemon = daemon
        self.interval_s = interval_s
        self.clock = clock if clock is not None else SimulatedClock()
        self.ticks = 0

    def run(
        self,
        max_ticks: int | None = None,
        should_stop: Callable[[], bool] | None = None,
        verbose: bool = False,
    ) -> None:
        """Tick until ``max_ticks`` or ``should_stop()``; sleeps between.

        The next tick is scheduled relative to the *start* of the last
        one, so slow scans do not drift the cadence further than they
        must.
        """
        while max_ticks is None or self.ticks < max_ticks:
            if should_stop is not None and should_stop():
                return
            started = self.clock.monotonic()
            self.daemon.run_once(verbose=verbose)
            self.ticks += 1
            if max_ticks is not None and self.ticks >= max_ticks:
                return
            elapsed = self.clock.monotonic() - started
            self.clock.sleep(max(0.0, self.interval_s - elapsed))
