"""Migration accuracy study: what CID linkage buys the observer.

``repro analyze --section migration`` answers the robustness question
the paper's accuracy claims leave open: *how wrong do passive RTT
estimates get when connections migrate, and how much of that damage
does CID linkage undo?*

The study replays one migration-chaos traffic mix through three
observers simultaneously:

* **oracle** — perfect flow identity (the generator's own flow index,
  which no real observer has).  Its per-flow mean spin RTT is the best
  a passive observer could possibly do; deviations from it measure
  flow-identity damage only.
* **linked** — the production resolver
  (:class:`~repro.core.flow_resolver.FlowKeyResolver`) with CID
  linkage on.
* **unlinked** — the same resolver with linkage off: every unknown CID
  opens a new flow, as the legacy DCID-keyed table behaved.

Attribution from observer flows back to ground-truth flows needs no
heuristics: while datagram ``i`` of flow ``k`` is being processed, the
table's ``on_packet`` hook fires with the receiving
:class:`~repro.core.flow_table.FlowRecord`, so each observer flow key
is pinned to the ground-truth index of its first packet.  A split flow
simply yields several keys pinned to the same index.
"""

from __future__ import annotations

from repro.core.flow_resolver import FlowKeyResolver
from repro.core.flow_table import SpinFlowTable
from repro.core.observer import SpinObserver
from repro.monitor.traffic import TrafficConfig, TrafficMux
from repro.quic.datagram import decode_datagram
from repro.quic.packet import HeaderParseError, ShortHeader
from repro.quic.packet_number import decode_packet_number

__all__ = ["render_migration_section", "run_linkage_study"]

_ARMS = ("linked", "unlinked")


def run_linkage_study(traffic: TrafficConfig) -> dict:
    """Run the three-observer comparison once; returns a JSON-able dict."""
    mux = TrafficMux(traffic)
    resolvers = {
        "linked": FlowKeyResolver(cid_linkage=True),
        "unlinked": FlowKeyResolver(cid_linkage=False),
    }
    attribution: dict[str, dict[str, int]] = {arm: {} for arm in _ARMS}
    current_index = [0]
    tables = {}
    for arm, resolver in resolvers.items():
        def on_packet(flow, time_ms, arm=arm):
            attribution[arm].setdefault(flow.flow_key, current_index[0])

        # Unbounded-ish table: the study measures linkage damage, not
        # capacity churn, so eviction must not add noise.
        tables[arm] = SpinFlowTable(
            short_dcid_length=traffic.short_dcid_length,
            max_flows=max(1_000_000, 4 * traffic.flows),
            idle_timeout_ms=3_600_000.0,
            retain_retired=True,
            resolver=resolver,
            on_packet=on_packet,
        )

    oracle: dict[int, SpinObserver] = {}
    oracle_largest: dict[int, int | None] = {}
    for tap in mux.stream():
        current_index[0] = tap.flow_index
        for table in tables.values():
            table.on_server_datagram(tap.time_ms, tap.data, tap.tuple4)
        try:
            packets = decode_datagram(tap.data, traffic.short_dcid_length)
        except (HeaderParseError, ValueError, IndexError):
            continue
        for packet in packets:
            header = packet.header
            if not isinstance(header, ShortHeader):
                continue
            observer = oracle.get(tap.flow_index)
            if observer is None:
                observer = oracle[tap.flow_index] = SpinObserver()
            full_pn = decode_packet_number(
                header.packet_number,
                header.pn_length,
                oracle_largest.get(tap.flow_index),
            )
            previous = oracle_largest.get(tap.flow_index)
            if previous is None or full_pn > previous:
                oracle_largest[tap.flow_index] = full_pn
            observer.on_packet(tap.time_ms, full_pn, header.spin_bit)

    oracle_means = {}
    for index, observer in oracle.items():
        rtts = observer.observation().rtts_received_ms
        if rtts:
            oracle_means[index] = sum(rtts) / len(rtts)
    migrated_indexes = {entry["flow_index"] for entry in mux.migration_log}

    result = {
        "traffic": {
            "flows": traffic.flows,
            "tcp_flows": traffic.tcp_flows,
            "seed": traffic.seed,
            "plan": (
                traffic.migration.to_string()
                if traffic.migration is not None
                else ""
            ),
        },
        "injected": mux.injected_summary(),
        "oracle_flows": len(oracle_means),
        "arms": {
            arm: _arm_stats(
                tables[arm],
                resolvers[arm],
                attribution[arm],
                oracle_means,
                migrated_indexes,
            )
            for arm in _ARMS
        },
    }
    return result


def _arm_stats(
    table: SpinFlowTable,
    resolver: FlowKeyResolver,
    attribution: dict[str, int],
    oracle_means: dict[int, float],
    migrated_indexes: set[int],
) -> dict:
    samples: dict[int, list[float]] = {}
    fragments: dict[int, int] = {}
    for flow in table.all_flows():
        index = attribution.get(flow.flow_key)
        if index is None:
            continue
        fragments[index] = fragments.get(index, 0) + 1
        observation = flow.observation()
        if observation.rtts_received_ms:
            samples.setdefault(index, []).extend(observation.rtts_received_ms)

    def error_stats(indexes) -> dict:
        errors = []
        lost = 0
        for index in indexes:
            oracle_mean = oracle_means[index]
            estimates = samples.get(index)
            if not estimates:
                lost += 1
                continue
            estimate = sum(estimates) / len(estimates)
            errors.append(abs(estimate - oracle_mean) / oracle_mean)
        block = {"flows": len(list(indexes)), "flows_without_estimate": lost}
        if errors:
            block["mean_abs_rel_error_pct"] = round(
                100.0 * sum(errors) / len(errors), 3
            )
            block["max_abs_rel_error_pct"] = round(100.0 * max(errors), 3)
        return block

    all_indexes = sorted(oracle_means)
    migrated = [index for index in all_indexes if index in migrated_indexes]
    return {
        "resolver": resolver.counters(),
        "flow_keys": len(fragments),
        "fragmented_flows": sum(1 for count in fragments.values() if count > 1),
        "all": error_stats(all_indexes),
        "migrated": error_stats(migrated),
    }


def render_migration_section(result: dict) -> str:
    """Human-readable rendering of :func:`run_linkage_study` output."""
    from repro.analysis.report import render_table

    traffic = result["traffic"]
    injected = result["injected"]
    lines = [
        "== Connection migration: RTT accuracy with vs without CID linkage ==",
        "",
        f"traffic: {traffic['flows']} QUIC flows + {traffic['tcp_flows']} TCP "
        f"flows, seed {traffic['seed']}, plan {traffic['plan'] or '(none)'}",
        f"injected: {injected['flows_drawn']} migrations drawn "
        f"({', '.join(f'{k} {v}' for k, v in injected['by_kind'].items()) or 'none'}), "
        f"{injected['applied']} applied mid-flow",
        f"oracle: {result['oracle_flows']} flows with spin RTT samples",
        "",
    ]
    rows = []
    for arm in _ARMS:
        stats = result["arms"][arm]
        counters = stats["resolver"]
        for scope in ("all", "migrated"):
            block = stats[scope]
            rows.append(
                (
                    arm,
                    scope,
                    block["flows"],
                    block["flows_without_estimate"],
                    stats["fragmented_flows"] if scope == "all" else "",
                    counters["flows_migrated"] if scope == "all" else "",
                    counters["flows_split"] if scope == "all" else "",
                    (
                        f"{block['mean_abs_rel_error_pct']:.2f} %"
                        if "mean_abs_rel_error_pct" in block
                        else "-"
                    ),
                )
            )
    lines.append(
        render_table(
            (
                "arm", "scope", "flows", "no-estimate", "fragmented",
                "migrated", "split", "mean |rel err|",
            ),
            rows,
        )
    )
    return "\n".join(lines)
