"""One-call regeneration of the paper's full result set.

:func:`generate_paper_report` runs the complete study — IPv4 and IPv6
reference scans, the accuracy pool, the 12-week longitudinal study —
over one population and renders every table and figure as text.  It is
the library's "reproduce the paper" entry point (`repro report` on the
command line); the benchmark harness covers the same ground with
assertions attached.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.accuracy import accuracy_study
from repro.analysis.asorg import organization_table
from repro.analysis.compliance import compliance_histogram
from repro.analysis.config import configuration_table
from repro.analysis.report import (
    render_compliance_histogram,
    render_configuration_table,
    render_org_table,
    render_series_summary,
    render_support_overview,
)
from repro.analysis.support import support_overview
from repro.analysis.versions import version_distribution
from repro.analysis.webserver import webserver_shares
from repro.campaign.runner import CampaignRunner
from repro.campaign.schedule import DEFAULT_CAMPAIGN
from repro.internet.asdb import build_default_asdb
from repro.internet.population import ListGroup, Population
from repro.web.scanner import ScanConfig, Scanner

__all__ = ["PaperReport", "generate_paper_report"]


@dataclass
class PaperReport:
    """The rendered report plus the underlying analysis objects."""

    text: str
    support_v4: object
    support_v6: object
    organizations: object
    configuration: object
    compliance: object | None
    accuracy: object


def generate_paper_report(
    population: Population,
    scan_config: ScanConfig | None = None,
    longitudinal_weeks: int = 12,
    longitudinal_domain_cap: int = 1_200,
    include_longitudinal: bool = True,
) -> PaperReport:
    """Run every experiment of the paper over ``population``.

    ``longitudinal_domain_cap`` bounds the Figure 2 workload (weekly
    re-scans are the expensive part); set ``include_longitudinal=False``
    to skip it entirely.
    """
    scanner = Scanner(population, scan_config)
    sections: list[str] = []

    v4 = scanner.scan(week_label="cw20-2023", ip_version=4)
    support4 = support_overview(v4, population)
    sections.append("== Table 1: IPv4 adoption overview ==")
    sections.append(render_support_overview(support4))

    asdb = build_default_asdb()
    cno_names = {d.name for d in population.group_members(ListGroup.COM_NET_ORG)}
    cno_connections = [
        record
        for result in v4.results
        if result.domain.name in cno_names
        for record in result.connections
    ]
    organizations = organization_table(cno_connections, asdb)
    sections.append("\n== Table 2: AS organizations (com/net/org) ==")
    sections.append(render_org_table(organizations))

    configuration = configuration_table(v4, population)
    sections.append("\n== Table 3: spin configuration ==")
    sections.append(render_configuration_table(configuration))

    compliance = None
    if include_longitudinal:
        runner = CampaignRunner(population, DEFAULT_CAMPAIGN, scan_config)
        quic_domains = [d for d in population.domains if d.quic_enabled]
        subset = quic_domains[:longitudinal_domain_cap]
        longitudinal = runner.run_longitudinal(longitudinal_weeks, domains=subset)
        compliance = compliance_histogram(longitudinal)
        sections.append("\n== Figure 2: weeks with spin enabled ==")
        sections.append(render_compliance_histogram(compliance))

    v6 = scanner.scan(week_label="cw20-2023", ip_version=6)
    support6 = support_overview(v6, population)
    sections.append("\n== Table 4: IPv6 adoption overview ==")
    sections.append(render_support_overview(support6))

    # Accuracy pool: the CW 20 connections plus two extra weeks of the
    # spin-active domains (cf. benchmarks/conftest.py).
    records = list(v4.connection_records())
    spin_domains = [r.domain for r in v4.results if r.shows_spin_activity]
    for label in ("cw18-2023", "cw19-2023"):
        records.extend(
            scanner.scan(week_label=label, domains=spin_domains).connection_records()
        )
    accuracy = accuracy_study(records)
    sections.append("\n== Figures 3/4: RTT accuracy ==")
    sections.append(render_series_summary(accuracy.spin_received))
    impact = accuracy.reordering
    sections.append(
        f"reordering: {impact.changed_share * 100:.2f} % of connections "
        f"change under packet-number sorting"
    )

    sections.append("\n== Webserver attribution (spinning connections) ==")
    for share in webserver_shares(records)[:6]:
        sections.append(
            f"  {share.server_header:30s} {share.connections:6d}"
            f" {share.share * 100:5.1f} %"
        )

    sections.append("\n== Negotiated QUIC versions ==")
    for share in version_distribution(records):
        sections.append(
            f"  {share.label:14s} {share.connections:6d} {share.share * 100:5.1f} %"
        )

    return PaperReport(
        text="\n".join(sections),
        support_v4=support4,
        support_v6=support6,
        organizations=organizations,
        configuration=configuration,
        compliance=compliance,
        accuracy=accuracy,
    )
