"""Single-pass streaming analysis engine.

Every analysis section of the repro pipeline is a **fold**: an
accumulator object with

* ``name`` — the section identifier (``"orgs"``, ``"accuracy"``, ...);
* ``update_many(records)`` — absorb one batch of decoded
  :class:`~repro.web.scanner.ConnectionRecord` objects (the batch loop
  lives *inside* the fold, so per-record dispatch costs one method call
  per batch and section, not per record and section);
* ``finish()`` — produce the section's result object (the same type the
  section's classic function returns).

:class:`AnalysisEngine` drives any number of folds over one shared
stream of record batches, so ``repro analyze`` with every section
enabled decodes the artifact exactly once and holds one batch in memory
at a time.  The classic per-section functions
(:func:`~repro.analysis.asorg.organization_table`,
:func:`~repro.analysis.accuracy.accuracy_study`, ...) are thin wrappers
that run their fold over an in-memory list — same code path, same
results.

Folds declare which decoded columns they touch via the class attributes
``needs_edges_received`` / ``needs_edges_sorted``; the engine aggregates
them so the cbr reader can skip materializing edge objects nobody will
read (projection pushdown).  Absent attributes count as *needed* —
unknown folds never see partial records.

The domain-scoped sections (support, config, compliance) fold over
domain results / weekly activity flags instead of connection records;
their folds live next to their classic functions
(:class:`~repro.analysis.support.SupportFold`,
:class:`~repro.analysis.config.ConfigurationFold`,
:class:`~repro.analysis.compliance.ComplianceFold`).
"""

from __future__ import annotations

from typing import Any, Iterable, Protocol, Sequence

from repro.web.scanner import ConnectionRecord

__all__ = ["AnalysisEngine", "RecordFold", "build_record_folds"]


class RecordFold(Protocol):
    """What the engine requires of a connection-record fold."""

    name: str

    def update_many(self, records: Sequence[ConnectionRecord]) -> None: ...

    def finish(self) -> Any: ...


class AnalysisEngine:
    """Runs a set of folds over one stream of record batches."""

    def __init__(self, folds: Sequence[RecordFold], telemetry=None) -> None:
        names = [fold.name for fold in folds]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate fold names: {names}")
        self.folds = list(folds)
        #: Optional :class:`repro.telemetry.Telemetry`; when its
        #: ``profiler`` is set, per-fold self time is attributed under
        #: ``fold:<section>`` phases (``repro profile --analyze``).
        self.telemetry = telemetry

    @property
    def needs_edges_received(self) -> bool:
        return any(
            getattr(fold, "needs_edges_received", True) for fold in self.folds
        )

    @property
    def needs_edges_sorted(self) -> bool:
        return any(getattr(fold, "needs_edges_sorted", True) for fold in self.folds)

    def run(
        self,
        batches: Iterable[Sequence[ConnectionRecord]],
        predicate=None,
        stats=None,
    ) -> dict[str, Any]:
        """One pass over ``batches``; returns ``{section: result}``.

        Results preserve the fold order given at construction.
        ``predicate`` (a :class:`repro.analysis.query.Predicate`) is the
        residual filter of a pushed-down query: every batch is filtered
        before the folds see it, so the same folds over a zone-pruned
        chunk stream produce byte-identical sections to a full scan.
        ``stats`` (a :class:`~repro.analysis.query.QueryStats`) counts
        scanned and matched records when given.
        """
        folds = self.folds
        profiler = (
            self.telemetry.profiler if self.telemetry is not None else None
        )
        if profiler is not None:
            return self._run_profiled(batches, predicate, stats, profiler)
        if predicate is not None or stats is not None:
            from repro.analysis.query import filter_batch

            for batch in batches:
                matched = filter_batch(batch, predicate, stats)
                if matched:
                    for fold in folds:
                        fold.update_many(matched)
        else:
            for batch in batches:
                for fold in folds:
                    fold.update_many(batch)
        return {fold.name: fold.finish() for fold in folds}

    def _run_profiled(self, batches, predicate, stats, profiler):
        """The profiling twin of :meth:`run`: same results, per-fold
        phases.  A separate loop so the unprofiled hot path stays free
        of per-batch-per-fold context managers."""
        from repro.analysis.query import filter_batch

        folds = self.folds
        with profiler.phase("analyze"):
            for batch in batches:
                if predicate is not None or stats is not None:
                    with profiler.phase("filter"):
                        batch = filter_batch(batch, predicate, stats)
                if not batch:
                    continue
                for fold in folds:
                    with profiler.phase(f"fold:{fold.name}"):
                        fold.update_many(batch)
            results = {}
            for fold in folds:
                with profiler.phase(f"fold:{fold.name}"):
                    results[fold.name] = fold.finish()
        return results


def build_record_folds(sections: Iterable[str], asdb=None) -> list[RecordFold]:
    """The record-stream folds behind ``repro analyze``'s sections.

    ``sections`` is any iterable of section names (``"all"`` selects
    every record-based section); ``asdb`` is required for ``orgs`` and
    built on demand when omitted.  Fold order follows the CLI's section
    order regardless of the input order.
    """
    from repro.analysis.accuracy import AccuracyFold
    from repro.analysis.asorg import OrgFold
    from repro.analysis.filter_study import FilterFold
    from repro.analysis.versions import VersionFold
    from repro.analysis.webserver import WebserverFold
    from repro.faults.taxonomy import FailureFold

    if isinstance(sections, str):
        sections = (sections,)
    wanted = set(sections)
    if "all" in wanted:
        wanted |= {"orgs", "webservers", "accuracy", "versions", "filters", "failures"}
    folds: list[RecordFold] = []
    if "orgs" in wanted:
        if asdb is None:
            from repro.internet.asdb import build_default_asdb

            asdb = build_default_asdb()
        folds.append(OrgFold(asdb))
    if "webservers" in wanted:
        folds.append(WebserverFold())
    if "accuracy" in wanted:
        folds.append(AccuracyFold())
    if "versions" in wanted:
        folds.append(VersionFold())
    if "filters" in wanted:
        folds.append(FilterFold())
    if "failures" in wanted:
        folds.append(FailureFold())
    unknown = wanted - {
        "all", "orgs", "webservers", "accuracy", "versions", "filters", "failures",
    }
    if unknown:
        raise ValueError(f"unknown analysis sections: {sorted(unknown)}")
    return folds
