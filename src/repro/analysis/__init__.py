"""The paper's analysis pipeline: Tables 1-4, Figures 2-4, and the
Section 6 extension studies (artifacts, filters, long connections,
version distribution)."""

from repro.analysis.artifacts import export_records, load_records, read_records
from repro.analysis.engine import AnalysisEngine, RecordFold, build_record_folds
from repro.analysis.filter_study import (
    FilterFold,
    FilterOutcome,
    FilterStudy,
    run_filter_study,
)
from repro.analysis.longform import (
    SamplePositionProfile,
    per_sample_deviation_profile,
    windowed_accuracy,
)
from repro.analysis.paper_report import PaperReport, generate_paper_report
from repro.analysis.timeline import render_spin_timeline
from repro.analysis.versions import VersionFold, VersionShare, version_distribution

from repro.analysis.accuracy import (
    ABS_DIFF_EDGES_MS,
    AccuracyFold,
    RATIO_EDGES,
    AccuracyStudy,
    ReorderingImpact,
    SeriesSummary,
    accuracy_study,
)
from repro.analysis.asorg import OrgFold, OrgRow, OrgTable, organization_table
from repro.analysis.compliance import (
    ComplianceFold,
    ComplianceHistogram,
    compliance_histogram,
    rfc_reference_shares,
)
from repro.analysis.config import (
    ConfigurationFold,
    ConfigurationRow,
    ConfigurationTable,
    configuration_table,
)
from repro.analysis.report import (
    render_compliance_histogram,
    render_configuration_table,
    render_histogram,
    render_org_table,
    render_series_summary,
    render_support_overview,
    render_table,
)
from repro.analysis.support import (
    SupportFold,
    SupportOverview,
    SupportRow,
    support_overview,
)
from repro.analysis.webserver import WebserverFold, WebserverShare, webserver_shares

__all__ = [
    "ABS_DIFF_EDGES_MS",
    "AccuracyFold",
    "AnalysisEngine",
    "ComplianceFold",
    "ConfigurationFold",
    "FilterFold",
    "OrgFold",
    "RecordFold",
    "SupportFold",
    "VersionFold",
    "WebserverFold",
    "build_record_folds",
    "FilterOutcome",
    "FilterStudy",
    "SamplePositionProfile",
    "VersionShare",
    "export_records",
    "load_records",
    "per_sample_deviation_profile",
    "read_records",
    "run_filter_study",
    "version_distribution",
    "windowed_accuracy",
    "AccuracyStudy",
    "ComplianceHistogram",
    "ConfigurationRow",
    "ConfigurationTable",
    "OrgRow",
    "OrgTable",
    "RATIO_EDGES",
    "ReorderingImpact",
    "SeriesSummary",
    "SupportOverview",
    "SupportRow",
    "WebserverShare",
    "accuracy_study",
    "compliance_histogram",
    "configuration_table",
    "organization_table",
    "render_compliance_histogram",
    "render_configuration_table",
    "render_histogram",
    "render_org_table",
    "render_series_summary",
    "PaperReport",
    "generate_paper_report",
    "render_spin_timeline",
    "render_support_overview",
    "render_table",
    "rfc_reference_shares",
    "support_overview",
    "webserver_shares",
]
