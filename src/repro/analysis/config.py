"""Spin-bit configuration analysis — Table 3 of the paper.

Classifies every QUIC-enabled domain of a scan into All Zero / All One /
Spin / Grease (Section 4.3): how do deployments that do not participate
in the mechanism disable it, and how many candidates does the grease
filter remove?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.classify import SpinBehaviour, classify_domain
from repro.internet.population import ListGroup, Population
from repro.web.scanner import DomainScanResult, ScanDataset

__all__ = [
    "ConfigurationFold",
    "ConfigurationRow",
    "ConfigurationTable",
    "configuration_table",
]


@dataclass(frozen=True)
class ConfigurationRow:
    """One population view's Table 3 row."""

    group: ListGroup
    quic_domains: int
    all_zero: int
    all_one: int
    spin: int
    grease: int

    @property
    def all_zero_share(self) -> float:
        return self.all_zero / self.quic_domains if self.quic_domains else 0.0

    @property
    def all_one_share(self) -> float:
        return self.all_one / self.quic_domains if self.quic_domains else 0.0

    @property
    def grease_share(self) -> float:
        return self.grease / self.quic_domains if self.quic_domains else 0.0

    @property
    def spin_share(self) -> float:
        return self.spin / self.quic_domains if self.quic_domains else 0.0


@dataclass(frozen=True)
class ConfigurationTable:
    """Table 3 for all three population views."""

    week_label: str
    ip_version: int
    rows: dict[ListGroup, ConfigurationRow]

    def row(self, group: ListGroup) -> ConfigurationRow:
        return self.rows[group]


class ConfigurationFold:
    """Streaming accumulator behind :func:`configuration_table`.

    Classifies each deduplicated QUIC domain exactly once and charges
    the verdict to every population view the domain belongs to (the
    original per-view pass re-classified shared domains per view).
    """

    name = "config"
    needs_edges_received = False
    needs_edges_sorted = False

    def __init__(self) -> None:
        self._quic_domains = {group: 0 for group in ListGroup}
        self._counters = {
            group: {behaviour: 0 for behaviour in SpinBehaviour}
            for group in ListGroup
        }

    def update_many(self, results: Iterable[DomainScanResult]) -> None:
        for result in results:
            if not result.quic_support:
                continue
            domain = result.domain
            views = []
            if domain.in_toplist:
                views.append(ListGroup.TOPLISTS)
            if domain.in_czds:
                views.append(ListGroup.CZDS)
                if domain.in_com_net_org:
                    views.append(ListGroup.COM_NET_ORG)
            if not views:
                continue
            behaviour = classify_domain(
                [c.behaviour for c in result.connections if c.success]
            )
            for view in views:
                self._quic_domains[view] += 1
                self._counters[view][behaviour] += 1

    def finish(
        self, week_label: str = "", ip_version: int = 4
    ) -> ConfigurationTable:
        rows: dict[ListGroup, ConfigurationRow] = {}
        for group in ListGroup:
            counters = self._counters[group]
            rows[group] = ConfigurationRow(
                group=group,
                quic_domains=self._quic_domains[group],
                all_zero=counters[SpinBehaviour.ALL_ZERO],
                all_one=counters[SpinBehaviour.ALL_ONE],
                spin=counters[SpinBehaviour.SPIN],
                grease=counters[SpinBehaviour.GREASE],
            )
        return ConfigurationTable(
            week_label=week_label, ip_version=ip_version, rows=rows
        )


def configuration_table(dataset: ScanDataset, population: Population) -> ConfigurationTable:
    """Aggregate domain-level spin behaviour per population view."""
    fold = ConfigurationFold()
    results_by_name = {result.domain.name: result for result in dataset.results}
    fold.update_many(results_by_name.values())
    return fold.finish(week_label=dataset.week_label, ip_version=dataset.ip_version)
