"""Spin-bit configuration analysis — Table 3 of the paper.

Classifies every QUIC-enabled domain of a scan into All Zero / All One /
Spin / Grease (Section 4.3): how do deployments that do not participate
in the mechanism disable it, and how many candidates does the grease
filter remove?
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.classify import SpinBehaviour, classify_domain
from repro.internet.population import ListGroup, Population
from repro.web.scanner import ScanDataset

__all__ = ["ConfigurationRow", "ConfigurationTable", "configuration_table"]


@dataclass(frozen=True)
class ConfigurationRow:
    """One population view's Table 3 row."""

    group: ListGroup
    quic_domains: int
    all_zero: int
    all_one: int
    spin: int
    grease: int

    @property
    def all_zero_share(self) -> float:
        return self.all_zero / self.quic_domains if self.quic_domains else 0.0

    @property
    def all_one_share(self) -> float:
        return self.all_one / self.quic_domains if self.quic_domains else 0.0

    @property
    def grease_share(self) -> float:
        return self.grease / self.quic_domains if self.quic_domains else 0.0

    @property
    def spin_share(self) -> float:
        return self.spin / self.quic_domains if self.quic_domains else 0.0


@dataclass(frozen=True)
class ConfigurationTable:
    """Table 3 for all three population views."""

    week_label: str
    ip_version: int
    rows: dict[ListGroup, ConfigurationRow]

    def row(self, group: ListGroup) -> ConfigurationRow:
        return self.rows[group]


def configuration_table(dataset: ScanDataset, population: Population) -> ConfigurationTable:
    """Aggregate domain-level spin behaviour per population view."""
    rows: dict[ListGroup, ConfigurationRow] = {}
    results_by_name = {result.domain.name: result for result in dataset.results}

    for group in ListGroup:
        counters = {behaviour: 0 for behaviour in SpinBehaviour}
        quic_domains = 0
        for domain in population.group_members(group):
            result = results_by_name.get(domain.name)
            if result is None or not result.quic_support:
                continue
            quic_domains += 1
            behaviour = classify_domain(
                [c.behaviour for c in result.connections if c.success]
            )
            counters[behaviour] += 1
        rows[group] = ConfigurationRow(
            group=group,
            quic_domains=quic_domains,
            all_zero=counters[SpinBehaviour.ALL_ZERO],
            all_one=counters[SpinBehaviour.ALL_ONE],
            spin=counters[SpinBehaviour.SPIN],
            grease=counters[SpinBehaviour.GREASE],
        )
    return ConfigurationTable(
        week_label=dataset.week_label, ip_version=dataset.ip_version, rows=rows
    )
