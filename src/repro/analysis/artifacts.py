"""Artifact dataset export and import (paper Appendix B).

The authors release, per connection, the extracted raw spin-bit
information together with qlog baseline data so that future work (e.g.
RTT filtering research, Section 5.2) can re-run analyses without
repeating the measurement.  This module provides that interface: every
:class:`~repro.web.scanner.ConnectionRecord` serializes to one JSON line
and loads back into an equivalent record, so the complete analysis
pipeline — grease filtering, accuracy metrics, R/S comparison,
organization attribution — runs unchanged on a stored dataset.

Schema (one JSON object per line, ``schema = 1``)::

    {
      "schema": 1,
      "domain": "...", "host": "www....", "ip": "185.185.0.16",
      "ip_version": 4, "provider": "hostinger",
      "server_header": "LiteSpeed", "status": 200, "success": true,
      "behaviour": "spin",
      "values_seen": [0, 1],
      "packets_seen": 38,
      "edges_received": [[t_ms, pn, value], ...],
      "edges_sorted":   [[t_ms, pn, value], ...],
      "rtts_received_ms": [...], "rtts_sorted_ms": [...],
      "stack_rtts_ms": [...]
    }
"""

from __future__ import annotations

import ipaddress
import json
from typing import IO, Iterable, Iterator

from repro.core.classify import SpinBehaviour
from repro.core.observer import SpinEdge, SpinObservation
from repro.faults.taxonomy import FailureKind
from repro.internet.asdb import IpAddr
from repro.web.scanner import ConnectionRecord

__all__ = ["export_records", "load_records", "read_records"]

_SCHEMA_VERSION = 1


class ArtifactFormatError(ValueError):
    """Raised when a dataset line does not match the schema."""


def _edge_to_json(edge: SpinEdge) -> list:
    return [edge.time_ms, edge.packet_number, int(edge.new_value)]


def _edge_from_json(entry: list) -> SpinEdge:
    time_ms, packet_number, value = entry
    return SpinEdge(
        time_ms=float(time_ms),
        packet_number=int(packet_number),
        new_value=bool(value),
    )


def record_to_dict(record: ConnectionRecord) -> dict:
    """One connection record as a JSON-serializable dict."""
    observation = record.observation
    data = {
        "schema": _SCHEMA_VERSION,
        "domain": record.domain,
        "host": record.host,
        "ip": str(record.ip),
        "ip_version": record.ip_version,
        "provider": record.provider_name,
        "server_header": record.server_header,
        "status": record.status,
        "success": record.success,
        "behaviour": record.behaviour.value,
        "values_seen": sorted(int(v) for v in observation.values_seen),
        "packets_seen": observation.packets_seen,
        "edges_received": [_edge_to_json(e) for e in observation.edges_received],
        "edges_sorted": [_edge_to_json(e) for e in observation.edges_sorted],
        "rtts_received_ms": observation.rtts_received_ms,
        "rtts_sorted_ms": observation.rtts_sorted_ms,
        "stack_rtts_ms": record.stack_rtts_ms,
        "quic_version": record.negotiated_version,
    }
    if record.failure is not None:
        # Only present on classified failures: legacy datasets (and
        # scans without faults/resilience) keep byte-identical lines.
        data["failure"] = record.failure.value
    if record.week is not None:
        # Same optionality contract as ``failure``: week-less records
        # (hand-built, pre-week datasets) emit the legacy line.
        data["week"] = record.week
    return data


def record_from_dict(data: dict) -> ConnectionRecord:
    """Inverse of :func:`record_to_dict`."""
    if data.get("schema") != _SCHEMA_VERSION:
        raise ArtifactFormatError(
            f"unsupported schema {data.get('schema')!r}; expected {_SCHEMA_VERSION}"
        )
    try:
        observation = SpinObservation(
            packets_seen=int(data["packets_seen"]),
            values_seen={bool(v) for v in data["values_seen"]},
            edges_received=[_edge_from_json(e) for e in data["edges_received"]],
            edges_sorted=[_edge_from_json(e) for e in data["edges_sorted"]],
            rtts_received_ms=[float(v) for v in data["rtts_received_ms"]],
            rtts_sorted_ms=[float(v) for v in data["rtts_sorted_ms"]],
        )
        address = ipaddress.ip_address(data["ip"])
        return ConnectionRecord(
            domain=data["domain"],
            host=data["host"],
            ip=IpAddr(value=int(address), version=address.version),
            ip_version=int(data["ip_version"]),
            provider_name=data["provider"],
            server_header=data["server_header"],
            status=data["status"],
            success=bool(data["success"]),
            behaviour=SpinBehaviour(data["behaviour"]),
            observation=observation,
            stack_rtts_ms=[float(v) for v in data["stack_rtts_ms"]],
            negotiated_version=data.get("quic_version"),
            failure=(
                FailureKind(data["failure"]) if data.get("failure") else None
            ),
            week=data.get("week"),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ArtifactFormatError(f"malformed artifact record: {exc}") from exc


def export_records(records: Iterable[ConnectionRecord], stream: IO[str]) -> int:
    """Write records as JSON lines; returns the number written."""
    count = 0
    for record in records:
        json.dump(record_to_dict(record), stream, separators=(",", ":"))  # jsonl-ok
        stream.write("\n")
        count += 1
    return count


def read_records(stream: IO[str]) -> Iterator[ConnectionRecord]:
    """Lazily parse a JSONL dataset stream."""
    for line_number, line in enumerate(stream, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            data = json.loads(line)  # jsonl-ok: this *is* the JSONL codec
        except json.JSONDecodeError as exc:
            raise ArtifactFormatError(
                f"line {line_number}: not valid JSON: {exc}"
            ) from exc
        yield record_from_dict(data)


def load_records(stream: IO[str]) -> list[ConnectionRecord]:
    """Eagerly load a JSONL dataset stream."""
    return list(read_records(stream))
