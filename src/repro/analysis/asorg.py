"""AS-organization attribution — Table 2 of the paper.

Every connection's IP is mapped to its origin AS via the (synthetic)
BGP prefix table and then to an organization via the as2org-equivalent
mapping; per organization the total number of QUIC connections and the
number with spin-bit activity are counted.  The rendered table shows
the top organizations by connection volume, their spin share, their
spin rank, and the aggregated ``<other>`` remainder — the layout of the
paper's Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.core.classify import SpinBehaviour
from repro.internet.asdb import AsDatabase
from repro.web.scanner import ConnectionRecord

__all__ = [
    "OrgFold",
    "OrgRow",
    "OrgTable",
    "org_table_from_counts",
    "organization_table",
]


@dataclass
class OrgRow:
    """Per-organization connection and spin counts."""

    org_name: str
    total_connections: int
    spin_connections: int
    total_rank: int = 0
    spin_rank: int | None = None

    @property
    def spin_share(self) -> float:
        """Fraction of the organization's connections with spin activity."""
        if not self.total_connections:
            return 0.0
        return self.spin_connections / self.total_connections


@dataclass
class OrgTable:
    """Table 2: top organizations plus the aggregated remainder."""

    top_rows: list[OrgRow]
    other: OrgRow
    all_rows: list[OrgRow]

    def row(self, org_name: str) -> OrgRow:
        """Find a named organization's row (raises if absent)."""
        for row in self.all_rows:
            if row.org_name == org_name:
                return row
        raise KeyError(f"no organization named {org_name!r} in the table")

    @property
    def total_connections(self) -> int:
        return sum(row.total_connections for row in self.all_rows)

    @property
    def total_spin_connections(self) -> int:
        return sum(row.spin_connections for row in self.all_rows)


class OrgFold:
    """Streaming accumulator behind :func:`organization_table`.

    Only successful QUIC connections are attributed; spin activity uses
    the unfiltered candidate criterion plus grease filtering, i.e. the
    ``SPIN`` behaviour class, consistent with the paper's "Spin #".
    Prefix lookups are cached per IP — campaigns revisit the same
    addresses constantly (redirect chains, follow-up probes).
    """

    name = "orgs"
    needs_edges_received = False
    needs_edges_sorted = False

    def __init__(self, asdb: AsDatabase, top_n: int = 8) -> None:
        self._asdb = asdb
        self._top_n = top_n
        self._totals: dict[str, int] = {}
        self._spins: dict[str, int] = {}
        self._org_of: dict = {}

    def update_many(self, records: Sequence[ConnectionRecord]) -> None:
        totals = self._totals
        spins = self._spins
        org_of = self._org_of
        lookup = self._asdb.lookup
        spin = SpinBehaviour.SPIN
        for connection in records:
            if not connection.success:
                continue
            ip = connection.ip
            org = org_of.get(ip)
            if org is None:
                entry = lookup(ip)
                org = entry.org_name if entry is not None else "<unrouted>"
                org_of[ip] = org
            totals[org] = totals.get(org, 0) + 1
            if connection.behaviour is spin:
                spins[org] = spins.get(org, 0) + 1

    def counts(self) -> tuple[dict[str, int], dict[str, int]]:
        """The mergeable ``(totals, spins)`` counters behind the table.

        This is what the service plane persists per week: the dicts
        merge by plain addition and :func:`org_table_from_counts`
        rebuilds the identical table from the merged state.
        """
        return dict(self._totals), dict(self._spins)

    def finish(self) -> OrgTable:
        return org_table_from_counts(self._totals, self._spins, top_n=self._top_n)


def org_table_from_counts(
    totals: Mapping[str, int],
    spins: Mapping[str, int],
    top_n: int = 8,
) -> OrgTable:
    """Build the Table 2 ranking from per-organization counters.

    The counters are exactly :class:`OrgFold`'s internal state, so the
    service plane can persist them per week (they merge by plain
    addition) and still reproduce the fold's table — ranks, tie-breaks
    and ``<other>`` aggregation — byte-identically.
    """
    rows = [
        OrgRow(org_name=org, total_connections=count, spin_connections=spins.get(org, 0))
        for org, count in totals.items()
    ]
    rows.sort(key=lambda row: (-row.total_connections, row.org_name))
    for rank, row in enumerate(rows, start=1):
        row.total_rank = rank
    by_spin = sorted(
        (row for row in rows if row.spin_connections),
        key=lambda row: (-row.spin_connections, row.org_name),
    )
    for rank, row in enumerate(by_spin, start=1):
        row.spin_rank = rank

    top_rows = rows[:top_n]
    rest = rows[top_n:]
    other = OrgRow(
        org_name="<other>",
        total_connections=sum(row.total_connections for row in rest),
        spin_connections=sum(row.spin_connections for row in rest),
    )
    return OrgTable(top_rows=top_rows, other=other, all_rows=rows)


def organization_table(
    connections: Iterable[ConnectionRecord],
    asdb: AsDatabase,
    top_n: int = 8,
) -> OrgTable:
    """Build the Table 2 aggregation from connection records."""
    fold = OrgFold(asdb, top_n=top_n)
    fold.update_many(
        connections if isinstance(connections, Sequence) else list(connections)
    )
    return fold.finish()
