"""Spin-bit accuracy over longer connections (paper Section 6).

The paper's scans fetch one landing page per connection and note that
end-host delays are "most prominent at connection starts, ... while
measurements tend to stabilize over longer durations" — and explicitly
suggest studying spin-bit accuracy on longer connections.  This module
provides that study's primitives:

* :func:`per_sample_deviation_profile` — how far the k-th spin sample of
  a connection deviates from the connection's minimum stack RTT, showing
  whether estimates stabilize as connections age;
* :func:`windowed_accuracy` — the Section 5.1 metrics recomputed on only
  the samples after a warm-up prefix, quantifying how much a patient
  observer gains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro._util.stats import percentile
from repro.core.metrics import AccuracyResult, compare_means

__all__ = [
    "SamplePositionProfile",
    "per_sample_deviation_profile",
    "windowed_accuracy",
]


@dataclass(frozen=True)
class SamplePositionProfile:
    """Median relative deviation of the k-th spin sample (k = 0, 1, …).

    ``medians[k]`` is the median over connections of
    ``sample_k / min(stack RTT)``; 1.0 means the k-th sample matches the
    true round-trip time.
    """

    medians: list[float]
    counts: list[int]

    def stabilizes(self, warmup: int = 1, tolerance: float = 1.5) -> bool:
        """Whether post-warm-up samples sit within ``tolerance`` x RTT."""
        tail = self.medians[warmup:]
        if not tail:
            return False
        return all(m <= tolerance for m in tail)


def per_sample_deviation_profile(
    connections: Iterable[tuple[Sequence[float], Sequence[float]]],
    max_position: int = 12,
) -> SamplePositionProfile:
    """Build the sample-position profile.

    ``connections`` yields ``(spin_rtts_ms, stack_rtts_ms)`` pairs.
    Connections without stack samples are skipped.
    """
    buckets: list[list[float]] = [[] for _ in range(max_position)]
    for spin_rtts, stack_rtts in connections:
        if not stack_rtts or not spin_rtts:
            continue
        reference = min(stack_rtts)
        if reference <= 0:
            continue
        for position, sample in enumerate(spin_rtts[:max_position]):
            buckets[position].append(sample / reference)
    medians = []
    counts = []
    for bucket in buckets:
        counts.append(len(bucket))
        medians.append(percentile(bucket, 50.0) if bucket else 0.0)
    while medians and counts[-1] == 0:
        medians.pop()
        counts.pop()
    return SamplePositionProfile(medians=medians, counts=counts)


def windowed_accuracy(
    connections: Iterable[tuple[Sequence[float], Sequence[float]]],
    skip_first: int = 2,
) -> tuple[list[AccuracyResult], list[AccuracyResult]]:
    """Section 5.1 metrics with and without a warm-up window.

    Returns ``(full, windowed)`` accuracy results per connection; the
    windowed variant drops the first ``skip_first`` spin samples
    (connections without enough samples are excluded from *both* lists
    so the comparison stays paired).
    """
    if skip_first < 0:
        raise ValueError("skip_first must be non-negative")
    full: list[AccuracyResult] = []
    windowed: list[AccuracyResult] = []
    for spin_rtts, stack_rtts in connections:
        if not stack_rtts or len(spin_rtts) <= skip_first:
            continue
        full.append(compare_means(spin_rtts, stack_rtts))
        windowed.append(compare_means(spin_rtts[skip_first:], stack_rtts))
    return full, windowed
