"""Adoption aggregation — Tables 1 (IPv4) and 4 (IPv6) of the paper.

For each population view (Toplists, CZDS, com/net/org) two rows are
computed:

* **#Domains** — total domains, resolved domains, domains with at least
  one QUIC connection, and the share of QUIC domains with spin-bit
  activity;
* **#IPs** — distinct resolved IPs, distinct IPs with a QUIC
  connection, and the share of QUIC IPs with spin-bit activity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.internet.population import ListGroup, Population
from repro.web.scanner import DomainScanResult, ScanDataset

__all__ = ["SupportFold", "SupportOverview", "SupportRow", "support_overview"]


@dataclass(frozen=True)
class SupportRow:
    """One population view's adoption numbers (a Table 1/4 block)."""

    group: ListGroup
    domains_total: int
    domains_resolved: int
    domains_quic: int
    domains_spin: int
    ips_resolved: int
    ips_quic: int
    ips_spin: int

    @property
    def domain_spin_share(self) -> float:
        """Spin domains as a fraction of QUIC domains (Table 1 Spin %)."""
        return self.domains_spin / self.domains_quic if self.domains_quic else 0.0

    @property
    def ip_spin_share(self) -> float:
        """Spin IPs as a fraction of QUIC IPs."""
        return self.ips_spin / self.ips_quic if self.ips_quic else 0.0

    @property
    def domains_per_quic_ip(self) -> float:
        """QUIC domains per QUIC IP (the paper's density observation)."""
        return self.domains_quic / self.ips_quic if self.ips_quic else 0.0


@dataclass(frozen=True)
class SupportOverview:
    """All three population views of one weekly scan."""

    week_label: str
    ip_version: int
    rows: dict[ListGroup, SupportRow]

    def row(self, group: ListGroup) -> SupportRow:
        return self.rows[group]


class _GroupCounters:
    """Mutable per-view accumulator feeding one :class:`SupportRow`."""

    __slots__ = (
        "domains_resolved",
        "domains_quic",
        "domains_spin",
        "ips_resolved",
        "ips_quic",
        "ips_spin",
    )

    def __init__(self) -> None:
        self.domains_resolved = 0
        self.domains_quic = 0
        self.domains_spin = 0
        self.ips_resolved: set = set()
        self.ips_quic: set = set()
        self.ips_spin: set = set()


class SupportFold:
    """Streaming accumulator behind :func:`support_overview`.

    Consumes deduplicated :class:`DomainScanResult` objects (one per
    domain name, last wins — the caller dedups).  Population-view
    membership comes from the result's own :class:`DomainRecord` flags,
    which is exactly how :meth:`Population.group_members` is defined, so
    one pass updates every view a domain belongs to.
    """

    name = "support"
    needs_edges_received = False
    needs_edges_sorted = False

    def __init__(self, population: Population) -> None:
        self._population = population
        self._counters = {group: _GroupCounters() for group in ListGroup}

    def update_many(self, results: Iterable[DomainScanResult]) -> None:
        counters = self._counters
        toplists = counters[ListGroup.TOPLISTS]
        czds = counters[ListGroup.CZDS]
        com_net_org = counters[ListGroup.COM_NET_ORG]
        for result in results:
            if not result.resolved:
                continue
            domain = result.domain
            views = []
            if domain.in_toplist:
                views.append(toplists)
            if domain.in_czds:
                views.append(czds)
                if domain.in_com_net_org:
                    views.append(com_net_org)
            if not views:
                continue

            resolved_ip = result.resolved_ip
            quic = result.quic_support
            quic_ips: list = []
            spin_ips: list = []
            if quic:
                for connection in result.connections:
                    if not connection.success:
                        continue
                    quic_ips.append(connection.ip)
                    if connection.behaviour.value == "spin":
                        spin_ips.append(connection.ip)

            for view in views:
                view.domains_resolved += 1
                if resolved_ip is not None:
                    view.ips_resolved.add(resolved_ip)
                if not quic:
                    continue
                view.domains_quic += 1
                view.ips_quic.update(quic_ips)
                if spin_ips:
                    view.domains_spin += 1
                    view.ips_spin.update(spin_ips)

    def finish(
        self, week_label: str = "", ip_version: int = 4
    ) -> SupportOverview:
        rows: dict[ListGroup, SupportRow] = {}
        for group in ListGroup:
            counter = self._counters[group]
            rows[group] = SupportRow(
                group=group,
                domains_total=len(self._population.group_members(group)),
                domains_resolved=counter.domains_resolved,
                domains_quic=counter.domains_quic,
                domains_spin=counter.domains_spin,
                ips_resolved=len(counter.ips_resolved),
                ips_quic=len(counter.ips_quic),
                ips_spin=len(counter.ips_spin),
            )
        return SupportOverview(week_label=week_label, ip_version=ip_version, rows=rows)


def support_overview(dataset: ScanDataset, population: Population) -> SupportOverview:
    """Aggregate one weekly scan into the Table 1/Table 4 layout.

    Domain-level spin activity uses the paper's candidate criterion
    (both spin values seen on at least one connection) *after* grease
    filtering, matching the Spin column that Tables 1 and 3 share.
    """
    fold = SupportFold(population)
    results_by_name = {result.domain.name: result for result in dataset.results}
    fold.update_many(results_by_name.values())
    return fold.finish(week_label=dataset.week_label, ip_version=dataset.ip_version)
