"""Adoption aggregation — Tables 1 (IPv4) and 4 (IPv6) of the paper.

For each population view (Toplists, CZDS, com/net/org) two rows are
computed:

* **#Domains** — total domains, resolved domains, domains with at least
  one QUIC connection, and the share of QUIC domains with spin-bit
  activity;
* **#IPs** — distinct resolved IPs, distinct IPs with a QUIC
  connection, and the share of QUIC IPs with spin-bit activity.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.internet.population import ListGroup, Population
from repro.web.scanner import ScanDataset

__all__ = ["SupportOverview", "SupportRow", "support_overview"]


@dataclass(frozen=True)
class SupportRow:
    """One population view's adoption numbers (a Table 1/4 block)."""

    group: ListGroup
    domains_total: int
    domains_resolved: int
    domains_quic: int
    domains_spin: int
    ips_resolved: int
    ips_quic: int
    ips_spin: int

    @property
    def domain_spin_share(self) -> float:
        """Spin domains as a fraction of QUIC domains (Table 1 Spin %)."""
        return self.domains_spin / self.domains_quic if self.domains_quic else 0.0

    @property
    def ip_spin_share(self) -> float:
        """Spin IPs as a fraction of QUIC IPs."""
        return self.ips_spin / self.ips_quic if self.ips_quic else 0.0

    @property
    def domains_per_quic_ip(self) -> float:
        """QUIC domains per QUIC IP (the paper's density observation)."""
        return self.domains_quic / self.ips_quic if self.ips_quic else 0.0


@dataclass(frozen=True)
class SupportOverview:
    """All three population views of one weekly scan."""

    week_label: str
    ip_version: int
    rows: dict[ListGroup, SupportRow]

    def row(self, group: ListGroup) -> SupportRow:
        return self.rows[group]


def support_overview(dataset: ScanDataset, population: Population) -> SupportOverview:
    """Aggregate one weekly scan into the Table 1/Table 4 layout.

    Domain-level spin activity uses the paper's candidate criterion
    (both spin values seen on at least one connection) *after* grease
    filtering, matching the Spin column that Tables 1 and 3 share.
    """
    rows: dict[ListGroup, SupportRow] = {}
    results_by_name = {result.domain.name: result for result in dataset.results}

    for group in ListGroup:
        members = population.group_members(group)
        domains_total = len(members)
        domains_resolved = 0
        domains_quic = 0
        domains_spin = 0
        ips_resolved: set = set()
        ips_quic: set = set()
        ips_spin: set = set()

        for domain in members:
            result = results_by_name.get(domain.name)
            if result is None or not result.resolved:
                continue
            domains_resolved += 1
            if result.resolved_ip is not None:
                ips_resolved.add(result.resolved_ip)
            if not result.quic_support:
                continue
            domains_quic += 1
            domain_spins = False
            for connection in result.connections:
                if not connection.success:
                    continue
                ips_quic.add(connection.ip)
                if connection.behaviour.value == "spin":
                    domain_spins = True
                    ips_spin.add(connection.ip)
            if domain_spins:
                domains_spin += 1

        rows[group] = SupportRow(
            group=group,
            domains_total=domains_total,
            domains_resolved=domains_resolved,
            domains_quic=domains_quic,
            domains_spin=domains_spin,
            ips_resolved=len(ips_resolved),
            ips_quic=len(ips_quic),
            ips_spin=len(ips_spin),
        )
    return SupportOverview(
        week_label=dataset.week_label, ip_version=dataset.ip_version, rows=rows
    )
