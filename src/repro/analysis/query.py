"""Predicate-pushdown query planning over zone-mapped cbr artifacts.

The paper's analyses are repeated *filtered* aggregations — per
provider, per week, per failure kind — over artifacts that only grow
week by week.  This module turns those filters into a small
:class:`Predicate` AST that can answer two questions:

* :meth:`Predicate.matches` — does this decoded record satisfy the
  filter?  (the *residual* filter; always exact)
* :meth:`Predicate.prune` — does this chunk's footer zone map *prove*
  that no record inside can match?  (the pushdown; always conservative)

:func:`plan_chunks` consults the footer written by
:class:`repro.artifacts.cbr.CbrWriter` — per-chunk zone maps plus the
optional domain-hash secondary index — and returns exactly the chunk
ordinals worth inflating.  Because pruning only ever skips chunks the
zone maps prove empty of matches, and every surviving record still
passes through :meth:`matches`, the pruned result is byte-identical to
brute-force "decode everything, then filter".

Zone-map semantics the planner relies on (see ``_zone_entry`` in the
cbr module): value sets are exact but capped (``null`` = unbounded,
never prune); the domain Bloom filter has no false negatives; ``w`` /
``t`` are min/max envelopes; a ``null`` envelope means the chunk holds
*no* week-labeled records / spin edges, so week/time predicates prune
it.  Week predicates never match records whose label is absent or
unparseable — identically in the zone and residual paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.artifacts.cbr import bloom_might_contain, week_serial
from repro.web.scanner import ConnectionRecord

__all__ = [
    "And",
    "Between",
    "Eq",
    "In",
    "Predicate",
    "Present",
    "QueryError",
    "QueryStats",
    "filter_batch",
    "parse_where",
    "plan_chunks",
]


class QueryError(ValueError):
    """Raised for malformed ``--where`` expressions."""


#: field name -> (zone-map key, coercion); fields without a zone key are
#: residual-only (never prune, always filter at decode time).
_FIELDS = {
    "domain": "d",
    "provider": "p",
    "week": "w",
    "failure": "f",
    "behaviour": "b",
    "edges": "e",
    "t": "t",
    "status": None,
    "version": None,
    "success": None,
}

_ALIASES = {
    "behavior": "behaviour",
    "failure_kind": "failure",
    "quic_version": "version",
    "time": "t",
}

#: Fields whose residual filter reads the received-edge column, so the
#: engine must not project it away.
_EDGE_FIELDS = frozenset({"edges", "t"})

#: Fields with a totally ordered domain, eligible for ``between``.
_RANGE_FIELDS = frozenset({"week", "t", "edges", "status"})


def _canonical_field(name: str) -> str:
    name = _ALIASES.get(name, name)
    if name not in _FIELDS:
        raise QueryError(
            f"unknown query field {name!r}; expected one of "
            f"{', '.join(sorted(_FIELDS))}"
        )
    return name


def _record_value(name: str, record: ConnectionRecord):
    """The scalar a record exposes for ``name`` (``None``: absent)."""
    if name == "domain":
        return record.domain
    if name == "provider":
        return record.provider_name
    if name == "week":
        return week_serial(record.week)
    if name == "failure":
        return None if record.failure is None else record.failure.value
    if name == "behaviour":
        return record.behaviour.value
    if name == "edges":
        return len(record.observation.edges_received)
    if name == "status":
        return record.status
    if name == "version":
        return record.negotiated_version
    if name == "success":
        return record.success
    raise AssertionError(name)  # pragma: no cover - guarded by _canonical_field


def _zone_excludes_values(zone: dict, name: str, values: Sequence) -> bool:
    """Whether the zone map proves none of ``values`` occur in the chunk."""
    if name == "domain":
        bloom = zone.get("d")
        return bool(bloom) and not any(
            bloom_might_contain(bloom, value) for value in values
        )
    if name == "week":
        if "w" not in zone:
            return False
        envelope = zone["w"]
        if envelope is None:  # chunk has no week-labeled records
            return True
        low, high = envelope
        return all(
            serial is None or serial < low or serial > high for serial in values
        )
    key = _FIELDS.get(name)
    if key is None or key not in zone:
        return False
    members = zone[key]
    if members is None:  # unbounded value set: cannot prune
        return False
    return all(value not in members for value in values)


class Predicate:
    """Base class: a filter that can both match records and prune chunks."""

    def matches(self, record: ConnectionRecord) -> bool:
        raise NotImplementedError

    def prune(self, zone: dict) -> bool:
        """``True`` only when ``zone`` proves no record can match."""
        return False

    def fields(self) -> frozenset[str]:
        raise NotImplementedError

    @property
    def needs_edges_received(self) -> bool:
        return not _EDGE_FIELDS.isdisjoint(self.fields())

    def point_domains(self) -> frozenset[str] | None:
        """The finite domain-name set this filter restricts to, if any.

        ``None`` means "unrestricted"; a set lets :func:`plan_chunks`
        consult the footer's secondary domain index.
        """
        return None


@dataclass(frozen=True)
class Eq(Predicate):
    """``field == value``."""

    name: str
    value: object

    def __post_init__(self) -> None:
        object.__setattr__(self, "name", _canonical_field(self.name))

    def matches(self, record: ConnectionRecord) -> bool:
        if self.name == "t":
            return any(
                edge.time_ms == self.value
                for edge in record.observation.edges_received
            )
        if self.name == "week":
            serial = week_serial(self.value)  # type: ignore[arg-type]
            return serial is not None and _record_value("week", record) == serial
        return _record_value(self.name, record) == self.value

    def prune(self, zone: dict) -> bool:
        if self.name == "t":
            return _t_range_prunes(zone, self.value, self.value)
        if self.name == "week":
            return _zone_excludes_values(zone, "week", [week_serial(self.value)])
        return _zone_excludes_values(zone, self.name, [self.value])

    def fields(self) -> frozenset[str]:
        return frozenset({self.name})

    def point_domains(self) -> frozenset[str] | None:
        if self.name == "domain":
            return frozenset({self.value})
        return None


@dataclass(frozen=True)
class In(Predicate):
    """``field in {v1, v2, ...}``."""

    name: str
    values: frozenset

    def __init__(self, name: str, values) -> None:
        object.__setattr__(self, "name", _canonical_field(name))
        object.__setattr__(self, "values", frozenset(values))

    def matches(self, record: ConnectionRecord) -> bool:
        if self.name == "week":
            serials = {week_serial(v) for v in self.values} - {None}
            return _record_value("week", record) in serials
        return _record_value(self.name, record) in self.values

    def prune(self, zone: dict) -> bool:
        if self.name == "week":
            values = [week_serial(v) for v in self.values]
        else:
            values = list(self.values)
        return _zone_excludes_values(zone, self.name, values)

    def fields(self) -> frozenset[str]:
        return frozenset({self.name})

    def point_domains(self) -> frozenset[str] | None:
        if self.name == "domain":
            return frozenset(self.values)
        return None


def _t_range_prunes(zone: dict, low: float, high: float) -> bool:
    if "t" not in zone:
        return False
    envelope = zone["t"]
    if envelope is None:  # chunk has no spin edges at all
        return True
    return high < envelope[0] or low > envelope[1]


@dataclass(frozen=True)
class Between(Predicate):
    """``low <= field <= high`` (inclusive both ends)."""

    name: str
    low: object
    high: object

    def __post_init__(self) -> None:
        object.__setattr__(self, "name", _canonical_field(self.name))
        if self.name not in _RANGE_FIELDS:
            raise QueryError(f"field {self.name!r} does not support 'between'")

    def _bounds(self) -> tuple:
        if self.name == "week":
            return week_serial(self.low), week_serial(self.high)
        return self.low, self.high

    def matches(self, record: ConnectionRecord) -> bool:
        low, high = self._bounds()
        if low is None or high is None:  # unparseable week bound
            return False
        if self.name == "t":
            return any(
                low <= edge.time_ms <= high
                for edge in record.observation.edges_received
            )
        value = _record_value(self.name, record)
        return value is not None and low <= value <= high

    def prune(self, zone: dict) -> bool:
        low, high = self._bounds()
        if low is None or high is None:
            return True  # matches() is constant-False; every chunk prunes
        if self.name == "t":
            return _t_range_prunes(zone, low, high)
        if self.name == "week":
            if "w" not in zone:
                return False
            envelope = zone["w"]
            if envelope is None:
                return True
            return high < envelope[0] or low > envelope[1]
        if self.name == "edges":
            members = zone.get("e") if "e" in zone else None
            if members is None:
                return False
            return all(not low <= value <= high for value in members)
        return False  # status: residual-only

    def fields(self) -> frozenset[str]:
        return frozenset({self.name})


@dataclass(frozen=True)
class Present(Predicate):
    """``field present`` — the optional field carries a value."""

    name: str

    def __post_init__(self) -> None:
        object.__setattr__(self, "name", _canonical_field(self.name))

    def matches(self, record: ConnectionRecord) -> bool:
        return _record_value(self.name, record) is not None

    def prune(self, zone: dict) -> bool:
        if self.name == "failure":
            return "f" in zone and not zone["f"]
        if self.name == "week":
            return "w" in zone and zone["w"] is None
        return False

    def fields(self) -> frozenset[str]:
        return frozenset({self.name})


@dataclass(frozen=True)
class And(Predicate):
    """Conjunction: every clause must hold."""

    clauses: tuple = field(default_factory=tuple)

    def __init__(self, clauses) -> None:
        object.__setattr__(self, "clauses", tuple(clauses))
        if not self.clauses:
            raise QueryError("empty conjunction")

    def matches(self, record: ConnectionRecord) -> bool:
        return all(clause.matches(record) for clause in self.clauses)

    def prune(self, zone: dict) -> bool:
        # One clause proving emptiness is enough for the conjunction.
        return any(clause.prune(zone) for clause in self.clauses)

    def fields(self) -> frozenset[str]:
        return frozenset().union(*(clause.fields() for clause in self.clauses))

    def point_domains(self) -> frozenset[str] | None:
        restricted = [
            names for names in (c.point_domains() for c in self.clauses)
            if names is not None
        ]
        if not restricted:
            return None
        result = restricted[0]
        for names in restricted[1:]:
            result &= names
        return result


# ----------------------------------------------------------------------
# ``--where`` expression parsing.
# ----------------------------------------------------------------------

def _coerce(name: str, token: str):
    """Parse one literal for ``name``; raises :class:`QueryError`."""
    try:
        if name in ("edges", "status"):
            return int(token)
        if name == "t":
            return float(token)
    except ValueError as exc:
        raise QueryError(f"{name!r} needs a numeric value, got {token!r}") from exc
    if name == "success":
        lowered = token.lower()
        if lowered in ("true", "1", "yes"):
            return True
        if lowered in ("false", "0", "no"):
            return False
        raise QueryError(f"'success' needs true/false, got {token!r}")
    if name == "week" and week_serial(token) is None:
        raise QueryError(f"{token!r} is not a week label (expected 'cwWW-YYYY')")
    return token


def parse_where(text: str) -> Predicate:
    """Parse a ``--where`` expression into a :class:`Predicate`.

    Grammar (whitespace-separated; clauses joined by ``and``)::

        clause := FIELD ('==' | '=') VALUE
                | FIELD 'in' VALUE[,VALUE...]
                | FIELD 'between' LOW ['and'] HIGH
                | FIELD 'present'

    Examples: ``provider == cloudflare``, ``week between cw20-2023 and
    cw25-2023 and failure present``, ``domain in a.example,b.example``.
    """
    tokens = text.split()
    if not tokens:
        raise QueryError("empty --where expression")
    clauses: list[Predicate] = []
    pos = 0
    while pos < len(tokens):
        name = _canonical_field(tokens[pos])
        if pos + 1 >= len(tokens):
            raise QueryError(f"dangling field {tokens[pos]!r}")
        op = tokens[pos + 1].lower()
        pos += 2
        if op in ("==", "="):
            if pos >= len(tokens):
                raise QueryError(f"missing value after '{name} =='")
            clauses.append(Eq(name, _coerce(name, tokens[pos])))
            pos += 1
        elif op == "in":
            raw: list[str] = []
            while pos < len(tokens) and tokens[pos].lower() != "and":
                raw.append(tokens[pos])
                pos += 1
            values = [v for v in "".join(raw).split(",") if v]
            if not values:
                raise QueryError(f"missing value list after '{name} in'")
            clauses.append(In(name, [_coerce(name, v) for v in values]))
        elif op == "between":
            if pos >= len(tokens):
                raise QueryError(f"missing bounds after '{name} between'")
            low = tokens[pos]
            pos += 1
            if pos < len(tokens) and tokens[pos].lower() == "and":
                pos += 1
            if pos >= len(tokens):
                raise QueryError(f"missing upper bound after '{name} between'")
            high = tokens[pos]
            pos += 1
            clauses.append(Between(name, _coerce(name, low), _coerce(name, high)))
        elif op == "present":
            clauses.append(Present(name))
        else:
            raise QueryError(
                f"unknown operator {op!r} (expected ==, in, between, present)"
            )
        if pos < len(tokens):
            if tokens[pos].lower() != "and":
                raise QueryError(
                    f"expected 'and' between clauses, got {tokens[pos]!r}"
                )
            pos += 1
            if pos >= len(tokens):
                raise QueryError("dangling 'and'")
    if len(clauses) == 1:
        return clauses[0]
    return And(clauses)


# ----------------------------------------------------------------------
# Planning and execution support.
# ----------------------------------------------------------------------

@dataclass
class QueryStats:
    """Planner/scan counters; the observable face of pruning."""

    chunks_total: int = 0
    chunks_selected: int = 0
    records_scanned: int = 0
    records_matched: int = 0

    @property
    def chunks_pruned(self) -> int:
        return self.chunks_total - self.chunks_selected

    def emit(self, telemetry) -> None:
        """Publish the counters through a ``repro.telemetry`` bundle."""
        if telemetry is None:
            return
        registry = telemetry.registry
        registry.counter("query.chunks_total").inc(self.chunks_total)
        registry.counter("query.chunks_pruned").inc(self.chunks_pruned)
        registry.counter("query.records_scanned").inc(self.records_scanned)


def plan_chunks(
    footer: dict,
    predicate: Predicate | None,
    domain_lookup: Callable[[str], list[int] | None] | None = None,
) -> tuple[list[int], int]:
    """Select the chunk ordinals worth decoding for ``predicate``.

    Returns ``(ordinals, chunks_total)``.  ``domain_lookup`` resolves a
    domain name against the file's binary secondary index
    (:meth:`repro.artifacts.cbr.CbrIndexedReader.domain_index_lookup`);
    it returns candidate ordinals, ``[]`` for a definitive miss, or
    ``None`` when the file carries no usable index — in which case the
    planner falls back to zone maps alone.  With no predicate, no zone
    maps (footer schema 1), or an unindexable predicate the plan is the
    full scan — pruning degrades to correct, never to wrong.  Ordinals
    come back sorted, so execution reads the file front to back.
    """
    total = len(footer.get("chunks") or ())
    ordinals: list[int] = list(range(total))
    if predicate is None or total == 0:
        return ordinals, total
    domains = predicate.point_domains()
    if domains is not None and domain_lookup is not None:
        candidates: set[int] | None = set()
        for name in domains:
            hits = domain_lookup(name)
            if hits is None:
                candidates = None  # no usable index: zone maps only
                break
            candidates.update(hits)
        if candidates is not None:
            ordinals = sorted(o for o in candidates if 0 <= o < total)
    zones = footer.get("zones")
    if zones:
        ordinals = [
            o
            for o in ordinals
            if o >= len(zones) or zones[o] is None or not predicate.prune(zones[o])
        ]
    return ordinals, total


def filter_batch(
    batch: Sequence[ConnectionRecord],
    predicate: Predicate | None,
    stats: QueryStats | None = None,
) -> Sequence[ConnectionRecord]:
    """Apply the residual filter to one decoded batch."""
    if stats is not None:
        stats.records_scanned += len(batch)
    if predicate is None:
        matched = batch
    else:
        matched = [record for record in batch if predicate.matches(record)]
    if stats is not None:
        stats.records_matched += len(matched)
    return matched
