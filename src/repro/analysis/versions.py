"""QUIC version distribution of successful connections.

The paper's scanner supports QUIC v1 plus drafts 27/29/32/34 precisely
because real deployments still answered with draft versions in the
measurement period (cf. Zirngibl et al. 2021).  This aggregation shows
which wire versions connections ended up on after version negotiation —
context for the adoption tables and a consistency check that the
negotiation machinery sees use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.quic.version import QuicVersion
from repro.web.scanner import ConnectionRecord

__all__ = [
    "VersionFold",
    "VersionShare",
    "version_distribution",
    "version_distribution_from_counts",
]


@dataclass(frozen=True)
class VersionShare:
    """One wire version's share of successful connections."""

    version: int
    label: str
    connections: int
    share: float


def _label(version: int) -> str:
    try:
        parsed = QuicVersion(version)
    except ValueError:
        return f"unknown (0x{version:08x})"
    if parsed is QuicVersion.VERSION_1:
        return "QUIC v1"
    return parsed.name.replace("_", "-").lower()


class VersionFold:
    """Streaming accumulator behind :func:`version_distribution`."""

    name = "versions"
    needs_edges_received = False
    needs_edges_sorted = False

    def __init__(self) -> None:
        self._counts: dict[int, int] = {}

    def update_many(self, records: Sequence[ConnectionRecord]) -> None:
        counts = self._counts
        for record in records:
            version = record.negotiated_version
            if version is None or not record.success:
                continue
            counts[version] = counts.get(version, 0) + 1

    def counts(self) -> dict[int, int]:
        """The mergeable per-version counters behind the ranking."""
        return dict(self._counts)

    def finish(self) -> list[VersionShare]:
        return version_distribution_from_counts(self._counts)


def version_distribution_from_counts(
    counts: Mapping[int, int]
) -> list[VersionShare]:
    """Rebuild the version ranking from per-version connection counters.

    The counters are :class:`VersionFold`'s internal state; persisted
    per week they merge by addition and reproduce the fold's output
    byte-identically.
    """
    total = sum(counts.values())
    shares = [
        VersionShare(
            version=version,
            label=_label(version),
            connections=count,
            share=count / total,
        )
        for version, count in counts.items()
    ]
    shares.sort(key=lambda entry: (-entry.connections, entry.version))
    return shares


def version_distribution(records: Iterable[ConnectionRecord]) -> list[VersionShare]:
    """Per-version connection counts, descending by share."""
    fold = VersionFold()
    fold.update_many(records if isinstance(records, Sequence) else list(records))
    return fold.finish()
