"""RTT accuracy analysis — Figures 3 and 4 of the paper (Section 5).

For every connection with spin activity the per-connection means of the
spin-bit and stack RTT series are compared:

* Figure 3: histogram of the absolute difference ``spin - QUIC`` (ms);
* Figure 4: histogram of the mapped ratio of the means.

Four series are produced, crossing the behaviour group (``Spin`` vs.
``Grease``) with the packet ordering (``R`` received vs. ``S`` sorted by
packet number), plus the Section 5.2 reordering-impact summary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro._util.stats import Histogram
from repro.core.metrics import AccuracyResult, compare_means
from repro.web.scanner import ConnectionRecord

__all__ = [
    "AccuracyFold",
    "AccuracyStudy",
    "ReorderingImpact",
    "SeriesStats",
    "SeriesSummary",
    "accuracy_study",
    "ABS_DIFF_EDGES_MS",
    "RATIO_EDGES",
]

#: Figure 3 bin edges (ms); under/overflow hold the open-ended tails.
ABS_DIFF_EDGES_MS = (-200.0, -100.0, -50.0, -25.0, 0.0, 25.0, 50.0, 100.0, 200.0)

#: Figure 4 bin edges for the mapped ratio.  No value falls in (-1, 1);
#: the central bin [-1.25, 1.25) therefore holds the "within 25 %"
#: connections.
RATIO_EDGES = (-3.0, -2.0, -1.25, 1.25, 2.0, 3.0)


@dataclass
class SeriesSummary:
    """One (group, ordering) series: histograms plus headline shares."""

    label: str
    results: list[AccuracyResult] = field(default_factory=list)
    abs_histogram: Histogram = field(
        default_factory=lambda: Histogram(edges=ABS_DIFF_EDGES_MS)
    )
    ratio_histogram: Histogram = field(
        default_factory=lambda: Histogram(edges=RATIO_EDGES)
    )

    def add(self, result: AccuracyResult) -> None:
        self.results.append(result)
        self.abs_histogram.add(result.absolute_ms)
        self.ratio_histogram.add(result.ratio)

    @property
    def connections(self) -> int:
        return len(self.results)

    # -- Figure 3 headline numbers ------------------------------------

    @property
    def overestimate_share(self) -> float:
        """Paper: 97.7 % of Spin (R) results overestimate the RTT."""
        if not self.results:
            return 0.0
        return sum(1 for r in self.results if r.absolute_ms > 0) / len(self.results)

    @property
    def underestimate_share(self) -> float:
        if not self.results:
            return 0.0
        return sum(1 for r in self.results if r.absolute_ms < 0) / len(self.results)

    @property
    def within_25ms_share(self) -> float:
        """Paper: 28.8 % of connections within |spin - QUIC| <= 25 ms."""
        if not self.results:
            return 0.0
        return sum(1 for r in self.results if abs(r.absolute_ms) <= 25.0) / len(
            self.results
        )

    @property
    def over_200ms_share(self) -> float:
        """Paper: 41.3 % overestimate by more than 200 ms."""
        if not self.results:
            return 0.0
        return sum(1 for r in self.results if r.absolute_ms > 200.0) / len(self.results)

    # -- Figure 4 headline numbers ------------------------------------

    @property
    def within_25pct_share(self) -> float:
        """Paper: 30.5 % of spinning connections within 25 % of the RTT."""
        if not self.results:
            return 0.0
        return sum(1 for r in self.results if abs(r.ratio) <= 1.25) / len(self.results)

    @property
    def within_factor2_share(self) -> float:
        """Paper: 36.0 % within a factor of two."""
        if not self.results:
            return 0.0
        return sum(1 for r in self.results if abs(r.ratio) <= 2.0) / len(self.results)

    @property
    def over_factor3_share(self) -> float:
        """Paper: 51.7 % overestimate by more than a factor of three."""
        if not self.results:
            return 0.0
        return sum(1 for r in self.results if r.ratio > 3.0) / len(self.results)


@dataclass
class SeriesStats:
    """Count-based form of a :class:`SeriesSummary` (no per-result list).

    Holds exactly the integer counters the rendered summary and the
    headline shares are computed from, so it can be persisted, merged by
    plain addition (the service plane's per-week summaries), and still
    render byte-identically to the original series: every share is the
    same exact ``int / int`` division, and the histograms carry the same
    integer bins.
    """

    label: str
    connections: int = 0
    overestimating: int = 0
    underestimating: int = 0
    within_25ms: int = 0
    over_200ms: int = 0
    within_25pct: int = 0
    within_factor2: int = 0
    over_factor3: int = 0
    abs_histogram: Histogram = field(
        default_factory=lambda: Histogram(edges=ABS_DIFF_EDGES_MS)
    )
    ratio_histogram: Histogram = field(
        default_factory=lambda: Histogram(edges=RATIO_EDGES)
    )

    @classmethod
    def from_summary(cls, series: "SeriesSummary") -> "SeriesStats":
        """Reduce a full series to its mergeable counters."""
        results = series.results
        return cls(
            label=series.label,
            connections=len(results),
            overestimating=sum(1 for r in results if r.absolute_ms > 0),
            underestimating=sum(1 for r in results if r.absolute_ms < 0),
            within_25ms=sum(1 for r in results if abs(r.absolute_ms) <= 25.0),
            over_200ms=sum(1 for r in results if r.absolute_ms > 200.0),
            within_25pct=sum(1 for r in results if abs(r.ratio) <= 1.25),
            within_factor2=sum(1 for r in results if abs(r.ratio) <= 2.0),
            over_factor3=sum(1 for r in results if r.ratio > 3.0),
            abs_histogram=Histogram.from_dict(series.abs_histogram.as_dict()),
            ratio_histogram=Histogram.from_dict(series.ratio_histogram.as_dict()),
        )

    def merge(self, other: "SeriesStats") -> None:
        """Fold another series' counters in (commutative addition)."""
        self.connections += other.connections
        self.overestimating += other.overestimating
        self.underestimating += other.underestimating
        self.within_25ms += other.within_25ms
        self.over_200ms += other.over_200ms
        self.within_25pct += other.within_25pct
        self.within_factor2 += other.within_factor2
        self.over_factor3 += other.over_factor3
        for mine, theirs in (
            (self.abs_histogram, other.abs_histogram),
            (self.ratio_histogram, other.ratio_histogram),
        ):
            mine.underflow += theirs.underflow
            mine.overflow += theirs.overflow
            for index, count in enumerate(theirs.counts):
                mine.counts[index] += count

    def as_dict(self) -> dict:
        """JSON-serializable representation (service week summaries)."""
        return {
            "label": self.label,
            "connections": self.connections,
            "overestimating": self.overestimating,
            "underestimating": self.underestimating,
            "within_25ms": self.within_25ms,
            "over_200ms": self.over_200ms,
            "within_25pct": self.within_25pct,
            "within_factor2": self.within_factor2,
            "over_factor3": self.over_factor3,
            "abs_histogram": self.abs_histogram.as_dict(),
            "ratio_histogram": self.ratio_histogram.as_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SeriesStats":
        """Inverse of :meth:`as_dict`."""
        return cls(
            label=data["label"],
            connections=int(data["connections"]),
            overestimating=int(data["overestimating"]),
            underestimating=int(data["underestimating"]),
            within_25ms=int(data["within_25ms"]),
            over_200ms=int(data["over_200ms"]),
            within_25pct=int(data["within_25pct"]),
            within_factor2=int(data["within_factor2"]),
            over_factor3=int(data["over_factor3"]),
            abs_histogram=Histogram.from_dict(data["abs_histogram"]),
            ratio_histogram=Histogram.from_dict(data["ratio_histogram"]),
        )

    # -- the same headline shares a SeriesSummary exposes --------------

    @property
    def overestimate_share(self) -> float:
        return self.overestimating / self.connections if self.connections else 0.0

    @property
    def underestimate_share(self) -> float:
        return self.underestimating / self.connections if self.connections else 0.0

    @property
    def within_25ms_share(self) -> float:
        return self.within_25ms / self.connections if self.connections else 0.0

    @property
    def over_200ms_share(self) -> float:
        return self.over_200ms / self.connections if self.connections else 0.0

    @property
    def within_25pct_share(self) -> float:
        return self.within_25pct / self.connections if self.connections else 0.0

    @property
    def within_factor2_share(self) -> float:
        return self.within_factor2 / self.connections if self.connections else 0.0

    @property
    def over_factor3_share(self) -> float:
        return self.over_factor3 / self.connections if self.connections else 0.0


@dataclass
class ReorderingImpact:
    """Section 5.2's R-vs-S comparison."""

    connections_compared: int = 0
    connections_changed: int = 0
    changed_below_1ms: int = 0
    changed_improved: int = 0

    @property
    def changed_share(self) -> float:
        """Paper: differing results for only 0.28 % of connections."""
        if not self.connections_compared:
            return 0.0
        return self.connections_changed / self.connections_compared

    @property
    def below_1ms_share(self) -> float:
        """Paper: 98.7 % of the differences are below 1 ms."""
        if not self.connections_changed:
            return 0.0
        return self.changed_below_1ms / self.connections_changed

    @property
    def improved_share(self) -> float:
        """Paper: sorting improves accuracy in 93.1 % of changed cases."""
        if not self.connections_changed:
            return 0.0
        return self.changed_improved / self.connections_changed


@dataclass
class AccuracyStudy:
    """The full Section 5 output: four series plus reordering impact."""

    spin_received: SeriesSummary
    spin_sorted: SeriesSummary
    grease_received: SeriesSummary
    grease_sorted: SeriesSummary
    reordering: ReorderingImpact


class AccuracyFold:
    """Streaming accumulator behind :func:`accuracy_study`.

    Connections without spin-bit RTT samples or without stack samples
    cannot be compared and are skipped (candidates with a single edge
    yield no interval).  Only the RTT series are read — edge objects
    are never touched, so projected artifact decodes suffice.
    """

    name = "accuracy"
    needs_edges_received = False
    needs_edges_sorted = False

    def __init__(self) -> None:
        self._study = AccuracyStudy(
            spin_received=SeriesSummary("Spin (R)"),
            spin_sorted=SeriesSummary("Spin (S)"),
            grease_received=SeriesSummary("Grease (R)"),
            grease_sorted=SeriesSummary("Grease (S)"),
            reordering=ReorderingImpact(),
        )

    def update_many(self, records: Sequence[ConnectionRecord]) -> None:
        study = self._study
        for connection in records:
            observation = connection.observation
            if len(observation.values_seen) != 2:
                continue
            stack_rtts = connection.stack_rtts_ms
            received = observation.rtts_received_ms
            sorted_series = observation.rtts_sorted_ms
            if not stack_rtts or not received or not sorted_series:
                continue
            # Degenerate series (all-zero intervals from identically
            # timestamped packets, or a non-positive stack baseline) have
            # no meaningful ratio and are excluded, like empty ones.
            if (
                sum(received) <= 0.0
                or sum(sorted_series) <= 0.0
                or sum(stack_rtts) <= 0.0
            ):
                continue
            result_r = compare_means(received, stack_rtts)
            result_s = compare_means(sorted_series, stack_rtts)
            if connection.behaviour.value == "grease":
                study.grease_received.add(result_r)
                study.grease_sorted.add(result_s)
            else:
                study.spin_received.add(result_r)
                study.spin_sorted.add(result_s)
                impact = study.reordering
                impact.connections_compared += 1
                delta = abs(result_r.absolute_ms - result_s.absolute_ms)
                if received != sorted_series:
                    impact.connections_changed += 1
                    if delta < 1.0:
                        impact.changed_below_1ms += 1
                    if abs(result_s.absolute_ms) <= abs(result_r.absolute_ms):
                        impact.changed_improved += 1

    def finish(self) -> AccuracyStudy:
        return self._study


def accuracy_study(connections: Iterable[ConnectionRecord]) -> AccuracyStudy:
    """Run the Section 5 analysis over spin-active connection records."""
    fold = AccuracyFold()
    fold.update_many(
        connections if isinstance(connections, Sequence) else list(connections)
    )
    return fold.finish()
