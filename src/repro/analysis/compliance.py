"""RFC-compliance analysis — Figure 2 of the paper.

RFC 9000 mandates that endpoints actively using the spin bit "MUST"
disable it on at least one in every 16 connections (one in eight per
RFC 9312).  The paper probes this longitudinally: select ``n = 12``
measurement weeks, keep the domains that spun at least once and had a
working connection in every week, and histogram in how many weeks each
domain spun.  Reference curves computed from probability theory show how
often a compliant, always-spinning endpoint would be expected to spin in
``k`` of ``n`` one-shot weekly measurements: Binomial(n, 15/16) for
RFC 9000 and Binomial(n, 7/8) for RFC 9312.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._util.stats import binomial_pmf
from repro.campaign.runner import LongitudinalResult

__all__ = ["ComplianceHistogram", "compliance_histogram", "rfc_reference_shares"]


@dataclass(frozen=True)
class ComplianceHistogram:
    """Figure 2's data: observed shares and the two RFC references.

    Index ``k - 1`` of each list holds the share of domains that spun in
    exactly ``k`` of the ``n_weeks`` selected weeks (``k >= 1``, since
    the selection keeps only domains that spun at least once).
    """

    n_weeks: int
    considered_domains: int
    observed_shares: list[float]
    rfc9000_shares: list[float]
    rfc9312_shares: list[float]

    @property
    def share_spinning_every_week(self) -> float:
        """Observed share of domains with spin activity in all weeks."""
        return self.observed_shares[-1]

    def observed_cumulative_at_most(self, k: int) -> float:
        """Observed share of domains spinning in at most ``k`` weeks."""
        if not 1 <= k <= self.n_weeks:
            raise ValueError(f"k must be in [1, {self.n_weeks}]")
        return sum(self.observed_shares[:k])


def rfc_reference_shares(n_weeks: int, disable_one_in_n: int) -> list[float]:
    """Expected shares for a compliant endpoint, conditioned on k >= 1.

    A domain whose server spins every week except for the mandated
    1-in-N per-connection disable shows spin activity in a weekly
    one-shot measurement with probability ``1 - 1/N``; over ``n``
    independent weeks the spin-week count is binomial.  Shares are
    renormalized over ``k >= 1`` to match the paper's selection of
    domains that spun at least once.
    """
    p = 1.0 - 1.0 / disable_one_in_n
    raw = [binomial_pmf(k, n_weeks, p) for k in range(1, n_weeks + 1)]
    total = sum(raw)
    return [value / total for value in raw]


def compliance_histogram(result: LongitudinalResult) -> ComplianceHistogram:
    """Compute Figure 2 from a longitudinal measurement result."""
    n_weeks = len(result.datasets)
    activity = result.weekly_spin_activity()
    counts = [0] * n_weeks  # index k-1: domains spinning in exactly k weeks
    considered = 0
    for flags in activity.values():
        k = sum(flags)
        if k == 0:
            continue  # never spun in the selected weeks: not in Fig. 2
        considered += 1
        counts[k - 1] += 1
    observed = [
        count / considered if considered else 0.0 for count in counts
    ]
    return ComplianceHistogram(
        n_weeks=n_weeks,
        considered_domains=considered,
        observed_shares=observed,
        rfc9000_shares=rfc_reference_shares(n_weeks, 16),
        rfc9312_shares=rfc_reference_shares(n_weeks, 8),
    )
