"""RFC-compliance analysis — Figure 2 of the paper.

RFC 9000 mandates that endpoints actively using the spin bit "MUST"
disable it on at least one in every 16 connections (one in eight per
RFC 9312).  The paper probes this longitudinally: select ``n = 12``
measurement weeks, keep the domains that spun at least once and had a
working connection in every week, and histogram in how many weeks each
domain spun.  Reference curves computed from probability theory show how
often a compliant, always-spinning endpoint would be expected to spin in
``k`` of ``n`` one-shot weekly measurements: Binomial(n, 15/16) for
RFC 9000 and Binomial(n, 7/8) for RFC 9312.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro._util.stats import binomial_pmf
from repro.campaign.runner import LongitudinalResult

__all__ = [
    "ComplianceFold",
    "ComplianceHistogram",
    "compliance_histogram",
    "rfc_reference_shares",
]


@dataclass(frozen=True)
class ComplianceHistogram:
    """Figure 2's data: observed shares and the two RFC references.

    Index ``k - 1`` of each list holds the share of domains that spun in
    exactly ``k`` of the ``n_weeks`` selected weeks (``k >= 1``, since
    the selection keeps only domains that spun at least once).
    """

    n_weeks: int
    considered_domains: int
    observed_shares: list[float]
    rfc9000_shares: list[float]
    rfc9312_shares: list[float]

    @property
    def share_spinning_every_week(self) -> float:
        """Observed share of domains with spin activity in all weeks."""
        return self.observed_shares[-1]

    def observed_cumulative_at_most(self, k: int) -> float:
        """Observed share of domains spinning in at most ``k`` weeks."""
        if not 1 <= k <= self.n_weeks:
            raise ValueError(f"k must be in [1, {self.n_weeks}]")
        return sum(self.observed_shares[:k])


def rfc_reference_shares(n_weeks: int, disable_one_in_n: int) -> list[float]:
    """Expected shares for a compliant endpoint, conditioned on k >= 1.

    A domain whose server spins every week except for the mandated
    1-in-N per-connection disable shows spin activity in a weekly
    one-shot measurement with probability ``1 - 1/N``; over ``n``
    independent weeks the spin-week count is binomial.  Shares are
    renormalized over ``k >= 1`` to match the paper's selection of
    domains that spun at least once.
    """
    p = 1.0 - 1.0 / disable_one_in_n
    raw = [binomial_pmf(k, n_weeks, p) for k in range(1, n_weeks + 1)]
    total = sum(raw)
    return [value / total for value in raw]


class ComplianceFold:
    """Streaming accumulator behind :func:`compliance_histogram`.

    Consumes per-domain weekly spin-activity flag sequences (each of
    length ``n_weeks``); domains that never spun are skipped, matching
    the paper's Figure 2 selection.
    """

    name = "compliance"
    needs_edges_received = False
    needs_edges_sorted = False

    def __init__(self, n_weeks: int) -> None:
        self.n_weeks = n_weeks
        self._counts = [0] * n_weeks  # index k-1: spun in exactly k weeks
        self._considered = 0

    def update_many(self, flag_rows: Iterable[Sequence[bool]]) -> None:
        counts = self._counts
        considered = 0
        for flags in flag_rows:
            k = sum(flags)
            if k == 0:
                continue  # never spun in the selected weeks: not in Fig. 2
            considered += 1
            counts[k - 1] += 1
        self._considered += considered

    def finish(self) -> ComplianceHistogram:
        considered = self._considered
        observed = [
            count / considered if considered else 0.0 for count in self._counts
        ]
        return ComplianceHistogram(
            n_weeks=self.n_weeks,
            considered_domains=considered,
            observed_shares=observed,
            rfc9000_shares=rfc_reference_shares(self.n_weeks, 16),
            rfc9312_shares=rfc_reference_shares(self.n_weeks, 8),
        )


def compliance_histogram(result: LongitudinalResult) -> ComplianceHistogram:
    """Compute Figure 2 from a longitudinal measurement result."""
    fold = ComplianceFold(n_weeks=len(result.datasets))
    fold.update_many(result.weekly_spin_activity().values())
    return fold.finish()
