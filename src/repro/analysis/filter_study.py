"""RFC 9312 filtering study on measured scan data.

The paper's conclusion calls for "studying the usefulness of filtering
techniques described in RFC 9312" on real measurement data — exactly
the follow-up its released dataset enables.  This module applies the
observer heuristics of :mod:`repro.core.heuristics` to a set of scanned
connections and reports how each filter chain changes the Section 5.1
accuracy picture.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.heuristics import DynamicThresholdFilter, StaticThresholdFilter
from repro.core.metrics import AccuracyResult, compare_means
from repro.core.observer import spin_rtts_from_edges
from repro.web.scanner import ConnectionRecord

__all__ = [
    "FilterFold",
    "FilterOutcome",
    "FilterOutcomeStats",
    "FilterStudy",
    "run_filter_study",
]


@dataclass
class FilterOutcome:
    """Accuracy results of one filter variant over the connection set."""

    label: str
    results: list[AccuracyResult]
    connections_lost: int = 0

    @property
    def connections(self) -> int:
        return len(self.results)

    @property
    def within_25pct_share(self) -> float:
        if not self.results:
            return 0.0
        return sum(1 for r in self.results if abs(r.ratio) <= 1.25) / len(self.results)

    @property
    def underestimate_share(self) -> float:
        if not self.results:
            return 0.0
        return sum(1 for r in self.results if r.absolute_ms < 0) / len(self.results)

    @property
    def median_abs_ms(self) -> float:
        if not self.results:
            return 0.0
        ordered = sorted(abs(r.absolute_ms) for r in self.results)
        return ordered[len(ordered) // 2]


@dataclass
class FilterOutcomeStats:
    """Count-based form of a :class:`FilterOutcome` (no result list).

    Carries the integer counters behind the rendered filter-study rows,
    so per-week service summaries can persist and merge them by plain
    addition and still render byte-identically (shares are the same
    exact ``int / int`` divisions).
    """

    label: str
    connections: int = 0
    within_25pct: int = 0
    underestimating: int = 0
    connections_lost: int = 0

    @classmethod
    def from_outcome(cls, outcome: FilterOutcome) -> "FilterOutcomeStats":
        results = outcome.results
        return cls(
            label=outcome.label,
            connections=len(results),
            within_25pct=sum(1 for r in results if abs(r.ratio) <= 1.25),
            underestimating=sum(1 for r in results if r.absolute_ms < 0),
            connections_lost=outcome.connections_lost,
        )

    def merge(self, other: "FilterOutcomeStats") -> None:
        self.connections += other.connections
        self.within_25pct += other.within_25pct
        self.underestimating += other.underestimating
        self.connections_lost += other.connections_lost

    def as_dict(self) -> dict:
        return {
            "label": self.label,
            "connections": self.connections,
            "within_25pct": self.within_25pct,
            "underestimating": self.underestimating,
            "connections_lost": self.connections_lost,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FilterOutcomeStats":
        return cls(
            label=data["label"],
            connections=int(data["connections"]),
            within_25pct=int(data["within_25pct"]),
            underestimating=int(data["underestimating"]),
            connections_lost=int(data["connections_lost"]),
        )

    @property
    def within_25pct_share(self) -> float:
        return self.within_25pct / self.connections if self.connections else 0.0

    @property
    def underestimate_share(self) -> float:
        return self.underestimating / self.connections if self.connections else 0.0


@dataclass
class FilterStudy:
    """All filter variants side by side."""

    raw: FilterOutcome
    static: FilterOutcome
    hold_time: FilterOutcome
    combined: FilterOutcome

    def outcomes(self) -> list[FilterOutcome]:
        return [self.raw, self.static, self.hold_time, self.combined]


class FilterFold:
    """Streaming accumulator behind :func:`run_filter_study`.

    The only analysis fold that reads the received-order *edge* objects
    (the hold-time filter works on edges, not samples), so it declares
    ``needs_edges_received``.
    """

    name = "filters"
    needs_edges_received = True
    needs_edges_sorted = False

    def __init__(
        self, static_floor_ms: float = 1.0, hold_fraction: float = 0.125
    ) -> None:
        self._static_filter = StaticThresholdFilter(min_rtt_ms=static_floor_ms)
        self._hold_filter = DynamicThresholdFilter(fraction=hold_fraction)
        self._raw = FilterOutcome("raw", [])
        self._static = FilterOutcome(f"static >= {static_floor_ms:g} ms", [])
        self._hold = FilterOutcome(f"hold-time {hold_fraction:g}", [])
        self._combined = FilterOutcome("static + hold-time", [])

    def update_many(self, records: Sequence[ConnectionRecord]) -> None:
        static_filter = self._static_filter
        hold_filter = self._hold_filter
        raw_results = self._raw.results
        for record in records:
            observation = record.observation
            if len(observation.values_seen) != 2:
                continue
            stack = record.stack_rtts_ms
            base = observation.rtts_received_ms
            if not stack or not base:
                continue
            raw_results.append(compare_means(base, stack))

            static_series = static_filter.filter_rtts(base)
            _append(self._static, static_series, stack)

            hold_series = spin_rtts_from_edges(
                hold_filter.filter_edges(observation.edges_received)
            )
            _append(self._hold, hold_series, stack)

            combined_series = static_filter.filter_rtts(hold_series)
            _append(self._combined, combined_series, stack)

    def finish(self) -> FilterStudy:
        return FilterStudy(
            raw=self._raw,
            static=self._static,
            hold_time=self._hold,
            combined=self._combined,
        )


def run_filter_study(
    records: Iterable[ConnectionRecord],
    static_floor_ms: float = 1.0,
    hold_fraction: float = 0.125,
) -> FilterStudy:
    """Apply the RFC 9312 filter chains to spin-active connections.

    Each variant recomputes the per-connection accuracy from the
    filtered sample series; connections whose series empties out under a
    filter are counted in ``connections_lost`` instead of skewing the
    averages.
    """
    fold = FilterFold(static_floor_ms=static_floor_ms, hold_fraction=hold_fraction)
    fold.update_many(records if isinstance(records, Sequence) else list(records))
    return fold.finish()


def _append(outcome: FilterOutcome, series: list[float], stack: list[float]) -> None:
    if series:
        outcome.results.append(compare_means(series, stack))
    else:
        outcome.connections_lost += 1
