"""RFC 9312 filtering study on measured scan data.

The paper's conclusion calls for "studying the usefulness of filtering
techniques described in RFC 9312" on real measurement data — exactly
the follow-up its released dataset enables.  This module applies the
observer heuristics of :mod:`repro.core.heuristics` to a set of scanned
connections and reports how each filter chain changes the Section 5.1
accuracy picture.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.heuristics import DynamicThresholdFilter, StaticThresholdFilter
from repro.core.metrics import AccuracyResult, compare_means
from repro.core.observer import spin_rtts_from_edges
from repro.web.scanner import ConnectionRecord

__all__ = ["FilterOutcome", "FilterStudy", "run_filter_study"]


@dataclass
class FilterOutcome:
    """Accuracy results of one filter variant over the connection set."""

    label: str
    results: list[AccuracyResult]
    connections_lost: int = 0

    @property
    def connections(self) -> int:
        return len(self.results)

    @property
    def within_25pct_share(self) -> float:
        if not self.results:
            return 0.0
        return sum(1 for r in self.results if abs(r.ratio) <= 1.25) / len(self.results)

    @property
    def underestimate_share(self) -> float:
        if not self.results:
            return 0.0
        return sum(1 for r in self.results if r.absolute_ms < 0) / len(self.results)

    @property
    def median_abs_ms(self) -> float:
        if not self.results:
            return 0.0
        ordered = sorted(abs(r.absolute_ms) for r in self.results)
        return ordered[len(ordered) // 2]


@dataclass
class FilterStudy:
    """All filter variants side by side."""

    raw: FilterOutcome
    static: FilterOutcome
    hold_time: FilterOutcome
    combined: FilterOutcome

    def outcomes(self) -> list[FilterOutcome]:
        return [self.raw, self.static, self.hold_time, self.combined]


def run_filter_study(
    records: Iterable[ConnectionRecord],
    static_floor_ms: float = 1.0,
    hold_fraction: float = 0.125,
) -> FilterStudy:
    """Apply the RFC 9312 filter chains to spin-active connections.

    Each variant recomputes the per-connection accuracy from the
    filtered sample series; connections whose series empties out under a
    filter are counted in ``connections_lost`` instead of skewing the
    averages.
    """
    static_filter = StaticThresholdFilter(min_rtt_ms=static_floor_ms)
    hold_filter = DynamicThresholdFilter(fraction=hold_fraction)

    raw = FilterOutcome("raw", [])
    static = FilterOutcome(f"static >= {static_floor_ms:g} ms", [])
    hold = FilterOutcome(f"hold-time {hold_fraction:g}", [])
    combined = FilterOutcome("static + hold-time", [])

    for record in records:
        observation = record.observation
        if not observation.spins:
            continue
        stack = record.stack_rtts_ms
        base = observation.rtts_received_ms
        if not stack or not base:
            continue
        raw.results.append(compare_means(base, stack))

        static_series = static_filter.filter_rtts(base)
        _append(static, static_series, stack)

        hold_series = spin_rtts_from_edges(
            hold_filter.filter_edges(observation.edges_received)
        )
        _append(hold, hold_series, stack)

        combined_series = static_filter.filter_rtts(hold_series)
        _append(combined, combined_series, stack)

    return FilterStudy(raw=raw, static=static, hold_time=hold, combined=combined)


def _append(outcome: FilterOutcome, series: list[float], stack: list[float]) -> None:
    if series:
        outcome.results.append(compare_means(series, stack))
    else:
        outcome.connections_lost += 1
