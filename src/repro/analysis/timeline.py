"""Per-connection spin-signal timeline rendering (a Fig. 1 companion).

The paper's Figure 1 explains the spin mechanism with a timeline of
packets and edges; this module renders the same picture for a *measured*
connection, as text, from its trace: one line per received 1-RTT packet
with arrival time, packet number, spin value, edge markers, and the
derived RTT samples.  Useful for debugging deployments and for the
documentation examples.
"""

from __future__ import annotations

from repro.core.observer import observe_recorder
from repro.qlog.recorder import TraceRecorder

__all__ = ["render_spin_timeline"]


def render_spin_timeline(recorder: TraceRecorder, max_packets: int = 60) -> str:
    """Render the received spin signal of one connection as text.

    Shows at most ``max_packets`` packets (head and tail if truncated),
    marks value flips as edges, and annotates each edge after the first
    with the RTT sample it closes.
    """
    events = recorder.received_short_header_packets()
    observation = observe_recorder(recorder)
    edge_times = {edge.time_ms: index for index, edge in enumerate(observation.edges_received)}

    lines = [
        f"received 1-RTT packets: {len(events)}; edges: "
        f"{len(observation.edges_received)}; spin RTT samples: "
        f"{len(observation.rtts_received_ms)}"
    ]

    if len(events) > max_packets:
        head = events[: max_packets // 2]
        tail = events[-(max_packets - len(head)) :]
        segments = [(head, False), (tail, True)]
    else:
        segments = [(events, False)]

    previous_value: bool | None = None
    for segment, is_tail in segments:
        if is_tail:
            lines.append("  ...")
            previous_value = None  # unknown across the gap
        for event in segment:
            value = "1" if event.spin_bit else "0"
            marker = ""
            if event.time_ms in edge_times:
                index = edge_times[event.time_ms]
                marker = "  <- edge"
                if index >= 1:
                    sample = observation.rtts_received_ms[index - 1]
                    marker += f" (sample {sample:.1f} ms)"
            elif previous_value is not None and event.spin_bit != (previous_value == "1"):
                marker = "  <- edge"
            wave = ("_" if value == "0" else "#") * 6
            lines.append(
                f"  t={event.time_ms:9.1f} ms  pn={event.packet_number:5d}  "
                f"spin={value} {wave}{marker}"
            )
            previous_value = value
    if observation.rtts_received_ms:
        mean = sum(observation.rtts_received_ms) / len(observation.rtts_received_ms)
        lines.append(f"mean spin RTT estimate: {mean:.1f} ms")
    return "\n".join(lines)
