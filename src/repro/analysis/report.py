"""Plain-text rendering of the paper's tables and figures.

The benchmark harness prints the same rows the paper reports; these
helpers keep the formatting in one place.  Histograms render as simple
unicode bar charts so Figures 2-4 are inspectable on a terminal.
"""

from __future__ import annotations

from typing import Sequence

from repro._util.stats import Histogram
from repro.analysis.accuracy import SeriesSummary
from repro.analysis.asorg import OrgTable
from repro.analysis.compliance import ComplianceHistogram
from repro.analysis.config import ConfigurationTable
from repro.analysis.support import SupportOverview
from repro.internet.population import ListGroup

__all__ = [
    "render_analysis_sections",
    "render_compliance_histogram",
    "render_configuration_table",
    "render_histogram",
    "render_org_table",
    "render_series_summary",
    "render_support_overview",
    "render_table",
]

_BAR_WIDTH = 40


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Align ``rows`` under ``headers`` with right-padded columns."""
    cells = [list(map(str, headers))] + [[str(value) for value in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(cells):
        lines.append("  ".join(value.ljust(widths[i]) for i, value in enumerate(row)))
        if index == 0:
            lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    return "\n".join(lines)


def render_support_overview(overview: SupportOverview) -> str:
    """Table 1 / Table 4 layout."""
    rows = []
    for group in ListGroup:
        row = overview.row(group)
        rows.append(
            (
                group.value,
                "#Domains",
                row.domains_total,
                row.domains_resolved,
                row.domains_quic,
                f"{row.domain_spin_share * 100:.1f} %",
            )
        )
        rows.append(
            (
                "",
                "#IPs",
                "",
                row.ips_resolved,
                row.ips_quic,
                f"{row.ip_spin_share * 100:.1f} %",
            )
        )
    title = f"IPv{overview.ip_version} overview for {overview.week_label}"
    table = render_table(
        ("Group", "", "Total", "Resolved", "QUIC", "Spin"), rows
    )
    return f"{title}\n{table}"


def render_org_table(table: OrgTable, spin_top_n: int = 5) -> str:
    """Table 2 layout: top orgs by volume plus the <other> aggregate."""
    rows = []
    for row in table.top_rows:
        rows.append(
            (
                row.total_rank,
                row.total_connections,
                row.org_name,
                row.spin_connections,
                f"{row.spin_share * 100:.1f} %",
                row.spin_rank if row.spin_rank is not None else "-",
            )
        )
    other = table.other
    share = (
        f"{other.spin_connections / other.total_connections * 100:.1f} %"
        if other.total_connections
        else "-"
    )
    rows.append(("", other.total_connections, other.org_name, other.spin_connections, share, ""))
    return render_table(
        ("Rank", "Total #", "AS Organization", "Spin #", "Spin %", "Spin Rank"), rows
    )


def render_configuration_table(table: ConfigurationTable) -> str:
    """Table 3 layout."""
    rows = []
    for group in ListGroup:
        row = table.row(group)
        rows.append(
            (
                group.value,
                f"{row.all_zero} ({row.all_zero_share * 100:.1f} %)",
                f"{row.all_one} ({row.all_one_share * 100:.2f} %)",
                row.spin,
                f"{row.grease} ({row.grease_share * 100:.3f} %)",
            )
        )
    return render_table(("Group", "All Zero", "All One", "Spin", "Grease"), rows)


def _bar(fraction: float, scale: float) -> str:
    filled = int(round(_BAR_WIDTH * fraction / scale)) if scale > 0 else 0
    return "#" * filled


def render_histogram(histogram: Histogram, labels: Sequence[str] | None = None) -> str:
    """A histogram as labeled text bars (relative frequencies)."""
    fractions = histogram.fractions()
    total = histogram.total
    under = histogram.underflow / total if total else 0.0
    over = histogram.overflow / total if total else 0.0
    scale = max([*fractions, under, over, 1e-9])
    lines = []
    edge_labels = labels or [
        f"[{histogram.edges[i]:g}, {histogram.edges[i + 1]:g})"
        for i in range(len(fractions))
    ]
    lines.append(f"{'< ' + format(histogram.edges[0], 'g'):>16}  {under * 100:5.1f} %  {_bar(under, scale)}")
    for label, fraction in zip(edge_labels, fractions):
        lines.append(f"{label:>16}  {fraction * 100:5.1f} %  {_bar(fraction, scale)}")
    lines.append(f"{'>= ' + format(histogram.edges[-1], 'g'):>16}  {over * 100:5.1f} %  {_bar(over, scale)}")
    return "\n".join(lines)


def render_series_summary(series: SeriesSummary) -> str:
    """One Figure 3/4 series with its headline shares."""
    lines = [
        f"{series.label}: {series.connections} connections",
        f"  overestimating: {series.overestimate_share * 100:.1f} %",
        f"  |abs| <= 25 ms: {series.within_25ms_share * 100:.1f} %",
        f"  abs > 200 ms:   {series.over_200ms_share * 100:.1f} %",
        f"  within 25 %:    {series.within_25pct_share * 100:.1f} %",
        f"  within 2x:      {series.within_factor2_share * 100:.1f} %",
        f"  over 3x:        {series.over_factor3_share * 100:.1f} %",
        "  abs difference histogram (ms):",
        render_histogram(series.abs_histogram),
        "  mapped ratio histogram:",
        render_histogram(series.ratio_histogram),
    ]
    return "\n".join(lines)


def render_analysis_sections(results, wanted: str = "all") -> str:
    """The ``repro analyze`` stdout block for ``results``.

    ``results`` is the ``{section: result}`` mapping an
    :class:`~repro.analysis.engine.AnalysisEngine` run returns (or its
    count-based service-summary reconstruction — the section objects are
    duck-typed).  Shared between the CLI and the service query API so a
    summary-served section is byte-identical to the CLI's output by
    construction.
    """
    from repro.faults.taxonomy import render_failure_table

    lines: list[str] = []
    if wanted in ("orgs", "all"):
        lines.append("== AS organizations (Table 2 style) ==")
        lines.append(render_org_table(results["orgs"]))
        lines.append("")
    if wanted in ("webservers", "all"):
        lines.append("== webserver attribution (spinning connections) ==")
        for share in results["webservers"][:6]:
            lines.append(
                f"  {share.server_header:30s} {share.connections:6d}"
                f" {share.share * 100:5.1f} %"
            )
        lines.append("")
    if wanted in ("accuracy", "all"):
        lines.append("== RTT accuracy (Figures 3/4 style) ==")
        lines.append(render_series_summary(results["accuracy"].spin_received))
        lines.append("")
    if wanted in ("versions", "all"):
        lines.append("== negotiated QUIC versions ==")
        for share in results["versions"]:
            lines.append(
                f"  {share.label:14s} {share.connections:6d}"
                f" {share.share * 100:5.1f} %"
            )
        lines.append("")
    if wanted in ("filters", "all"):
        lines.append("== RFC 9312 filter study ==")
        for outcome in results["filters"].outcomes():
            lines.append(
                f"  {outcome.label:22s} n={outcome.connections:5d}"
                f"  within25%={outcome.within_25pct_share * 100:5.1f} %"
                f"  underest={outcome.underestimate_share * 100:4.1f} %"
                f"  lost={outcome.connections_lost}"
            )
    if wanted in ("failures", "all"):
        if wanted == "all":
            lines.append("")
        lines.append("== failure taxonomy ==")
        lines.append(render_failure_table(results["failures"]))
    return "\n".join(lines)


def render_compliance_histogram(histogram: ComplianceHistogram) -> str:
    """Figure 2 as text: observed vs. the two RFC reference curves."""
    lines = [
        f"domains considered: {histogram.considered_domains} "
        f"(spin-active, connected in all {histogram.n_weeks} weeks)",
        f"{'weeks':>6}  {'observed':>9}  {'RFC9000':>8}  {'RFC9312':>8}",
    ]
    for index in range(histogram.n_weeks):
        lines.append(
            f"{index + 1:>6}  {histogram.observed_shares[index] * 100:8.1f} %"
            f"  {histogram.rfc9000_shares[index] * 100:6.1f} %"
            f"  {histogram.rfc9312_shares[index] * 100:6.1f} %"
            f"  {_bar(histogram.observed_shares[index], max(histogram.observed_shares) or 1)}"
        )
    return "\n".join(lines)
