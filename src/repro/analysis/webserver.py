"""Webserver attribution (Section 4.2, "Webserver support").

The paper inspects the HTTP ``server`` header of connections that could
be unambiguously matched to qlog traces and finds LiteSpeed behind more
than 80 % of the (spin-supporting) connections, with another ~7 % served
by imunify360-webshield.  This module computes those shares from the
scanner's connection records, whose server headers were parsed from the
actual response bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.web.scanner import ConnectionRecord

__all__ = ["WebserverShare", "webserver_shares"]


@dataclass(frozen=True)
class WebserverShare:
    """One server software's share of a connection set."""

    server_header: str
    connections: int
    share: float


def webserver_shares(
    connections: Iterable[ConnectionRecord],
    spinning_only: bool = True,
) -> list[WebserverShare]:
    """Connection share per ``server`` header, descending.

    ``spinning_only`` restricts the denominator to connections with
    (unfiltered) spin activity — the population whose stack provenance
    the paper traces back to LiteSpeed.
    """
    counts: dict[str, int] = {}
    total = 0
    for connection in connections:
        if not connection.success:
            continue
        if spinning_only and connection.behaviour.value != "spin":
            continue
        header = connection.server_header or "<none>"
        counts[header] = counts.get(header, 0) + 1
        total += 1
    shares = [
        WebserverShare(server_header=header, connections=count, share=count / total)
        for header, count in counts.items()
    ]
    shares.sort(key=lambda entry: (-entry.connections, entry.server_header))
    return shares
