"""Webserver attribution (Section 4.2, "Webserver support").

The paper inspects the HTTP ``server`` header of connections that could
be unambiguously matched to qlog traces and finds LiteSpeed behind more
than 80 % of the (spin-supporting) connections, with another ~7 % served
by imunify360-webshield.  This module computes those shares from the
scanner's connection records, whose server headers were parsed from the
actual response bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.core.classify import SpinBehaviour
from repro.web.scanner import ConnectionRecord

__all__ = [
    "WebserverFold",
    "WebserverShare",
    "webserver_shares",
    "webserver_shares_from_counts",
]


@dataclass(frozen=True)
class WebserverShare:
    """One server software's share of a connection set."""

    server_header: str
    connections: int
    share: float


class WebserverFold:
    """Streaming accumulator behind :func:`webserver_shares`.

    ``spinning_only`` restricts the denominator to connections with
    (unfiltered) spin activity — the population whose stack provenance
    the paper traces back to LiteSpeed.
    """

    name = "webservers"
    needs_edges_received = False
    needs_edges_sorted = False

    def __init__(self, spinning_only: bool = True) -> None:
        self._spinning_only = spinning_only
        self._counts: dict[str, int] = {}

    def update_many(self, records: Sequence[ConnectionRecord]) -> None:
        counts = self._counts
        spinning_only = self._spinning_only
        spin = SpinBehaviour.SPIN
        for connection in records:
            if not connection.success:
                continue
            if spinning_only and connection.behaviour is not spin:
                continue
            header = connection.server_header or "<none>"
            counts[header] = counts.get(header, 0) + 1

    def counts(self) -> dict[str, int]:
        """The mergeable per-header counters behind the share ranking."""
        return dict(self._counts)

    def finish(self) -> list[WebserverShare]:
        return webserver_shares_from_counts(self._counts)


def webserver_shares_from_counts(
    counts: Mapping[str, int]
) -> list[WebserverShare]:
    """Rebuild the share ranking from per-header connection counters.

    The counters are :class:`WebserverFold`'s internal state; persisted
    per week they merge by addition and reproduce the fold's output
    byte-identically (shares are exact ``count / total`` divisions of
    the same integers).
    """
    total = sum(counts.values())
    shares = [
        WebserverShare(server_header=header, connections=count, share=count / total)
        for header, count in counts.items()
    ]
    shares.sort(key=lambda entry: (-entry.connections, entry.server_header))
    return shares


def webserver_shares(
    connections: Iterable[ConnectionRecord],
    spinning_only: bool = True,
) -> list[WebserverShare]:
    """Connection share per ``server`` header, descending."""
    fold = WebserverFold(spinning_only=spinning_only)
    fold.update_many(
        connections if isinstance(connections, Sequence) else list(connections)
    )
    return fold.finish()
