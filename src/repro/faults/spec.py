"""Composable, seeded fault specifications.

The paper's scans run against the hostile open Internet: hosts vanish
mid-handshake, middleboxes black-hole UDP, servers stall for seconds,
captures truncate mid-record.  The reproduction simulates the endpoints,
so this module simulates the *failures* — deterministically.  A
:class:`FaultPlan` is a set of :class:`FaultSpec` entries ("with
probability p, this kind of fault, at this magnitude"); per domain the
scanner draws the plan's outcome from a dedicated RNG stream derived as
``(seed, "scan", week, ip_version, domain, probe, "faults")``.  Two
consequences fall out of that derivation:

* the same seed produces the same faults at any ``--workers`` count
  (fault draws never touch the per-domain measurement stream), and
* a plan with every probability at zero — or no plan at all — leaves
  the measurement stream untouched, so fault-free output is
  byte-identical to a build without the fault plane.

Fault-spec syntax (CLI ``--fault``)::

    kind:probability[:magnitude][,kind:probability[:magnitude]...]

e.g. ``blackhole:0.02,handshake-stall:0.05:4000``.  The magnitude's
meaning is kind-specific (see :data:`DEFAULT_MAGNITUDES`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Iterator, Sequence

from repro._util.rng import derive_rng

__all__ = [
    "BlackholeImpairment",
    "BurstLossImpairment",
    "DEFAULT_MAGNITUDES",
    "DrawnFaults",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "VN_FAULT_VERSION",
    "corrupt_datagram_stream",
    "parse_fault_plan",
    "truncate_jsonl_lines",
]

#: A reserved-looking wire version (0x?a?a?a?a pattern, RFC 9000 15) no
#: real stack speaks: a server configured with only this version answers
#: every Initial with Version Negotiation and the client finds no
#: common version — the vn-failure fault.
VN_FAULT_VERSION = 0x1A2A3A4A


class FaultKind(Enum):
    """Every injectable fault; values are the CLI spell of the kind."""

    #: A window of heavy loss on both path directions.
    LOSS_BURST = "loss-burst"
    #: Every datagram dropped — an unreachable / filtered endpoint.
    BLACKHOLE = "blackhole"
    #: The server sits on the ClientHello before answering.
    HANDSHAKE_STALL = "handshake-stall"
    #: Server and client share no wire version.
    VN_FAILURE = "vn-failure"
    #: The server resets the connection mid-response.
    RESET = "reset"
    #: Pathological server think time (an overloaded origin).
    SLOW_SERVER = "slow-server"
    #: Exported qlog JSONL lines are cut short (crash-mid-write).
    QLOG_TRUNCATE = "qlog-truncate"
    #: The monitor's tap hands up mangled datagrams.
    CORRUPT_DATAGRAM = "corrupt-datagram"


#: Kind-specific meaning of ``FaultSpec.magnitude`` and its default:
#: loss-burst → in-burst loss probability; handshake-stall → maximum
#: stall (ms); reset → mean 1-RTT packets before the reset; slow-server
#: → nominal extra think time (ms).  Kinds without an entry take no
#: magnitude.
DEFAULT_MAGNITUDES = {
    FaultKind.LOSS_BURST: 0.9,
    FaultKind.HANDSHAKE_STALL: 4_000.0,
    FaultKind.RESET: 6.0,
    FaultKind.SLOW_SERVER: 20_000.0,
}


@dataclass(frozen=True)
class FaultSpec:
    """One fault kind armed with a probability (and optional magnitude)."""

    kind: FaultKind
    probability: float
    magnitude: float | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"fault probability for {self.kind.value!r} must be in [0, 1], "
                f"got {self.probability}"
            )
        if self.magnitude is not None and self.magnitude <= 0:
            raise ValueError(
                f"fault magnitude for {self.kind.value!r} must be positive"
            )

    @property
    def effective_magnitude(self) -> float | None:
        if self.magnitude is not None:
            return self.magnitude
        return DEFAULT_MAGNITUDES.get(self.kind)

    def to_string(self) -> str:
        spell = f"{self.kind.value}:{self.probability:g}"
        if self.magnitude is not None:
            spell += f":{self.magnitude:g}"
        return spell


@dataclass(frozen=True)
class BurstLossImpairment:
    """Heavy loss inside one time window; installed on both directions.

    A path impairment predicate (see
    :meth:`repro.netsim.path.Path.install_impairment`): consumes one RNG
    draw per datagram *inside* the window only, so paths outside the
    window stay on their fault-free random stream.
    """

    start_ms: float
    duration_ms: float
    loss_probability: float

    def __call__(self, now_ms: float, rng: random.Random) -> bool:
        if self.start_ms <= now_ms < self.start_ms + self.duration_ms:
            return rng.random() < self.loss_probability
        return False


@dataclass(frozen=True)
class BlackholeImpairment:
    """Every datagram dropped: the endpoint is unreachable."""

    def __call__(self, now_ms: float, rng: random.Random) -> bool:
        return True


@dataclass(frozen=True)
class DrawnFaults:
    """One domain's concrete fault outcome (the plan, rolled).

    Only the scan-side kinds appear here; ``qlog-truncate`` applies at
    export time and ``corrupt-datagram`` at the monitor's tap, each from
    their own derived stream (see :func:`truncate_jsonl_lines` and
    :func:`corrupt_datagram_stream`).
    """

    blackhole: bool = False
    loss_burst: BurstLossImpairment | None = None
    handshake_stall_ms: float = 0.0
    vn_failure: bool = False
    reset_after_packets: int | None = None
    slow_server_stall_ms: float = 0.0

    @property
    def any_active(self) -> bool:
        return (
            self.blackhole
            or self.loss_burst is not None
            or self.handshake_stall_ms > 0.0
            or self.vn_failure
            or self.reset_after_packets is not None
            or self.slow_server_stall_ms > 0.0
        )


#: Draw order is fixed to enum declaration order, never plan order, so
#: two spellings of the same plan yield identical outcomes per seed.
_DRAW_ORDER = tuple(FaultKind)


@dataclass(frozen=True)
class FaultPlan:
    """An immutable set of fault specs, at most one per kind."""

    specs: tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        seen: set[FaultKind] = set()
        for spec in self.specs:
            if spec.kind in seen:
                raise ValueError(f"duplicate fault kind {spec.kind.value!r}")
            seen.add(spec.kind)

    @property
    def is_empty(self) -> bool:
        return not any(spec.probability > 0.0 for spec in self.specs)

    def spec(self, kind: FaultKind) -> FaultSpec | None:
        for spec in self.specs:
            if spec.kind is kind:
                return spec
        return None

    def to_string(self) -> str:
        return ",".join(spec.to_string() for spec in self.specs)

    def draw(self, rng: random.Random) -> DrawnFaults:
        """Roll the plan once (one domain's faults) from ``rng``."""
        blackhole = False
        loss_burst: BurstLossImpairment | None = None
        handshake_stall_ms = 0.0
        vn_failure = False
        reset_after_packets: int | None = None
        slow_server_stall_ms = 0.0
        by_kind = {spec.kind: spec for spec in self.specs}
        for kind in _DRAW_ORDER:
            spec = by_kind.get(kind)
            if spec is None or spec.probability <= 0.0:
                continue
            if kind in (FaultKind.QLOG_TRUNCATE, FaultKind.CORRUPT_DATAGRAM):
                continue  # applied outside the exchange; see class docstring
            if rng.random() >= spec.probability:
                continue
            magnitude = spec.effective_magnitude
            if kind is FaultKind.LOSS_BURST:
                loss_burst = BurstLossImpairment(
                    start_ms=rng.uniform(0.0, 1_500.0),
                    duration_ms=rng.uniform(150.0, 750.0),
                    loss_probability=min(magnitude, 1.0),
                )
            elif kind is FaultKind.BLACKHOLE:
                blackhole = True
            elif kind is FaultKind.HANDSHAKE_STALL:
                handshake_stall_ms = rng.uniform(0.5, 1.0) * magnitude
            elif kind is FaultKind.VN_FAILURE:
                vn_failure = True
            elif kind is FaultKind.RESET:
                reset_after_packets = 1 + rng.randrange(max(1, int(magnitude * 2)))
            elif kind is FaultKind.SLOW_SERVER:
                slow_server_stall_ms = rng.uniform(0.5, 1.5) * magnitude
        return DrawnFaults(
            blackhole=blackhole,
            loss_burst=loss_burst,
            handshake_stall_ms=handshake_stall_ms,
            vn_failure=vn_failure,
            reset_after_packets=reset_after_packets,
            slow_server_stall_ms=slow_server_stall_ms,
        )


def parse_fault_plan(text: str) -> FaultPlan:
    """Parse the CLI fault-spec syntax into a :class:`FaultPlan`."""
    specs: list[FaultSpec] = []
    valid = ", ".join(kind.value for kind in FaultKind)
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        fields = part.split(":")
        if len(fields) not in (2, 3):
            raise ValueError(
                f"bad fault spec {part!r}: expected kind:probability[:magnitude]"
            )
        try:
            kind = FaultKind(fields[0])
        except ValueError:
            raise ValueError(
                f"unknown fault kind {fields[0]!r} (valid kinds: {valid})"
            ) from None
        try:
            probability = float(fields[1])
            magnitude = float(fields[2]) if len(fields) == 3 else None
        except ValueError:
            raise ValueError(f"bad fault spec {part!r}: non-numeric field") from None
        specs.append(FaultSpec(kind=kind, probability=probability, magnitude=magnitude))
    if not specs:
        raise ValueError("empty fault plan")
    return FaultPlan(specs=tuple(specs))


def truncate_jsonl_lines(
    lines: Sequence[str], plan: "FaultPlan | None", seed: int | str
) -> tuple[list[str], int]:
    """Apply the qlog-truncate fault to serialized JSONL lines.

    Each line's fate comes from its own ``(seed, "qlog-fault", index)``
    stream, so the outcome depends only on the export order — identical
    at any worker count.  Returns ``(lines, truncated_count)``.
    """
    spec = plan.spec(FaultKind.QLOG_TRUNCATE) if plan is not None else None
    if spec is None or spec.probability <= 0.0:
        return list(lines), 0
    out: list[str] = []
    truncated = 0
    for index, line in enumerate(lines):
        rng = derive_rng(seed, "qlog-fault", index)
        if rng.random() < spec.probability and len(line) > 2:
            cut = max(1, int(len(line) * rng.uniform(0.2, 0.9)))
            out.append(line[:cut])
            truncated += 1
        else:
            out.append(line)
    return out, truncated


def corrupt_datagram_stream(
    stream: Iterable, probability: float, rng: random.Random
) -> Iterator:
    """Truncate a fraction of tap datagrams below any parseable header.

    Wraps a :class:`repro.monitor.traffic.TapDatagram` iterator; mangled
    datagrams keep their timing and flow index, so the monitor's
    malformed-packet counters see a realistic in-stream error pattern.
    """
    for tap in stream:
        if rng.random() < probability and len(tap.data) > 1:
            cut = 1 + rng.randrange(min(8, len(tap.data) - 1))
            yield tap._replace(data=tap.data[:cut])
        else:
            yield tap
