"""Bounded retries with deterministic exponential backoff + jitter.

Real scanners back off in wall-clock time; this reproduction banks the
backoff against the domain's *simulated* time budget instead (the
determinism lint bans ``time.sleep`` under ``src/``).  Jitter draws come
from the calling domain's measurement stream, so a retry schedule is a
pure function of ``(seed, week, ip_version, domain, probe)`` — identical
at any ``--workers`` count.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Shape of the per-connection retry loop.

    ``max_attempts`` counts the first try; ``jitter_fraction`` adds up
    to that fraction of the backoff on top (decorrelating retry storms
    without making schedules seed-dependent beyond the domain stream).
    """

    max_attempts: int = 3
    base_delay_ms: float = 200.0
    multiplier: float = 2.0
    max_delay_ms: float = 5_000.0
    jitter_fraction: float = 0.1

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay_ms < 0 or self.max_delay_ms < 0:
            raise ValueError("backoff delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("backoff multiplier must be >= 1")
        if not 0.0 <= self.jitter_fraction <= 1.0:
            raise ValueError("jitter_fraction must be in [0, 1]")

    def delay_ms(self, retry_index: int, rng: random.Random) -> float:
        """Backoff before retry ``retry_index`` (0 = first retry)."""
        delay = min(
            self.base_delay_ms * self.multiplier**retry_index, self.max_delay_ms
        )
        if self.jitter_fraction:
            delay += delay * self.jitter_fraction * rng.random()
        return delay

    def schedule_ms(self, rng: random.Random) -> list[float]:
        """The full backoff schedule a maximally-retrying exchange sees."""
        return [self.delay_ms(index, rng) for index in range(self.max_attempts - 1)]
