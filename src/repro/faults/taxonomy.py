"""Structured failure taxonomy for scan exchanges.

The paper's adoption tables only make sense because failed exchanges
are *classified* rather than dropped on the floor (cf. "A First Look at
QUIC in the Wild", which treats the scan failure taxonomy as a
first-class result).  :func:`classify_exchange` reduces a failed
:class:`repro.web.http3.ExchangeResult` to one :class:`FailureKind`;
the scanner records it on every failed
:class:`~repro.web.scanner.ConnectionRecord`, the artifact export
carries it (only when present, keeping fault-free datasets
byte-identical to earlier schema emissions), and ``repro analyze``
renders the per-kind summary.
"""

from __future__ import annotations

from enum import Enum
from typing import Iterable

__all__ = [
    "RETRYABLE_KINDS",
    "FailureFold",
    "FailureKind",
    "classify_exchange",
    "failure_summary",
    "failure_summary_from_counts",
    "render_failure_table",
]


class FailureKind(Enum):
    """Why one exchange produced no (complete) response."""

    #: No packet ever came back — blackholed or filtered endpoint.
    UNREACHABLE = "unreachable"
    #: Packets flowed but the handshake never completed in time.
    HANDSHAKE_TIMEOUT = "handshake_timeout"
    #: No wire version in common (server answered VN only).
    VERSION_NEGOTIATION = "version_negotiation"
    #: The peer closed with a nonzero transport error mid-exchange.
    CONNECTION_RESET = "connection_reset"
    #: Handshake succeeded, then the response outlived the time budget.
    STALLED = "stalled"
    #: Application-space probe timeout exhausted its retries.
    PTO_EXHAUSTED = "pto_exhausted"
    #: The exchange drained without a complete response (catch-all).
    INCOMPLETE = "incomplete"
    #: Not attempted: the provider's circuit breaker was open.
    CIRCUIT_OPEN = "circuit_open"


#: Kinds a retry can plausibly fix.  A version mismatch is a protocol
#: property of the server (retrying re-fails identically) and an open
#: breaker is the *absence* of an attempt.
RETRYABLE_KINDS = frozenset(
    {
        FailureKind.UNREACHABLE,
        FailureKind.HANDSHAKE_TIMEOUT,
        FailureKind.CONNECTION_RESET,
        FailureKind.STALLED,
        FailureKind.PTO_EXHAUSTED,
        FailureKind.INCOMPLETE,
    }
)

_KIND_ORDER = {kind.value: index for index, kind in enumerate(FailureKind)}


def classify_exchange(exchange) -> FailureKind | None:
    """Map one :class:`ExchangeResult` to a kind; ``None`` on success."""
    if exchange.success:
        return None
    client = exchange.client
    reason = exchange.failure_reason or ""
    if reason.startswith("version negotiation failed"):
        return FailureKind.VERSION_NEGOTIATION
    if client is not None and client.peer_close_error_code:
        return FailureKind.CONNECTION_RESET
    received = len(exchange.recorder.received) if exchange.recorder else 0
    handshake_complete = client.handshake_complete if client is not None else False
    if getattr(exchange, "timed_out", False):
        if handshake_complete:
            return FailureKind.STALLED
        if received == 0:
            return FailureKind.UNREACHABLE
        return FailureKind.HANDSHAKE_TIMEOUT
    if "pto exhausted" in reason:
        if "application" in reason:
            return FailureKind.PTO_EXHAUSTED
        if received == 0:
            return FailureKind.UNREACHABLE
        return FailureKind.HANDSHAKE_TIMEOUT
    return FailureKind.INCOMPLETE


class FailureFold:
    """Streaming accumulator behind :func:`failure_summary`.

    Failed records without a recorded kind (pre-taxonomy datasets)
    count as ``unclassified``.
    """

    name = "failures"
    needs_edges_received = False
    needs_edges_sorted = False

    def __init__(self) -> None:
        self._counts: dict[str, int] = {}
        self._total = 0
        self._succeeded = 0

    def update_many(self, records: Iterable) -> None:
        counts = self._counts
        total = 0
        succeeded = 0
        for record in records:
            total += 1
            if record.success:
                succeeded += 1
                continue
            kind = getattr(record, "failure", None)
            key = kind.value if kind is not None else "unclassified"
            counts[key] = counts.get(key, 0) + 1
        self._total += total
        self._succeeded += succeeded

    def counts(self) -> tuple[int, int, dict[str, int]]:
        """The mergeable ``(total, succeeded, kinds)`` counters."""
        return self._total, self._succeeded, dict(self._counts)

    def finish(self) -> dict:
        return failure_summary_from_counts(
            self._total, self._succeeded, self._counts
        )


def failure_summary_from_counts(
    total: int, succeeded: int, kinds: dict[str, int]
) -> dict:
    """The :func:`failure_summary` dict from raw counters.

    Counters merge by plain addition, so persisted per-week summaries
    (the service plane) rebuild the same dict — stable enum ordering
    included — byte-identically.
    """
    ordered = dict(
        sorted(
            kinds.items(),
            key=lambda item: _KIND_ORDER.get(item[0], len(_KIND_ORDER)),
        )
    )
    return {
        "total": total,
        "succeeded": succeeded,
        "failed": total - succeeded,
        "kinds": ordered,
    }


def failure_summary(records: Iterable) -> dict:
    """Count connection outcomes by kind, in stable enum order.

    ``records`` are :class:`~repro.web.scanner.ConnectionRecord` objects
    (live or loaded from an artifact).
    """
    fold = FailureFold()
    fold.update_many(records)
    return fold.finish()


def render_failure_table(summary: dict) -> str:
    """Human-readable failure-taxonomy block (``repro analyze``)."""
    total = summary["total"]
    lines = [
        f"  connections            {total:6d}",
        f"  succeeded              {summary['succeeded']:6d}",
        f"  failed                 {summary['failed']:6d}",
    ]
    for key, count in summary["kinds"].items():
        share = count / total * 100.0 if total else 0.0
        lines.append(f"    {key:20s} {count:6d} {share:5.1f} %")
    return "\n".join(lines)
