"""repro.faults: deterministic fault injection + resilience machinery.

Two symmetric halves:

* the *injecting* side (:mod:`repro.faults.spec`): composable
  :class:`FaultSpec` plans drawn per domain from a dedicated RNG stream
  — loss bursts, blackholes, handshake stalls, version-negotiation
  failures, mid-exchange resets, slow servers, truncated qlog records,
  corrupted monitor datagrams;
* the *absorbing* side: timeout budgets and bounded retries with
  deterministic backoff (:mod:`repro.faults.retry`,
  :mod:`repro.faults.resilience`), a per-provider circuit breaker run
  as a deterministic post-merge pass (:mod:`repro.faults.breaker`),
  the :class:`FailureKind` taxonomy recorded on every failed exchange
  (:mod:`repro.faults.taxonomy`), and crash-safe campaign resume from
  per-shard checkpoints (:mod:`repro.faults.checkpoint`).

DESIGN.md Section "Robustness & fault injection" documents why fault
draws come from the scan RNG and how every piece stays byte-identical
across worker counts.
"""

from repro.faults.breaker import BreakerPolicy, CircuitBreaker, apply_circuit_breaker
from repro.faults.checkpoint import (
    CheckpointError,
    CheckpointStore,
    encode_domain_results,
    results_from_cbr_payload,
    scan_fingerprint,
)
from repro.faults.resilience import ResilienceConfig
from repro.faults.shardwriter import AsyncCheckpointWriter
from repro.faults.retry import RetryPolicy
from repro.faults.spec import (
    BlackholeImpairment,
    BurstLossImpairment,
    DrawnFaults,
    FaultKind,
    FaultPlan,
    FaultSpec,
    VN_FAULT_VERSION,
    corrupt_datagram_stream,
    parse_fault_plan,
    truncate_jsonl_lines,
)
from repro.faults.taxonomy import (
    RETRYABLE_KINDS,
    FailureFold,
    FailureKind,
    classify_exchange,
    failure_summary,
    render_failure_table,
)

__all__ = [
    "AsyncCheckpointWriter",
    "BlackholeImpairment",
    "BreakerPolicy",
    "BurstLossImpairment",
    "CheckpointError",
    "CheckpointStore",
    "CircuitBreaker",
    "DrawnFaults",
    "FailureFold",
    "FailureKind",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "RETRYABLE_KINDS",
    "ResilienceConfig",
    "RetryPolicy",
    "VN_FAULT_VERSION",
    "apply_circuit_breaker",
    "classify_exchange",
    "corrupt_datagram_stream",
    "encode_domain_results",
    "failure_summary",
    "parse_fault_plan",
    "render_failure_table",
    "results_from_cbr_payload",
    "scan_fingerprint",
    "truncate_jsonl_lines",
]
