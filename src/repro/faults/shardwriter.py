"""Background checkpoint writer: shard persistence overlaps compute.

:class:`AsyncCheckpointWriter` is a drop-in facade over a
:class:`~repro.faults.checkpoint.CheckpointStore` that moves every
``save_shard`` / ``save_shard_payloads`` onto a single daemon writer
thread, so the scanner's compute loop never blocks on disk I/O (encode
+ atomic write of a 256-domain shard is milliseconds, but there is one
per shard and the scan path is otherwise pure CPU).  Loads stay
synchronous — they all happen in the resume pre-pass, before any save
for the same shard could be queued.

Durability contract: :meth:`close` drains the queue and joins the
thread, so once it returns every accepted save is on disk — callers
close the writer *before* reporting a scan finished, and close it (with
errors suppressed) on the failure path too, so a crashed scan still
persists every shard that completed before the crash.  A write error is
sticky: it is re-raised on the next ``save_*`` call or at ``close()``,
never silently dropped.

Determinism: the thread only performs I/O on data the scan already
produced; result bytes and telemetry streams are computed entirely on
the caller's side, so write scheduling cannot affect them.
"""

from __future__ import annotations

import queue
import threading
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults.checkpoint import CheckpointStore
    from repro.internet.population import DomainRecord
    from repro.web.scanner import DomainScanResult

__all__ = ["AsyncCheckpointWriter"]


class AsyncCheckpointWriter:
    """CheckpointStore facade whose saves run on a writer thread."""

    def __init__(self, store: "CheckpointStore"):
        self.store = store
        self.chunk = store.chunk
        self._queue: "queue.Queue[tuple | None]" = queue.Queue()
        self._error: BaseException | None = None
        self._closed = False
        self._thread = threading.Thread(
            target=self._run, name="shard-writer", daemon=True
        )
        self._thread.start()

    # -- store surface -------------------------------------------------

    def load_shard(self, shard_index: int, targets: Sequence["DomainRecord"]):
        return self.store.load_shard(shard_index, targets)

    def save_shard(
        self, shard_index: int, results: Sequence["DomainScanResult"]
    ) -> None:
        self._submit(("results", shard_index, results))

    def save_shard_payloads(
        self, shard_index: int, payloads: Sequence[bytes]
    ) -> None:
        self._submit(("payloads", shard_index, payloads))

    # -- lifecycle -----------------------------------------------------

    def close(self, suppress_errors: bool = False) -> None:
        """Drain all queued saves, stop the thread, surface any error.

        Idempotent.  ``suppress_errors=True`` is for failure paths where
        a scan exception is already propagating and must not be masked
        by a secondary write error.
        """
        if not self._closed:
            self._closed = True
            self._queue.put(None)
            self._thread.join()
        if not suppress_errors:
            self._raise_pending()

    # -- internals -----------------------------------------------------

    def _submit(self, job: tuple) -> None:
        if self._closed:
            raise RuntimeError("checkpoint writer already closed")
        self._raise_pending()
        self._queue.put(job)

    def _raise_pending(self) -> None:
        if self._error is not None:
            error, self._error = self._error, None
            raise error

    def _run(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                return
            if self._error is not None:
                continue  # sticky failure: drain without writing
            kind, shard_index, data = job
            try:
                if kind == "results":
                    self.store.save_shard(shard_index, data)
                else:
                    self.store.save_shard_payloads(shard_index, data)
            except BaseException as exc:  # robustness-ok: repr of the
                # failure crosses a thread boundary; re-raised verbatim
                # on the next save or at close().
                self._error = exc
