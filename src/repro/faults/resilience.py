"""The absorbing side: timeout budgets, retries, breakers in one config.

A :class:`ResilienceConfig` hangs off
:class:`~repro.web.scanner.ScanConfig` (so it ships to pool workers with
the rest of the scan configuration).  ``None`` everywhere — the default
— leaves the scanner on its exact pre-resilience code path, which keeps
fault-free output byte-identical to earlier builds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.faults.breaker import BreakerPolicy
from repro.faults.retry import RetryPolicy

__all__ = ["ResilienceConfig"]


@dataclass(frozen=True)
class ResilienceConfig:
    """Per-scan resilience tunables.

    ``connect_timeout_ms`` caps one exchange's *simulated* duration
    (attempts past it report ``timeout budget exceeded``);
    ``domain_budget_ms`` caps a whole domain's accumulated simulated
    time across attempts and backoffs — once exceeded, no further
    retries are attempted (the in-progress attempt still completes).
    """

    connect_timeout_ms: float | None = None
    domain_budget_ms: float | None = None
    retry: RetryPolicy | None = None
    breaker: BreakerPolicy | None = None

    def __post_init__(self) -> None:
        if self.connect_timeout_ms is not None and self.connect_timeout_ms <= 0:
            raise ValueError("connect_timeout_ms must be positive")
        if self.domain_budget_ms is not None and self.domain_budget_ms <= 0:
            raise ValueError("domain_budget_ms must be positive")
