"""Per-provider circuit breaker over merged scan results.

A breaker with live cross-domain state inside the scan loop would make
results depend on shard boundaries (worker N sees a different failure
prefix than the sequential scan), so the breaker runs as a deterministic
*post-merge pass* instead: :func:`apply_circuit_breaker` walks the
merged results in population order, keyed by provider, and replaces the
connections of skipped domains with a synthesized ``circuit_open``
record.  Same inputs, same order, same output — at any ``--workers``
count, and identically on a checkpoint resume (shard checkpoints store
pre-breaker results).

Schedules are counted in *attempts*, not wall-clock: after
``failure_threshold`` consecutive failing domains the breaker opens and
skips the provider's next ``cooldown_attempts`` domains, then half-opens
— one probe domain is allowed through; its success closes the breaker,
its failure re-opens it for another cooldown.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Sequence

from repro.faults.taxonomy import FailureKind

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.web.scanner import DomainScanResult

__all__ = ["BreakerPolicy", "CircuitBreaker", "apply_circuit_breaker"]


@dataclass(frozen=True)
class BreakerPolicy:
    """When a provider's breaker trips and how long it stays open."""

    failure_threshold: int = 5
    cooldown_attempts: int = 20

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.cooldown_attempts < 1:
            raise ValueError("cooldown_attempts must be >= 1")


class CircuitBreaker:
    """One provider's breaker state machine (closed → open → half-open)."""

    def __init__(self, policy: BreakerPolicy):
        self.policy = policy
        self._consecutive_failures = 0
        self._skips_remaining = 0
        self._half_open = False
        self.trips = 0
        self.skipped = 0

    @property
    def is_open(self) -> bool:
        return self._skips_remaining > 0

    def allows(self) -> bool:
        """Whether the next attempt may proceed; counts a skip if not."""
        if self._skips_remaining > 0:
            self._skips_remaining -= 1
            self.skipped += 1
            if self._skips_remaining == 0:
                self._half_open = True
            return False
        return True

    def record(self, success: bool) -> None:
        """Feed the outcome of an allowed attempt back into the breaker."""
        if success:
            self._consecutive_failures = 0
            self._half_open = False
            return
        if self._half_open:
            # The half-open probe failed: straight back to open.
            self._half_open = False
            self._open()
            return
        self._consecutive_failures += 1
        if self._consecutive_failures >= self.policy.failure_threshold:
            self._open()

    def _open(self) -> None:
        self.trips += 1
        self._consecutive_failures = 0
        self._skips_remaining = self.policy.cooldown_attempts


def _short_circuit(result: "DomainScanResult") -> None:
    """Replace a skipped domain's connections with one breaker record."""
    from repro.core.classify import classify_connection
    from repro.core.observer import SpinObservation
    from repro.web.scanner import ConnectionRecord

    template = result.connections[0]
    observation = SpinObservation()
    record = ConnectionRecord(
        domain=template.domain,
        host=template.host,
        ip=template.ip,
        ip_version=template.ip_version,
        provider_name=template.provider_name,
        server_header=None,
        status=None,
        success=False,
        behaviour=classify_connection(observation, []),
        observation=observation,
        stack_rtts_ms=[],
        failure=FailureKind.CIRCUIT_OPEN,
        week=template.week,
    )
    result.connections = [record]
    result.quic_support = False
    result.failure = FailureKind.CIRCUIT_OPEN


def apply_circuit_breaker(
    results: Sequence["DomainScanResult"],
    policy: BreakerPolicy,
    key_of: Callable[["DomainScanResult"], str],
    telemetry=None,
) -> dict[str, CircuitBreaker]:
    """Run the breaker pass over merged results, in place.

    Domains without connection attempts (unresolved, no QUIC stack)
    carry no signal and pass through untouched.  Returns the per-key
    breakers so callers can inspect trip counts.
    """
    breakers: dict[str, CircuitBreaker] = {}
    for result in results:
        if not result.connections:
            continue
        key = key_of(result)
        breaker = breakers.get(key)
        if breaker is None:
            breaker = breakers[key] = CircuitBreaker(policy)
        if breaker.allows():
            breaker.record(any(c.success for c in result.connections))
        else:
            _short_circuit(result)
    if telemetry is not None:
        for key in sorted(breakers):
            breaker = breakers[key]
            if breaker.trips:
                telemetry.registry.counter(
                    "scan.breaker_trips", provider=key
                ).inc(breaker.trips)
            if breaker.skipped:
                telemetry.registry.counter(
                    "scan.breaker_skipped", provider=key
                ).inc(breaker.skipped)
    return breakers
