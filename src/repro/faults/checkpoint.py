"""Crash-safe campaign resume from per-shard checkpoints.

``repro scan --checkpoint-dir DIR`` persists every finished shard of
domain results as one atomically-written columnar binary file
(``shard-NNNNN.cbr``, :data:`~repro.artifacts.cbr.KIND_DOMAINS` chunks)
plus a manifest binding the directory to the scan's identity (seed,
week, IP version, probe, target list, shard size).  A killed scan
resumes by loading the finished shards and scanning only the rest;
because each domain's randomness is independently derived and the
circuit-breaker pass runs post-merge (never from checkpointed state),
the resumed dataset is bit-identical to an uninterrupted run.  Shards
written by earlier versions (``shard-NNNNN.jsonl``) still load.
``repro convert DIR out.cbr`` merges a checkpoint directory into one
artifact by copying CRC-verified chunk frames — no decode, no
re-encode.

Robustness rules: a missing, truncated, or otherwise unreadable shard
file is treated as "not scanned yet" and simply re-scanned; a manifest
that does not match the requested scan raises :class:`CheckpointError`
(silently mixing two campaigns would corrupt the dataset).
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.internet.population import DomainRecord
    from repro.web.scanner import DomainScanResult

__all__ = [
    "CheckpointError",
    "CheckpointStore",
    "encode_domain_results",
    "results_from_cbr_payload",
    "scan_fingerprint",
]

_MANIFEST_SCHEMA = 1


class CheckpointError(ValueError):
    """Raised when a checkpoint directory cannot serve the scan."""


def scan_fingerprint(
    seed: int,
    week_label: str,
    ip_version: int,
    probe: int,
    targets: Sequence["DomainRecord"],
    config_repr: str,
) -> dict:
    """Identity of one scan, for manifest compatibility checks.

    The target list is folded to a digest so manifests stay small; the
    scan config enters via its ``repr`` (frozen dataclasses render every
    field), so resuming under a different fault plan or resilience
    setting is rejected instead of silently mixing regimes.
    """
    names = hashlib.sha256(
        "|".join(domain.name for domain in targets).encode("utf-8")
    ).hexdigest()[:16]
    config_digest = hashlib.sha256(config_repr.encode("utf-8")).hexdigest()[:16]
    return {
        "seed": seed,
        "week": week_label,
        "ip_version": ip_version,
        "probe": probe,
        "targets": len(targets),
        "targets_digest": names,
        "config_digest": config_digest,
    }


def encode_domain_results(results: Sequence["DomainScanResult"]) -> bytes:
    """Encode domain results as one cbr ``KIND_DOMAINS`` byte stream.

    The format shared by checkpoint shard files and the parallel
    engine's worker→parent IPC payloads: both sides of the process
    boundary speak compact columnar frames instead of pickled object
    graphs, and a worker payload can become a shard file (or half of
    one) by CRC-verified frame copy.
    """
    import io

    from repro.artifacts.cbr import KIND_DOMAINS, CbrWriter

    buffer = io.BytesIO()
    writer = CbrWriter(buffer, kind=KIND_DOMAINS)
    for result in results:
        writer.write_domain_result(result)
    writer.close()
    return buffer.getvalue()


def results_from_cbr_payload(
    payload: bytes, targets: Sequence["DomainRecord"], strict: bool = False
) -> "list[DomainScanResult] | None":
    """Decode a ``KIND_DOMAINS`` cbr payload back to scan results.

    Each decoded domain is re-bound to the caller's
    :class:`DomainRecord` (the payload carries only the name).  With
    ``strict=False`` any damage — torn frames, a count or name mismatch
    — returns ``None`` (checkpoint semantics: re-scan); with
    ``strict=True`` it raises, because a corrupt in-memory IPC payload
    is a bug, not a crash artifact.
    """
    import io

    from repro.artifacts.cbr import CbrFormatError, CbrReader
    from repro.web.scanner import DomainScanResult

    try:
        reader = CbrReader(io.BytesIO(payload))
        domains = [data for batch in reader.domain_batches() for data in batch]
    except (ValueError, CbrFormatError):
        if strict:
            raise
        return None
    if len(domains) != len(targets):
        if strict:
            raise CheckpointError(
                f"shard payload holds {len(domains)} domains, "
                f"expected {len(targets)}"
            )
        return None  # interrupted mid-write before the rename
    results = []
    for domain, data in zip(targets, domains):
        if data.name != domain.name:
            if strict:
                raise CheckpointError(
                    f"shard payload domain {data.name!r} != target "
                    f"{domain.name!r}"
                )
            return None
        results.append(
            DomainScanResult(
                domain=domain,
                resolved=data.resolved,
                quic_support=data.quic_support,
                resolved_ip=data.resolved_ip,
                connections=data.connections,
                failure=data.failure,
            )
        )
    return results


class CheckpointStore:
    """Shard-granular result persistence under one directory."""

    MANIFEST_NAME = "manifest.json"

    def __init__(self, directory: str | os.PathLike, fingerprint: dict, chunk: int):
        if chunk < 1:
            raise CheckpointError("checkpoint chunk must be >= 1")
        self.directory = Path(directory)
        self.chunk = chunk
        self.fingerprint = fingerprint
        self.shards_loaded = 0
        self.shards_saved = 0
        self.directory.mkdir(parents=True, exist_ok=True)
        manifest = {
            "schema": _MANIFEST_SCHEMA,
            "chunk": chunk,
            "fingerprint": fingerprint,
        }
        path = self.directory / self.MANIFEST_NAME
        if path.is_file():
            try:
                existing = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError) as exc:
                raise CheckpointError(
                    f"unreadable checkpoint manifest {path}: {exc}"
                ) from exc
            if existing != manifest:
                raise CheckpointError(
                    f"checkpoint directory {self.directory} belongs to a "
                    "different scan (seed/week/targets/config mismatch); "
                    "use a fresh directory"
                )
        else:
            _atomic_write(path, json.dumps(manifest, sort_keys=True) + "\n")

    def shard_path(self, shard_index: int) -> Path:
        return self.directory / f"shard-{shard_index:05d}.cbr"

    def legacy_shard_path(self, shard_index: int) -> Path:
        """Pre-cbr shard location (JSONL), still loadable for resume."""
        return self.directory / f"shard-{shard_index:05d}.jsonl"

    def save_shard(
        self, shard_index: int, results: Sequence["DomainScanResult"]
    ) -> None:
        """Persist one finished shard atomically (write + rename).

        Shards are columnar binary (``cbr``, :data:`KIND_DOMAINS`
        chunks), so ``repro convert`` can merge a checkpoint directory
        into one artifact by frame concatenation — no re-decode.
        """
        _atomic_write_bytes(
            self.shard_path(shard_index), encode_domain_results(results)
        )
        self.shards_saved += 1

    def save_shard_payloads(
        self, shard_index: int, payloads: Sequence[bytes]
    ) -> None:
        """Persist a shard from pre-encoded cbr payloads (frame copy).

        The parallel engine's workers already encode their sub-ranges to
        cbr bytes for IPC; a shard assembled from one or more of those
        payloads (a split shard arrives in pieces) is written by
        CRC-verified frame concatenation — the parent never re-encodes
        what a worker produced.
        """
        import io

        if len(payloads) == 1:
            payload = payloads[0]
        else:
            from repro.artifacts.cbr import concat_frames

            buffer = io.BytesIO()
            concat_frames([io.BytesIO(part) for part in payloads], buffer)
            payload = buffer.getvalue()
        _atomic_write_bytes(self.shard_path(shard_index), payload)
        self.shards_saved += 1

    def load_shard(
        self, shard_index: int, targets: Sequence["DomainRecord"]
    ) -> "list[DomainScanResult] | None":
        """Load one shard; ``None`` when absent or damaged (re-scan it)."""
        path = self.shard_path(shard_index)
        if path.is_file():
            results = self._load_shard_cbr(path, targets)
        else:
            legacy = self.legacy_shard_path(shard_index)
            if not legacy.is_file():
                return None
            results = self._load_shard_jsonl(legacy, targets)
        if results is None:
            return None
        self.shards_loaded += 1
        return results

    @staticmethod
    def _load_shard_cbr(
        path: Path, targets: Sequence["DomainRecord"]
    ) -> "list[DomainScanResult] | None":
        try:
            payload = path.read_bytes()
        except OSError:
            return None
        return results_from_cbr_payload(payload, targets)

    @staticmethod
    def _load_shard_jsonl(
        path: Path, targets: Sequence["DomainRecord"]
    ) -> "list[DomainScanResult] | None":
        try:
            lines = path.read_text(encoding="utf-8").splitlines()
            if len(lines) != len(targets):
                return None  # interrupted mid-write before the rename
            results = []
            for domain, line in zip(targets, lines):
                data = json.loads(line)  # jsonl-ok: legacy shard format is JSONL
                if data.get("domain") != domain.name:
                    return None
                results.append(_domain_result_from_dict(data, domain))
        except (OSError, ValueError, KeyError):
            return None
        return results


def _atomic_write(path: Path, text: str) -> None:
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(text, encoding="utf-8")
    os.replace(tmp, path)


def _atomic_write_bytes(path: Path, payload: bytes) -> None:
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_bytes(payload)
    os.replace(tmp, path)


def _domain_result_to_dict(result: "DomainScanResult") -> dict:
    from repro.analysis.artifacts import record_to_dict

    connections = []
    for record in result.connections:
        data = record_to_dict(record)
        if record.qlog is not None:
            data["qlog"] = record.qlog
        connections.append(data)
    return {
        "domain": result.domain.name,
        "resolved": result.resolved,
        "quic_support": result.quic_support,
        "resolved_ip": str(result.resolved_ip) if result.resolved_ip else None,
        "failure": result.failure.value if result.failure is not None else None,
        "connections": connections,
    }


def _domain_result_from_dict(data: dict, domain: "DomainRecord") -> "DomainScanResult":
    import ipaddress

    from repro.analysis.artifacts import record_from_dict
    from repro.faults.taxonomy import FailureKind
    from repro.internet.asdb import IpAddr
    from repro.web.scanner import DomainScanResult

    resolved_ip = None
    if data.get("resolved_ip"):
        address = ipaddress.ip_address(data["resolved_ip"])
        resolved_ip = IpAddr(value=int(address), version=address.version)
    connections = []
    for entry in data["connections"]:
        record = record_from_dict(entry)
        record.qlog = entry.get("qlog")
        connections.append(record)
    failure = FailureKind(data["failure"]) if data.get("failure") else None
    return DomainScanResult(
        domain=domain,
        resolved=bool(data["resolved"]),
        quic_support=bool(data["quic_support"]),
        resolved_ip=resolved_ip,
        connections=connections,
        failure=failure,
    )
