"""Command-line interface for the spin-bit reproduction.

The subcommands mirror the study's workflow::

    repro scan        # build a population, scan it, export the dataset
    repro analyze     # run the connection-level analyses on a dataset
    repro query       # index-backed point lookups (e.g. one domain)
    repro convert     # re-encode an artifact (jsonl <-> cbr), merge shards
    repro compliance  # the Figure 2 longitudinal study
    repro report      # regenerate every table and figure in one run
    repro monitor     # streaming on-path monitoring of many-flow traffic
    repro demo        # one observed connection, spin vs stack RTT
    repro telemetry   # summarize a --telemetry-out directory
    repro service     # campaign daemon + week index + HTTP query API
    repro serve       # shorthand for 'repro service serve'
    repro status      # SLO health verdict (live server or finished campaign)
    repro profile     # sampling profiler over a seeded scan
    repro top         # one-shot operator console over a running server

``scan`` writes the artifact that ``analyze`` consumes — the
Appendix-B-style JSONL schema or the columnar binary ``cbr`` store
(``--artifact-format``, auto-detected on read) — so the two halves can
run on different machines, exactly how the paper separates measurement
from analysis.  ``analyze`` streams the artifact through the single-pass
:class:`~repro.analysis.engine.AnalysisEngine`: every requested section
folds over one shared stream of record batches, decoding the artifact
exactly once in bounded memory.  With ``--where`` the stream first goes
through the predicate-pushdown planner
(:mod:`repro.analysis.query`): on cbr artifacts whole chunks are pruned
via footer zone maps before any decoding, and ``query domain`` answers
point lookups from the footer's domain index.  ``monitor`` is the
operator-side counterpart: it multiplexes many concurrent simulated
connections into one tap stream and publishes windowed RTT metric
snapshots as JSONL while the stream runs.

Output discipline: stdout carries only machine-parseable command output
(datasets, analysis blocks, summaries); every progress or diagnostic
line goes to stderr.  ``--telemetry-out DIR`` on ``scan`` and
``monitor`` additionally writes the deterministic telemetry directory
(see :mod:`repro.telemetry`), which ``repro telemetry summarize DIR``
renders for humans.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Does It Spin?' (IMC 2023): scan a "
        "synthetic web population for QUIC spin-bit adoption and analyze "
        "the resulting dataset.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    scan = sub.add_parser("scan", help="run a weekly measurement and export JSONL")
    scan.add_argument("--czds", type=int, default=8_000, help="CZDS domain count")
    scan.add_argument("--toplist", type=int, default=1_000, help="toplist domain count")
    scan.add_argument("--seed", type=int, default=20230520)
    scan.add_argument("--week", default="cw20-2023", help="calendar week label")
    scan.add_argument("--ip-version", type=int, choices=(4, 6), default=4)
    scan.add_argument(
        "--workers",
        type=int,
        default=1,
        help="scan worker processes (1 = in-process; 0 = one per core)",
    )
    scan.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        help="domains per worker shard (default: auto)",
    )
    scan.add_argument(
        "--force-pool",
        action="store_true",
        help="always dispatch through the worker pool, even when the "
        "engine would fall back in-process (single core / single shard)",
    )
    scan.add_argument(
        "--stream",
        action="store_true",
        help="bounded-memory mode: generate the population on demand and "
        "stream results shard by shard (no full domain list in any "
        "process); incompatible with --checkpoint-dir, --qlog-out, and "
        "the circuit breaker",
    )
    scan.add_argument(
        "--out", required=True, help="output artifact path ('-' for stdout)"
    )
    scan.add_argument(
        "--artifact-format",
        choices=("auto", "jsonl", "cbr"),
        default="auto",
        help="artifact encoding: columnar binary (cbr) or JSON lines; "
        "'auto' keys off the --out extension (.cbr => cbr)",
    )
    scan.add_argument(
        "--telemetry-out",
        default=None,
        metavar="DIR",
        help="write deterministic telemetry (trace.jsonl, metrics.prom, ...) "
        "to this directory",
    )
    scan.add_argument(
        "--fault",
        action="append",
        default=None,
        metavar="SPEC",
        help="inject seeded faults: 'kind:prob[:magnitude]' (comma-separable, "
        "repeatable); kinds: loss-burst, blackhole, handshake-stall, "
        "vn-failure, reset, slow-server, qlog-truncate, corrupt-datagram",
    )
    scan.add_argument(
        "--connect-timeout-ms",
        type=float,
        default=None,
        help="simulated-time budget per connection attempt",
    )
    scan.add_argument(
        "--domain-budget-ms",
        type=float,
        default=None,
        help="simulated-time budget per domain (caps retries)",
    )
    scan.add_argument(
        "--retries",
        type=int,
        default=0,
        help="retry attempts after a retryable failure (default 0)",
    )
    scan.add_argument(
        "--breaker-threshold",
        type=int,
        default=None,
        help="trip a per-provider circuit breaker after this many "
        "consecutive failures (default: off)",
    )
    scan.add_argument(
        "--breaker-cooldown",
        type=int,
        default=20,
        help="attempts a tripped breaker skips before half-opening",
    )
    scan.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help="crash-safe resume: persist completed shards here and load "
        "them back when re-running the same scan",
    )
    scan.add_argument(
        "--qlog-sample-rate",
        type=float,
        default=0.0,
        help="fraction of connections to capture full qlogs for",
    )
    scan.add_argument(
        "--qlog-out",
        default=None,
        help="write sampled qlog documents as JSONL ('-' for stdout)",
    )

    analyze = sub.add_parser(
        "analyze", help="analyze an exported dataset (jsonl or cbr)"
    )
    analyze.add_argument(
        "dataset",
        nargs="?",
        default=None,
        help="artifact path ('-' for stdin); not needed for "
        "--section migration, which simulates its own traffic",
    )
    analyze.add_argument(
        "--section",
        choices=(
            "orgs", "webservers", "accuracy", "versions", "filters",
            "failures", "migration", "all",
        ),
        default="all",
    )
    analyze.add_argument(
        "--flows",
        type=int,
        default=120,
        help="(migration section) QUIC flows to simulate",
    )
    analyze.add_argument(
        "--tcp-flows",
        type=int,
        default=10,
        help="(migration section) TCP flows multiplexed into the tap",
    )
    analyze.add_argument(
        "--seed", type=int, default=20230520, help="(migration section)"
    )
    analyze.add_argument(
        "--migrate",
        default="nat-rebind:0.3,cid-rotation:0.3,path-migration:0.1",
        metavar="PLAN",
        help="(migration section) comma-separated kind:probability[:delay_ms] "
        "migration plan",
    )
    analyze.add_argument(
        "--json",
        action="store_true",
        help="(migration section) emit the study result as JSON instead of "
        "the rendered table",
    )
    analyze.add_argument(
        "--where",
        default=None,
        metavar="EXPR",
        help="filter records before analysis, with zone-map chunk pruning "
        "on cbr artifacts; e.g. \"provider == cloudflare and week between "
        "cw20-2023 and cw25-2023\" (operators: ==, in, between, present; "
        "clauses joined by 'and')",
    )
    analyze.add_argument(
        "--telemetry-out",
        default=None,
        metavar="DIR",
        help="write deterministic telemetry (query planner counters) to "
        "this directory",
    )
    analyze.add_argument(
        "--verbose",
        action="store_true",
        help="print the query-planner plan line to stderr (off by default "
        "so piped output stays clean; telemetry counters are unaffected)",
    )

    query = sub.add_parser(
        "query",
        help="index-backed point lookups over an artifact (cbr footer "
        "domain index + zone maps)",
    )
    query_sub = query.add_subparsers(dest="query_command", required=True)
    query_domain = query_sub.add_parser(
        "domain", help="print every connection record of one domain as JSONL"
    )
    query_domain.add_argument("name", help="registered domain name to look up")
    query_domain.add_argument("dataset", help="artifact path ('-' for stdin)")
    query_domain.add_argument(
        "--telemetry-out",
        default=None,
        metavar="DIR",
        help="write deterministic telemetry (query planner counters) to "
        "this directory",
    )
    query_domain.add_argument(
        "--verbose",
        action="store_true",
        help="print the query-planner plan line to stderr (off by default "
        "so piped output stays clean; telemetry counters are unaffected)",
    )

    convert = sub.add_parser(
        "convert",
        help="re-encode an artifact between jsonl and cbr (or merge a "
        "checkpoint directory of cbr shards)",
    )
    convert.add_argument(
        "input", help="artifact path, or a --checkpoint-dir directory of shards"
    )
    convert.add_argument("output", help="output artifact path")
    convert.add_argument(
        "--to",
        choices=("auto", "jsonl", "cbr"),
        default="auto",
        help="target encoding ('auto' keys off the output extension)",
    )

    compliance = sub.add_parser(
        "compliance", help="12-week longitudinal RFC-compliance study (Figure 2)"
    )
    compliance.add_argument("--czds", type=int, default=5_000)
    compliance.add_argument("--seed", type=int, default=20230520)
    compliance.add_argument("--weeks", type=int, default=12)
    compliance.add_argument(
        "--workers",
        type=int,
        default=1,
        help="scan worker processes (1 = in-process; 0 = one per core)",
    )

    report = sub.add_parser(
        "report", help="regenerate every table and figure of the paper"
    )
    report.add_argument("--czds", type=int, default=8_000)
    report.add_argument("--toplist", type=int, default=1_000)
    report.add_argument("--seed", type=int, default=20230520)
    report.add_argument(
        "--skip-longitudinal",
        action="store_true",
        help="skip the 12-week Figure 2 study (the slowest part)",
    )

    monitor = sub.add_parser(
        "monitor",
        help="streaming on-path spin monitoring of interleaved many-flow traffic",
    )
    monitor.add_argument("--flows", type=int, default=200, help="concurrent flows")
    monitor.add_argument("--seed", type=int, default=20230520)
    monitor.add_argument(
        "--arrival-window-ms",
        type=float,
        default=5_000.0,
        help="flow starts are staggered uniformly over this span",
    )
    monitor.add_argument(
        "--window-ms", type=float, default=1_000.0, help="aggregation window width"
    )
    monitor.add_argument(
        "--slide",
        type=int,
        default=1,
        help="sliding view over the last N windows (1 = tumbling only)",
    )
    monitor.add_argument(
        "--max-flows", type=int, default=10_000, help="flow-table capacity"
    )
    monitor.add_argument(
        "--idle-timeout-ms",
        type=float,
        default=30_000.0,
        help="retire flows idle for this long",
    )
    monitor.add_argument(
        "--overflow-policy",
        choices=("evict-lru", "drop-new"),
        default="evict-lru",
        help="behaviour when the flow table is full",
    )
    monitor.add_argument(
        "--out", required=True, help="snapshot JSONL path ('-' for stdout)"
    )
    monitor.add_argument(
        "--telemetry-out",
        default=None,
        metavar="DIR",
        help="write deterministic telemetry (trace.jsonl, metrics.prom, ...) "
        "to this directory",
    )
    monitor.add_argument(
        "--fault",
        action="append",
        default=None,
        metavar="SPEC",
        help="inject seeded faults into the tap stream; "
        "'corrupt-datagram:prob' truncates that fraction of datagrams",
    )
    monitor.add_argument(
        "--migrate",
        default=None,
        metavar="PLAN",
        help="inject seeded connection migrations mid-flow; comma-separated "
        "kind:probability[:delay_ms] with kinds nat-rebind, cid-rotation, "
        "path-migration (e.g. 'nat-rebind:0.3,path-migration:0.05')",
    )
    monitor.add_argument(
        "--tcp-flows",
        type=int,
        default=0,
        help="multiplex N simulated TCP flows into the tap (exercises "
        "transport classification)",
    )
    monitor.add_argument(
        "--no-cid-linkage",
        action="store_true",
        help="disable CID-to-flow linkage in the resolver (degraded control "
        "arm: migrations split flows instead of being tracked)",
    )

    sub.add_parser("demo", help="one simulated connection, spin vs stack RTT")

    service = sub.add_parser(
        "service",
        help="measurement-as-a-service plane: campaign daemon, incremental "
        "week index, HTTP/JSON query API",
    )
    service_sub = service.add_subparsers(dest="service_command", required=True)

    run_once = service_sub.add_parser(
        "run-once",
        help="one daemon tick: scan pending campaign weeks into the spool "
        "and fold every new artifact into the week index",
    )
    _add_service_dir_arg(run_once)
    _add_service_campaign_args(run_once)
    run_once.add_argument(
        "--max-weeks",
        type=int,
        default=None,
        help="scan at most this many pending weeks this tick (default: all)",
    )

    service_serve = service_sub.add_parser(
        "serve", help="run the HTTP/JSON query API (plus the scan scheduler)"
    )
    _add_serve_args(service_serve)

    index = service_sub.add_parser(
        "index",
        help="fold every spooled artifact the ledger does not list yet",
    )
    _add_service_dir_arg(index)

    submit = service_sub.add_parser(
        "submit",
        help="spool existing artifact files (content-addressed, dedup on "
        "identical bytes) and fold them into the week index",
    )
    _add_service_dir_arg(submit)
    submit.add_argument("artifacts", nargs="+", help="artifact paths to spool")

    serve = sub.add_parser(
        "serve", help="shorthand for 'repro service serve'"
    )
    _add_serve_args(serve)

    telemetry = sub.add_parser(
        "telemetry", help="inspect telemetry directories written by scan/monitor"
    )
    telemetry_sub = telemetry.add_subparsers(dest="telemetry_command", required=True)
    summarize = telemetry_sub.add_parser(
        "summarize", help="human-readable digest of a saved telemetry directory"
    )
    summarize.add_argument("directory", help="directory passed to --telemetry-out")

    status = sub.add_parser(
        "status",
        help="evaluate SLOs into a health verdict, from a live server's "
        "/v1/metrics or a finished campaign's service directory",
    )
    target = status.add_mutually_exclusive_group(required=True)
    target.add_argument(
        "--dir", metavar="DIR", help="service directory to judge offline"
    )
    target.add_argument(
        "--url", metavar="URL", help="base URL of a running 'repro serve'"
    )
    status.add_argument(
        "--slo",
        default=None,
        metavar="FILE",
        help="JSON list of SLO specs replacing the built-in objectives",
    )
    status.add_argument(
        "--metrics",
        default=None,
        metavar="FILE",
        help="metrics.json snapshot to evaluate alongside --dir gauges "
        "(default: DIR/telemetry/metrics.json when present)",
    )
    status.add_argument(
        "--json",
        action="store_true",
        help="emit the structured report instead of the text rendering",
    )
    status.add_argument(
        "--exit-code",
        action="store_true",
        help="exit 0 when ok, 1 when degraded, 2 when failing (shell gate)",
    )

    profile = sub.add_parser(
        "profile",
        help="run the sampling profiler over a seeded scan and report "
        "per-phase self time",
    )
    profile.add_argument("--czds", type=int, default=400, help="CZDS domain count")
    profile.add_argument(
        "--toplist", type=int, default=100, help="toplist domain count"
    )
    profile.add_argument("--seed", type=int, default=20230520)
    profile.add_argument("--week", default="cw20-2023", help="calendar week label")
    profile.add_argument("--ip-version", type=int, choices=(4, 6), default=4)
    profile.add_argument(
        "--sim",
        action="store_true",
        help="charge simulated milliseconds instead of wall time "
        "(deterministic per seed)",
    )
    profile.add_argument(
        "--sample-interval-ms",
        type=float,
        default=1.0,
        help="milliseconds of self time per synthetic sample",
    )
    profile.add_argument(
        "--analyze",
        action="store_true",
        help="also run the analysis folds over the scanned dataset, "
        "profiled per section",
    )
    profile.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="write collapsed stacks (flamegraph input) there ('-' for stdout)",
    )

    top = sub.add_parser(
        "top", help="one-shot operator console over a running 'repro serve'"
    )
    top.add_argument(
        "--url",
        default="http://127.0.0.1:8323",
        help="base URL of the running service API",
    )
    return parser


def _add_service_dir_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dir",
        required=True,
        metavar="DIR",
        help="service directory (spool/ and index/ live underneath)",
    )
    parser.add_argument(
        "--telemetry-out",
        default=None,
        metavar="DIR",
        help="write deterministic telemetry for this invocation there",
    )


def _add_service_campaign_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=20230520)
    parser.add_argument("--czds", type=int, default=2_000, help="CZDS domain count")
    parser.add_argument(
        "--toplist", type=int, default=200, help="toplist domain count"
    )
    parser.add_argument(
        "--first-week", default="cw18-2023", help="first campaign week label"
    )
    parser.add_argument(
        "--last-week", default="cw20-2023", help="last campaign week label"
    )
    parser.add_argument("--ip-version", type=int, choices=(4, 6), default=4)
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="scan worker processes (1 = in-process; 0 = one per core)",
    )


def _add_serve_args(parser: argparse.ArgumentParser) -> None:
    _add_service_dir_arg(parser)
    _add_service_campaign_args(parser)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8323)
    parser.add_argument(
        "--interval-s",
        type=float,
        default=3600.0,
        help="scan-scheduler cadence in wall-clock seconds",
    )
    parser.add_argument(
        "--no-scan",
        action="store_true",
        help="serve the existing index only; schedule no scans",
    )


def _open_out(path: str):
    if path == "-":
        return sys.stdout, False
    try:
        return open(path, "w", encoding="utf-8"), True
    except OSError as error:
        raise SystemExit(f"repro: error: cannot write {path}: {error}")


def _fault_plan_from_args(fault_args):
    """Parse repeated ``--fault`` values into one plan (or ``None``)."""
    if not fault_args:
        return None
    from repro.faults import parse_fault_plan

    try:
        return parse_fault_plan(",".join(fault_args))
    except ValueError as error:
        raise SystemExit(f"repro: error: {error}")


def _resilience_from_args(args):
    """Build a ResilienceConfig from scan flags; ``None`` when all off."""
    from repro.faults import BreakerPolicy, ResilienceConfig, RetryPolicy

    retry = RetryPolicy(max_attempts=args.retries + 1) if args.retries else None
    breaker = (
        BreakerPolicy(
            failure_threshold=args.breaker_threshold,
            cooldown_attempts=args.breaker_cooldown,
        )
        if args.breaker_threshold is not None
        else None
    )
    if (
        args.connect_timeout_ms is None
        and args.domain_budget_ms is None
        and retry is None
        and breaker is None
    ):
        return None
    return ResilienceConfig(
        connect_timeout_ms=args.connect_timeout_ms,
        domain_budget_ms=args.domain_budget_ms,
        retry=retry,
        breaker=breaker,
    )


def _make_telemetry(telemetry_out: str | None):
    """A Telemetry bundle when ``--telemetry-out`` was given, else None."""
    if not telemetry_out:
        return None
    from repro.telemetry import Telemetry

    return Telemetry()


def _save_telemetry(telemetry, telemetry_out: str | None) -> None:
    if telemetry is None:
        return
    telemetry.save(telemetry_out)
    print(f"telemetry written to {telemetry_out}", file=sys.stderr)


def _parallel_config(
    workers: int, chunk_size: int | None = None, force_pool: bool = False
):
    from repro.web.parallel import ParallelScanConfig

    try:
        if workers == 0:
            auto = ParallelScanConfig.auto()
            workers = auto.workers
        return ParallelScanConfig(
            workers=workers, chunk_size=chunk_size, force_pool=force_pool
        )
    except ValueError as error:
        raise SystemExit(f"repro: error: {error}")


def _cmd_scan(args: argparse.Namespace) -> int:
    import json

    from repro.artifacts import write_records
    from repro.faults import CheckpointError
    from repro.internet.population import PopulationConfig, build_population
    from repro.web.scanner import ScanConfig, Scanner

    # All configuration errors surface as one clean stderr line before
    # any work starts; stdout stays machine-parseable.
    faults = _fault_plan_from_args(args.fault)
    try:
        resilience = _resilience_from_args(args)
        scan_config = ScanConfig(
            qlog_sample_rate=args.qlog_sample_rate,
            faults=faults,
            resilience=resilience,
        )
    except ValueError as error:
        raise SystemExit(f"repro: error: {error}")
    if args.stream:
        return _run_stream_scan(args, scan_config)
    population = build_population(
        PopulationConfig(
            toplist_domains=args.toplist, czds_domains=args.czds, seed=args.seed
        )
    )
    parallel = _parallel_config(args.workers, args.chunk_size, args.force_pool)
    print(
        f"scanning {len(population.domains)} domains "
        f"(week {args.week}, IPv{args.ip_version}, "
        f"{parallel.workers} worker(s)) ...",
        file=sys.stderr,
    )
    telemetry = _make_telemetry(args.telemetry_out)
    scanner = Scanner(
        population, config=scan_config, parallel=parallel, telemetry=telemetry
    )
    try:
        try:
            dataset = scanner.scan(
                week_label=args.week,
                ip_version=args.ip_version,
                verbose=True,
                checkpoint_dir=args.checkpoint_dir,
            )
        except CheckpointError as error:
            raise SystemExit(f"repro: error: {error}")
        try:
            count = write_records(
                dataset.connection_records(), args.out, format=args.artifact_format
            )
        except (OSError, ValueError) as error:
            raise SystemExit(f"repro: error: cannot write {args.out}: {error}")
    finally:
        scanner.close()
    if args.qlog_out:
        documents = [
            record.qlog
            for record in dataset.connection_records()
            if record.qlog is not None
        ]
        lines = [json.dumps(doc, separators=(",", ":")) for doc in documents]
        truncated = 0
        if faults is not None:
            from repro.faults import truncate_jsonl_lines

            lines, truncated = truncate_jsonl_lines(lines, faults, args.seed)
        qlog_stream, qlog_close = _open_out(args.qlog_out)
        try:
            for line in lines:
                qlog_stream.write(line + "\n")
        finally:
            if qlog_close:
                qlog_stream.close()
        print(
            f"exported {len(lines)} qlog documents"
            + (f" ({truncated} truncated by fault injection)" if truncated else ""),
            file=sys.stderr,
        )
    if scan_config.faults_active:
        from repro.faults import failure_summary

        summary = failure_summary(dataset.connection_records())
        kinds = ", ".join(f"{k}={v}" for k, v in summary["kinds"].items())
        print(
            f"failures: {summary['failed']}/{summary['total']} connections"
            + (f" ({kinds})" if kinds else ""),
            file=sys.stderr,
        )
    _save_telemetry(telemetry, args.telemetry_out)
    print(f"exported {count} connection records", file=sys.stderr)
    return 0


def _run_stream_scan(args: argparse.Namespace, scan_config) -> int:
    """``repro scan --stream``: bounded-memory population + export.

    The population is a :class:`StreamingPopulation` (records generated
    per index, never a full list), the scan is
    :meth:`Scanner.scan_stream` (a bounded window of shards in flight),
    and results flow straight into the artifact writer — no process
    ever holds the dataset.  Features that need the full merged dataset
    (checkpointing, buffered qlog export, the circuit breaker) are
    rejected up front with the usual one-line error.
    """
    from repro.artifacts import write_records
    from repro.faults.taxonomy import FailureFold
    from repro.internet.population import PopulationConfig
    from repro.internet.streaming import StreamingPopulation
    from repro.web.scanner import Scanner

    if args.checkpoint_dir:
        raise SystemExit(
            "repro: error: --stream cannot checkpoint (the manifest "
            "fingerprint walks the full target list); drop --checkpoint-dir"
        )
    if args.qlog_out:
        raise SystemExit(
            "repro: error: --stream cannot buffer qlog documents; "
            "drop --qlog-out"
        )
    if args.breaker_threshold is not None:
        raise SystemExit(
            "repro: error: --stream cannot apply the circuit breaker "
            "(a post-merge pass); drop --breaker-threshold"
        )
    population = StreamingPopulation(
        PopulationConfig(
            toplist_domains=args.toplist, czds_domains=args.czds, seed=args.seed
        )
    )
    parallel = _parallel_config(args.workers, args.chunk_size, args.force_pool)
    print(
        f"streaming scan of {population.domain_count} domains "
        f"(week {args.week}, IPv{args.ip_version}, "
        f"{parallel.workers} worker(s)) ...",
        file=sys.stderr,
    )
    telemetry = _make_telemetry(args.telemetry_out)
    scanner = Scanner(
        population, config=scan_config, parallel=parallel, telemetry=telemetry
    )
    fold = FailureFold() if scan_config.faults_active else None

    def connection_stream():
        for result in scanner.scan_stream(
            week_label=args.week, ip_version=args.ip_version, verbose=True
        ):
            if fold is not None:
                fold.update_many(result.connections)
            yield from result.connections

    try:
        try:
            count = write_records(
                connection_stream(), args.out, format=args.artifact_format
            )
        except (OSError, ValueError) as error:
            raise SystemExit(f"repro: error: cannot write {args.out}: {error}")
    finally:
        scanner.close()
    if fold is not None:
        summary = fold.finish()
        kinds = ", ".join(f"{k}={v}" for k, v in summary["kinds"].items())
        print(
            f"failures: {summary['failed']}/{summary['total']} connections"
            + (f" ({kinds})" if kinds else ""),
            file=sys.stderr,
        )
    _save_telemetry(telemetry, args.telemetry_out)
    print(f"exported {count} connection records", file=sys.stderr)
    return 0


def _parse_where_arg(expression: str | None):
    """``--where`` text -> (predicate, stats) or ``(None, None)``."""
    if not expression:
        return None, None
    from repro.analysis.query import QueryError, QueryStats, parse_where

    try:
        return parse_where(expression), QueryStats()
    except QueryError as error:
        raise SystemExit(f"repro: error: invalid --where: {error}")


def _print_query_stats(stats, verbose: bool) -> None:
    """The planner's plan line — stderr, and only with ``--verbose``.

    Scripts piping ``repro analyze``/``repro query`` output should not
    have to filter planner chatter; the telemetry counters
    (``query.chunks_total`` etc.) stay unconditional.
    """
    if not verbose:
        return
    print(
        f"query plan: decoded {stats.chunks_selected}/{stats.chunks_total} "
        f"chunks ({stats.chunks_pruned} pruned), matched "
        f"{stats.records_matched}/{stats.records_scanned} records",
        file=sys.stderr,
    )


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis.engine import AnalysisEngine, build_record_folds
    from repro.analysis.report import render_analysis_sections
    from repro.artifacts import open_query_source

    wanted = args.section
    if wanted == "migration":
        # Simulation study, not a dataset read: compares per-flow RTT
        # accuracy with and without CID linkage under migration chaos.
        return _cmd_analyze_migration(args)

    if args.dataset is None:
        raise SystemExit(
            "repro: error: analyze requires a dataset argument "
            "(only --section migration runs without one)"
        )
    predicate, stats = _parse_where_arg(args.where)
    telemetry = _make_telemetry(args.telemetry_out)
    engine = AnalysisEngine(build_record_folds(wanted))
    want_edges_received = engine.needs_edges_received or (
        predicate is not None and predicate.needs_edges_received
    )
    try:
        with open_query_source(
            args.dataset,
            predicate,
            stats=stats,
            want_edges_received=want_edges_received,
            want_edges_sorted=engine.needs_edges_sorted,
            errors="count",
        ) as source:
            results = engine.run(source.batches(), predicate=predicate, stats=stats)
            loaded = source.records_read
            corrupt = source.corrupt_chunks
    except OSError as error:
        raise SystemExit(f"repro: error: cannot read {args.dataset}: {error}")
    # Diagnostic, not analysis output: keep stdout machine-parseable.
    print(f"{loaded} connection records loaded", file=sys.stderr)
    if corrupt:
        print(f"{corrupt} corrupt chunks skipped", file=sys.stderr)
    if stats is not None:
        _print_query_stats(stats, args.verbose)
        stats.emit(telemetry)
    _save_telemetry(telemetry, args.telemetry_out)

    print(render_analysis_sections(results, wanted))
    return 0


def _cmd_analyze_migration(args: argparse.Namespace) -> int:
    import json

    from repro.analysis.migration import (
        render_migration_section,
        run_linkage_study,
    )
    from repro.monitor import TrafficConfig
    from repro.netsim import parse_migration_plan

    try:
        plan = parse_migration_plan(args.migrate) if args.migrate else None
        traffic = TrafficConfig(
            flows=args.flows,
            seed=args.seed,
            migration=plan,
            tcp_flows=args.tcp_flows,
        )
    except ValueError as error:
        raise SystemExit(f"repro: error: {error}")
    print(
        f"simulating {traffic.flows} QUIC + {traffic.tcp_flows} TCP flows "
        f"under plan '{args.migrate or '(none)'}' (seed {traffic.seed}) "
        "through linked and unlinked observers ...",
        file=sys.stderr,
    )
    result = run_linkage_study(traffic)
    if args.json:
        print(json.dumps(result, sort_keys=True))
    else:
        print(render_migration_section(result))
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    import json

    from repro.analysis.artifacts import record_to_dict
    from repro.analysis.query import Eq, QueryStats, filter_batch
    from repro.artifacts import open_query_source

    predicate = Eq("domain", args.name)
    stats = QueryStats()
    telemetry = _make_telemetry(args.telemetry_out)
    try:
        with open_query_source(args.dataset, predicate, stats=stats) as source:
            for batch in source.batches():
                for record in filter_batch(batch, predicate, stats):
                    # Same line encoding as the JSONL artifact schema, so
                    # the lookup output is a valid (sub-)dataset itself.
                    line = json.dumps(  # jsonl-ok
                        record_to_dict(record), separators=(",", ":")
                    )
                    print(line)
    except OSError as error:
        raise SystemExit(f"repro: error: cannot read {args.dataset}: {error}")
    _print_query_stats(stats, args.verbose)
    stats.emit(telemetry)
    _save_telemetry(telemetry, args.telemetry_out)
    return 0


def _cmd_convert(args: argparse.Namespace) -> int:
    import os

    from repro.artifacts import (
        FORMAT_CBR,
        open_record_batches,
        resolve_write_format,
        write_records,
    )

    try:
        target = resolve_write_format(args.output, args.to)
    except ValueError as error:
        raise SystemExit(f"repro: error: {error}")

    if os.path.isdir(args.input):
        # A checkpoint directory of cbr shards: when the target is cbr
        # too, merge by frame concatenation — no decode, no re-encode.
        from repro.artifacts.cbr import CbrFormatError, concat_frames

        shards = sorted(
            os.path.join(args.input, name)
            for name in os.listdir(args.input)
            if name.startswith("shard-") and name.endswith(".cbr")
        )
        if not shards:
            raise SystemExit(
                f"repro: error: no cbr shards (shard-*.cbr) in {args.input}"
            )
        if target == FORMAT_CBR:
            try:
                with open(args.output, "wb") as out:
                    _, count = concat_frames(shards, out)
            except (OSError, CbrFormatError) as error:
                raise SystemExit(f"repro: error: {error}")
            print(
                f"merged {len(shards)} shards, {count} connection records",
                file=sys.stderr,
            )
            return 0

        def shard_records():
            for shard in shards:
                with open_record_batches(shard) as source:
                    yield from source.records()

        try:
            count = write_records(shard_records(), args.output, format=target)
        except (OSError, ValueError) as error:
            raise SystemExit(f"repro: error: {error}")
        print(
            f"converted {len(shards)} shards, {count} connection records",
            file=sys.stderr,
        )
        return 0

    try:
        with open_record_batches(args.input) as source:
            count = write_records(source.records(), args.output, format=target)
    except (OSError, ValueError) as error:
        raise SystemExit(f"repro: error: {error}")
    print(f"converted {count} connection records", file=sys.stderr)
    return 0


def _cmd_compliance(args: argparse.Namespace) -> int:
    from repro.analysis.compliance import compliance_histogram
    from repro.analysis.report import render_compliance_histogram
    from repro.campaign.runner import CampaignRunner
    from repro.campaign.schedule import DEFAULT_CAMPAIGN
    from repro.internet.population import PopulationConfig, build_population

    population = build_population(
        PopulationConfig(toplist_domains=0, czds_domains=args.czds, seed=args.seed)
    )
    quic_domains = [d for d in population.domains if d.quic_enabled]
    print(
        f"scanning {len(quic_domains)} QUIC domains in {args.weeks} spread weeks ...",
        file=sys.stderr,
    )
    with CampaignRunner(
        population, DEFAULT_CAMPAIGN, parallel=_parallel_config(args.workers)
    ) as runner:
        result = runner.run_longitudinal(
            args.weeks, domains=quic_domains, verbose=True
        )
    print(render_compliance_histogram(compliance_histogram(result)))
    return 0


def _cmd_monitor(args: argparse.Namespace) -> int:
    from repro.monitor import (
        MonitorConfig,
        TrafficConfig,
        WindowConfig,
        run_monitor,
    )

    try:
        migration = None
        if args.migrate:
            from repro.netsim import parse_migration_plan

            migration = parse_migration_plan(args.migrate)
        traffic = TrafficConfig(
            flows=args.flows,
            seed=args.seed,
            arrival_window_ms=args.arrival_window_ms,
            migration=migration,
            tcp_flows=args.tcp_flows,
        )
        monitor = MonitorConfig(
            max_flows=args.max_flows,
            idle_timeout_ms=args.idle_timeout_ms,
            overflow_policy=args.overflow_policy,
            window=WindowConfig(
                window_ms=args.window_ms, slide_windows=args.slide
            ),
            track_migration=traffic.migration_active or args.tcp_flows > 0,
            cid_linkage=not args.no_cid_linkage,
        )
    except ValueError as error:
        raise SystemExit(f"repro: error: {error}")
    print(
        f"monitoring {traffic.flows} flows "
        f"(seed {traffic.seed}, {monitor.window.window_ms:.0f} ms windows, "
        f"table capacity {monitor.max_flows}) ...",
        file=sys.stderr,
    )
    faults = _fault_plan_from_args(args.fault)
    telemetry = _make_telemetry(args.telemetry_out)
    stream, close = _open_out(args.out)
    try:
        run_monitor(
            traffic,
            monitor,
            out=stream,
            verbose=True,
            telemetry=telemetry,
            faults=faults,
        )
    finally:
        if close:
            stream.close()
    _save_telemetry(telemetry, args.telemetry_out)
    return 0


def _cmd_demo(_: argparse.Namespace) -> int:
    from repro._util.rng import derive_rng
    from repro.core.metrics import compare_means
    from repro.core.observer import observe_recorder
    from repro.core.spin import SpinPolicy
    from repro.netsim.path import PathProfile
    from repro.web.http3 import ResponsePlan, run_exchange

    plan = ResponsePlan(
        server_header="LiteSpeed",
        think_time_ms=60.0,
        write_gaps_ms=(0.0, 150.0),
        write_sizes=(11_000, 11_000),
    )
    path = PathProfile(propagation_delay_ms=25.0)
    result = run_exchange(
        "www.example.com",
        plan,
        SpinPolicy.SPIN,
        SpinPolicy.SPIN,
        path,
        path,
        derive_rng(0, "cli-demo"),
    )
    observation = observe_recorder(result.recorder)
    accuracy = compare_means(
        observation.rtts_received_ms, result.recorder.stack_rtts_ms()
    )
    print(f"fetched {result.body_bytes} bytes over a 50 ms-RTT path")
    print(f"spin samples (ms): {[round(s, 1) for s in observation.rtts_received_ms]}")
    print(f"stack samples (ms): {[round(s, 1) for s in result.recorder.stack_rtts_ms()]}")
    print(f"mapped ratio: {accuracy.ratio:+.2f}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.paper_report import generate_paper_report
    from repro.internet.population import PopulationConfig, build_population

    population = build_population(
        PopulationConfig(
            toplist_domains=args.toplist, czds_domains=args.czds, seed=args.seed
        )
    )
    print(
        f"running the full study over {len(population.domains)} domains ...",
        file=sys.stderr,
    )
    report = generate_paper_report(
        population, include_longitudinal=not args.skip_longitudinal
    )
    print(report.text)
    return 0


def _cmd_telemetry(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.obs.spans import SPANS_FILENAME, read_spans, render_span_summary
    from repro.telemetry import (
        SNAPSHOT_FILENAME,
        TRACE_FILENAME,
        read_trace,
        render_summary,
    )

    directory = Path(args.directory)
    snapshot_path = directory / SNAPSHOT_FILENAME
    if not snapshot_path.is_file():
        raise SystemExit(
            f"repro: error: no telemetry snapshot at {snapshot_path}"
        )
    snapshot = json.loads(snapshot_path.read_text(encoding="utf-8"))
    events = None
    trace_path = directory / TRACE_FILENAME
    if trace_path.is_file():
        with open(trace_path, "r", encoding="utf-8") as stream:
            events = read_trace(stream)
    print(render_summary(snapshot, events))
    spans_path = directory / SPANS_FILENAME
    if spans_path.is_file():
        with open(spans_path, "r", encoding="utf-8") as stream:
            rows = read_spans(stream)
        if rows:
            print(render_span_summary(rows))
    return 0


def _load_slo_specs(slo_path: str | None):
    """The SLO spec set for ``repro status``: built-ins or a JSON file."""
    from repro.obs import default_service_slos, parse_slo_specs

    if not slo_path:
        return default_service_slos()
    try:
        with open(slo_path, "r", encoding="utf-8") as stream:
            text = stream.read()
    except OSError as error:
        raise SystemExit(f"repro: error: cannot read {slo_path}: {error}")
    try:
        return parse_slo_specs(text)
    except ValueError as error:
        raise SystemExit(f"repro: error: {error}")


def _cmd_status(args: argparse.Namespace) -> int:
    import json
    import os

    from repro.obs import HealthEngine

    specs = _load_slo_specs(args.slo)
    if args.url:
        from repro.obs.console import fetch_json, health_from_payload

        base = args.url.rstrip("/")
        try:
            if args.slo:
                # Custom objectives: pull the raw snapshot and judge
                # locally — the server only knows its own spec set.
                payload = fetch_json(base + "/v1/metrics")
                snapshot = payload.get("metrics", payload)
                report = HealthEngine(specs).evaluate(snapshot)
            else:
                report = health_from_payload(fetch_json(base + "/v1/status"))
        except ConnectionError as error:
            raise SystemExit(f"repro: error: {error}")
    else:
        from repro.obs import collect_service_gauges

        if not os.path.isdir(args.dir):
            raise SystemExit(
                f"repro: error: no service directory at {args.dir}"
            )
        spool, indexer = _service_stores(args)
        snapshot: dict = {"counters": {}, "gauges": {}, "histograms": {}}
        metrics_path = args.metrics
        if metrics_path is None:
            candidate = os.path.join(args.dir, "telemetry", "metrics.json")
            if os.path.isfile(candidate):
                metrics_path = candidate
        if metrics_path:
            try:
                with open(metrics_path, "r", encoding="utf-8") as stream:
                    loaded = json.load(stream)
            except (OSError, ValueError) as error:
                raise SystemExit(
                    f"repro: error: cannot read {metrics_path}: {error}"
                )
            for section in ("counters", "gauges", "histograms"):
                snapshot[section].update(loaded.get(section, {}))
        snapshot["gauges"].update(collect_service_gauges(spool, indexer))
        report = HealthEngine(specs).evaluate(snapshot)
    if args.json:
        print(json.dumps(report.to_dict(), sort_keys=True))
    else:
        print(report.render())
    return report.exit_code if args.exit_code else 0


def _cmd_profile(args: argparse.Namespace) -> int:
    import time

    from repro.internet.population import PopulationConfig, build_population
    from repro.obs import PhaseProfiler
    from repro.telemetry import Telemetry
    from repro.web.scanner import Scanner

    # Diagnostics-only wall clock, injected so the profiler package
    # itself never reads one (the determinism lint covers it).
    clock = None if args.sim else time.perf_counter  # wallclock-ok: profiling diagnostics
    try:
        profiler = PhaseProfiler(
            sample_interval_ms=args.sample_interval_ms, clock=clock
        )
    except ValueError as error:
        raise SystemExit(f"repro: error: {error}")
    telemetry = Telemetry()
    telemetry.profiler = profiler
    population = build_population(
        PopulationConfig(
            toplist_domains=args.toplist, czds_domains=args.czds, seed=args.seed
        )
    )
    print(
        f"profiling a scan of {len(population.domains)} domains "
        f"(week {args.week}, IPv{args.ip_version},"
        f" {'simulated' if args.sim else 'wall'} clock) ...",
        file=sys.stderr,
    )
    started = time.perf_counter()  # wallclock-ok: coverage denominator (stderr only)
    with Scanner(population, telemetry=telemetry) as scanner:
        dataset = scanner.scan(week_label=args.week, ip_version=args.ip_version)
    elapsed_ms = (time.perf_counter() - started) * 1000.0  # wallclock-ok: coverage denominator (stderr only)
    if args.analyze:
        from repro.analysis.engine import AnalysisEngine, build_record_folds

        engine = AnalysisEngine(
            build_record_folds(("webservers", "accuracy", "versions", "filters")),
            telemetry=telemetry,
        )
        engine.run([dataset.connection_records()])
    print(profiler.render_report("repro profile"))
    if not args.sim:
        print(
            f"coverage: {profiler.coverage(elapsed_ms) * 100.0:.1f}% of "
            f"{elapsed_ms:.0f} ms scan wall time attributed",
            file=sys.stderr,
        )
    if args.out:
        stream, close = _open_out(args.out)
        try:
            for line in profiler.collapsed():
                stream.write(line + "\n")
        finally:
            if close:
                stream.close()
        if close:
            print(f"collapsed stacks written to {args.out}", file=sys.stderr)
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    from repro.obs.console import fetch_json, render_console

    base = args.url.rstrip("/")
    try:
        healthz = fetch_json(base + "/v1/healthz")
        status = fetch_json(base + "/v1/status")
        metrics = fetch_json(base + "/v1/metrics")
        spans_payload = fetch_json(base + "/v1/spans")
    except ConnectionError as error:
        raise SystemExit(f"repro: error: {error}")
    print(render_console(healthz, status, metrics, spans_payload))
    return 0


def _service_config_from_args(args: argparse.Namespace):
    """Build a ServiceConfig, routing every error through the one-line
    ``repro: error:`` convention before any directory is touched."""
    from repro.service import ServiceConfig

    try:
        return ServiceConfig(
            seed=args.seed,
            czds_domains=args.czds,
            toplist_domains=args.toplist,
            first_week=args.first_week,
            last_week=args.last_week,
            ip_version=args.ip_version,
            workers=args.workers,
        )
    except ValueError as error:
        raise SystemExit(f"repro: error: {error}")


def _service_stores(args: argparse.Namespace):
    from repro.service import SpoolStore, WeekIndexer

    try:
        spool = SpoolStore(f"{args.dir}/spool")
        indexer = WeekIndexer(f"{args.dir}/index")
    except OSError as error:
        raise SystemExit(
            f"repro: error: cannot open service directory {args.dir}: {error}"
        )
    return spool, indexer


def _cmd_service(args: argparse.Namespace) -> int:
    import json

    from repro.service import CampaignDaemon, serve_forever

    command = getattr(args, "service_command", "serve")
    if command in ("run-once", "serve"):
        config = _service_config_from_args(args)
        telemetry = _make_telemetry(getattr(args, "telemetry_out", None))
        try:
            daemon = CampaignDaemon(args.dir, config, telemetry=telemetry)
        except OSError as error:
            raise SystemExit(
                f"repro: error: cannot open service directory {args.dir}: {error}"
            )
        if command == "run-once":
            status = daemon.run_once(max_weeks=args.max_weeks, verbose=True)
            _save_telemetry(telemetry, args.telemetry_out)
            print(json.dumps(status, sort_keys=True))
            return 0
        if args.port < 0 or args.port > 65535:
            raise SystemExit(f"repro: error: invalid port {args.port}")
        try:
            serve_forever(
                daemon,
                host=args.host,
                port=args.port,
                interval_s=None if args.no_scan else args.interval_s,
            )
        except ValueError as error:
            raise SystemExit(f"repro: error: {error}")
        except OSError as error:
            raise SystemExit(
                f"repro: error: cannot bind {args.host}:{args.port}: {error}"
            )
        return 0

    spool, indexer = _service_stores(args)
    telemetry = _make_telemetry(args.telemetry_out)
    if command == "submit":
        for path in args.artifacts:
            try:
                entry = spool.submit_file(path)
            except OSError as error:
                raise SystemExit(f"repro: error: cannot read {path}: {error}")
            print(
                f"spooled {path} as {entry.fingerprint}"
                + ("" if entry.new else " (duplicate payload)"),
                file=sys.stderr,
            )
    folded = indexer.fold_pending(spool)
    if telemetry is not None:
        telemetry.registry.counter("service.artifacts_folded").inc(len(folded))
    _save_telemetry(telemetry, args.telemetry_out)
    print(
        json.dumps(
            {"folded_artifacts": folded, "indexed_weeks": indexer.weeks()},
            sort_keys=True,
        )
    )
    return 0


_COMMANDS = {
    "scan": _cmd_scan,
    "report": _cmd_report,
    "analyze": _cmd_analyze,
    "query": _cmd_query,
    "convert": _cmd_convert,
    "compliance": _cmd_compliance,
    "monitor": _cmd_monitor,
    "demo": _cmd_demo,
    "telemetry": _cmd_telemetry,
    "service": _cmd_service,
    "serve": _cmd_service,
    "status": _cmd_status,
    "profile": _cmd_profile,
    "top": _cmd_top,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
