"""The ``cbr`` columnar binary connection-record format.

JSONL artifacts (:mod:`repro.analysis.artifacts`) spend one
``json.loads`` and one fully materialized Python dict per record; at the
paper's scale (200 M+ domains per week) both the decode time and the
artifact bytes are dominated by repeated field names and decimal float
text.  ``cbr`` stores the same records column-wise in compressed chunks:

* **Chunked**: records are grouped into chunks (default 1024); each
  chunk is independently zlib-compressed and CRC-checked, so a torn
  write damages one chunk, not the artifact (the tolerant reader counts
  it and carries on, mirroring the qlog JSONL reader policy).
* **Columnar**: within a chunk every field is one column.  Strings
  (domain, provider, server header, behaviour, failure kind) are
  interned in a per-chunk string table; small integers are LEB128
  varints; booleans are bitsets; spin-edge packet numbers are
  zigzag-delta varints; all float series are raw little-endian doubles
  (bit-exact round trip by construction).
* **Derived-column elision**: a connection's RTT series is, for every
  record the scanner produces, exactly the pairwise difference of its
  edge times.  The encoder checks that identity per record and stores
  only a flag when it holds, re-deriving the series on decode.
* **Footer index**: a trailing frame lists every chunk's offset, size,
  record count, and kind, so indexed readers can seek; sequential
  readers (pipes) never need it because every frame is length-prefixed.

Two chunk kinds exist: ``KIND_RECORDS`` (plain connection records — the
Appendix-B artifact) and ``KIND_DOMAINS`` (checkpoint shards: the same
connection columns plus per-domain grouping columns and sampled qlog
blobs).  A records reader decodes the shared connection columns of
either kind and ignores the rest, which is what makes checkpoint shards
concatenable into an analyzable artifact **without re-decoding** a
single record (:func:`concat_frames`).

Layout::

    b"CBR1" u8=version
    frame*:
      0x01 chunk : u32 payload_len, u32 crc32, u32 n_records, u8 kind,
                   payload (zlib: kind, n, string table, columns)
      0x02 footer: u32 payload_len, payload (zlib: JSON index),
                   u64 footer_frame_offset, b"CBRE"
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from itertools import accumulate as _accumulate
from operator import sub as _operator_sub
from typing import IO, Iterable, Iterator, Sequence

from repro.core.classify import SpinBehaviour
from repro.core.observer import SpinEdge, SpinObservation
from repro.faults.taxonomy import FailureKind
from repro.internet.asdb import IpAddr
from repro.web.scanner import ConnectionRecord

__all__ = [
    "CBR_MAGIC",
    "CbrFormatError",
    "CbrReader",
    "CbrWriter",
    "DomainResultData",
    "KIND_DOMAINS",
    "KIND_RECORDS",
    "concat_frames",
    "read_footer",
    "write_records_cbr",
]

CBR_MAGIC = b"CBR1"
_END_MAGIC = b"CBRE"
_FORMAT_VERSION = 1

#: Chunk kinds: plain connection records vs. domain-grouped checkpoint
#: shards (connection columns + domain columns + qlog blobs).
KIND_RECORDS = 0
KIND_DOMAINS = 1

_FRAME_CHUNK = 0x01
_FRAME_FOOTER = 0x02

_CHUNK_HEADER = struct.Struct("<IIIB")  # payload_len, crc32, n_records, kind
_FOOTER_HEADER = struct.Struct("<I")  # payload_len
_TRAILER = struct.Struct("<Q4s")  # footer frame offset, end magic

_DEFAULT_CHUNK_RECORDS = 1024

_BEHAVIOURS = {member.value: member for member in SpinBehaviour}
_FAILURES = {member.value: member for member in FailureKind}


class CbrFormatError(ValueError):
    """Raised when a cbr stream violates the format (strict mode)."""


# ----------------------------------------------------------------------
# Primitive column codecs.
# ----------------------------------------------------------------------


def _write_uv(out: bytearray, value: int) -> None:
    """LEB128 unsigned varint."""
    while value > 0x7F:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def _read_uv(buf: bytes, pos: int) -> tuple[int, int]:
    b = buf[pos]
    pos += 1
    if b < 0x80:
        return b, pos
    result = b & 0x7F
    shift = 7
    while True:
        b = buf[pos]
        pos += 1
        result |= (b & 0x7F) << shift
        if b < 0x80:
            return result, pos
        shift += 7


def _read_uv_list(buf: bytes, pos: int, count: int) -> tuple[list[int], int]:
    values: list[int] = []
    append = values.append
    for _ in range(count):
        b = buf[pos]
        pos += 1
        if b < 0x80:
            append(b)
            continue
        result = b & 0x7F
        shift = 7
        while True:
            b = buf[pos]
            pos += 1
            result |= (b & 0x7F) << shift
            if b < 0x80:
                break
            shift += 7
        append(result)
    return values, pos


def _write_uv_column(out: bytearray, values: Sequence[int]) -> None:
    """An integer column with a one-byte width tag.

    The tag picks the narrowest representation for the column's maximum:
    raw bytes (0), little-endian u16 (1) or u32 (2) — all three decode
    as one bulk ``struct`` call — with LEB128 varints (3) as the
    arbitrary-precision fallback.  The count is implied by the schema
    (column lengths are known before the column is read).
    """
    maximum = max(values, default=0)
    if maximum < 1 << 8:
        out.append(0)
        out += bytes(values)
    elif maximum < 1 << 16:
        out.append(1)
        out += struct.pack(f"<{len(values)}H", *values)
    elif maximum < 1 << 32:
        out.append(2)
        out += struct.pack(f"<{len(values)}I", *values)
    else:
        out.append(3)
        for value in values:
            _write_uv(out, value)


def _read_uv_column(buf: bytes, pos: int, count: int) -> tuple[list[int], int]:
    tag = buf[pos]
    pos += 1
    if tag == 0:
        return list(buf[pos : pos + count]), pos + count
    if tag == 1:
        return list(struct.unpack_from(f"<{count}H", buf, pos)), pos + 2 * count
    if tag == 2:
        return list(struct.unpack_from(f"<{count}I", buf, pos)), pos + 4 * count
    if tag == 3:
        return _read_uv_list(buf, pos, count)
    raise CbrFormatError(f"unknown column width tag {tag}")


def _zigzag(value: int) -> int:
    return (value << 1) if value >= 0 else ((-value << 1) - 1)


def _unzigzag(value: int) -> int:
    return (value >> 1) if not value & 1 else -((value + 1) >> 1)


def _pack_bits(flags: Sequence[bool]) -> bytes:
    out = bytearray((len(flags) + 7) >> 3)
    for index, flag in enumerate(flags):
        if flag:
            out[index >> 3] |= 1 << (index & 7)
    return bytes(out)


#: LSB-first bool octets for every byte value: bit columns unpack by
#: table lookup (one Python iteration per *byte*, not per bit).
_BYTE_BITS = [
    tuple(byte >> bit & 1 == 1 for bit in range(8)) for byte in range(256)
]


def _read_bits(buf: bytes, pos: int, count: int) -> tuple[list[bool], int]:
    nbytes = (count + 7) >> 3
    table = _BYTE_BITS
    flags: list[bool] = []
    extend = flags.extend
    for byte in buf[pos : pos + nbytes]:
        extend(table[byte])
    del flags[count:]
    return flags, pos + nbytes


def _pack_doubles(values: Sequence[float]) -> bytes:
    return struct.pack(f"<{len(values)}d", *values)


def _read_doubles(buf: bytes, pos: int, count: int) -> tuple[tuple[float, ...], int]:
    end = pos + 8 * count
    return struct.unpack_from(f"<{count}d", buf, pos), end


# ----------------------------------------------------------------------
# Chunk encoding.
# ----------------------------------------------------------------------


class _StringTable:
    """Per-chunk string interner; serialized in index order."""

    __slots__ = ("strings", "_index")

    def __init__(self) -> None:
        self.strings: list[str] = []
        self._index: dict[str, int] = {}

    def add(self, value: str) -> int:
        index = self._index.get(value)
        if index is None:
            index = len(self.strings)
            self._index[value] = index
            self.strings.append(value)
        return index

    def encode(self) -> bytes:
        out = bytearray()
        _write_uv(out, len(self.strings))
        for value in self.strings:
            raw = value.encode("utf-8")
            _write_uv(out, len(raw))
            out += raw
        return bytes(out)


def _encode_edge_columns(out: bytearray, edge_lists: list) -> None:
    """Counts, times (doubles), length-prefixed zigzag-delta packet
    numbers, values bitset — in that order, each column contiguous."""
    _write_uv_column(out, [len(edges) for edges in edge_lists])
    times = [edge.time_ms for edges in edge_lists for edge in edges]
    out += _pack_doubles(times)
    pns = bytearray()
    for edges in edge_lists:
        previous = 0
        for edge in edges:
            _write_uv(pns, _zigzag(edge.packet_number - previous))
            previous = edge.packet_number
    _write_uv(out, len(pns))
    out += pns
    out += _pack_bits([edge.new_value for edges in edge_lists for edge in edges])


def _rtts_from_times(times: Sequence[float]) -> list[float]:
    """Pairwise edge-time differences — the derived RTT series.

    Must mirror :func:`repro.core.observer.spin_rtts_from_edges` exactly
    (same subtraction, same order) for derived-column elision to be
    bit-identical.
    """
    return [times[i + 1] - times[i] for i in range(len(times) - 1)]


def _encode_rtt_columns(
    out: bytearray, series_list: list[list[float]], edge_lists: list
) -> None:
    derived = [
        series == _rtts_from_times([edge.time_ms for edge in edges])
        for series, edges in zip(series_list, edge_lists)
    ]
    out += _pack_bits(derived)
    explicit = [s for s, d in zip(series_list, derived) if not d]
    _write_uv_column(out, [len(series) for series in explicit])
    out += _pack_doubles([value for series in explicit for value in series])


def _encode_connection_columns(
    out: bytearray, records: Sequence[ConnectionRecord], table: _StringTable
) -> None:
    intern = table.add
    _write_uv_column(out, [intern(r.domain) for r in records])
    www = [r.host == "www." + r.domain for r in records]
    out += _pack_bits(www)
    _write_uv_column(
        out, [intern(r.host) for r, same in zip(records, www) if not same]
    )
    out += _pack_bits([r.ip.version == 6 for r in records])
    for r in records:
        out += r.ip.value.to_bytes(16 if r.ip.version == 6 else 4, "big")
    _write_uv_column(out, [r.ip_version for r in records])
    _write_uv_column(out, [intern(r.provider_name) for r in records])
    _write_uv_column(
        out,
        [
            0 if r.server_header is None else intern(r.server_header) + 1
            for r in records
        ],
    )
    _write_uv_column(out, [0 if r.status is None else r.status + 1 for r in records])
    out += _pack_bits([r.success for r in records])
    _write_uv_column(out, [intern(r.behaviour.value) for r in records])
    for r in records:
        seen = r.observation.values_seen
        out.append((1 if False in seen else 0) | (2 if True in seen else 0))
    _write_uv_column(out, [r.observation.packets_seen for r in records])
    _encode_edge_columns(out, [r.observation.edges_received for r in records])
    _encode_edge_columns(out, [r.observation.edges_sorted for r in records])
    _encode_rtt_columns(
        out,
        [r.observation.rtts_received_ms for r in records],
        [r.observation.edges_received for r in records],
    )
    _encode_rtt_columns(
        out,
        [r.observation.rtts_sorted_ms for r in records],
        [r.observation.edges_sorted for r in records],
    )
    _write_uv_column(out, [len(r.stack_rtts_ms) for r in records])
    out += _pack_doubles([v for r in records for v in r.stack_rtts_ms])
    _write_uv_column(
        out,
        [
            0 if r.negotiated_version is None else r.negotiated_version + 1
            for r in records
        ],
    )
    _write_uv_column(
        out, [0 if r.failure is None else intern(r.failure.value) + 1 for r in records]
    )


def _encode_domain_columns(
    out: bytearray,
    domains: Sequence,
    records: Sequence[ConnectionRecord],
    table: _StringTable,
) -> None:
    intern = table.add
    _write_uv(out, len(domains))
    _write_uv_column(out, [intern(d.domain.name) for d in domains])
    out += _pack_bits([d.resolved for d in domains])
    out += _pack_bits([d.quic_support for d in domains])
    has_ip = [d.resolved_ip is not None for d in domains]
    out += _pack_bits(has_ip)
    with_ip = [d for d in domains if d.resolved_ip is not None]
    out += _pack_bits([d.resolved_ip.version == 6 for d in with_ip])
    for d in with_ip:
        ip = d.resolved_ip
        out += ip.value.to_bytes(16 if ip.version == 6 else 4, "big")
    _write_uv_column(
        out, [0 if d.failure is None else intern(d.failure.value) + 1 for d in domains]
    )
    _write_uv_column(out, [len(d.connections) for d in domains])
    for r in records:
        if r.qlog is None:
            _write_uv(out, 0)
        else:
            blob = json.dumps(r.qlog, separators=(",", ":")).encode("utf-8")
            _write_uv(out, len(blob) + 1)
            out += blob


def _encode_chunk(
    records: Sequence[ConnectionRecord], kind: int, domains: Sequence | None = None
) -> bytes:
    table = _StringTable()
    columns = bytearray()
    _encode_connection_columns(columns, records, table)
    if kind == KIND_DOMAINS:
        assert domains is not None
        _encode_domain_columns(columns, domains, records, table)
    head = bytearray([kind])
    _write_uv(head, len(records))
    return zlib.compress(bytes(head) + table.encode() + bytes(columns), 6)


# ----------------------------------------------------------------------
# Chunk decoding.
# ----------------------------------------------------------------------


class DomainResultData:
    """Decoded per-domain grouping of a :data:`KIND_DOMAINS` chunk.

    Connection records are already fully decoded; the checkpoint layer
    re-binds ``name`` to its :class:`~repro.internet.population.
    DomainRecord` and builds the final ``DomainScanResult``.
    """

    __slots__ = ("name", "resolved", "quic_support", "resolved_ip", "failure", "connections")

    def __init__(self, name, resolved, quic_support, resolved_ip, failure, connections):
        self.name = name
        self.resolved = resolved
        self.quic_support = quic_support
        self.resolved_ip = resolved_ip
        self.failure = failure
        self.connections = connections


def _decode_strings(buf: bytes, pos: int) -> tuple[list[str], int]:
    count, pos = _read_uv(buf, pos)
    strings: list[str] = []
    for _ in range(count):
        length, pos = _read_uv(buf, pos)
        strings.append(buf[pos : pos + length].decode("utf-8"))
        pos += length
    return strings, pos


def _decode_edge_columns(
    buf: bytes, pos: int, n: int, build: bool
) -> tuple[list[list[SpinEdge]] | None, list[tuple[float, ...]], int]:
    """Decode one edge block; ``build=False`` skips the packet-number
    column and edge-object construction (projection pushdown) but always
    returns the per-record time tuples (derived RTT input)."""
    counts, pos = _read_uv_column(buf, pos, n)
    total = sum(counts)
    times, pos = _read_doubles(buf, pos, total)
    pn_bytes, pos = _read_uv(buf, pos)
    per_record_times: list[tuple[float, ...]] = []
    append_times = per_record_times.append
    empty = ()
    offset = 0
    if not build:
        pos += pn_bytes
        for count in counts:
            if count:
                append_times(times[offset : offset + count])
                offset += count
            else:
                append_times(empty)
        pos += (total + 7) >> 3
        return None, per_record_times, pos
    deltas, pos = _read_uv_list(buf, pos, total)
    values, pos = _read_bits(buf, pos, total)
    edges: list[list[SpinEdge]] = []
    append_edges = edges.append
    unzig = _unzigzag
    Edge = SpinEdge
    for count in counts:
        if not count:
            append_times(empty)
            append_edges([])
            continue
        end = offset + count
        record_times = times[offset:end]
        append_times(record_times)
        pns = _accumulate(map(unzig, deltas[offset:end]))
        append_edges(list(map(Edge, record_times, pns, values[offset:end])))
        offset = end
    return edges, per_record_times, pos


def _decode_rtt_columns(
    buf: bytes, pos: int, per_record_times: list[tuple[float, ...]]
) -> tuple[list[list[float]], int]:
    n = len(per_record_times)
    derived, pos = _read_bits(buf, pos, n)
    explicit_count = n - sum(derived)
    sub = _operator_sub
    if explicit_count == 0:
        # Common case: every series in the chunk equals its edge-time
        # diffs (scans without explicit resampling), so the column body
        # is empty and the whole block is derived in one comprehension.
        counts, pos = _read_uv_column(buf, pos, 0)
        return [list(map(sub, t[1:], t)) for t in per_record_times], pos
    counts, pos = _read_uv_column(buf, pos, explicit_count)
    total = sum(counts)
    flat, pos = _read_doubles(buf, pos, total)
    series: list[list[float]] = []
    append = series.append
    offset = 0
    explicit_index = 0
    for is_derived, times in zip(derived, per_record_times):
        if is_derived:
            # Pairwise diffs at C speed; map stops at the shorter
            # operand, so empty and single-sample series fall out as [].
            append(list(map(sub, times[1:], times)))
        else:
            count = counts[explicit_index]
            explicit_index += 1
            append(list(flat[offset : offset + count]))
            offset += count
    return series, pos


#: Decode-side IpAddr interning: frozen instances are shared freely, and
#: campaigns repeat addresses (redirect chains, follow-up probes).
def _ip_cache_get(cache: dict, value: int, version: int) -> IpAddr:
    key = (value << 1) | (version == 6)
    ip = cache.get(key)
    if ip is None:
        ip = IpAddr(value=value, version=version)
        cache[key] = ip
    return ip


def _decode_chunk(
    payload: bytes,
    want_edges_received: bool = True,
    want_edges_sorted: bool = True,
    want_domains: bool = False,
    ip_cache: dict | None = None,
) -> tuple[list[ConnectionRecord], list[DomainResultData] | None]:
    buf = payload
    pos = 1
    kind = buf[0]
    if kind not in (KIND_RECORDS, KIND_DOMAINS):
        raise CbrFormatError(f"unknown chunk kind {kind}")
    if want_domains and kind != KIND_DOMAINS:
        raise CbrFormatError("chunk has no domain columns")
    n, pos = _read_uv(buf, pos)
    strings, pos = _decode_strings(buf, pos)
    if ip_cache is None:
        ip_cache = {}

    domain_idx, pos = _read_uv_column(buf, pos, n)
    www, pos = _read_bits(buf, pos, n)
    host_idx_count = n - sum(www)
    host_idx, pos = _read_uv_column(buf, pos, host_idx_count)
    ip6, pos = _read_bits(buf, pos, n)
    ips: list[IpAddr] = []
    append_ip = ips.append
    cache_get = ip_cache.get
    from_bytes = int.from_bytes
    for is6 in ip6:
        width = 16 if is6 else 4
        value = from_bytes(buf[pos : pos + width], "big")
        pos += width
        key = (value << 1) | is6
        ip = cache_get(key)
        if ip is None:
            ip = IpAddr(value=value, version=6 if is6 else 4)
            ip_cache[key] = ip
        append_ip(ip)
    ip_versions, pos = _read_uv_column(buf, pos, n)
    provider_idx, pos = _read_uv_column(buf, pos, n)
    header_idx, pos = _read_uv_column(buf, pos, n)
    statuses, pos = _read_uv_column(buf, pos, n)
    successes, pos = _read_bits(buf, pos, n)
    behaviour_idx, pos = _read_uv_column(buf, pos, n)
    masks = buf[pos : pos + n]
    pos += n
    packets_seen, pos = _read_uv_column(buf, pos, n)
    edges_r, times_r, pos = _decode_edge_columns(buf, pos, n, want_edges_received)
    edges_s, times_s, pos = _decode_edge_columns(buf, pos, n, want_edges_sorted)
    rtts_r, pos = _decode_rtt_columns(buf, pos, times_r)
    rtts_s, pos = _decode_rtt_columns(buf, pos, times_s)
    stack_counts, pos = _read_uv_column(buf, pos, n)
    stack_flat, pos = _read_doubles(buf, pos, sum(stack_counts))
    versions, pos = _read_uv_column(buf, pos, n)
    failure_idx, pos = _read_uv_column(buf, pos, n)

    behaviours = [_BEHAVIOURS[strings[i]] for i in behaviour_idx]
    _VALUES_SEEN = (set(), {False}, {True}, {False, True})
    records: list[ConnectionRecord] = []
    append = records.append
    host_iter = iter(host_idx)
    stack_offset = 0
    # Hot loop: records are built via ``__new__`` + direct slot writes
    # instead of the dataclass ``__init__`` (same fields, ~2x cheaper —
    # this loop dominates artifact decode).
    new = object.__new__
    Record = ConnectionRecord
    Observation = SpinObservation
    for i in range(n):
        domain = strings[domain_idx[i]]
        observation = new(Observation)
        observation.packets_seen = packets_seen[i]
        observation.values_seen = set(_VALUES_SEEN[masks[i]])
        observation.edges_received = edges_r[i] if edges_r is not None else []
        observation.edges_sorted = edges_s[i] if edges_s is not None else []
        observation.rtts_received_ms = rtts_r[i]
        observation.rtts_sorted_ms = rtts_s[i]
        count = stack_counts[i]
        status = statuses[i]
        version = versions[i]
        failure = failure_idx[i]
        record = new(Record)
        record.domain = domain
        record.host = "www." + domain if www[i] else strings[next(host_iter)]
        record.ip = ips[i]
        record.ip_version = ip_versions[i]
        record.provider_name = strings[provider_idx[i]]
        record.server_header = None if not header_idx[i] else strings[header_idx[i] - 1]
        record.status = None if not status else status - 1
        record.success = successes[i]
        record.behaviour = behaviours[i]
        record.observation = observation
        record.stack_rtts_ms = list(stack_flat[stack_offset : stack_offset + count])
        record.qlog = None
        record.negotiated_version = None if not version else version - 1
        record.failure = None if not failure else _FAILURES[strings[failure - 1]]
        stack_offset += count
        append(record)

    if not want_domains:
        return records, None

    n_domains, pos = _read_uv(buf, pos)
    name_idx, pos = _read_uv_column(buf, pos, n_domains)
    resolved, pos = _read_bits(buf, pos, n_domains)
    quic, pos = _read_bits(buf, pos, n_domains)
    has_ip, pos = _read_bits(buf, pos, n_domains)
    with_ip_count = sum(has_ip)
    res_ip6, pos = _read_bits(buf, pos, with_ip_count)
    resolved_ips: list[IpAddr] = []
    for is6 in res_ip6:
        width = 16 if is6 else 4
        value = int.from_bytes(buf[pos : pos + width], "big")
        pos += width
        resolved_ips.append(_ip_cache_get(ip_cache, value, 6 if is6 else 4))
    d_failure_idx, pos = _read_uv_column(buf, pos, n_domains)
    conn_counts, pos = _read_uv_column(buf, pos, n_domains)
    for record in records:
        blob_len, pos = _read_uv(buf, pos)
        if blob_len:
            record.qlog = json.loads(
                buf[pos : pos + blob_len - 1].decode("utf-8")
            )
            pos += blob_len - 1

    domains: list[DomainResultData] = []
    ip_iter = iter(resolved_ips)
    record_offset = 0
    for i in range(n_domains):
        count = conn_counts[i]
        failure = d_failure_idx[i]
        domains.append(
            DomainResultData(
                name=strings[name_idx[i]],
                resolved=resolved[i],
                quic_support=quic[i],
                resolved_ip=next(ip_iter) if has_ip[i] else None,
                failure=None if not failure else _FAILURES[strings[failure - 1]],
                connections=records[record_offset : record_offset + count],
            )
        )
        record_offset += count
    return records, domains


# ----------------------------------------------------------------------
# Framed file writer / reader.
# ----------------------------------------------------------------------


class CbrWriter:
    """Streaming cbr encoder over a binary stream.

    One writer produces chunks of a single ``kind``: feed
    :meth:`write_record` for a plain artifact or
    :meth:`write_domain_result` for a checkpoint shard (records grouped
    by domain; chunks flush on whole-domain boundaries).  ``close``
    writes the footer index and trailer.
    """

    def __init__(
        self,
        stream: IO[bytes],
        chunk_records: int = _DEFAULT_CHUNK_RECORDS,
        kind: int = KIND_RECORDS,
    ) -> None:
        if chunk_records < 1:
            raise ValueError("chunk_records must be >= 1")
        self._stream = stream
        self._chunk_records = chunk_records
        self._kind = kind
        self._records: list[ConnectionRecord] = []
        self._domains: list = []
        self._offset = 0
        self._chunks: list[list] = []  # [offset, payload_len, n_records, kind]
        self.records_written = 0
        self._closed = False
        self._write(CBR_MAGIC + bytes([_FORMAT_VERSION]))

    def _write(self, data: bytes) -> None:
        self._stream.write(data)
        self._offset += len(data)

    def write_record(self, record: ConnectionRecord) -> None:
        assert self._kind == KIND_RECORDS, "writer is in domain-result mode"
        self._records.append(record)
        if len(self._records) >= self._chunk_records:
            self._flush()

    def write_records(self, records: Iterable[ConnectionRecord]) -> None:
        for record in records:
            self.write_record(record)

    def write_domain_result(self, result) -> None:
        assert self._kind == KIND_DOMAINS, "writer is in record mode"
        self._domains.append(result)
        self._records.extend(result.connections)
        if len(self._records) >= self._chunk_records:
            self._flush()

    def _flush(self) -> None:
        if not self._records and not self._domains:
            return
        payload = _encode_chunk(
            self._records,
            self._kind,
            self._domains if self._kind == KIND_DOMAINS else None,
        )
        n = len(self._records)
        self._chunks.append([self._offset, len(payload), n, self._kind])
        self._write(bytes([_FRAME_CHUNK]))
        self._write(_CHUNK_HEADER.pack(len(payload), zlib.crc32(payload), n, self._kind))
        self._write(payload)
        self.records_written += n
        self._records = []
        self._domains = []

    def close(self) -> int:
        """Flush, write footer + trailer; returns records written."""
        if self._closed:
            return self.records_written
        self._flush()
        # An empty domain-kind artifact must still announce its kind so
        # readers can validate (`domain_batches` on a records file).
        footer = {
            "schema": _FORMAT_VERSION,
            "records": self.records_written,
            "kind": self._kind,
            "chunks": self._chunks,
        }
        payload = zlib.compress(
            json.dumps(footer, separators=(",", ":")).encode("utf-8"), 6
        )
        footer_offset = self._offset
        self._write(bytes([_FRAME_FOOTER]))
        self._write(_FOOTER_HEADER.pack(len(payload)))
        self._write(payload)
        self._write(_TRAILER.pack(footer_offset, _END_MAGIC))
        self._closed = True
        return self.records_written


def write_records_cbr(
    records: Iterable[ConnectionRecord],
    stream: IO[bytes],
    chunk_records: int = _DEFAULT_CHUNK_RECORDS,
) -> int:
    """Write a plain connection-record artifact; returns the count."""
    writer = CbrWriter(stream, chunk_records=chunk_records)
    writer.write_records(records)
    return writer.close()


class CbrReader:
    """Sequential cbr reader (works on pipes; no seeking required).

    ``errors="raise"`` (default) turns any damage into
    :class:`CbrFormatError`; ``errors="count"`` mirrors the tolerant
    qlog JSONL reader: a chunk with a bad CRC or an undecodable payload
    is skipped and counted in ``corrupt_chunks``, and a stream truncated
    mid-frame stops the iteration after counting the torn chunk.
    """

    def __init__(self, stream: IO[bytes], errors: str = "raise") -> None:
        if errors not in ("raise", "count"):
            raise ValueError("errors must be 'raise' or 'count'")
        self._stream = stream
        self._errors = errors
        self.corrupt_chunks = 0
        self.records_read = 0
        self._ip_cache: dict = {}
        head = stream.read(len(CBR_MAGIC) + 1)
        if head[: len(CBR_MAGIC)] != CBR_MAGIC:
            raise CbrFormatError("not a cbr stream (bad magic)")
        if head[len(CBR_MAGIC)] != _FORMAT_VERSION:
            raise CbrFormatError(f"unsupported cbr version {head[len(CBR_MAGIC)]}")

    def _damaged(self, message: str) -> None:
        if self._errors == "raise":
            raise CbrFormatError(message)
        self.corrupt_chunks += 1

    def _frames(self) -> Iterator[tuple[int, int, bytes]]:
        """Yield (kind, n_records, decompressed payload) per good chunk."""
        read = self._stream.read
        while True:
            frame_type = read(1)
            if not frame_type:
                return  # clean EOF (footer-less stream fragment)
            if frame_type[0] == _FRAME_FOOTER:
                return
            if frame_type[0] != _FRAME_CHUNK:
                self._damaged(f"unknown frame type 0x{frame_type[0]:02x}")
                return  # framing lost: cannot resynchronize
            header = read(_CHUNK_HEADER.size)
            if len(header) < _CHUNK_HEADER.size:
                self._damaged("truncated chunk header")
                return
            payload_len, crc, n_records, kind = _CHUNK_HEADER.unpack(header)
            payload = read(payload_len)
            if len(payload) < payload_len:
                self._damaged("truncated chunk payload")
                return
            if zlib.crc32(payload) != crc:
                self._damaged("chunk CRC mismatch")
                continue  # framing intact: skip just this chunk
            try:
                raw = zlib.decompress(payload)
            except zlib.error:
                self._damaged("chunk decompression failed")
                continue
            yield kind, n_records, raw

    def record_batches(
        self,
        want_edges_received: bool = True,
        want_edges_sorted: bool = True,
    ) -> Iterator[list[ConnectionRecord]]:
        """Yield one list of records per chunk (either chunk kind).

        The ``want_edges_*`` flags are projection pushdown: a skipped
        edge column yields records with empty edge lists (their RTT
        series are still exact) — decode cost drops accordingly.  Use
        only when the consumer provably never reads those columns.
        """
        for kind, _n, payload in self._frames():
            try:
                records, _ = _decode_chunk(
                    payload,
                    want_edges_received=want_edges_received,
                    want_edges_sorted=want_edges_sorted,
                    ip_cache=self._ip_cache,
                )
            except (CbrFormatError, KeyError, IndexError, ValueError, struct.error):
                self._damaged("chunk column decode failed")
                continue
            self.records_read += len(records)
            yield records

    def domain_batches(self) -> Iterator[list[DomainResultData]]:
        """Yield per-chunk domain groupings (``KIND_DOMAINS`` files)."""
        for kind, _n, payload in self._frames():
            if kind != KIND_DOMAINS:
                raise CbrFormatError("artifact holds plain records, not domain results")
            _records, domains = _decode_chunk(
                payload, want_domains=True, ip_cache=self._ip_cache
            )
            assert domains is not None
            self.records_read += len(_records)
            yield domains

    def iter_records(self) -> Iterator[ConnectionRecord]:
        for batch in self.record_batches():
            yield from batch


def read_footer(stream: IO[bytes]) -> dict:
    """Read the footer index of a seekable cbr stream."""
    stream.seek(0, 2)
    size = stream.tell()
    if size < len(CBR_MAGIC) + 1 + _TRAILER.size:
        raise CbrFormatError("stream too short for a cbr footer")
    stream.seek(size - _TRAILER.size)
    footer_offset, magic = _TRAILER.unpack(stream.read(_TRAILER.size))
    if magic != _END_MAGIC:
        raise CbrFormatError("missing cbr end marker (truncated artifact?)")
    stream.seek(footer_offset)
    frame_type = stream.read(1)
    if not frame_type or frame_type[0] != _FRAME_FOOTER:
        raise CbrFormatError("footer offset does not point at a footer frame")
    (payload_len,) = _FOOTER_HEADER.unpack(stream.read(_FOOTER_HEADER.size))
    return json.loads(zlib.decompress(stream.read(payload_len)).decode("utf-8"))


def concat_frames(
    sources: Sequence[str | os.PathLike | IO[bytes]], out: IO[bytes]
) -> tuple[int, int]:
    """Concatenate cbr streams chunk-by-chunk **without decoding records**.

    Each source may be an open binary stream or a path.  Chunk frames
    are copied verbatim (CRC-verified, never decompressed) and a fresh
    footer index is written; the inputs' footers are dropped.  This is
    how checkpoint shards merge into one artifact at I/O speed.
    Returns ``(chunks, records)``.
    """
    offset = 0

    def write(data: bytes) -> None:
        nonlocal offset
        out.write(data)
        offset += len(data)

    write(CBR_MAGIC + bytes([_FORMAT_VERSION]))
    chunks: list[list] = []
    records = 0
    kind_seen: int | None = None

    def copy_source(source: IO[bytes]) -> None:
        nonlocal records, kind_seen
        head = source.read(len(CBR_MAGIC) + 1)
        if head[: len(CBR_MAGIC)] != CBR_MAGIC:
            raise CbrFormatError("concat source is not a cbr stream")
        while True:
            frame_type = source.read(1)
            if not frame_type or frame_type[0] == _FRAME_FOOTER:
                break
            if frame_type[0] != _FRAME_CHUNK:
                raise CbrFormatError("concat source has unknown frame type")
            header = source.read(_CHUNK_HEADER.size)
            payload_len, crc, n_records, kind = _CHUNK_HEADER.unpack(header)
            payload = source.read(payload_len)
            if len(payload) < payload_len or zlib.crc32(payload) != crc:
                raise CbrFormatError("concat source chunk is damaged")
            if kind_seen is None:
                kind_seen = kind
            chunks.append([offset, payload_len, n_records, kind])
            write(frame_type)
            write(header)
            write(payload)
            records += n_records

    for source in sources:
        if isinstance(source, (str, os.PathLike)):
            with open(source, "rb") as stream:
                copy_source(stream)
        else:
            copy_source(source)
    footer = {
        "schema": _FORMAT_VERSION,
        "records": records,
        "kind": KIND_RECORDS if kind_seen is None else kind_seen,
        "chunks": chunks,
    }
    payload = zlib.compress(json.dumps(footer, separators=(",", ":")).encode("utf-8"), 6)
    footer_offset = offset
    write(bytes([_FRAME_FOOTER]))
    write(_FOOTER_HEADER.pack(len(payload)))
    write(payload)
    write(_TRAILER.pack(footer_offset, _END_MAGIC))
    return len(chunks), records
