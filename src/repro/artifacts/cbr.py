"""The ``cbr`` columnar binary connection-record format.

JSONL artifacts (:mod:`repro.analysis.artifacts`) spend one
``json.loads`` and one fully materialized Python dict per record; at the
paper's scale (200 M+ domains per week) both the decode time and the
artifact bytes are dominated by repeated field names and decimal float
text.  ``cbr`` stores the same records column-wise in compressed chunks:

* **Chunked**: records are grouped into chunks (default 1024); each
  chunk is independently zlib-compressed and CRC-checked, so a torn
  write damages one chunk, not the artifact (the tolerant reader counts
  it and carries on, mirroring the qlog JSONL reader policy).
* **Columnar**: within a chunk every field is one column.  Strings
  (domain, provider, server header, behaviour, failure kind) are
  interned in a per-chunk string table; small integers are LEB128
  varints; booleans are bitsets; spin-edge packet numbers are
  zigzag-delta varints; all float series are raw little-endian doubles
  (bit-exact round trip by construction).
* **Derived-column elision**: a connection's RTT series is, for every
  record the scanner produces, exactly the pairwise difference of its
  edge times.  The encoder checks that identity per record and stores
  only a flag when it holds, re-deriving the series on decode.
* **Footer index**: a trailing frame lists every chunk's offset, size,
  record count, and kind, so indexed readers can seek; sequential
  readers (pipes) never need it because every frame is length-prefixed.
* **Zone maps** (footer schema 2): next to each chunk entry the footer
  carries a pruning digest of the chunk — min/max week serial and
  spin-edge time, small-domain value sets (provider, failure kind,
  behaviour, spin-edge count), and a seeded Bloom filter over the
  chunk's domains — so the query planner
  (:mod:`repro.analysis.query`) can prove "no record in this chunk can
  match" **without inflating the chunk**.  An optional secondary index
  (domain hash → chunk ordinals) makes point lookups O(matching
  chunks).  Schema-1 footers (pre-zone-map files) still read
  everywhere; they simply offer the planner nothing to prune with.

Two chunk kinds exist: ``KIND_RECORDS`` (plain connection records — the
Appendix-B artifact) and ``KIND_DOMAINS`` (checkpoint shards: the same
connection columns plus per-domain grouping columns and sampled qlog
blobs).  A records reader decodes the shared connection columns of
either kind and ignores the rest, which is what makes checkpoint shards
concatenable into an analyzable artifact **without re-decoding** a
single record (:func:`concat_frames`).

Layout::

    b"CBR1" u8=version
    frame*:
      0x01 chunk : u32 payload_len, u32 crc32, u32 n_records, u8 kind,
                   payload (zlib: kind, n, string table, columns)
      0x03 index : u32 payload_len, u32 crc32,
                   payload (sorted 9-byte rows: 5-byte domain hash,
                   u32be chunk ordinal) — optional, version 2
      0x02 footer: u32 payload_len, payload (zlib: JSON index),
                   u64 footer_frame_offset, b"CBRE"

The secondary domain index is a *binary* frame rather than footer JSON
on purpose: a large artifact indexes ~one row per (domain, chunk), and
parsing that as JSON would cost more than the chunk decodes a point
lookup saves.  The footer only records ``{"at": offset, "rows": n}``;
the rows load lazily (point lookups only) and answer by binary search
over the raw bytes — no per-row parsing at all.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import zlib
from itertools import accumulate as _accumulate
from operator import sub as _operator_sub
from typing import IO, Iterable, Iterator, Sequence

from repro.core.classify import SpinBehaviour
from repro.core.observer import SpinEdge, SpinObservation
from repro.faults.taxonomy import FailureKind
from repro.internet.asdb import IpAddr
from repro.web.scanner import ConnectionRecord

__all__ = [
    "CBR_MAGIC",
    "CbrFormatError",
    "CbrIndexedReader",
    "CbrReader",
    "CbrWriter",
    "DomainResultData",
    "FOOTER_SCHEMA",
    "KIND_DOMAINS",
    "KIND_RECORDS",
    "bloom_might_contain",
    "concat_frames",
    "domain_hash",
    "read_footer",
    "week_serial",
    "write_records_cbr",
]

CBR_MAGIC = b"CBR1"
_END_MAGIC = b"CBRE"
#: Container version written by this code.  Version 2 files may carry a
#: per-chunk week column (flagged per chunk) and a schema-2 footer with
#: zone maps; version-1 files read unchanged (no pruning possible).
_FORMAT_VERSION = 2
_SUPPORTED_VERSIONS = (1, 2)

#: Footer JSON schema written by this code.  Schema 2 adds ``zones``
#: (one pruning digest per chunk, ``null`` where unknown), ``bloom``
#: (filter parameters), and the optional ``domain_index`` section.
FOOTER_SCHEMA = 2

#: Chunk kinds: plain connection records vs. domain-grouped checkpoint
#: shards (connection columns + domain columns + qlog blobs).
KIND_RECORDS = 0
KIND_DOMAINS = 1

_FRAME_CHUNK = 0x01
_FRAME_FOOTER = 0x02
_FRAME_INDEX = 0x03

#: Chunk-payload flag bits (high nibble of the payload's kind byte).
#: The low nibble stays the chunk kind, so a flagged chunk still frames
#: identically; version-1 chunks simply have no flags set.
_CHUNK_FLAG_WEEK = 0x10
_CHUNK_KIND_MASK = 0x0F

_CHUNK_HEADER = struct.Struct("<IIIB")  # payload_len, crc32, n_records, kind
_FOOTER_HEADER = struct.Struct("<I")  # payload_len
_INDEX_HEADER = struct.Struct("<II")  # payload_len, crc32
_TRAILER = struct.Struct("<Q4s")  # footer frame offset, end magic

#: One secondary-index row: 5-byte domain hash + u32be chunk ordinal.
#: Big-endian ordinals keep byte order == (hash, ordinal) sort order.
_INDEX_ROW_SIZE = 9
_INDEX_HASH_SIZE = 5

_DEFAULT_CHUNK_RECORDS = 1024

_BEHAVIOURS = {member.value: member for member in SpinBehaviour}
_FAILURES = {member.value: member for member in FailureKind}


class CbrFormatError(ValueError):
    """Raised when a cbr stream violates the format (strict mode)."""


# ----------------------------------------------------------------------
# Primitive column codecs.
# ----------------------------------------------------------------------


def _write_uv(out: bytearray, value: int) -> None:
    """LEB128 unsigned varint."""
    while value > 0x7F:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def _read_uv(buf: bytes, pos: int) -> tuple[int, int]:
    b = buf[pos]
    pos += 1
    if b < 0x80:
        return b, pos
    result = b & 0x7F
    shift = 7
    while True:
        b = buf[pos]
        pos += 1
        result |= (b & 0x7F) << shift
        if b < 0x80:
            return result, pos
        shift += 7


def _read_uv_list(buf: bytes, pos: int, count: int) -> tuple[list[int], int]:
    values: list[int] = []
    append = values.append
    for _ in range(count):
        b = buf[pos]
        pos += 1
        if b < 0x80:
            append(b)
            continue
        result = b & 0x7F
        shift = 7
        while True:
            b = buf[pos]
            pos += 1
            result |= (b & 0x7F) << shift
            if b < 0x80:
                break
            shift += 7
        append(result)
    return values, pos


def _write_uv_column(out: bytearray, values: Sequence[int]) -> None:
    """An integer column with a one-byte width tag.

    The tag picks the narrowest representation for the column's maximum:
    raw bytes (0), little-endian u16 (1) or u32 (2) — all three decode
    as one bulk ``struct`` call — with LEB128 varints (3) as the
    arbitrary-precision fallback.  The count is implied by the schema
    (column lengths are known before the column is read).
    """
    maximum = max(values, default=0)
    if maximum < 1 << 8:
        out.append(0)
        out += bytes(values)
    elif maximum < 1 << 16:
        out.append(1)
        out += struct.pack(f"<{len(values)}H", *values)
    elif maximum < 1 << 32:
        out.append(2)
        out += struct.pack(f"<{len(values)}I", *values)
    else:
        out.append(3)
        for value in values:
            _write_uv(out, value)


def _read_uv_column(buf: bytes, pos: int, count: int) -> tuple[list[int], int]:
    tag = buf[pos]
    pos += 1
    if tag == 0:
        return list(buf[pos : pos + count]), pos + count
    if tag == 1:
        return list(struct.unpack_from(f"<{count}H", buf, pos)), pos + 2 * count
    if tag == 2:
        return list(struct.unpack_from(f"<{count}I", buf, pos)), pos + 4 * count
    if tag == 3:
        return _read_uv_list(buf, pos, count)
    raise CbrFormatError(f"unknown column width tag {tag}")


def _zigzag(value: int) -> int:
    return (value << 1) if value >= 0 else ((-value << 1) - 1)


def _unzigzag(value: int) -> int:
    return (value >> 1) if not value & 1 else -((value + 1) >> 1)


def _pack_bits(flags: Sequence[bool]) -> bytes:
    out = bytearray((len(flags) + 7) >> 3)
    for index, flag in enumerate(flags):
        if flag:
            out[index >> 3] |= 1 << (index & 7)
    return bytes(out)


#: LSB-first bool octets for every byte value: bit columns unpack by
#: table lookup (one Python iteration per *byte*, not per bit).
_BYTE_BITS = [
    tuple(byte >> bit & 1 == 1 for bit in range(8)) for byte in range(256)
]


def _read_bits(buf: bytes, pos: int, count: int) -> tuple[list[bool], int]:
    nbytes = (count + 7) >> 3
    table = _BYTE_BITS
    flags: list[bool] = []
    extend = flags.extend
    for byte in buf[pos : pos + nbytes]:
        extend(table[byte])
    del flags[count:]
    return flags, pos + nbytes


def _pack_doubles(values: Sequence[float]) -> bytes:
    return struct.pack(f"<{len(values)}d", *values)


def _read_doubles(buf: bytes, pos: int, count: int) -> tuple[tuple[float, ...], int]:
    end = pos + 8 * count
    return struct.unpack_from(f"<{count}d", buf, pos), end


# ----------------------------------------------------------------------
# Zone maps: per-chunk pruning digests serialized into the footer.
# ----------------------------------------------------------------------

#: Bloom sizing: ~10 bits and 4 seeded hash probes per distinct domain
#: give a ~1 % false-positive rate — a false positive only costs one
#: needlessly inflated chunk (the residual filter stays exact).
_BLOOM_BITS_PER_VALUE = 10
_BLOOM_HASHES = 4

#: Value sets wider than this stop pruning anything useful and bloat the
#: footer; the zone entry stores ``null`` ("unbounded") instead.
_ZONE_SET_CAP = 64

_week_serial_cache: dict[str, int | None] = {}


def week_serial(label: str | None) -> int | None:
    """Week label -> campaign serial (``None``: unlabeled/unparseable).

    Records whose label does not parse can never satisfy a week
    predicate, so both the zone map and the residual filter treat them
    exactly like week-less records.
    """
    if label is None:
        return None
    serial = _week_serial_cache.get(label, _week_serial_cache)
    if serial is _week_serial_cache:
        from repro.campaign.schedule import CalendarWeek

        try:
            serial = CalendarWeek.from_label(label).serial
        except (ValueError, TypeError):
            serial = None
        _week_serial_cache[label] = serial
    return serial


def _bloom_positions(value: str, m_bits: int) -> list[int]:
    """The seeded bit positions of ``value`` in an ``m_bits`` filter."""
    digest = hashlib.sha256(b"cbr-bloom\x00" + value.encode("utf-8")).digest()
    return [
        int.from_bytes(digest[8 * i : 8 * i + 8], "big") % m_bits
        for i in range(_BLOOM_HASHES)
    ]


def _bloom_build(values: set[str]) -> str:
    m_bits = max(64, len(values) * _BLOOM_BITS_PER_VALUE)
    m_bits = (m_bits + 7) & ~7
    bits = bytearray(m_bits >> 3)
    for value in values:
        for position in _bloom_positions(value, m_bits):
            bits[position >> 3] |= 1 << (position & 7)
    return bytes(bits).hex()


def bloom_might_contain(bloom_hex: str, value: str) -> bool:
    """Whether the serialized filter *may* contain ``value``.

    ``False`` is definitive (Bloom filters have no false negatives), so
    the planner may skip the chunk without decoding it.
    """
    bits = bytes.fromhex(bloom_hex)
    m_bits = len(bits) << 3
    return all(
        bits[position >> 3] >> (position & 7) & 1
        for position in _bloom_positions(value, m_bits)
    )


def _domain_hash_bytes(name: str) -> bytes:
    return hashlib.sha256(b"cbr-dhash\x00" + name.encode("utf-8")).digest()[
        :_INDEX_HASH_SIZE
    ]


def domain_hash(name: str) -> str:
    """Seeded 40-bit domain hash keying the secondary index (hex)."""
    return _domain_hash_bytes(name).hex()


def _index_rows_lookup(rows: bytes, key: bytes) -> list[int]:
    """Binary search the packed index rows for one 5-byte hash key."""
    count = len(rows) // _INDEX_ROW_SIZE
    low, high = 0, count
    while low < high:
        mid = (low + high) // 2
        start = mid * _INDEX_ROW_SIZE
        if rows[start : start + _INDEX_HASH_SIZE] < key:
            low = mid + 1
        else:
            high = mid
    ordinals: list[int] = []
    while low < count:
        start = low * _INDEX_ROW_SIZE
        if rows[start : start + _INDEX_HASH_SIZE] != key:
            break
        ordinals.append(
            int.from_bytes(rows[start + _INDEX_HASH_SIZE : start + _INDEX_ROW_SIZE], "big")
        )
        low += 1
    return ordinals


def _zone_value_set(values: set) -> list | None:
    """A sorted small-domain value set, or ``null`` when unbounded."""
    if len(values) > _ZONE_SET_CAP:
        return None
    return sorted(values)


def _zone_entry(records: Sequence[ConnectionRecord]) -> dict:
    """The pruning digest of one chunk (see ``repro.analysis.query``).

    Keys (all prunable dimensions are *conservative*: a chunk is skipped
    only when the digest proves no record can match):

    * ``w`` — ``[min, max]`` week serial over week-labeled records, or
      ``null`` when the chunk has none (week predicates then prune it);
    * ``t`` — ``[min, max]`` spin-edge time (ms) over received edges;
    * ``p`` / ``f`` / ``b`` / ``e`` — value sets for provider, failure
      kind, behaviour, and spin-edge count (``null`` = unbounded);
    * ``d`` — hex Bloom filter over the chunk's domain names.
    """
    weeks: list[int] = []
    for record in records:
        serial = week_serial(record.week)
        if serial is not None:
            weeks.append(serial)
    t_min = t_max = None
    for record in records:
        for edge in record.observation.edges_received:
            time_ms = edge.time_ms
            if t_min is None or time_ms < t_min:
                t_min = time_ms
            if t_max is None or time_ms > t_max:
                t_max = time_ms
    return {
        "w": [min(weeks), max(weeks)] if weeks else None,
        "t": None if t_min is None else [t_min, t_max],
        "p": _zone_value_set({r.provider_name for r in records}),
        "f": sorted({r.failure.value for r in records if r.failure is not None}),
        "b": sorted({r.behaviour.value for r in records}),
        "e": _zone_value_set(
            {len(r.observation.edges_received) for r in records}
        ),
        "d": _bloom_build({r.domain for r in records}),
    }


# ----------------------------------------------------------------------
# Chunk encoding.
# ----------------------------------------------------------------------


class _StringTable:
    """Per-chunk string interner; serialized in index order."""

    __slots__ = ("strings", "_index")

    def __init__(self) -> None:
        self.strings: list[str] = []
        self._index: dict[str, int] = {}

    def add(self, value: str) -> int:
        index = self._index.get(value)
        if index is None:
            index = len(self.strings)
            self._index[value] = index
            self.strings.append(value)
        return index

    def encode(self) -> bytes:
        out = bytearray()
        _write_uv(out, len(self.strings))
        for value in self.strings:
            raw = value.encode("utf-8")
            _write_uv(out, len(raw))
            out += raw
        return bytes(out)


def _encode_edge_columns(out: bytearray, edge_lists: list) -> None:
    """Counts, times (doubles), length-prefixed zigzag-delta packet
    numbers, values bitset — in that order, each column contiguous."""
    _write_uv_column(out, [len(edges) for edges in edge_lists])
    times = [edge.time_ms for edges in edge_lists for edge in edges]
    out += _pack_doubles(times)
    pns = bytearray()
    for edges in edge_lists:
        previous = 0
        for edge in edges:
            _write_uv(pns, _zigzag(edge.packet_number - previous))
            previous = edge.packet_number
    _write_uv(out, len(pns))
    out += pns
    out += _pack_bits([edge.new_value for edges in edge_lists for edge in edges])


def _rtts_from_times(times: Sequence[float]) -> list[float]:
    """Pairwise edge-time differences — the derived RTT series.

    Must mirror :func:`repro.core.observer.spin_rtts_from_edges` exactly
    (same subtraction, same order) for derived-column elision to be
    bit-identical.
    """
    return [times[i + 1] - times[i] for i in range(len(times) - 1)]


def _encode_rtt_columns(
    out: bytearray, series_list: list[list[float]], edge_lists: list
) -> None:
    derived = [
        series == _rtts_from_times([edge.time_ms for edge in edges])
        for series, edges in zip(series_list, edge_lists)
    ]
    out += _pack_bits(derived)
    explicit = [s for s, d in zip(series_list, derived) if not d]
    _write_uv_column(out, [len(series) for series in explicit])
    out += _pack_doubles([value for series in explicit for value in series])


def _encode_connection_columns(
    out: bytearray, records: Sequence[ConnectionRecord], table: _StringTable
) -> None:
    intern = table.add
    _write_uv_column(out, [intern(r.domain) for r in records])
    www = [r.host == "www." + r.domain for r in records]
    out += _pack_bits(www)
    _write_uv_column(
        out, [intern(r.host) for r, same in zip(records, www) if not same]
    )
    out += _pack_bits([r.ip.version == 6 for r in records])
    for r in records:
        out += r.ip.value.to_bytes(16 if r.ip.version == 6 else 4, "big")
    _write_uv_column(out, [r.ip_version for r in records])
    _write_uv_column(out, [intern(r.provider_name) for r in records])
    _write_uv_column(
        out,
        [
            0 if r.server_header is None else intern(r.server_header) + 1
            for r in records
        ],
    )
    _write_uv_column(out, [0 if r.status is None else r.status + 1 for r in records])
    out += _pack_bits([r.success for r in records])
    _write_uv_column(out, [intern(r.behaviour.value) for r in records])
    for r in records:
        seen = r.observation.values_seen
        out.append((1 if False in seen else 0) | (2 if True in seen else 0))
    _write_uv_column(out, [r.observation.packets_seen for r in records])
    _encode_edge_columns(out, [r.observation.edges_received for r in records])
    _encode_edge_columns(out, [r.observation.edges_sorted for r in records])
    _encode_rtt_columns(
        out,
        [r.observation.rtts_received_ms for r in records],
        [r.observation.edges_received for r in records],
    )
    _encode_rtt_columns(
        out,
        [r.observation.rtts_sorted_ms for r in records],
        [r.observation.edges_sorted for r in records],
    )
    _write_uv_column(out, [len(r.stack_rtts_ms) for r in records])
    out += _pack_doubles([v for r in records for v in r.stack_rtts_ms])
    _write_uv_column(
        out,
        [
            0 if r.negotiated_version is None else r.negotiated_version + 1
            for r in records
        ],
    )
    _write_uv_column(
        out, [0 if r.failure is None else intern(r.failure.value) + 1 for r in records]
    )


def _encode_week_column(
    out: bytearray, records: Sequence[ConnectionRecord], table: _StringTable
) -> None:
    """The v2 trailing week column (0 = unlabeled record)."""
    intern = table.add
    _write_uv_column(
        out, [0 if r.week is None else intern(r.week) + 1 for r in records]
    )


def _encode_domain_columns(
    out: bytearray,
    domains: Sequence,
    records: Sequence[ConnectionRecord],
    table: _StringTable,
) -> None:
    intern = table.add
    _write_uv(out, len(domains))
    _write_uv_column(out, [intern(d.domain.name) for d in domains])
    out += _pack_bits([d.resolved for d in domains])
    out += _pack_bits([d.quic_support for d in domains])
    has_ip = [d.resolved_ip is not None for d in domains]
    out += _pack_bits(has_ip)
    with_ip = [d for d in domains if d.resolved_ip is not None]
    out += _pack_bits([d.resolved_ip.version == 6 for d in with_ip])
    for d in with_ip:
        ip = d.resolved_ip
        out += ip.value.to_bytes(16 if ip.version == 6 else 4, "big")
    _write_uv_column(
        out, [0 if d.failure is None else intern(d.failure.value) + 1 for d in domains]
    )
    _write_uv_column(out, [len(d.connections) for d in domains])
    for r in records:
        if r.qlog is None:
            _write_uv(out, 0)
        else:
            blob = json.dumps(r.qlog, separators=(",", ":")).encode("utf-8")
            _write_uv(out, len(blob) + 1)
            out += blob


def _encode_chunk(
    records: Sequence[ConnectionRecord],
    kind: int,
    domains: Sequence | None = None,
    with_week: bool = True,
) -> bytes:
    table = _StringTable()
    columns = bytearray()
    _encode_connection_columns(columns, records, table)
    flags = 0
    if with_week:
        # The week column sits between the connection and domain column
        # blocks, announced by a payload flag bit so version-1 chunks
        # (no flags) decode unchanged.
        flags |= _CHUNK_FLAG_WEEK
        _encode_week_column(columns, records, table)
    if kind == KIND_DOMAINS:
        assert domains is not None
        _encode_domain_columns(columns, domains, records, table)
    head = bytearray([kind | flags])
    _write_uv(head, len(records))
    return zlib.compress(bytes(head) + table.encode() + bytes(columns), 6)


# ----------------------------------------------------------------------
# Chunk decoding.
# ----------------------------------------------------------------------


class DomainResultData:
    """Decoded per-domain grouping of a :data:`KIND_DOMAINS` chunk.

    Connection records are already fully decoded; the checkpoint layer
    re-binds ``name`` to its :class:`~repro.internet.population.
    DomainRecord` and builds the final ``DomainScanResult``.
    """

    __slots__ = ("name", "resolved", "quic_support", "resolved_ip", "failure", "connections")

    def __init__(self, name, resolved, quic_support, resolved_ip, failure, connections):
        self.name = name
        self.resolved = resolved
        self.quic_support = quic_support
        self.resolved_ip = resolved_ip
        self.failure = failure
        self.connections = connections


def _decode_strings(buf: bytes, pos: int) -> tuple[list[str], int]:
    count, pos = _read_uv(buf, pos)
    strings: list[str] = []
    for _ in range(count):
        length, pos = _read_uv(buf, pos)
        strings.append(buf[pos : pos + length].decode("utf-8"))
        pos += length
    return strings, pos


def _decode_edge_columns(
    buf: bytes, pos: int, n: int, build: bool
) -> tuple[list[list[SpinEdge]] | None, list[tuple[float, ...]], int]:
    """Decode one edge block; ``build=False`` skips the packet-number
    column and edge-object construction (projection pushdown) but always
    returns the per-record time tuples (derived RTT input)."""
    counts, pos = _read_uv_column(buf, pos, n)
    total = sum(counts)
    times, pos = _read_doubles(buf, pos, total)
    pn_bytes, pos = _read_uv(buf, pos)
    per_record_times: list[tuple[float, ...]] = []
    append_times = per_record_times.append
    empty = ()
    offset = 0
    if not build:
        pos += pn_bytes
        for count in counts:
            if count:
                append_times(times[offset : offset + count])
                offset += count
            else:
                append_times(empty)
        pos += (total + 7) >> 3
        return None, per_record_times, pos
    deltas, pos = _read_uv_list(buf, pos, total)
    values, pos = _read_bits(buf, pos, total)
    edges: list[list[SpinEdge]] = []
    append_edges = edges.append
    unzig = _unzigzag
    Edge = SpinEdge
    for count in counts:
        if not count:
            append_times(empty)
            append_edges([])
            continue
        end = offset + count
        record_times = times[offset:end]
        append_times(record_times)
        pns = _accumulate(map(unzig, deltas[offset:end]))
        append_edges(list(map(Edge, record_times, pns, values[offset:end])))
        offset = end
    return edges, per_record_times, pos


def _decode_rtt_columns(
    buf: bytes, pos: int, per_record_times: list[tuple[float, ...]]
) -> tuple[list[list[float]], int]:
    n = len(per_record_times)
    derived, pos = _read_bits(buf, pos, n)
    explicit_count = n - sum(derived)
    sub = _operator_sub
    if explicit_count == 0:
        # Common case: every series in the chunk equals its edge-time
        # diffs (scans without explicit resampling), so the column body
        # is empty and the whole block is derived in one comprehension.
        counts, pos = _read_uv_column(buf, pos, 0)
        return [list(map(sub, t[1:], t)) for t in per_record_times], pos
    counts, pos = _read_uv_column(buf, pos, explicit_count)
    total = sum(counts)
    flat, pos = _read_doubles(buf, pos, total)
    series: list[list[float]] = []
    append = series.append
    offset = 0
    explicit_index = 0
    for is_derived, times in zip(derived, per_record_times):
        if is_derived:
            # Pairwise diffs at C speed; map stops at the shorter
            # operand, so empty and single-sample series fall out as [].
            append(list(map(sub, times[1:], times)))
        else:
            count = counts[explicit_index]
            explicit_index += 1
            append(list(flat[offset : offset + count]))
            offset += count
    return series, pos


#: Decode-side IpAddr interning: frozen instances are shared freely, and
#: campaigns repeat addresses (redirect chains, follow-up probes).
def _ip_cache_get(cache: dict, value: int, version: int) -> IpAddr:
    key = (value << 1) | (version == 6)
    ip = cache.get(key)
    if ip is None:
        ip = IpAddr(value=value, version=version)
        cache[key] = ip
    return ip


def _decode_chunk(
    payload: bytes,
    want_edges_received: bool = True,
    want_edges_sorted: bool = True,
    want_domains: bool = False,
    ip_cache: dict | None = None,
) -> tuple[list[ConnectionRecord], list[DomainResultData] | None]:
    buf = payload
    pos = 1
    flags = buf[0] & ~_CHUNK_KIND_MASK
    kind = buf[0] & _CHUNK_KIND_MASK
    if kind not in (KIND_RECORDS, KIND_DOMAINS):
        raise CbrFormatError(f"unknown chunk kind {kind}")
    if flags & ~_CHUNK_FLAG_WEEK:
        raise CbrFormatError(f"unknown chunk flags 0x{flags:02x}")
    if want_domains and kind != KIND_DOMAINS:
        raise CbrFormatError("chunk has no domain columns")
    n, pos = _read_uv(buf, pos)
    strings, pos = _decode_strings(buf, pos)
    if ip_cache is None:
        ip_cache = {}

    domain_idx, pos = _read_uv_column(buf, pos, n)
    www, pos = _read_bits(buf, pos, n)
    host_idx_count = n - sum(www)
    host_idx, pos = _read_uv_column(buf, pos, host_idx_count)
    ip6, pos = _read_bits(buf, pos, n)
    ips: list[IpAddr] = []
    append_ip = ips.append
    cache_get = ip_cache.get
    from_bytes = int.from_bytes
    for is6 in ip6:
        width = 16 if is6 else 4
        value = from_bytes(buf[pos : pos + width], "big")
        pos += width
        key = (value << 1) | is6
        ip = cache_get(key)
        if ip is None:
            ip = IpAddr(value=value, version=6 if is6 else 4)
            ip_cache[key] = ip
        append_ip(ip)
    ip_versions, pos = _read_uv_column(buf, pos, n)
    provider_idx, pos = _read_uv_column(buf, pos, n)
    header_idx, pos = _read_uv_column(buf, pos, n)
    statuses, pos = _read_uv_column(buf, pos, n)
    successes, pos = _read_bits(buf, pos, n)
    behaviour_idx, pos = _read_uv_column(buf, pos, n)
    masks = buf[pos : pos + n]
    pos += n
    packets_seen, pos = _read_uv_column(buf, pos, n)
    edges_r, times_r, pos = _decode_edge_columns(buf, pos, n, want_edges_received)
    edges_s, times_s, pos = _decode_edge_columns(buf, pos, n, want_edges_sorted)
    rtts_r, pos = _decode_rtt_columns(buf, pos, times_r)
    rtts_s, pos = _decode_rtt_columns(buf, pos, times_s)
    stack_counts, pos = _read_uv_column(buf, pos, n)
    stack_flat, pos = _read_doubles(buf, pos, sum(stack_counts))
    versions, pos = _read_uv_column(buf, pos, n)
    failure_idx, pos = _read_uv_column(buf, pos, n)
    if flags & _CHUNK_FLAG_WEEK:
        week_idx, pos = _read_uv_column(buf, pos, n)
        weeks = [None if not i else strings[i - 1] for i in week_idx]
    else:
        weeks = None

    behaviours = [_BEHAVIOURS[strings[i]] for i in behaviour_idx]
    _VALUES_SEEN = (set(), {False}, {True}, {False, True})
    records: list[ConnectionRecord] = []
    append = records.append
    host_iter = iter(host_idx)
    stack_offset = 0
    # Hot loop: records are built via ``__new__`` + direct slot writes
    # instead of the dataclass ``__init__`` (same fields, ~2x cheaper —
    # this loop dominates artifact decode).
    new = object.__new__
    Record = ConnectionRecord
    Observation = SpinObservation
    for i in range(n):
        domain = strings[domain_idx[i]]
        observation = new(Observation)
        observation.packets_seen = packets_seen[i]
        observation.values_seen = set(_VALUES_SEEN[masks[i]])
        observation.edges_received = edges_r[i] if edges_r is not None else []
        observation.edges_sorted = edges_s[i] if edges_s is not None else []
        observation.rtts_received_ms = rtts_r[i]
        observation.rtts_sorted_ms = rtts_s[i]
        count = stack_counts[i]
        status = statuses[i]
        version = versions[i]
        failure = failure_idx[i]
        record = new(Record)
        record.domain = domain
        record.host = "www." + domain if www[i] else strings[next(host_iter)]
        record.ip = ips[i]
        record.ip_version = ip_versions[i]
        record.provider_name = strings[provider_idx[i]]
        record.server_header = None if not header_idx[i] else strings[header_idx[i] - 1]
        record.status = None if not status else status - 1
        record.success = successes[i]
        record.behaviour = behaviours[i]
        record.observation = observation
        record.stack_rtts_ms = list(stack_flat[stack_offset : stack_offset + count])
        record.qlog = None
        record.negotiated_version = None if not version else version - 1
        record.failure = None if not failure else _FAILURES[strings[failure - 1]]
        record.week = None if weeks is None else weeks[i]
        stack_offset += count
        append(record)

    if not want_domains:
        return records, None

    n_domains, pos = _read_uv(buf, pos)
    name_idx, pos = _read_uv_column(buf, pos, n_domains)
    resolved, pos = _read_bits(buf, pos, n_domains)
    quic, pos = _read_bits(buf, pos, n_domains)
    has_ip, pos = _read_bits(buf, pos, n_domains)
    with_ip_count = sum(has_ip)
    res_ip6, pos = _read_bits(buf, pos, with_ip_count)
    resolved_ips: list[IpAddr] = []
    for is6 in res_ip6:
        width = 16 if is6 else 4
        value = int.from_bytes(buf[pos : pos + width], "big")
        pos += width
        resolved_ips.append(_ip_cache_get(ip_cache, value, 6 if is6 else 4))
    d_failure_idx, pos = _read_uv_column(buf, pos, n_domains)
    conn_counts, pos = _read_uv_column(buf, pos, n_domains)
    for record in records:
        blob_len, pos = _read_uv(buf, pos)
        if blob_len:
            record.qlog = json.loads(
                buf[pos : pos + blob_len - 1].decode("utf-8")
            )
            pos += blob_len - 1

    domains: list[DomainResultData] = []
    ip_iter = iter(resolved_ips)
    record_offset = 0
    for i in range(n_domains):
        count = conn_counts[i]
        failure = d_failure_idx[i]
        domains.append(
            DomainResultData(
                name=strings[name_idx[i]],
                resolved=resolved[i],
                quic_support=quic[i],
                resolved_ip=next(ip_iter) if has_ip[i] else None,
                failure=None if not failure else _FAILURES[strings[failure - 1]],
                connections=records[record_offset : record_offset + count],
            )
        )
        record_offset += count
    return records, domains


# ----------------------------------------------------------------------
# Framed file writer / reader.
# ----------------------------------------------------------------------


def _write_index_frame(
    write, offset: int, ordinals_by_hash: dict[bytes, list[int]]
) -> dict:
    """Write the packed secondary-index frame; returns its footer entry."""
    rows = b"".join(
        key + ordinal.to_bytes(4, "big")
        for key in sorted(ordinals_by_hash)
        for ordinal in ordinals_by_hash[key]
    )
    write(bytes([_FRAME_INDEX]))
    write(_INDEX_HEADER.pack(len(rows), zlib.crc32(rows)))
    write(rows)
    return {"at": offset, "rows": len(rows) // _INDEX_ROW_SIZE}


def _write_footer(write, footer_offset: int, footer: dict) -> None:
    """Serialize the footer frame + trailer through ``write``."""
    payload = zlib.compress(
        json.dumps(footer, separators=(",", ":")).encode("utf-8"), 6
    )
    write(bytes([_FRAME_FOOTER]))
    write(_FOOTER_HEADER.pack(len(payload)))
    write(payload)
    write(_TRAILER.pack(footer_offset, _END_MAGIC))


class CbrWriter:
    """Streaming cbr encoder over a binary stream.

    One writer produces chunks of a single ``kind``: feed
    :meth:`write_record` for a plain artifact or
    :meth:`write_domain_result` for a checkpoint shard (records grouped
    by domain; chunks flush on whole-domain boundaries).  ``close``
    writes the footer index and trailer.

    ``zone_maps`` and ``domain_index`` control the footer's pruning
    sections (both default on; they cost encode-side set building, no
    chunk bytes).  ``compat_v1`` writes the exact pre-zone-map container
    (version byte 1, no week column, schema-1 footer) — it exists so
    compatibility tests and tooling can fabricate legacy artifacts.
    """

    def __init__(
        self,
        stream: IO[bytes],
        chunk_records: int = _DEFAULT_CHUNK_RECORDS,
        kind: int = KIND_RECORDS,
        zone_maps: bool = True,
        domain_index: bool = True,
        compat_v1: bool = False,
    ) -> None:
        if chunk_records < 1:
            raise ValueError("chunk_records must be >= 1")
        self._stream = stream
        self._chunk_records = chunk_records
        self._kind = kind
        self._compat_v1 = compat_v1
        self._zone_maps = zone_maps and not compat_v1
        self._domain_index = domain_index and not compat_v1
        self._records: list[ConnectionRecord] = []
        self._domains: list = []
        self._offset = 0
        self._chunks: list[list] = []  # [offset, payload_len, n_records, kind]
        self._zones: list[dict | None] = []
        self._domain_ordinals: dict[bytes, list[int]] = {}
        self.records_written = 0
        self._closed = False
        self._write(CBR_MAGIC + bytes([1 if compat_v1 else _FORMAT_VERSION]))

    def _write(self, data: bytes) -> None:
        self._stream.write(data)
        self._offset += len(data)

    def write_record(self, record: ConnectionRecord) -> None:
        assert self._kind == KIND_RECORDS, "writer is in domain-result mode"
        self._records.append(record)
        if len(self._records) >= self._chunk_records:
            self._flush()

    def write_records(self, records: Iterable[ConnectionRecord]) -> None:
        for record in records:
            self.write_record(record)

    def write_domain_result(self, result) -> None:
        assert self._kind == KIND_DOMAINS, "writer is in record mode"
        self._domains.append(result)
        self._records.extend(result.connections)
        if len(self._records) >= self._chunk_records:
            self._flush()

    def _flush(self) -> None:
        if not self._records and not self._domains:
            return
        payload = _encode_chunk(
            self._records,
            self._kind,
            self._domains if self._kind == KIND_DOMAINS else None,
            with_week=not self._compat_v1,
        )
        n = len(self._records)
        ordinal = len(self._chunks)
        if self._zone_maps:
            self._zones.append(_zone_entry(self._records))
        if self._domain_index:
            ordinals = self._domain_ordinals
            for name in {record.domain for record in self._records}:
                buckets = ordinals.setdefault(_domain_hash_bytes(name), [])
                if not buckets or buckets[-1] != ordinal:
                    buckets.append(ordinal)
        self._chunks.append([self._offset, len(payload), n, self._kind])
        self._write(bytes([_FRAME_CHUNK]))
        self._write(_CHUNK_HEADER.pack(len(payload), zlib.crc32(payload), n, self._kind))
        self._write(payload)
        self.records_written += n
        self._records = []
        self._domains = []

    def close(self) -> int:
        """Flush, write footer + trailer; returns records written."""
        if self._closed:
            return self.records_written
        self._flush()
        # An empty domain-kind artifact must still announce its kind so
        # readers can validate (`domain_batches` on a records file).
        footer = {
            "schema": 1 if self._compat_v1 else FOOTER_SCHEMA,
            "records": self.records_written,
            "kind": self._kind,
            "chunks": self._chunks,
        }
        if self._zone_maps:
            footer["zones"] = self._zones
            footer["bloom"] = {"hashes": _BLOOM_HASHES}
        if self._domain_index:
            # Sorted rows keep the index bytes independent of insertion
            # order and make the lookup a binary search.
            footer["domain_index"] = _write_index_frame(
                self._write, self._offset, self._domain_ordinals
            )
        _write_footer(self._write, self._offset, footer)
        self._closed = True
        return self.records_written


def write_records_cbr(
    records: Iterable[ConnectionRecord],
    stream: IO[bytes],
    chunk_records: int = _DEFAULT_CHUNK_RECORDS,
) -> int:
    """Write a plain connection-record artifact; returns the count."""
    writer = CbrWriter(stream, chunk_records=chunk_records)
    writer.write_records(records)
    return writer.close()


class CbrReader:
    """Sequential cbr reader (works on pipes; no seeking required).

    ``errors="raise"`` (default) turns any damage into
    :class:`CbrFormatError`; ``errors="count"`` mirrors the tolerant
    qlog JSONL reader: a chunk with a bad CRC or an undecodable payload
    is skipped and counted in ``corrupt_chunks``, and a stream truncated
    mid-frame stops the iteration after counting the torn chunk.
    """

    def __init__(self, stream: IO[bytes], errors: str = "raise") -> None:
        if errors not in ("raise", "count"):
            raise ValueError("errors must be 'raise' or 'count'")
        self._stream = stream
        self._errors = errors
        self.corrupt_chunks = 0
        self.records_read = 0
        self._ip_cache: dict = {}
        head = stream.read(len(CBR_MAGIC) + 1)
        if head[: len(CBR_MAGIC)] != CBR_MAGIC:
            raise CbrFormatError("not a cbr stream (bad magic)")
        if head[len(CBR_MAGIC)] not in _SUPPORTED_VERSIONS:
            raise CbrFormatError(f"unsupported cbr version {head[len(CBR_MAGIC)]}")

    def _damaged(self, message: str) -> None:
        if self._errors == "raise":
            raise CbrFormatError(message)
        self.corrupt_chunks += 1

    def _frames(self) -> Iterator[tuple[int, int, bytes]]:
        """Yield (kind, n_records, decompressed payload) per good chunk."""
        read = self._stream.read
        while True:
            frame_type = read(1)
            if not frame_type:
                return  # clean EOF (footer-less stream fragment)
            if frame_type[0] == _FRAME_FOOTER:
                return
            if frame_type[0] == _FRAME_INDEX:
                # The secondary index is seek-only data; the record
                # stream just steps over it.
                header = read(_INDEX_HEADER.size)
                if len(header) < _INDEX_HEADER.size:
                    self._damaged("truncated index header")
                    return
                (index_len, _crc) = _INDEX_HEADER.unpack(header)
                if len(read(index_len)) < index_len:
                    self._damaged("truncated index payload")
                    return
                continue
            if frame_type[0] != _FRAME_CHUNK:
                self._damaged(f"unknown frame type 0x{frame_type[0]:02x}")
                return  # framing lost: cannot resynchronize
            header = read(_CHUNK_HEADER.size)
            if len(header) < _CHUNK_HEADER.size:
                self._damaged("truncated chunk header")
                return
            payload_len, crc, n_records, kind = _CHUNK_HEADER.unpack(header)
            payload = read(payload_len)
            if len(payload) < payload_len:
                self._damaged("truncated chunk payload")
                return
            if zlib.crc32(payload) != crc:
                self._damaged("chunk CRC mismatch")
                continue  # framing intact: skip just this chunk
            try:
                raw = zlib.decompress(payload)
            except zlib.error:
                self._damaged("chunk decompression failed")
                continue
            yield kind, n_records, raw

    def record_batches(
        self,
        want_edges_received: bool = True,
        want_edges_sorted: bool = True,
    ) -> Iterator[list[ConnectionRecord]]:
        """Yield one list of records per chunk (either chunk kind).

        The ``want_edges_*`` flags are projection pushdown: a skipped
        edge column yields records with empty edge lists (their RTT
        series are still exact) — decode cost drops accordingly.  Use
        only when the consumer provably never reads those columns.
        """
        for kind, _n, payload in self._frames():
            try:
                records, _ = _decode_chunk(
                    payload,
                    want_edges_received=want_edges_received,
                    want_edges_sorted=want_edges_sorted,
                    ip_cache=self._ip_cache,
                )
            except (CbrFormatError, KeyError, IndexError, ValueError, struct.error):
                self._damaged("chunk column decode failed")
                continue
            self.records_read += len(records)
            yield records

    def domain_batches(self) -> Iterator[list[DomainResultData]]:
        """Yield per-chunk domain groupings (``KIND_DOMAINS`` files)."""
        for kind, _n, payload in self._frames():
            if kind != KIND_DOMAINS:
                raise CbrFormatError("artifact holds plain records, not domain results")
            _records, domains = _decode_chunk(
                payload, want_domains=True, ip_cache=self._ip_cache
            )
            assert domains is not None
            self.records_read += len(_records)
            yield domains

    def iter_records(self) -> Iterator[ConnectionRecord]:
        for batch in self.record_batches():
            yield from batch


class CbrIndexedReader:
    """Random-access cbr reader over a seekable stream.

    Reads the footer once, then decodes exactly the chunk ordinals it is
    asked for — this is the decode backend of the predicate-pushdown
    query planner: planning happens on the footer's zone maps, and only
    the surviving ordinals are ever inflated.  ``errors`` follows
    :class:`CbrReader` (``"count"`` skips damaged chunks and counts
    them).  Raises :class:`CbrFormatError` when the stream has no
    readable footer (torn trailer); callers fall back to the sequential
    tolerant reader in that case.
    """

    def __init__(self, stream: IO[bytes], errors: str = "raise") -> None:
        if errors not in ("raise", "count"):
            raise ValueError("errors must be 'raise' or 'count'")
        self._stream = stream
        self._errors = errors
        self.corrupt_chunks = 0
        self.records_read = 0
        self._ip_cache: dict = {}
        self._index_rows: bytes | None = None
        self._index_loaded = False
        stream.seek(0)
        head = stream.read(len(CBR_MAGIC) + 1)
        if head[: len(CBR_MAGIC)] != CBR_MAGIC:
            raise CbrFormatError("not a cbr stream (bad magic)")
        if head[len(CBR_MAGIC)] not in _SUPPORTED_VERSIONS:
            raise CbrFormatError(f"unsupported cbr version {head[len(CBR_MAGIC)]}")
        self.footer = read_footer(stream)

    @property
    def chunk_count(self) -> int:
        return len(self.footer.get("chunks", ()))

    def _damaged(self, message: str) -> None:
        if self._errors == "raise":
            raise CbrFormatError(message)
        self.corrupt_chunks += 1

    def _load_index(self) -> bytes | None:
        """The packed index rows, loaded and validated once on demand."""
        if self._index_loaded:
            return self._index_rows
        self._index_loaded = True
        info = self.footer.get("domain_index")
        if not isinstance(info, dict):
            return None
        try:
            self._stream.seek(info["at"])
            head = self._stream.read(1 + _INDEX_HEADER.size)
            if len(head) < 1 + _INDEX_HEADER.size or head[0] != _FRAME_INDEX:
                raise CbrFormatError("domain index frame is damaged")
            rows_len, crc = _INDEX_HEADER.unpack_from(head, 1)
            rows = self._stream.read(rows_len)
            if (
                len(rows) < rows_len
                or zlib.crc32(rows) != crc
                or rows_len != info["rows"] * _INDEX_ROW_SIZE
            ):
                raise CbrFormatError("domain index frame is damaged")
        except (CbrFormatError, KeyError, TypeError, OSError, struct.error):
            # A broken *optional* index only costs pruning opportunity:
            # report the damage and answer queries from zone maps alone.
            self._damaged("domain index frame is damaged")
            return None
        self._index_rows = rows
        return rows

    def domain_index_lookup(self, name: str) -> list[int] | None:
        """Chunk ordinals that may hold ``name``.

        ``None`` means "no usable index" (pre-index file, or a damaged
        index frame in tolerant mode) — the caller must fall back to
        scanning every chunk the zone maps allow.  An empty list is a
        definitive miss: the index is complete, so an unlisted hash
        proves the domain is absent.
        """
        rows = self._load_index()
        if rows is None:
            return None
        return _index_rows_lookup(rows, _domain_hash_bytes(name))

    def read_chunks(
        self,
        ordinals: Sequence[int],
        want_edges_received: bool = True,
        want_edges_sorted: bool = True,
    ) -> Iterator[list[ConnectionRecord]]:
        """Yield one record batch per requested chunk ordinal."""
        chunks = self.footer.get("chunks", ())
        stream = self._stream
        for ordinal in ordinals:
            offset, payload_len, _n, _kind = chunks[ordinal]
            stream.seek(offset)
            frame = stream.read(1 + _CHUNK_HEADER.size + payload_len)
            if (
                len(frame) < 1 + _CHUNK_HEADER.size + payload_len
                or frame[0] != _FRAME_CHUNK
            ):
                self._damaged(f"chunk {ordinal} frame is damaged")
                continue
            stored_len, crc, _n_records, _kind_byte = _CHUNK_HEADER.unpack_from(
                frame, 1
            )
            payload = frame[1 + _CHUNK_HEADER.size :]
            if stored_len != payload_len or zlib.crc32(payload) != crc:
                self._damaged(f"chunk {ordinal} CRC mismatch")
                continue
            try:
                raw = zlib.decompress(payload)
                records, _ = _decode_chunk(
                    raw,
                    want_edges_received=want_edges_received,
                    want_edges_sorted=want_edges_sorted,
                    ip_cache=self._ip_cache,
                )
            except (
                zlib.error, CbrFormatError, KeyError, IndexError, ValueError,
                struct.error,
            ):
                self._damaged(f"chunk {ordinal} decode failed")
                continue
            self.records_read += len(records)
            yield records


def read_footer(stream: IO[bytes]) -> dict:
    """Read the footer index of a seekable cbr stream."""
    stream.seek(0, 2)
    size = stream.tell()
    if size < len(CBR_MAGIC) + 1 + _TRAILER.size:
        raise CbrFormatError("stream too short for a cbr footer")
    stream.seek(size - _TRAILER.size)
    footer_offset, magic = _TRAILER.unpack(stream.read(_TRAILER.size))
    if magic != _END_MAGIC:
        raise CbrFormatError("missing cbr end marker (truncated artifact?)")
    stream.seek(footer_offset)
    frame_type = stream.read(1)
    if not frame_type or frame_type[0] != _FRAME_FOOTER:
        raise CbrFormatError("footer offset does not point at a footer frame")
    (payload_len,) = _FOOTER_HEADER.unpack(stream.read(_FOOTER_HEADER.size))
    return json.loads(zlib.decompress(stream.read(payload_len)).decode("utf-8"))


def _source_footer(source: IO[bytes]) -> dict | None:
    """A concat source's footer, or ``None`` when unreadable.

    The stream position is restored to the start either way, so the
    frame-copy pass that follows sees the whole stream.
    """
    try:
        if not source.seekable():
            return None
        footer = read_footer(source)
    except (CbrFormatError, OSError):
        footer = None
    source.seek(0)
    return footer


def concat_frames(
    sources: Sequence[str | os.PathLike | IO[bytes]], out: IO[bytes]
) -> tuple[int, int]:
    """Concatenate cbr streams chunk-by-chunk **without decoding records**.

    Each source may be an open binary stream or a path.  Chunk frames
    are copied verbatim (CRC-verified, never decompressed) and a fresh
    footer index is written; the inputs' footers are dropped — except
    their *zone maps*, which are carried over per chunk (only the
    ordinals change), so merged artifacts stay prunable.  Sources
    predating zone maps contribute ``null`` zone entries (never pruned,
    always correct).  The secondary domain index is merged only when
    every source carries one; a single index-less source would make
    lookups silently incomplete, so the merged footer drops the section
    instead.  Returns ``(chunks, records)``.
    """
    offset = 0

    def write(data: bytes) -> None:
        nonlocal offset
        out.write(data)
        offset += len(data)

    write(CBR_MAGIC + bytes([_FORMAT_VERSION]))
    chunks: list[list] = []
    zones: list[dict | None] = []
    index_rows: list[bytes] = []
    index_complete = True
    records = 0
    kind_seen: int | None = None

    def copy_source(source: IO[bytes]) -> None:
        nonlocal records, kind_seen, index_complete
        footer = _source_footer(source)
        base = len(chunks)
        head = source.read(len(CBR_MAGIC) + 1)
        if head[: len(CBR_MAGIC)] != CBR_MAGIC:
            raise CbrFormatError("concat source is not a cbr stream")
        if head[len(CBR_MAGIC)] not in _SUPPORTED_VERSIONS:
            raise CbrFormatError(
                f"concat source has unsupported cbr version {head[len(CBR_MAGIC)]}"
            )
        source_rows: bytes | None = None
        while True:
            frame_type = source.read(1)
            if not frame_type or frame_type[0] == _FRAME_FOOTER:
                break
            if frame_type[0] == _FRAME_INDEX:
                # Index rows carry source-local ordinals, so the frame
                # is consumed (rebased below), never copied verbatim.
                rows_len, crc = _INDEX_HEADER.unpack(
                    source.read(_INDEX_HEADER.size)
                )
                rows = source.read(rows_len)
                if len(rows) < rows_len or zlib.crc32(rows) != crc:
                    raise CbrFormatError("concat source index is damaged")
                source_rows = rows
                continue
            if frame_type[0] != _FRAME_CHUNK:
                raise CbrFormatError("concat source has unknown frame type")
            header = source.read(_CHUNK_HEADER.size)
            payload_len, crc, n_records, kind = _CHUNK_HEADER.unpack(header)
            payload = source.read(payload_len)
            if len(payload) < payload_len or zlib.crc32(payload) != crc:
                raise CbrFormatError("concat source chunk is damaged")
            if kind_seen is None:
                kind_seen = kind
            chunks.append([offset, payload_len, n_records, kind])
            write(frame_type)
            write(header)
            write(payload)
            records += n_records
        # Footer chunk entries are in file order, exactly the order the
        # copy above walked, so zone entries re-align by position; only
        # the ordinals are fresh.
        copied = len(chunks) - base
        source_zones = (footer or {}).get("zones") or []
        zones.extend(
            source_zones[index] if index < len(source_zones) else None
            for index in range(copied)
        )
        if source_rows is None or not isinstance(
            (footer or {}).get("domain_index"), dict
        ):
            index_complete = False
        elif index_complete:
            for start in range(0, len(source_rows), _INDEX_ROW_SIZE):
                key = source_rows[start : start + _INDEX_HASH_SIZE]
                ordinal = int.from_bytes(
                    source_rows[start + _INDEX_HASH_SIZE : start + _INDEX_ROW_SIZE],
                    "big",
                )
                index_rows.append(key + (base + ordinal).to_bytes(4, "big"))

    for source in sources:
        if isinstance(source, (str, os.PathLike)):
            with open(source, "rb") as stream:
                copy_source(stream)
        else:
            copy_source(source)
    footer = {
        "schema": FOOTER_SCHEMA,
        "records": records,
        "kind": KIND_RECORDS if kind_seen is None else kind_seen,
        "chunks": chunks,
        "zones": zones,
        "bloom": {"hashes": _BLOOM_HASHES},
    }
    if index_complete:
        # Re-sort globally: per-source row order interleaves by hash.
        merged: dict[bytes, list[int]] = {}
        for row in sorted(index_rows):
            merged.setdefault(row[:_INDEX_HASH_SIZE], []).append(
                int.from_bytes(row[_INDEX_HASH_SIZE:], "big")
            )
        footer["domain_index"] = _write_index_frame(write, offset, merged)
    _write_footer(write, offset, footer)
    return len(chunks), records
