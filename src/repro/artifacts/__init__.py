"""Artifact store front door: one API over the jsonl and cbr formats.

``repro`` persists connection records in two formats — the
human-greppable JSON-lines schema of :mod:`repro.analysis.artifacts`
(paper Appendix B) and the columnar binary ``cbr`` format of
:mod:`repro.artifacts.cbr`.  Consumers should not care which one a file
is: :func:`open_record_batches` sniffs the magic bytes and yields
decoded record batches either way, and :func:`write_records` picks the
encoder from an explicit format or the file extension.

Batches (lists of :class:`~repro.web.scanner.ConnectionRecord`) are the
unit of streaming everywhere: one cbr chunk, or up to
``DEFAULT_BATCH_RECORDS`` JSONL lines.  Memory stays bounded by the
batch size, never the artifact size.
"""

from __future__ import annotations

import io
import sys
from contextlib import contextmanager
from pathlib import Path
from typing import IO, Iterable, Iterator

from repro.analysis.artifacts import (
    ArtifactFormatError,
    export_records,
    read_records,
)
from repro.artifacts.cbr import (
    CBR_MAGIC,
    CbrFormatError,
    CbrReader,
    CbrWriter,
    KIND_DOMAINS,
    KIND_RECORDS,
    concat_frames,
    write_records_cbr,
)
from repro.web.scanner import ConnectionRecord

__all__ = [
    "ArtifactFormatError",
    "CbrFormatError",
    "DEFAULT_BATCH_RECORDS",
    "FORMAT_CBR",
    "FORMAT_JSONL",
    "RecordBatchSource",
    "detect_format",
    "open_query_source",
    "open_record_batches",
    "resolve_write_format",
    "write_records",
]

FORMAT_JSONL = "jsonl"
FORMAT_CBR = "cbr"

#: JSONL batching granularity; cbr batches follow the chunk size instead.
DEFAULT_BATCH_RECORDS = 1024


def detect_format(head: bytes) -> str:
    """Classify a stream from its first bytes (cbr magic vs. text)."""
    return FORMAT_CBR if head[: len(CBR_MAGIC)] == CBR_MAGIC else FORMAT_JSONL


def resolve_write_format(path: str, requested: str = "auto") -> str:
    """Resolve ``--artifact-format``: ``auto`` keys off the extension.

    ``.cbr`` selects the columnar binary format; anything else (and the
    stdout sentinel ``-``) keeps the JSONL schema for compatibility.
    """
    if requested in (FORMAT_JSONL, FORMAT_CBR):
        return requested
    if requested != "auto":
        raise ValueError(f"unknown artifact format {requested!r}")
    return FORMAT_CBR if path != "-" and path.endswith(".cbr") else FORMAT_JSONL


class RecordBatchSource:
    """A decoded artifact stream: format + iterator of record batches.

    ``stats`` is populated by :func:`open_query_source` with the query
    planner's :class:`~repro.analysis.query.QueryStats`; plain
    :func:`open_record_batches` sources leave it ``None``.
    """

    __slots__ = (
        "format", "_batches", "records_read", "corrupt_chunks", "_cbr", "stats",
    )

    def __init__(self, format: str, batches: Iterator[list[ConnectionRecord]],
                 cbr_reader=None, stats=None) -> None:
        self.format = format
        self._batches = batches
        self._cbr = cbr_reader
        self.records_read = 0
        self.corrupt_chunks = 0
        self.stats = stats

    def batches(self) -> Iterator[list[ConnectionRecord]]:
        for batch in self._batches:
            self.records_read += len(batch)
            if self._cbr is not None:
                self.corrupt_chunks = self._cbr.corrupt_chunks
            yield batch
        # A tear at the stream tail is detected when the reader fails to
        # pull the *next* chunk, i.e. after the last batch was yielded.
        if self._cbr is not None:
            self.corrupt_chunks = self._cbr.corrupt_chunks

    def records(self) -> Iterator[ConnectionRecord]:
        for batch in self.batches():
            yield from batch


def _jsonl_batches(
    stream: IO[str], batch_records: int
) -> Iterator[list[ConnectionRecord]]:
    batch: list[ConnectionRecord] = []
    for record in read_records(stream):
        batch.append(record)
        if len(batch) >= batch_records:
            yield batch
            batch = []
    if batch:
        yield batch


@contextmanager
def open_record_batches(
    path: str,
    want_edges_received: bool = True,
    want_edges_sorted: bool = True,
    errors: str = "raise",
    batch_records: int = DEFAULT_BATCH_RECORDS,
) -> Iterator[RecordBatchSource]:
    """Open an artifact by path (``-`` = stdin) with format auto-detect.

    The projection flags apply to cbr only (JSONL lines always carry
    everything); ``errors="count"`` makes the cbr reader tolerant of
    damaged chunks.  Yields a :class:`RecordBatchSource`.
    """
    if path == "-":
        raw: IO[bytes] = sys.stdin.buffer
        close_raw = False
    else:
        raw = open(path, "rb")
        close_raw = True
    try:
        buffered = raw if isinstance(raw, io.BufferedReader) else io.BufferedReader(raw)
        head = buffered.peek(len(CBR_MAGIC))
        if detect_format(head) == FORMAT_CBR:
            reader = CbrReader(buffered, errors=errors)
            yield RecordBatchSource(
                FORMAT_CBR,
                reader.record_batches(
                    want_edges_received=want_edges_received,
                    want_edges_sorted=want_edges_sorted,
                ),
                cbr_reader=reader,
            )
        else:
            text = io.TextIOWrapper(buffered, encoding="utf-8")
            try:
                yield RecordBatchSource(
                    FORMAT_JSONL, _jsonl_batches(text, batch_records)
                )
            finally:
                text.detach()
    finally:
        if close_raw:
            raw.close()


@contextmanager
def open_query_source(
    path: str,
    predicate=None,
    stats=None,
    want_edges_received: bool = True,
    want_edges_sorted: bool = True,
    errors: str = "count",
    batch_records: int = DEFAULT_BATCH_RECORDS,
) -> Iterator[RecordBatchSource]:
    """Open an artifact for a *filtered* read with predicate pushdown.

    On a seekable cbr file with a readable footer, the chunk plan comes
    from :func:`repro.analysis.query.plan_chunks` — zone-pruned chunks
    are never inflated — and ``stats`` (a
    :class:`~repro.analysis.query.QueryStats`, created on demand) gets
    the ``chunks_total`` / ``chunks_selected`` counts.  Everything else
    degrades to the sequential full scan of
    :func:`open_record_batches` with ``chunks_pruned = 0``: stdin, JSONL
    datasets, footer-less cbr (schema 1 has no zones but still plans a
    full scan), and — the tolerant-reader mirror — cbr files whose
    trailer is torn or missing, which previously raised in any
    footer-dependent path.

    Batches still contain *unfiltered* records from the selected chunks;
    residual filtering stays with the consumer (``AnalysisEngine.run``
    or :func:`repro.analysis.query.filter_batch`) so the pruned path is
    byte-identical to brute force by construction.
    """
    from repro.analysis.query import QueryStats, plan_chunks
    from repro.artifacts.cbr import CbrIndexedReader

    if stats is None:
        stats = QueryStats()
    if predicate is not None and path != "-":
        stream = open(path, "rb")
        try:
            indexed = None
            if detect_format(stream.read(len(CBR_MAGIC))) == FORMAT_CBR:
                try:
                    indexed = CbrIndexedReader(stream, errors=errors)
                except CbrFormatError:
                    indexed = None  # torn trailer: sequential fallback
            if indexed is not None:
                ordinals, total = plan_chunks(
                    indexed.footer, predicate, indexed.domain_index_lookup
                )
                stats.chunks_total = total
                stats.chunks_selected = len(ordinals)
                yield RecordBatchSource(
                    FORMAT_CBR,
                    indexed.read_chunks(
                        ordinals,
                        want_edges_received=want_edges_received,
                        want_edges_sorted=want_edges_sorted,
                    ),
                    cbr_reader=indexed,
                    stats=stats,
                )
                return
        finally:
            stream.close()
    with open_record_batches(
        path,
        want_edges_received=want_edges_received,
        want_edges_sorted=want_edges_sorted,
        errors=errors,
        batch_records=batch_records,
    ) as source:
        source.stats = stats
        yield source


def write_records(
    records: Iterable[ConnectionRecord],
    path: str,
    format: str = "auto",
    chunk_records: int = DEFAULT_BATCH_RECORDS,
) -> int:
    """Write an artifact file in the resolved format; returns the count.

    ``-`` writes JSONL to stdout (cbr to stdout is refused: binary on a
    terminal helps nobody — pipe to a ``.cbr`` path instead).
    """
    resolved = resolve_write_format(path, format)
    if path == "-":
        if resolved == FORMAT_CBR:
            raise ValueError("cbr output requires a file path, not stdout")
        return export_records(records, sys.stdout)
    if resolved == FORMAT_CBR:
        with open(path, "wb") as stream:
            return write_records_cbr(records, stream, chunk_records=chunk_records)
    with open(path, "w", encoding="utf-8") as stream:
        return export_records(records, stream)
