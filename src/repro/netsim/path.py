"""Unidirectional network path models.

A :class:`Path` carries datagrams from one endpoint to the other with a
configurable one-way delay, jitter, loss, and reordering behaviour.
Reordering is the phenomenon Figure 1b of the paper warns about
(spurious spin edges / ultra-short spin cycles), so the model supports
both natural reordering (jitter without FIFO enforcement) and explicit
"reorder events" that hold one packet back by a sampled extra delay.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable

from repro.netsim.delays import ConstantDelay, DelayModel, UniformDelay
from repro.netsim.events import Simulator

__all__ = ["Path", "PathProfile", "PathStats"]


@dataclass(frozen=True)
class PathProfile:
    """Static description of one direction of a network path.

    ``base_delay`` is sampled once per packet and added to the
    propagation delay, modelling queueing jitter.  When ``fifo`` is
    true, delivery order is forced to match send order by clamping each
    arrival to be no earlier than the previous one (the common case on a
    single uncongested route); reordering then only happens through
    explicit ``reorder_probability`` events.  With ``fifo`` false, large
    jitter draws reorder packets naturally.
    """

    propagation_delay_ms: float = 25.0
    jitter: DelayModel = field(default_factory=lambda: UniformDelay(0.0, 1.0))
    loss_probability: float = 0.0
    reorder_probability: float = 0.0
    reorder_extra_delay: DelayModel = field(default_factory=lambda: ConstantDelay(3.0))
    fifo: bool = True
    #: Link capacity in Mbit/s; ``None`` models an unconstrained link.
    #: With a capacity set, each datagram occupies the link for its
    #: serialization time and bursts queue behind each other.
    bandwidth_mbps: float | None = None

    def __post_init__(self) -> None:
        if self.propagation_delay_ms < 0:
            raise ValueError("propagation delay must be non-negative")
        if not 0.0 <= self.loss_probability < 1.0:
            raise ValueError("loss probability must be in [0, 1)")
        if not 0.0 <= self.reorder_probability <= 1.0:
            raise ValueError("reorder probability must be in [0, 1]")
        if self.bandwidth_mbps is not None and self.bandwidth_mbps <= 0:
            raise ValueError("bandwidth must be positive (or None)")

    def serialization_delay_ms(self, size_bytes: int) -> float:
        """Time the link is busy transmitting ``size_bytes``."""
        if self.bandwidth_mbps is None:
            return 0.0
        return (size_bytes * 8) / (self.bandwidth_mbps * 1000.0)


@dataclass
class PathStats:
    """Counters a path keeps about its own behaviour (for assertions)."""

    sent: int = 0
    delivered: int = 0
    lost: int = 0
    reordered: int = 0
    #: Subset of ``lost`` dropped by an installed impairment (fault
    #: injection) rather than the profile's own loss process.
    impaired: int = 0


class Path:
    """One direction of a link between two endpoints.

    ``deliver`` hands the raw datagram bytes to the receiver callback at
    the computed arrival time via the shared simulator.

    An optional mid-path *tap* observes each surviving datagram at a
    configurable fraction of its one-way delay — the vantage point of an
    on-path measurement box.  Install one with :meth:`install_tap`.
    """

    def __init__(
        self,
        simulator: Simulator,
        profile: PathProfile,
        receiver: Callable[[bytes], None],
        rng: random.Random,
    ):
        self._simulator = simulator
        self.profile = profile
        self._receiver = receiver
        self._rng = rng
        self._last_arrival_ms = 0.0
        self._link_free_at_ms = 0.0
        self._tap: Callable[[float, bytes], None] | None = None
        self._tap_position = 0.5
        self._impairment: Callable[[float, random.Random], bool] | None = None
        self.stats = PathStats()

    def install_tap(
        self, tap: Callable[[float, bytes], None], position: float = 0.5
    ) -> None:
        """Observe datagrams at ``position`` (0 = sender, 1 = receiver).

        The tap fires at ``send_time + position x one-way-delay`` with
        the tap-local observation time — lost datagrams never reach it
        if they are dropped upstream of the whole path (loss position is
        not modelled more finely).
        """
        if not 0.0 <= position <= 1.0:
            raise ValueError("tap position must be in [0, 1]")
        self._tap = tap
        self._tap_position = position

    def install_impairment(
        self, impairment: Callable[[float, random.Random], bool]
    ) -> None:
        """Install a fault-injection drop predicate on this direction.

        ``impairment(now_ms, rng)`` returns True to drop the datagram
        (after the profile's own loss process).  Predicates come from
        :mod:`repro.faults.spec` (loss bursts, blackholes); they must
        draw from ``rng`` only when active so that inactive faults leave
        the path's random stream untouched.
        """
        self._impairment = impairment

    def send(self, datagram: bytes) -> None:
        """Inject a datagram; it arrives (or is lost) per the profile."""
        self.stats.sent += 1
        if self.profile.loss_probability and self._rng.random() < self.profile.loss_probability:
            self.stats.lost += 1
            return
        if self._impairment is not None and self._impairment(
            self._simulator.now_ms, self._rng
        ):
            self.stats.lost += 1
            self.stats.impaired += 1
            return
        queueing = 0.0
        serialization = self.profile.serialization_delay_ms(len(datagram))
        if serialization:
            now = self._simulator.now_ms
            start = max(now, self._link_free_at_ms)
            self._link_free_at_ms = start + serialization
            queueing = (start - now) + serialization
        delay = (
            queueing
            + self.profile.propagation_delay_ms
            + self.profile.jitter.sample(self._rng)
        )
        if (
            self.profile.reorder_probability
            and self._rng.random() < self.profile.reorder_probability
        ):
            delay += self.profile.reorder_extra_delay.sample(self._rng)
            self.stats.reordered += 1
            arrival = self._simulator.now_ms + delay
            # A reorder event deliberately escapes the FIFO clamp; it
            # may land behind packets sent after it.
        elif self.profile.fifo:
            arrival = max(self._simulator.now_ms + delay, self._last_arrival_ms)
            self._last_arrival_ms = arrival
        else:
            arrival = self._simulator.now_ms + delay
        if self._tap is not None:
            now = self._simulator.now_ms
            tap_time = now + (arrival - now) * self._tap_position
            self._simulator.schedule_at(
                tap_time, lambda t=tap_time, d=datagram: self._tap(t, d)
            )
        self._simulator.schedule_at(arrival, lambda d=datagram: self._deliver(d))

    def _deliver(self, datagram: bytes) -> None:
        self.stats.delivered += 1
        self._receiver(datagram)


def duplex_paths(
    simulator: Simulator,
    client_to_server: PathProfile,
    server_to_client: PathProfile,
    client_receive: Callable[[bytes], None],
    server_receive: Callable[[bytes], None],
    rng: random.Random,
) -> tuple[Path, Path]:
    """Build the two directions of a connection's path.

    Returns ``(uplink, downlink)`` where the uplink delivers to the
    server and the downlink to the client.  Each direction gets its own
    RNG stream so loss on one side does not perturb jitter on the other.
    """
    from repro._util.rng import fork_rng

    uplink = Path(simulator, client_to_server, server_receive, fork_rng(rng, "up"))
    downlink = Path(simulator, server_to_client, client_receive, fork_rng(rng, "down"))
    return uplink, downlink
