"""Seeded connection-migration plans for the traffic multiplexer.

RFC 9000 makes flow identity a moving target for on-path observers:
NAT rebinding changes a connection's 4-tuple without touching the
destination CID (Section 9 — the passive case), an endpoint may switch
to a previously issued alternate CID at any time (Section 5.1.1), and
an *active* path migration is required to do both at once precisely so
that an observer cannot link the old and new paths (Section 9.5).  The
paper's accuracy claims silently assume none of this happens; this
module injects all three, deterministically, so the monitor's
flow-tracking robustness becomes a tested property.

A :class:`MigrationPlan` mirrors the :mod:`repro.faults` FaultSpec
style: a set of :class:`MigrationSpec` entries ("with probability p,
this kind of migration, around this delay after flow start"), rolled
per flow from a dedicated RNG stream derived as
``(seed, "monitor", "migration", flow_index)``.  Consequences:

* the same seed produces the same migrations regardless of how the tap
  stream is consumed (and :meth:`TrafficMux.replay_single` re-derives
  the identical outcome for a single flow), and
* a plan with every probability at zero — or no plan at all — draws
  nothing, so migration-free runs are byte-identical to a build
  without the migration plane.

Plan syntax (CLI ``--migrate``)::

    kind:probability[:delay_ms][,kind:probability[:delay_ms]...]

e.g. ``nat-rebind:0.3,cid-rotation:0.25:800``.  ``delay_ms`` is the
nominal delay of the event after the flow's start (the drawn delay is
uniform in 0.5x..1.5x of it).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from enum import Enum

__all__ = [
    "DEFAULT_DELAY_MS",
    "DrawnMigration",
    "MigrationKind",
    "MigrationPlan",
    "MigrationSpec",
    "parse_migration_plan",
]


class MigrationKind(Enum):
    """Every injectable migration; values are the CLI spell of the kind."""

    #: The client's NAT drops and re-creates its binding: the 4-tuple
    #: changes, the destination CID does not.  Linkable via the CID.
    NAT_REBIND = "nat-rebind"
    #: The sender switches to a previously issued alternate CID without
    #: a path change (RFC 9000 5.1.1).  Linkable via 4-tuple continuity.
    CID_ROTATION = "cid-rotation"
    #: An active path migration: new 4-tuple *and* new CID in the same
    #: instant, exactly as RFC 9000 9.5 requires — unlinkable for an
    #: on-path observer by design.  The monitor must degrade gracefully
    #: (open a new flow), not crash or silently merge.
    PATH_MIGRATION = "path-migration"

    @property
    def linkable(self) -> bool:
        """Whether a CID-linkage observer can keep one flow identity."""
        return self is not MigrationKind.PATH_MIGRATION

    @property
    def changes_tuple(self) -> bool:
        return self is not MigrationKind.CID_ROTATION

    @property
    def changes_cid(self) -> bool:
        return self is not MigrationKind.NAT_REBIND


#: Nominal post-start delay of a migration event (ms) per kind; the
#: drawn delay is uniform in 0.5x..1.5x of it.  CID switches need the
#: handshake confirmed first (alternate CIDs are issued then), so their
#: nominal sits later than the rebind's.
DEFAULT_DELAY_MS = {
    MigrationKind.NAT_REBIND: 250.0,
    MigrationKind.CID_ROTATION: 400.0,
    MigrationKind.PATH_MIGRATION: 400.0,
}


@dataclass(frozen=True)
class MigrationSpec:
    """One migration kind armed with a probability (and nominal delay)."""

    kind: MigrationKind
    probability: float
    delay_ms: float | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"migration probability for {self.kind.value!r} must be in "
                f"[0, 1], got {self.probability}"
            )
        if self.delay_ms is not None and self.delay_ms <= 0:
            raise ValueError(
                f"migration delay for {self.kind.value!r} must be positive"
            )

    @property
    def effective_delay_ms(self) -> float:
        if self.delay_ms is not None:
            return self.delay_ms
        return DEFAULT_DELAY_MS[self.kind]

    def to_string(self) -> str:
        spell = f"{self.kind.value}:{self.probability:g}"
        if self.delay_ms is not None:
            spell += f":{self.delay_ms:g}"
        return spell


@dataclass(frozen=True)
class DrawnMigration:
    """One flow's concrete migration outcome (the plan, rolled).

    At most one kind fires per flow (first hit in fixed kind order):
    real connections rarely migrate twice within one short exchange,
    and a single event keeps ground truth attribution unambiguous.
    ``at_ms`` is absolute stream time (flow start + drawn delay).
    ``new_client_addr`` is set for tuple-changing kinds.
    """

    kind: MigrationKind
    at_ms: float
    new_client_addr: tuple[str, int] | None = None

    @property
    def linkable(self) -> bool:
        return self.kind.linkable


#: Draw order is fixed to enum declaration order, never plan order, so
#: two spellings of the same plan yield identical outcomes per seed.
_DRAW_ORDER = tuple(MigrationKind)


@dataclass(frozen=True)
class MigrationPlan:
    """An immutable set of migration specs, at most one per kind."""

    specs: tuple[MigrationSpec, ...] = ()

    def __post_init__(self) -> None:
        seen: set[MigrationKind] = set()
        for spec in self.specs:
            if spec.kind in seen:
                raise ValueError(f"duplicate migration kind {spec.kind.value!r}")
            seen.add(spec.kind)

    @property
    def is_empty(self) -> bool:
        return not any(spec.probability > 0.0 for spec in self.specs)

    def spec(self, kind: MigrationKind) -> MigrationSpec | None:
        for spec in self.specs:
            if spec.kind is kind:
                return spec
        return None

    def to_string(self) -> str:
        return ",".join(spec.to_string() for spec in self.specs)

    def draw(self, rng: random.Random, start_ms: float) -> DrawnMigration | None:
        """Roll the plan once for a flow starting at ``start_ms``.

        Every armed kind consumes its probability draw in fixed kind
        order (so adding a later kind to a plan never shifts an earlier
        kind's outcome), but only the first hit becomes the flow's
        migration.
        """
        drawn: DrawnMigration | None = None
        by_kind = {spec.kind: spec for spec in self.specs}
        for kind in _DRAW_ORDER:
            spec = by_kind.get(kind)
            if spec is None or spec.probability <= 0.0:
                continue
            if rng.random() >= spec.probability or drawn is not None:
                continue
            at_ms = start_ms + rng.uniform(0.5, 1.5) * spec.effective_delay_ms
            new_addr: tuple[str, int] | None = None
            if kind.changes_tuple:
                new_addr = draw_client_addr(rng)
            drawn = DrawnMigration(kind=kind, at_ms=at_ms, new_client_addr=new_addr)
        return drawn


def draw_client_addr(rng: random.Random) -> tuple[str, int]:
    """A synthetic client (ip, port) as a NAT would assign it."""
    ip = f"10.{rng.randrange(256)}.{rng.randrange(256)}.{rng.randrange(254) + 1}"
    return ip, rng.randrange(16_384, 65_536)


def parse_migration_plan(text: str) -> MigrationPlan:
    """Parse the CLI migration-plan syntax into a :class:`MigrationPlan`."""
    specs: list[MigrationSpec] = []
    valid = ", ".join(kind.value for kind in MigrationKind)
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        fields = part.split(":")
        if len(fields) not in (2, 3):
            raise ValueError(
                f"bad migration spec {part!r}: expected "
                "kind:probability[:delay_ms]"
            )
        try:
            kind = MigrationKind(fields[0])
        except ValueError:
            raise ValueError(
                f"unknown migration kind {fields[0]!r} (valid kinds: {valid})"
            ) from None
        try:
            probability = float(fields[1])
            delay_ms = float(fields[2]) if len(fields) == 3 else None
        except ValueError:
            raise ValueError(
                f"bad migration spec {part!r}: non-numeric field"
            ) from None
        specs.append(
            MigrationSpec(kind=kind, probability=probability, delay_ms=delay_ms)
        )
    if not specs:
        raise ValueError("empty migration plan")
    return MigrationPlan(specs=tuple(specs))
