"""Discrete-event simulation core.

A minimal, fast event loop: callbacks are scheduled at absolute
simulated times and executed in time order (FIFO among equal
timestamps).  Endpoints, paths, and application models all interact
exclusively by scheduling events, so a whole HTTP/3-over-QUIC exchange
— including jitter, loss, reordering, and server think time — runs as a
single deterministic event cascade.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Callable

from repro.netsim.clock import SimClock

__all__ = ["Simulator"]


class Simulator:
    """Event queue plus clock; the spine of every simulated measurement.

    ``metrics`` optionally binds the simulator to a telemetry registry
    (:mod:`repro.telemetry`): events dispatched are counted and the
    queue's high-water mark is exported as a max-aggregated gauge.  The
    bookkeeping itself is wall-clock free, so the exported values are
    deterministic functions of the simulation.
    """

    def __init__(self, start_ms: float = 0.0, metrics=None):
        self.clock = SimClock(start_ms)
        self._queue: list[tuple[float, int, Callable[[], None]]] = []
        #: Monotone tiebreaker for FIFO among equal timestamps; a plain
        #: int avoids one generator frame per scheduled event.
        self._sequence = 0
        self._processed = 0
        #: Largest queue length ever reached (always tracked; exporting
        #: it costs nothing beyond one compare per schedule).
        self.queue_high_water = 0
        if metrics is not None:
            self._m_events = metrics.counter("netsim.events_dispatched")
            self._m_high_water = metrics.gauge(
                "netsim.queue_high_water", agg="max"
            )
        else:
            self._m_events = None
            self._m_high_water = None

    @property
    def now_ms(self) -> float:
        """Current simulated time in milliseconds."""
        return self.clock.now_ms

    @property
    def pending_events(self) -> int:
        """Number of events not yet executed."""
        return len(self._queue)

    @property
    def next_event_time_ms(self) -> float | None:
        """Timestamp of the earliest pending event; ``None`` when idle.

        Lets incremental consumers (``run_until`` loops) place their
        next deadline relative to actual upcoming work instead of
        stepping through empty stretches of simulated time.
        """
        return self._queue[0][0] if self._queue else None

    @property
    def processed_events(self) -> int:
        """Number of events executed since construction."""
        return self._processed

    def schedule(self, delay_ms: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` ``delay_ms`` milliseconds from now."""
        if delay_ms < 0:
            raise ValueError(f"cannot schedule into the past: delay {delay_ms}")
        self.schedule_at(self.clock.now_ms + delay_ms, callback)

    def schedule_at(self, time_ms: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at absolute simulated time ``time_ms``."""
        if time_ms < self.clock.now_ms:
            raise ValueError(
                f"cannot schedule into the past: {time_ms} < {self.clock.now_ms}"
            )
        sequence = self._sequence
        self._sequence = sequence + 1
        heappush(self._queue, (time_ms, sequence, callback))
        if len(self._queue) > self.queue_high_water:
            self.queue_high_water = len(self._queue)

    def run(self, max_events: int = 1_000_000) -> int:
        """Execute events until the queue drains.

        Returns the number of events executed.  ``max_events`` is a
        runaway guard: a simulation that exceeds it raises, because a
        correct scan of one connection needs at most a few hundred
        events.
        """
        executed = 0
        queue = self._queue
        advance_to = self.clock.advance_to
        while queue:
            if executed >= max_events:
                raise RuntimeError(f"simulation exceeded {max_events} events")
            time_ms, _, callback = heappop(queue)
            advance_to(time_ms)
            callback()
            executed += 1
            self._processed += 1
        self._export_metrics(executed)
        return executed

    def run_until(
        self, deadline_ms: float, max_events: int = 1_000_000, settle: bool = True
    ) -> int:
        """Execute events with timestamps up to ``deadline_ms`` inclusive.

        With ``settle`` (the default) the clock advances to the deadline
        even when the queue drains early; ``settle=False`` leaves the
        clock at the last executed event, so a caller imposing a timeout
        budget can tell "finished early" apart from "deadline reached"
        without distorting the simulated end time.
        """
        executed = 0
        queue = self._queue
        advance_to = self.clock.advance_to
        while queue and queue[0][0] <= deadline_ms:
            if executed >= max_events:
                raise RuntimeError(f"simulation exceeded {max_events} events")
            time_ms, _, callback = heappop(queue)
            advance_to(time_ms)
            callback()
            executed += 1
            self._processed += 1
        if settle and self.clock.now_ms < deadline_ms:
            advance_to(deadline_ms)
        self._export_metrics(executed)
        return executed

    def _export_metrics(self, executed: int) -> None:
        """Flush per-run counters to the bound registry (if any)."""
        if self._m_events is not None:
            self._m_events.inc(executed)
            self._m_high_water.set_max(self.queue_high_water)
