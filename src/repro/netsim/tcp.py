"""A minimal TCP-with-spin-signal flow class for mixed-transport taps.

Kunze et al.'s measurement-bit work (PAPERS.md) frames the spin bit as
one deployment of a transport-agnostic idea; the original three-bits
patches carried the same latency square wave in TCP's reserved header
bits.  This module gives the traffic multiplexer a second transport so
the tap stream is genuinely mixed: segments that are *not* QUIC (their
first byte — the source-port high byte — has the QUIC fixed bit clear,
so :func:`repro.quic.packet.parse_header` rejects them cleanly) yet
still carry a spin signal an aware observer could read.

The flow model is deliberately simple — a downlink segment train whose
spin value flips once per RTT, the observable ground truth of a
client/server echo loop — because its monitor-side job is
classification robustness, not TCP fidelity: the flow table must file
these datagrams under ``transport_mix["tcp"]`` instead of crashing or
polluting QUIC flow state.

Wire layout (RFC 793 shape, 20-byte header)::

    0-1  source port     2-3  destination port
    4-7  sequence number 8-11 acknowledgment number
    12   data offset / reserved   <-- spin signal lives here
    13   flags           14-15 window
    16-17 checksum       18-19 urgent pointer

Byte 12 is ``(5 << 4) | spin``: data offset 5 words, spin in the
lowest reserved bit — exactly where the TCP spin patches put it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, NamedTuple

from repro.netsim.events import Simulator

__all__ = [
    "TCP_HEADER_BYTES",
    "TcpFlowSpec",
    "TcpSegment",
    "decode_tcp_segment",
    "draw_tcp_flow_spec",
    "encode_tcp_segment",
    "schedule_tcp_flow",
]

TCP_HEADER_BYTES = 20

_FLAG_ACK = 0x10
#: QUIC long/short form and fixed bits; a first byte with both clear
#: cannot be mistaken for a QUIC v1 packet.
_QUIC_FORM_OR_FIXED = 0xC0


class TcpSegment(NamedTuple):
    """One decoded TCP-shaped segment (header fields we model)."""

    source_port: int
    destination_port: int
    sequence_number: int
    ack_number: int
    spin: bool
    flags: int
    payload_length: int


def encode_tcp_segment(segment: TcpSegment) -> bytes:
    """Serialize ``segment`` (header plus an opaque ``0x78`` payload)."""
    if not 0 <= segment.source_port <= 0xFFFF:
        raise ValueError(f"invalid source port: {segment.source_port}")
    if segment.source_port >> 8 & _QUIC_FORM_OR_FIXED:
        # The tap discriminates transports by the first wire byte; a
        # source port whose high byte looks like a QUIC header would
        # defeat the whole mixed-transport exercise.
        raise ValueError(
            f"source port {segment.source_port} is QUIC-ambiguous on the wire"
        )
    header = bytearray(TCP_HEADER_BYTES)
    header[0:2] = segment.source_port.to_bytes(2, "big")
    header[2:4] = segment.destination_port.to_bytes(2, "big")
    header[4:8] = (segment.sequence_number & 0xFFFFFFFF).to_bytes(4, "big")
    header[8:12] = (segment.ack_number & 0xFFFFFFFF).to_bytes(4, "big")
    header[12] = (5 << 4) | (1 if segment.spin else 0)
    header[13] = segment.flags
    header[14:16] = (65_535).to_bytes(2, "big")
    return bytes(header) + b"\x78" * segment.payload_length


def decode_tcp_segment(data: bytes) -> TcpSegment:
    """Parse a segment produced by :func:`encode_tcp_segment`.

    Raises :class:`ValueError` on anything structurally un-TCP-like
    (too short, impossible data offset) so callers can treat failure as
    "unparseable", the third transport class.
    """
    if len(data) < TCP_HEADER_BYTES:
        raise ValueError(f"segment too short for a TCP header: {len(data)} bytes")
    data_offset_words = data[12] >> 4
    if data_offset_words < 5:
        raise ValueError(f"impossible TCP data offset: {data_offset_words}")
    return TcpSegment(
        source_port=int.from_bytes(data[0:2], "big"),
        destination_port=int.from_bytes(data[2:4], "big"),
        sequence_number=int.from_bytes(data[4:8], "big"),
        ack_number=int.from_bytes(data[8:12], "big"),
        spin=bool(data[12] & 0x01),
        flags=data[13],
        payload_length=len(data) - TCP_HEADER_BYTES,
    )


@dataclass(frozen=True)
class TcpFlowSpec:
    """Everything needed to (re-)generate one TCP flow's downlink train."""

    index: int
    start_ms: float
    rtt_ms: float
    duration_ms: float
    segment_interval_ms: float
    payload_bytes: int
    server_port: int = 443

    def __post_init__(self) -> None:
        if self.rtt_ms <= 0 or self.segment_interval_ms <= 0:
            raise ValueError("rtt_ms and segment_interval_ms must be positive")
        if self.duration_ms < 0:
            raise ValueError("duration_ms must be non-negative")


def draw_tcp_flow_spec(
    rng: random.Random, index: int, arrival_window_ms: float
) -> TcpFlowSpec:
    """Draw flow ``index``'s shape from its own dedicated RNG stream."""
    return TcpFlowSpec(
        index=index,
        start_ms=rng.random() * arrival_window_ms,
        rtt_ms=rng.uniform(10.0, 120.0),
        duration_ms=rng.uniform(800.0, 2_500.0),
        segment_interval_ms=rng.uniform(4.0, 15.0),
        payload_bytes=rng.randrange(0, 1_200),
    )


def schedule_tcp_flow(
    simulator: Simulator,
    spec: TcpFlowSpec,
    client_port: int,
    emit: Callable[[float, bytes], None],
) -> int:
    """Schedule ``spec``'s downlink segments; returns the segment count.

    Each segment's spin value is the ground-truth square wave of a
    spinning echo loop — it flips every ``rtt_ms`` after flow start —
    and its sequence number advances by the payload size, so an aware
    observer could recover both ordering and RTT.
    """
    count = max(1, int(spec.duration_ms / spec.segment_interval_ms))
    sequence = 1
    for step in range(count):
        offset_ms = step * spec.segment_interval_ms
        spin = bool(int(offset_ms / spec.rtt_ms) % 2)
        segment = TcpSegment(
            source_port=spec.server_port,
            destination_port=client_port,
            sequence_number=sequence,
            ack_number=step + 1,
            spin=spin,
            flags=_FLAG_ACK,
            payload_length=spec.payload_bytes,
        )
        wire = encode_tcp_segment(segment)
        sequence += max(1, spec.payload_bytes)
        simulator.schedule_at(
            spec.start_ms + offset_ms,
            lambda time=spec.start_ms + offset_ms, data=wire: emit(time, data),
        )
    return count
