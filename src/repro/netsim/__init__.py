"""Deterministic discrete-event network simulation.

Replaces the live Internet path between the paper's vantage point and
the scanned servers: propagation delay, jitter, loss, reordering, and
end-host processing delays, all driven by a shared simulated clock.
"""

from repro.netsim.clock import SimClock
from repro.netsim.delays import (
    ConstantDelay,
    DelayModel,
    ExponentialDelay,
    LogNormalDelay,
    ParetoDelay,
    ShiftedDelay,
    UniformDelay,
)
from repro.netsim.events import Simulator
from repro.netsim.path import Path, PathProfile, PathStats, duplex_paths

__all__ = [
    "ConstantDelay",
    "DelayModel",
    "ExponentialDelay",
    "LogNormalDelay",
    "Path",
    "PathProfile",
    "PathStats",
    "ParetoDelay",
    "ShiftedDelay",
    "SimClock",
    "Simulator",
    "UniformDelay",
    "duplex_paths",
]
