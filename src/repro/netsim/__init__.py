"""Deterministic discrete-event network simulation.

Replaces the live Internet path between the paper's vantage point and
the scanned servers: propagation delay, jitter, loss, reordering, and
end-host processing delays, all driven by a shared simulated clock.
"""

from repro.netsim.clock import SimClock
from repro.netsim.delays import (
    ConstantDelay,
    DelayModel,
    ExponentialDelay,
    LogNormalDelay,
    ParetoDelay,
    ShiftedDelay,
    UniformDelay,
)
from repro.netsim.events import Simulator
from repro.netsim.migration import (
    DrawnMigration,
    MigrationKind,
    MigrationPlan,
    MigrationSpec,
    parse_migration_plan,
)
from repro.netsim.path import Path, PathProfile, PathStats, duplex_paths
from repro.netsim.tcp import (
    TcpFlowSpec,
    TcpSegment,
    decode_tcp_segment,
    draw_tcp_flow_spec,
    encode_tcp_segment,
    schedule_tcp_flow,
)

__all__ = [
    "ConstantDelay",
    "DelayModel",
    "DrawnMigration",
    "ExponentialDelay",
    "LogNormalDelay",
    "MigrationKind",
    "MigrationPlan",
    "MigrationSpec",
    "Path",
    "PathProfile",
    "PathStats",
    "ParetoDelay",
    "ShiftedDelay",
    "SimClock",
    "Simulator",
    "TcpFlowSpec",
    "TcpSegment",
    "UniformDelay",
    "decode_tcp_segment",
    "draw_tcp_flow_spec",
    "duplex_paths",
    "encode_tcp_segment",
    "parse_migration_plan",
    "schedule_tcp_flow",
]
