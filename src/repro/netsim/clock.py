"""Simulated wall clock.

Every component of the simulation reads time from a shared
:class:`SimClock` owned by the event loop; nothing ever consults the
real system clock, which keeps runs deterministic and allows the
campaign scheduler to pretend a measurement happened in a given
calendar week.
"""

from __future__ import annotations

__all__ = ["SimClock"]


class SimClock:
    """Monotonically advancing simulated time in milliseconds."""

    def __init__(self, start_ms: float = 0.0):
        self._now_ms = float(start_ms)

    @property
    def now_ms(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now_ms

    def advance_to(self, time_ms: float) -> None:
        """Move the clock forward to ``time_ms``; never backwards."""
        if time_ms < self._now_ms:
            raise ValueError(
                f"clock cannot move backwards: {time_ms} < {self._now_ms}"
            )
        self._now_ms = time_ms

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SimClock(now_ms={self._now_ms:.3f})"
