"""Delay distributions for paths and end hosts.

The paper attributes the spin bit's large RTT overestimations to
*end-host delays* — chiefly the time a web server spends producing the
response — while the network contributes propagation delay and jitter.
Each distribution here is a small object with a ``sample(rng)`` method
returning milliseconds, so path models and server profiles can be
composed declaratively and remain deterministic under a seeded RNG.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

__all__ = [
    "ConstantDelay",
    "DelayModel",
    "ExponentialDelay",
    "LogNormalDelay",
    "ParetoDelay",
    "ShiftedDelay",
    "UniformDelay",
]


class DelayModel:
    """Base class: a non-negative delay distribution in milliseconds."""

    def sample(self, rng: random.Random) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def mean_ms(self) -> float:  # pragma: no cover - abstract
        """Expected value, used by calibration sanity checks."""
        raise NotImplementedError


@dataclass(frozen=True)
class ConstantDelay(DelayModel):
    """A fixed delay."""

    value_ms: float

    def __post_init__(self) -> None:
        if self.value_ms < 0:
            raise ValueError("delay must be non-negative")

    def sample(self, rng: random.Random) -> float:
        return self.value_ms

    def mean_ms(self) -> float:
        return self.value_ms


@dataclass(frozen=True)
class UniformDelay(DelayModel):
    """Uniform delay on [low_ms, high_ms] — the default jitter model."""

    low_ms: float
    high_ms: float

    def __post_init__(self) -> None:
        if self.low_ms < 0 or self.high_ms < self.low_ms:
            raise ValueError(f"invalid uniform range [{self.low_ms}, {self.high_ms}]")

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.low_ms, self.high_ms)

    def mean_ms(self) -> float:
        return (self.low_ms + self.high_ms) / 2.0


@dataclass(frozen=True)
class ExponentialDelay(DelayModel):
    """Exponential delay with the given mean; memoryless queueing noise."""

    mean_value_ms: float

    def __post_init__(self) -> None:
        if self.mean_value_ms <= 0:
            raise ValueError("mean must be positive")

    def sample(self, rng: random.Random) -> float:
        return rng.expovariate(1.0 / self.mean_value_ms)

    def mean_ms(self) -> float:
        return self.mean_value_ms


@dataclass(frozen=True)
class LogNormalDelay(DelayModel):
    """Log-normal delay — the canonical model for server think time.

    Parameterized by the *median* and the log-space sigma, which is the
    natural way to express "typically ~40 ms, occasionally seconds":
    the heavy upper tail is what produces the paper's >3x spin-bit
    overestimations at connection start.
    """

    median_ms: float
    sigma: float

    def __post_init__(self) -> None:
        if self.median_ms <= 0:
            raise ValueError("median must be positive")
        if self.sigma < 0:
            raise ValueError("sigma must be non-negative")

    def sample(self, rng: random.Random) -> float:
        return rng.lognormvariate(math.log(self.median_ms), self.sigma)

    def mean_ms(self) -> float:
        return self.median_ms * math.exp(self.sigma**2 / 2.0)


@dataclass(frozen=True)
class ParetoDelay(DelayModel):
    """Pareto delay with scale ``minimum_ms`` and shape ``alpha``.

    Used for the long-tail component of shared-hosting response times;
    ``alpha`` must exceed 1 for a finite mean.
    """

    minimum_ms: float
    alpha: float

    def __post_init__(self) -> None:
        if self.minimum_ms <= 0:
            raise ValueError("minimum must be positive")
        if self.alpha <= 1.0:
            raise ValueError("alpha must exceed 1 for a finite mean")

    def sample(self, rng: random.Random) -> float:
        return self.minimum_ms * rng.paretovariate(self.alpha)

    def mean_ms(self) -> float:
        return self.minimum_ms * self.alpha / (self.alpha - 1.0)


@dataclass(frozen=True)
class ShiftedDelay(DelayModel):
    """A base distribution shifted by a constant offset.

    Handy for "at least the kernel/NIC latency plus noise" compositions.
    """

    offset_ms: float
    base: DelayModel

    def __post_init__(self) -> None:
        if self.offset_ms < 0:
            raise ValueError("offset must be non-negative")

    def sample(self, rng: random.Random) -> float:
        return self.offset_ms + self.base.sample(rng)

    def mean_ms(self) -> float:
        return self.offset_ms + self.base.mean_ms()
