"""The paper's primary contribution: spin-bit measurement and analysis.

This subpackage holds everything specific to the spin-bit study itself:
the RFC 9000 spin state machines and deployment policies, the passive
observer with its R/S orderings, the grease filter, the Section 5.1
accuracy metrics, the Table 3 behaviour classification, the RFC 9312
observer heuristics, and the (non-standardized) Valid Edge Counter.
"""

from repro.core.classify import SpinBehaviour, classify_connection, classify_domain
from repro.core.grease_filter import GreaseFilter, GreaseFilterVariant, is_greasing
from repro.core.heuristics import (
    DynamicThresholdFilter,
    PacketNumberFilter,
    StaticThresholdFilter,
)
from repro.core.metrics import (
    AccuracyResult,
    absolute_difference_ms,
    compare_means,
    mapped_ratio,
)
from repro.core.observer import (
    SpinEdge,
    SpinObservation,
    SpinObserver,
    StreamingSpinObserver,
    observe_recorder,
    spin_rtts_from_edges,
)
from repro.core.spin import (
    EndpointRole,
    SpinBitState,
    SpinDeploymentConfig,
    SpinPolicy,
    resolve_connection_policy,
)
from repro.core.flow_resolver import FlowKeyResolver, tuple_flow_key
from repro.core.flow_table import FlowRecord, FlowTableStats, SpinFlowTable
from repro.core.tomography import ComponentSample, SpinTomographyObserver
from repro.core.vec import VecObserver, VecSenderState
from repro.core.wire_observer import Direction, WireObserver, WireObserverStats

__all__ = [
    "AccuracyResult",
    "DynamicThresholdFilter",
    "EndpointRole",
    "GreaseFilter",
    "GreaseFilterVariant",
    "PacketNumberFilter",
    "SpinBehaviour",
    "SpinBitState",
    "SpinDeploymentConfig",
    "SpinEdge",
    "SpinObservation",
    "SpinObserver",
    "SpinPolicy",
    "StaticThresholdFilter",
    "StreamingSpinObserver",
    "Direction",
    "ComponentSample",
    "FlowKeyResolver",
    "FlowRecord",
    "FlowTableStats",
    "SpinFlowTable",
    "SpinTomographyObserver",
    "VecObserver",
    "VecSenderState",
    "WireObserver",
    "WireObserverStats",
    "absolute_difference_ms",
    "classify_connection",
    "classify_domain",
    "compare_means",
    "is_greasing",
    "mapped_ratio",
    "observe_recorder",
    "resolve_connection_policy",
    "spin_rtts_from_edges",
    "tuple_flow_key",
]
