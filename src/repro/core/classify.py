"""Spin-behaviour classification (Table 3 of the paper).

Each QUIC connection — and, aggregated over its connections, each
domain — falls into one of four observable categories:

* **ALL_ZERO** — every received 1-RTT packet carried spin value 0 (the
  dominant way of leaving the bit unused);
* **ALL_ONE** — every packet carried 1;
* **SPIN** — both values occurred and the samples pass the grease
  filter: the connection plausibly participates in the mechanism;
* **GREASE** — both values occurred but at least one spin RTT estimate
  undercuts the stack's minimum RTT, indicating per-packet greasing.

The classification is purely observational: a per-connection-greasing
endpoint is indistinguishable from ALL_ZERO / ALL_ONE on a single
connection, which is exactly the ambiguity the paper notes.
"""

from __future__ import annotations

from enum import Enum
from typing import Sequence

from repro.core.grease_filter import is_greasing
from repro.core.observer import SpinObservation

__all__ = ["SpinBehaviour", "classify_connection", "classify_domain"]


class SpinBehaviour(Enum):
    """Observable spin-bit behaviour of one connection or domain."""

    ALL_ZERO = "all_zero"
    ALL_ONE = "all_one"
    SPIN = "spin"
    GREASE = "grease"
    NO_PACKETS = "no_packets"

    @property
    def shows_activity(self) -> bool:
        """Spin activity in the Table 1 sense (both values seen)."""
        return self in (SpinBehaviour.SPIN, SpinBehaviour.GREASE)


def classify_connection(
    observation: SpinObservation, stack_rtts_ms: Sequence[float]
) -> SpinBehaviour:
    """Classify one connection from its observation and stack RTTs."""
    if observation.packets_seen == 0:
        return SpinBehaviour.NO_PACKETS
    if observation.all_zero:
        return SpinBehaviour.ALL_ZERO
    if observation.all_one:
        return SpinBehaviour.ALL_ONE
    if is_greasing(observation.rtts_received_ms, stack_rtts_ms):
        return SpinBehaviour.GREASE
    return SpinBehaviour.SPIN


def classify_domain(connection_behaviours: Sequence[SpinBehaviour]) -> SpinBehaviour:
    """Aggregate a domain's connections into one domain-level category.

    Mirrors the paper's domain view: a domain counts as *Spin* when at
    least one of its connections shows unfiltered spin activity; as
    *Grease* when activity exists but every active connection was
    filtered; otherwise by the constant value its connections used.
    """
    behaviours = [b for b in connection_behaviours if b is not SpinBehaviour.NO_PACKETS]
    if not behaviours:
        return SpinBehaviour.NO_PACKETS
    if any(b is SpinBehaviour.SPIN for b in behaviours):
        return SpinBehaviour.SPIN
    if any(b is SpinBehaviour.GREASE for b in behaviours):
        return SpinBehaviour.GREASE
    if all(b is SpinBehaviour.ALL_ONE for b in behaviours):
        return SpinBehaviour.ALL_ONE
    if all(b is SpinBehaviour.ALL_ZERO for b in behaviours):
        return SpinBehaviour.ALL_ZERO
    # Mixed constants across connections: per-connection greasing with a
    # fixed value each time.  The paper's domain table counts these with
    # the zero-dominated group; we keep them distinguishable as GREASE.
    return SpinBehaviour.GREASE
