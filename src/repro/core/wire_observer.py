"""On-path spin-bit observation from raw wire bytes.

The qlog-based observer (:mod:`repro.core.observer`) replays the
scanner's own traces — the paper's methodology.  Real network operators,
however, sit *on the path* (the paper's motivation, and the P4 hardware
observer of Kunze et al. 2021): they see UDP datagrams, must parse QUIC
headers themselves, reconstruct full packet numbers per direction from
truncated wire values, and track the spin bit of the server-to-client
direction only.

:class:`WireObserver` implements that middlebox: feed it every datagram
of a connection (either direction) and it produces the same
:class:`~repro.core.observer.SpinObservation` a qlog replay would —
modulo the information an on-path box genuinely lacks (it must know the
deployment's short-header connection-ID length, and it cannot see the
stack's internal RTT estimates).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.observer import SpinObservation, SpinObserver
from repro.quic.datagram import decode_datagram
from repro.quic.packet import HeaderParseError, LongHeader, ShortHeader
from repro.quic.packet_number import decode_packet_number

__all__ = ["Direction", "WireObserver", "WireObserverStats"]


class Direction:
    """Direction labels for on-path taps."""

    CLIENT_TO_SERVER = "client-to-server"
    SERVER_TO_CLIENT = "server-to-client"


@dataclass
class WireObserverStats:
    """What the observer managed (or failed) to parse."""

    datagrams: int = 0
    packets: int = 0
    short_header_packets: int = 0
    parse_errors: int = 0


@dataclass
class _DirectionState:
    """Per-direction packet-number reconstruction state."""

    largest_pn: int | None = None

    def reconstruct(self, truncated: int, pn_length: int) -> int:
        full = decode_packet_number(truncated, pn_length, self.largest_pn)
        if self.largest_pn is None or full > self.largest_pn:
            self.largest_pn = full
        return full


class WireObserver:
    """A passive on-path spin-bit measurement point.

    ``short_dcid_length`` is the connection-ID length used by the
    observed deployment's short headers; on-path observers must know it
    out of band (it is not self-describing on the wire).  Measurement
    follows the server-to-client direction, where consecutive spin
    edges are one RTT apart at the observation point.
    """

    def __init__(self, short_dcid_length: int = 8, ack_delay_exponent: int = 3):
        self.short_dcid_length = short_dcid_length
        self.ack_delay_exponent = ack_delay_exponent
        self.stats = WireObserverStats()
        self._spin_observer = SpinObserver()
        self._states = {
            Direction.CLIENT_TO_SERVER: _DirectionState(),
            Direction.SERVER_TO_CLIENT: _DirectionState(),
        }
        self._vec_marks: list[tuple[float, int]] = []

    def on_datagram(self, time_ms: float, direction: str, data: bytes) -> None:
        """Process one captured datagram.

        Unparseable datagrams are counted, not raised: a middlebox
        cannot crash on unknown traffic.
        """
        if direction not in self._states:
            raise ValueError(f"unknown direction {direction!r}")
        self.stats.datagrams += 1
        if not data:
            self.stats.parse_errors += 1
            return
        try:
            packets = decode_datagram(
                data, self.short_dcid_length, self.ack_delay_exponent
            )
        except (HeaderParseError, ValueError):
            self.stats.parse_errors += 1
            return
        state = self._states[direction]
        for packet in packets:
            self.stats.packets += 1
            header = packet.header
            if isinstance(header, LongHeader):
                continue  # long headers never carry the spin bit
            assert isinstance(header, ShortHeader)
            self.stats.short_header_packets += 1
            full_pn = state.reconstruct(header.packet_number, header.pn_length)
            if direction == Direction.SERVER_TO_CLIENT:
                self._spin_observer.on_packet(time_ms, full_pn, header.spin_bit)
                if header.vec:
                    self._vec_marks.append((time_ms, header.vec))

    def observation(self) -> SpinObservation:
        """The accumulated spin observation (server-to-client)."""
        return self._spin_observer.observation()

    def vec_rtts_ms(self, threshold: int = 3) -> list[float]:
        """VEC-validated RTT samples, if the deployment marks edges."""
        from repro.core.vec import VecObserver

        observer = VecObserver(threshold=threshold)
        for time_ms, vec in self._vec_marks:
            observer.on_packet(time_ms, vec)
        return observer.rtts_ms()


def tap_paths(simulator, uplink, downlink, observer: WireObserver):
    """Insert ``observer`` between two :class:`~repro.netsim.path.Path`
    objects and their receivers.

    Wraps each path's delivery callback so every datagram is handed to
    the observer (stamped with the arrival time at the tap) before the
    original receiver processes it.  Returns the observer for chaining.
    """
    original_up = uplink._receiver
    original_down = downlink._receiver

    def up_tap(data: bytes) -> None:
        observer.on_datagram(simulator.now_ms, Direction.CLIENT_TO_SERVER, data)
        original_up(data)

    def down_tap(data: bytes) -> None:
        observer.on_datagram(simulator.now_ms, Direction.SERVER_TO_CLIENT, data)
        original_down(data)

    uplink._receiver = up_tap
    downlink._receiver = down_tap
    return observer
