"""The paper's grease filter (Section 3.3) and ablation variants.

Endpoints that disable the spin bit by *greasing* it (random values) also
produce spin edges, so they pollute the candidate set of spinning
connections.  The paper filters them with a deliberately simple rule:

    a connection is classified as greasing as soon as one spin-bit RTT
    estimate is smaller than the minimum of all QUIC client RTT
    estimates,

because random flips create spin cycles shorter than any real round
trip.  Section 5.2 suspects this filter of producing false positives
(reordering can also create ultra-short cycles), so ablation variants
with slack factors and quantile baselines are provided for the
design-choice benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro._util.stats import percentile

__all__ = ["GreaseFilter", "GreaseFilterVariant", "is_greasing"]


def is_greasing(spin_rtts_ms: Sequence[float], stack_rtts_ms: Sequence[float]) -> bool:
    """The paper's filter: any spin sample below the stack's minimum RTT.

    Connections without spin samples or without stack samples cannot be
    judged and are not flagged.
    """
    if not spin_rtts_ms or not stack_rtts_ms:
        return False
    return min(spin_rtts_ms) < min(stack_rtts_ms)


@dataclass(frozen=True)
class GreaseFilterVariant:
    """A parameterized grease filter for the ablation study.

    ``baseline`` selects the stack-RTT reference ("min", "mean", or a
    percentile via ``baseline_quantile``); ``slack`` scales it (a slack
    of 0.9 tolerates spin samples slightly below the reference, reducing
    reordering-induced false positives); ``min_votes`` requires that
    many spin samples below the threshold before flagging.
    """

    baseline: str = "min"
    baseline_quantile: float = 10.0
    slack: float = 1.0
    min_votes: int = 1

    def __post_init__(self) -> None:
        if self.baseline not in ("min", "mean", "quantile"):
            raise ValueError(f"unknown baseline {self.baseline!r}")
        if self.slack <= 0:
            raise ValueError("slack must be positive")
        if self.min_votes < 1:
            raise ValueError("min_votes must be at least 1")

    def threshold_ms(self, stack_rtts_ms: Sequence[float]) -> float:
        if self.baseline == "min":
            reference = min(stack_rtts_ms)
        elif self.baseline == "mean":
            reference = sum(stack_rtts_ms) / len(stack_rtts_ms)
        else:
            reference = percentile(list(stack_rtts_ms), self.baseline_quantile)
        return reference * self.slack

    def is_greasing(
        self, spin_rtts_ms: Sequence[float], stack_rtts_ms: Sequence[float]
    ) -> bool:
        """Apply this variant; semantics match :func:`is_greasing`."""
        if not spin_rtts_ms or not stack_rtts_ms:
            return False
        threshold = self.threshold_ms(stack_rtts_ms)
        votes = sum(1 for sample in spin_rtts_ms if sample < threshold)
        return votes >= self.min_votes


#: The exact filter used throughout the paper's analysis.
GreaseFilter = GreaseFilterVariant(baseline="min", slack=1.0, min_votes=1)
