"""Canonical flow identity across connection migration.

The flow table historically keyed flows by the short-header destination
CID alone — correct only while connections never migrate.  Real QUIC
traffic breaks that assumption three ways (RFC 9000 Section 9, and "An
Analysis of QUIC Connection Migration in the Wild" in PAPERS.md):

* **NAT rebind** — the 4-tuple changes, the CID does not.  A CID-keyed
  table survives this by accident; a 4-tuple-keyed one shatters.
* **CID rotation** — the sender switches to a previously issued
  alternate CID on the same path.  A CID-keyed table splits the flow
  in two, double-counting it and halving every per-flow statistic.
* **Active path migration** — both change at once, deliberately, so
  that an on-path observer *cannot* link the paths.

:class:`FlowKeyResolver` is the antidote for the linkable two: it maps
every CID observed on a connection to one canonical flow key (the
first CID's hex), links an unknown CID to a live flow when the 4-tuple
carries continuity (rotation), and records a tuple change on a known
CID as a rebind.  Zero-length CIDs fall back to pure 4-tuple keying in
a separate key namespace so they can never merge with CID-keyed flows.
The unlinkable third kind degrades gracefully by design: a new flow
opens, nothing crashes, and nothing silently merges.

The resolver also classifies transports: datagrams that fail the QUIC
header parse are tested against the TCP segment shape
(:mod:`repro.netsim.tcp`) and filed under ``transport_mix`` as
``"tcp"`` or ``"unparseable"`` instead of being uniform parse errors.

All state is keyed to *live* flows: :meth:`on_flow_retired` drops a
retired flow's CID and tuple claims, so resolver memory is bounded by
the flow table's ``max_flows``, not by traffic history.
"""

from __future__ import annotations

from repro.netsim.tcp import decode_tcp_segment

__all__ = ["FlowKeyResolver", "tuple_flow_key"]

#: QUIC long/short form-or-fixed bits: a first byte with either set is
#: QUIC-shaped, so the TCP classifier never gets to claim it.
_QUIC_FORM_OR_FIXED = 0xC0


def tuple_flow_key(tuple4: tuple) -> str:
    """The flow key of a zero-length-CID flow: its 4-tuple, namespaced.

    The ``4t:`` prefix keeps tuple-keyed flows in a different key space
    from CID-keyed ones (hex strings), so a CID flow sharing a 4-tuple
    with an empty-CID flow can never collide with it.
    """
    return "4t:" + ":".join(str(part) for part in tuple4)


class FlowKeyResolver:
    """CID-linkage table mapping wire observations to canonical flow keys.

    ``cid_linkage=False`` disables the rotation-linking step (every
    unknown CID opens a new flow, as the legacy table behaved) while
    keeping classification and rebind detection — the control arm of
    the ``analyze --section migration`` accuracy comparison.
    """

    __slots__ = (
        "cid_linkage",
        "flows_migrated",
        "flows_split",
        "rebinds_seen",
        "quic_datagrams",
        "tcp_datagrams",
        "unparseable_datagrams",
        "_by_cid",
        "_by_tuple",
        "_key_cids",
        "_key_tuples",
        "_tcp_tuples",
    )

    def __init__(self, cid_linkage: bool = True):
        self.cid_linkage = cid_linkage
        #: Flows that kept one identity across a CID change (linked
        #: rotations); ``rebinds_seen`` counts tuple changes on a known
        #: CID; ``flows_split`` counts flows that opened even though a
        #: live flow owned the 4-tuple (linkage off, or an empty-CID /
        #: foreign-CID conflict) — the degradation the chaos gate pins
        #: at zero for linkable traffic.
        self.flows_migrated = 0
        self.flows_split = 0
        self.rebinds_seen = 0
        self.quic_datagrams = 0
        self.tcp_datagrams = 0
        self.unparseable_datagrams = 0
        self._by_cid: dict[str, str] = {}
        self._by_tuple: dict[tuple, str] = {}
        self._key_cids: dict[str, set[str]] = {}
        self._key_tuples: dict[str, set[tuple]] = {}
        self._tcp_tuples: set[tuple] = set()

    # ------------------------------------------------------------------
    # Flow identity
    # ------------------------------------------------------------------

    def resolve(self, cid_hex: str, tuple4: tuple | None) -> str:
        """Canonical flow key for one QUIC short-header packet."""
        if not cid_hex:
            # Zero-length CID: the 4-tuple is the only identity there
            # is.  Keyed deterministically in the ``4t:`` namespace; a
            # tuple change on such a flow is unlinkable by definition.
            if tuple4 is None:
                return "(empty)"
            return tuple_flow_key(tuple4)

        key = self._by_cid.get(cid_hex)
        if key is not None:
            if tuple4 is not None and tuple4 not in self._key_tuples[key]:
                # Known CID on a new path: NAT rebind. Follow it.
                self.rebinds_seen += 1
                self._claim_tuple(key, tuple4)
            return key

        if tuple4 is not None:
            owner = self._by_tuple.get(tuple4)
            if owner is not None:
                if self.cid_linkage:
                    # Unknown CID with tuple continuity: CID rotation.
                    # Adopt the CID into the owning flow's identity.
                    self.flows_migrated += 1
                    self._by_cid[cid_hex] = owner
                    self._key_cids[owner].add(cid_hex)
                    return owner
                # Linkage disabled: the evidence says continuation, the
                # policy says split.  Count it; the new flow takes the
                # tuple (last writer wins, as on a real NAT).
                self.flows_split += 1

        key = cid_hex
        self._by_cid[cid_hex] = key
        self._key_cids[key] = {cid_hex}
        self._key_tuples[key] = set()
        if tuple4 is not None:
            self._claim_tuple(key, tuple4)
        return key

    def on_flow_retired(self, key: str) -> None:
        """Forget a retired flow's claims (called by the flow table)."""
        for cid_hex in self._key_cids.pop(key, ()):
            if self._by_cid.get(cid_hex) == key:
                del self._by_cid[cid_hex]
        for tuple4 in self._key_tuples.pop(key, ()):
            if self._by_tuple.get(tuple4) == key:
                del self._by_tuple[tuple4]

    def _claim_tuple(self, key: str, tuple4: tuple) -> None:
        previous = self._by_tuple.get(tuple4)
        if previous is not None and previous != key:
            owned = self._key_tuples.get(previous)
            if owned is not None:
                owned.discard(tuple4)
        self._by_tuple[tuple4] = key
        self._key_tuples[key].add(tuple4)

    # ------------------------------------------------------------------
    # Transport classification
    # ------------------------------------------------------------------

    def note_quic_datagram(self) -> None:
        self.quic_datagrams += 1

    def classify_non_quic(self, data: bytes, tuple4: tuple | None) -> str:
        """File a datagram that failed the QUIC parse: tcp or unparseable."""
        if data and not data[0] & _QUIC_FORM_OR_FIXED:
            try:
                decode_tcp_segment(data)
            except ValueError:
                pass
            else:
                self.tcp_datagrams += 1
                if tuple4 is not None:
                    self._tcp_tuples.add(tuple4)
                return "tcp"
        self.unparseable_datagrams += 1
        return "unparseable"

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    @property
    def tcp_flows(self) -> int:
        """Distinct 4-tuples seen carrying TCP segments."""
        return len(self._tcp_tuples)

    def counters(self) -> dict:
        """JSON-serializable migration/classification counter block."""
        return {
            "cid_linkage": self.cid_linkage,
            "flows_migrated": self.flows_migrated,
            "flows_split": self.flows_split,
            "rebinds_seen": self.rebinds_seen,
            "tcp_flows": self.tcp_flows,
            "transport_mix": {
                "quic": self.quic_datagrams,
                "tcp": self.tcp_datagrams,
                "unparseable": self.unparseable_datagrams,
            },
        }
