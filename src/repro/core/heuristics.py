"""Observer-side RTT filtering heuristics (RFC 9312, Section 4.2).

RFC 9312 suggests that passive spin-bit observers apply heuristics to
reject implausible samples — chiefly the ultra-short spin cycles that
reordering around an edge produces (Fig. 1b of the paper).  The paper
leaves evaluating these heuristics to future work and releases its raw
data for that purpose; this module implements the three standard ones so
the ablation benchmarks can quantify their effect:

* :class:`StaticThresholdFilter` — drop samples below a fixed floor;
* :class:`DynamicThresholdFilter` — reject an edge that arrives within
  a configured fraction of the current RTT estimate ("hold time");
* :class:`PacketNumberFilter` — ignore packets that arrive with a
  packet number lower than the highest already seen, which applies the
  endpoint's own RFC 9000 update rule at the observer and converts the
  received stream into the sorted (S) view online.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.observer import SpinEdge, spin_rtts_from_edges

__all__ = [
    "DynamicThresholdFilter",
    "PacketNumberFilter",
    "StaticThresholdFilter",
    "apply_filters",
]


@dataclass(frozen=True)
class StaticThresholdFilter:
    """Reject RTT samples below an absolute plausibility floor.

    RFC 9312 notes that RTTs below the propagation delay of any
    realistic path (a few hundred microseconds within a metro, a few
    milliseconds across a region) cannot be genuine.
    """

    min_rtt_ms: float = 1.0

    def __post_init__(self) -> None:
        if self.min_rtt_ms < 0:
            raise ValueError("threshold must be non-negative")

    def filter_rtts(self, rtts_ms: Sequence[float]) -> list[float]:
        """Return the samples that survive the floor."""
        return [sample for sample in rtts_ms if sample >= self.min_rtt_ms]


@dataclass(frozen=True)
class DynamicThresholdFilter:
    """Hold-time heuristic: reject edges arriving implausibly soon.

    After accepting an edge, further edges within
    ``fraction * current_estimate`` are rejected and do not update the
    estimate.  The estimate starts with the first observed interval.
    RFC 9312 sketches this as ignoring edges for some portion of the
    measured RTT; Kunze et al. (2021) used a similar scheme on P4
    hardware.
    """

    fraction: float = 0.125

    def __post_init__(self) -> None:
        if not 0.0 < self.fraction < 1.0:
            raise ValueError("fraction must be in (0, 1)")

    def filter_edges(self, edges: Sequence[SpinEdge]) -> list[SpinEdge]:
        """Return the edges that survive the hold time."""
        accepted: list[SpinEdge] = []
        estimate_ms: float | None = None
        for edge in edges:
            if not accepted:
                accepted.append(edge)
                continue
            interval = edge.time_ms - accepted[-1].time_ms
            if estimate_ms is not None and interval < self.fraction * estimate_ms:
                continue
            accepted.append(edge)
            if len(accepted) >= 2:
                estimate_ms = interval
        return accepted

    def filter_rtts_from_edges(self, edges: Sequence[SpinEdge]) -> list[float]:
        """Convenience: filtered edges → RTT samples."""
        return spin_rtts_from_edges(self.filter_edges(edges))


@dataclass(frozen=True)
class PacketNumberFilter:
    """Drop packets whose packet number regresses, then detect edges.

    This reproduces, at the observer, the endpoints' "highest packet
    number wins" rule: a reordered packet can no longer fabricate a
    spurious edge.  Operates on the raw received packet stream.
    """

    def filter_packets(
        self, packets: Iterable[tuple[float, int, bool]]
    ) -> list[tuple[float, int, bool]]:
        """Keep only packets advancing the packet number high-water mark."""
        kept: list[tuple[float, int, bool]] = []
        highest: int | None = None
        for time_ms, packet_number, spin in packets:
            if highest is not None and packet_number <= highest:
                continue
            highest = packet_number
            kept.append((time_ms, packet_number, spin))
        return kept


def apply_filters(
    rtts_ms: Sequence[float],
    static_filter: StaticThresholdFilter | None = None,
) -> list[float]:
    """Apply the default RFC 9312 sample-level filtering chain."""
    samples = list(rtts_ms)
    if static_filter is not None:
        samples = static_filter.filter_rtts(samples)
    return samples
