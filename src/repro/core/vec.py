"""The Valid Edge Counter (VEC) — De Vaere et al., CoNEXT 2018.

The paper's related work (Section 2.2) discusses the original three-bit
spin proposal: alongside the spin bit, two bits carry a saturating
counter that marks *valid* edges, letting observers discard spurious
ones.  The VEC never entered RFC 9000, which is one reason the paper
calls for more robust filtering; this module implements it as an
optional extension so the ablation benchmarks can quantify what was
lost.

Semantics (simplified from the original paper):

* a packet that does not start a new spin period carries VEC 0;
* an endpoint emitting an *edge* (its outgoing spin value differs from
  the value it last sent) sets VEC to the counter of the packet that
  triggered its state change, incremented and saturated at 3;
* an observer treats packets with ``VEC >= threshold`` (default 3) as
  valid edges and measures the time between consecutive ones.

Because a reordered packet produces a *local* value flip at the
observer but was not an edge at its sender, it carries VEC 0 and is
ignored — the failure mode of Fig. 1b disappears by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["VecObserver", "VecSenderState"]


class VecSenderState:
    """Endpoint-side VEC bookkeeping for outgoing 1-RTT packets.

    Driven by the endpoint in two places: :meth:`on_packet_received`
    whenever a 1-RTT packet arrives (mirroring the spin state update),
    and :meth:`vec_for_outgoing` when stamping an outgoing header.
    """

    def __init__(self) -> None:
        self._largest_received_pn: int | None = None
        self._incoming_edge_vec = 0
        self._incoming_last_spin: bool | None = None
        self._outgoing_last_spin: bool | None = None

    def on_packet_received(self, packet_number: int, spin_bit: bool, vec: int) -> None:
        """Track the VEC of the packet that last flipped the peer signal."""
        if (
            self._largest_received_pn is not None
            and packet_number <= self._largest_received_pn
        ):
            return
        self._largest_received_pn = packet_number
        if self._incoming_last_spin is None or spin_bit != self._incoming_last_spin:
            self._incoming_edge_vec = vec
        self._incoming_last_spin = spin_bit

    def vec_for_outgoing(self, spin_bit: bool) -> int:
        """The VEC value for an outgoing packet carrying ``spin_bit``."""
        is_edge = self._outgoing_last_spin is None or spin_bit != self._outgoing_last_spin
        self._outgoing_last_spin = spin_bit
        if not is_edge:
            return 0
        return min(self._incoming_edge_vec + 1, 3)


@dataclass
class VecObserver:
    """Passive observer using VEC marks instead of value transitions.

    ``threshold`` is the minimum counter value accepted as a valid edge;
    3 means the edge completed a full validated loop.
    """

    threshold: int = 3
    edge_times_ms: list[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not 1 <= self.threshold <= 3:
            raise ValueError("threshold must be between 1 and 3")

    def on_packet(self, time_ms: float, vec: int) -> None:
        """Feed one received 1-RTT packet (arrival order)."""
        if vec >= self.threshold:
            self.edge_times_ms.append(time_ms)

    def rtts_ms(self) -> list[float]:
        """Valid-edge-to-valid-edge intervals."""
        return [
            current - previous
            for previous, current in zip(self.edge_times_ms, self.edge_times_ms[1:])
        ]
