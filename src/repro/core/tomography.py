"""On-path RTT decomposition ("network tomography", paper Section 6).

The paper names network tomography (Coates et al.) as a practical
application of spin-bit measurements.  RFC 9312 describes the underlying
trick: an observer that sees *both* directions of a connection can split
the end-to-end RTT at its own position.  When the spin value flips on a
client-to-server packet at time ``t1`` and the reflected flip comes back
on a server-to-client packet at ``t2``, then ``t2 - t1`` is the
*upstream* component (observer → server → observer); the time from that
reflected edge to the client's next flip is the *downstream* component
(observer → client → observer).  Their sum is the full spin period.

:class:`SpinTomographyObserver` implements this edge-pairing on raw
datagrams from a mid-path tap (see
:meth:`repro.netsim.path.Path.install_tap`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.quic.datagram import decode_datagram
from repro.quic.packet import HeaderParseError, ShortHeader
from repro.quic.packet_number import decode_packet_number

__all__ = ["ComponentSample", "SpinTomographyObserver"]


@dataclass(frozen=True)
class ComponentSample:
    """One decomposed spin cycle at the observation point."""

    upstream_ms: float
    downstream_ms: float

    @property
    def total_ms(self) -> float:
        """The full spin period this cycle measured."""
        return self.upstream_ms + self.downstream_ms


@dataclass
class _DirectionState:
    largest_pn: int | None = None
    last_spin: bool | None = None

    def update(self, truncated: int, pn_length: int, spin: bool) -> tuple[int, bool]:
        """Reconstruct the pn; return (full_pn, is_new_highest)."""
        full = decode_packet_number(truncated, pn_length, self.largest_pn)
        is_new = self.largest_pn is None or full > self.largest_pn
        if is_new:
            self.largest_pn = full
        return full, is_new


class SpinTomographyObserver:
    """Splits the spin period into upstream and downstream components.

    Feed client-to-server datagrams via :meth:`on_client_datagram` and
    server-to-client ones via :meth:`on_server_datagram`, each stamped
    with the tap-local observation time.  Edges are detected per
    direction on the highest-packet-number signal (reordered stragglers
    cannot fabricate them).
    """

    def __init__(self, short_dcid_length: int = 8):
        self.short_dcid_length = short_dcid_length
        self.samples: list[ComponentSample] = []
        self.parse_errors = 0
        self._client_state = _DirectionState()
        self._server_state = _DirectionState()
        #: Time of the most recent client edge awaiting its reflection.
        self._pending_client_edge_ms: float | None = None
        #: Time of the most recent reflected (server) edge awaiting the
        #: client's next flip.
        self._pending_server_edge_ms: float | None = None
        self._pending_upstream_ms: float | None = None

    # ------------------------------------------------------------------

    def on_client_datagram(self, time_ms: float, data: bytes) -> None:
        """Process a client-to-server datagram seen at the tap."""
        for spin in self._short_header_spins(data, self._client_state):
            self._on_client_edge(time_ms, spin)

    def on_server_datagram(self, time_ms: float, data: bytes) -> None:
        """Process a server-to-client datagram seen at the tap."""
        for spin in self._short_header_spins(data, self._server_state):
            self._on_server_edge(time_ms, spin)

    def upstream_rtts_ms(self) -> list[float]:
        """Observer → server → observer components."""
        return [sample.upstream_ms for sample in self.samples]

    def downstream_rtts_ms(self) -> list[float]:
        """Observer → client → observer components."""
        return [sample.downstream_ms for sample in self.samples]

    # ------------------------------------------------------------------

    def _short_header_spins(self, data: bytes, state: _DirectionState):
        """Yield the spin value whenever this direction's signal flips."""
        try:
            packets = decode_datagram(data, self.short_dcid_length)
        except (HeaderParseError, ValueError):
            self.parse_errors += 1
            return
        for packet in packets:
            header = packet.header
            if not isinstance(header, ShortHeader):
                continue
            _, is_new = state.update(
                header.packet_number, header.pn_length, header.spin_bit
            )
            if not is_new:
                continue
            if state.last_spin is None:
                state.last_spin = header.spin_bit
                continue
            if header.spin_bit != state.last_spin:
                state.last_spin = header.spin_bit
                yield header.spin_bit

    def _on_client_edge(self, time_ms: float, _: bool) -> None:
        if self._pending_server_edge_ms is not None and self._pending_upstream_ms is not None:
            downstream = time_ms - self._pending_server_edge_ms
            self.samples.append(
                ComponentSample(
                    upstream_ms=self._pending_upstream_ms, downstream_ms=downstream
                )
            )
            self._pending_server_edge_ms = None
            self._pending_upstream_ms = None
        self._pending_client_edge_ms = time_ms

    def _on_server_edge(self, time_ms: float, _: bool) -> None:
        if self._pending_client_edge_ms is None:
            return  # reflection without an observed cause (start-up)
        self._pending_upstream_ms = time_ms - self._pending_client_edge_ms
        self._pending_server_edge_ms = time_ms
        self._pending_client_edge_ms = None
