"""Spin-bit endpoint behaviour (RFC 9000 Section 17.4, RFC 9312).

Two layers live here:

* the **wire mechanism** — :class:`SpinBitState` implements the exact
  client (invert) and server (reflect) rules keyed on the highest
  received packet number; and
* the **deployment policy** — :class:`SpinPolicy` /
  :class:`SpinDeploymentConfig` capture how real stacks decide what to
  put in the bit: participate, fix it at zero or one, or grease it
  per packet / per connection, plus the RFC 9000 "MUST disable on at
  least one in every 16 connections" rule (one in eight per RFC 9312).

The adoption and configuration analyses (Tables 1-4, Figure 2 of the
paper) are entirely about which of these policies servers run.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from enum import Enum

__all__ = [
    "EndpointRole",
    "SpinBitState",
    "SpinDeploymentConfig",
    "SpinPolicy",
    "resolve_connection_policy",
]


class EndpointRole(Enum):
    """Which side of the connection an endpoint plays."""

    CLIENT = "client"
    SERVER = "server"


class SpinPolicy(Enum):
    """Per-connection spin-bit behaviour of one endpoint.

    ``SPIN`` is active participation; the remaining values are the
    disabling strategies RFC 9000/9312 discuss and the paper classifies
    in Table 3 (All Zero / All One / greasing).
    """

    SPIN = "spin"
    ALWAYS_ZERO = "always_zero"
    ALWAYS_ONE = "always_one"
    GREASE_PER_PACKET = "grease_per_packet"
    GREASE_PER_CONNECTION = "grease_per_connection"

    @property
    def participates(self) -> bool:
        return self is SpinPolicy.SPIN


class SpinBitState:
    """The RFC 9000 spin-bit state machine for one endpoint.

    A client inverts the spin value of the highest-numbered packet it
    has received; a server reflects it.  The state machine is driven by
    *reconstructed* packet numbers, so reordered packets with lower
    numbers never move the state backwards — this is precisely why
    reordering only corrupts *observer* measurements (Fig. 1b of the
    paper), not the endpoints' signal generation.
    """

    __slots__ = (
        "role",
        "policy",
        "_rng",
        "_current_value",
        "_largest_received_pn",
        "_connection_value",
    )

    def __init__(self, role: EndpointRole, policy: SpinPolicy, rng: random.Random | None = None):
        self.role = role
        self.policy = policy
        self._rng = rng
        if policy in (SpinPolicy.GREASE_PER_PACKET, SpinPolicy.GREASE_PER_CONNECTION):
            if rng is None:
                raise ValueError(f"policy {policy.value} requires an rng")
        self._current_value = False
        self._largest_received_pn: int | None = None
        if policy is SpinPolicy.GREASE_PER_CONNECTION:
            self._connection_value = bool(self._rng.getrandbits(1))

    def on_packet_received(self, packet_number: int, spin_bit: bool) -> None:
        """Update state from an incoming 1-RTT packet.

        Only packets with a packet number larger than every previously
        processed one change the state (RFC 9000 17.4).
        """
        if self._largest_received_pn is not None and packet_number <= self._largest_received_pn:
            return
        self._largest_received_pn = packet_number
        if self.role is EndpointRole.CLIENT:
            self._current_value = not spin_bit
        else:
            self._current_value = spin_bit

    def outgoing_value(self) -> bool:
        """The spin-bit value to place on the next outgoing 1-RTT packet."""
        if self.policy is SpinPolicy.SPIN:
            return self._current_value
        if self.policy is SpinPolicy.ALWAYS_ZERO:
            return False
        if self.policy is SpinPolicy.ALWAYS_ONE:
            return True
        if self.policy is SpinPolicy.GREASE_PER_PACKET:
            return bool(self._rng.getrandbits(1))
        return self._connection_value

    @property
    def largest_received_pn(self) -> int | None:
        """Highest packet number processed so far (None before any)."""
        return self._largest_received_pn


@dataclass(frozen=True, slots=True)
class SpinDeploymentConfig:
    """How a deployment (server stack or client build) treats the spin bit.

    ``base_policy`` applies to connections where the mechanism is
    enabled.  When ``base_policy`` participates, RFC 9000 requires the
    endpoint to disable the bit on at least one in every
    ``disable_one_in_n`` connections (16 per RFC 9000; 8 per RFC 9312);
    on such connections the endpoint falls back to
    ``disabled_policy``.  Stacks that never implement the spin bit use a
    non-participating ``base_policy`` and ``disable_one_in_n = None``.
    """

    base_policy: SpinPolicy
    disable_one_in_n: int | None = 16
    disabled_policy: SpinPolicy = SpinPolicy.ALWAYS_ZERO

    def __post_init__(self) -> None:
        if self.base_policy.participates:
            if self.disable_one_in_n is not None and self.disable_one_in_n < 1:
                raise ValueError("disable_one_in_n must be >= 1")
            if self.disabled_policy.participates:
                raise ValueError("disabled_policy must not participate")
        if not self.base_policy.participates and self.disable_one_in_n is not None:
            # A non-spinning deployment has nothing to disable.
            object.__setattr__(self, "disable_one_in_n", None)

    @property
    def ever_spins(self) -> bool:
        """Whether any connection of this deployment can show spin activity."""
        return self.base_policy.participates

    def expected_spin_share(self) -> float:
        """Expected fraction of connections with an *enabled* spin bit."""
        if not self.base_policy.participates:
            return 0.0
        if self.disable_one_in_n is None:
            return 1.0
        return 1.0 - 1.0 / self.disable_one_in_n


def resolve_connection_policy(
    config: SpinDeploymentConfig, rng: random.Random
) -> SpinPolicy:
    """Sample the effective policy for one new connection.

    Implements the per-connection 1-in-N disable draw that Figure 2 of
    the paper probes longitudinally.
    """
    if not config.base_policy.participates:
        return config.base_policy
    if config.disable_one_in_n is not None and rng.random() < 1.0 / config.disable_one_in_n:
        return config.disabled_policy
    return config.base_policy
