"""Accuracy metrics of Section 5.1.

For each connection the paper compares the mean of the spin-bit RTT
estimates (*spin*) with the mean of the QUIC stack's estimates (*QUIC*):

1. **Absolute accuracy** — ``abs = spin - QUIC`` (milliseconds;
   Figure 3).
2. **Relative accuracy** — the ratio of the means, always dividing by
   the smaller one and negating when ``spin < QUIC`` (Figure 4).  A
   value of +1.0 means exact agreement; +3.0 means the spin bit
   overestimates threefold; -2.0 means it underestimates twofold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

__all__ = ["AccuracyResult", "absolute_difference_ms", "compare_means", "mapped_ratio"]


def absolute_difference_ms(spin_mean_ms: float, quic_mean_ms: float) -> float:
    """Figure 3's metric: ``spin - QUIC`` in milliseconds."""
    return spin_mean_ms - quic_mean_ms


def mapped_ratio(spin_mean_ms: float, quic_mean_ms: float) -> float:
    """Figure 4's metric: ratio of means, sign-mapped.

    Divides the larger mean by the smaller and negates the result when
    the spin bit underestimates.  Both inputs must be positive: RTT
    means of real connections are.  Exact equality maps to +1.0.
    """
    if spin_mean_ms <= 0 or quic_mean_ms <= 0:
        raise ValueError("RTT means must be positive")
    if spin_mean_ms >= quic_mean_ms:
        return spin_mean_ms / quic_mean_ms
    return -(quic_mean_ms / spin_mean_ms)


@dataclass(frozen=True)
class AccuracyResult:
    """Both per-connection accuracy metrics plus their inputs."""

    spin_mean_ms: float
    quic_mean_ms: float
    absolute_ms: float
    ratio: float

    @property
    def overestimates(self) -> bool:
        """Whether the spin bit overestimates the stack RTT."""
        return self.absolute_ms > 0

    def within_factor(self, factor: float) -> bool:
        """Whether the ratio magnitude is at most ``factor``."""
        if factor < 1.0:
            raise ValueError("factor must be >= 1")
        return abs(self.ratio) <= factor


def compare_means(
    spin_rtts_ms: Sequence[float], stack_rtts_ms: Sequence[float]
) -> AccuracyResult:
    """Compute the per-connection accuracy record of Section 5.1.

    Raises :class:`ValueError` when either series is empty — callers
    filter such connections out of the accuracy analysis first.
    """
    if not spin_rtts_ms:
        raise ValueError("no spin-bit RTT samples")
    if not stack_rtts_ms:
        raise ValueError("no stack RTT samples")
    spin_mean = sum(spin_rtts_ms) / len(spin_rtts_ms)
    quic_mean = sum(stack_rtts_ms) / len(stack_rtts_ms)
    return AccuracyResult(
        spin_mean_ms=spin_mean,
        quic_mean_ms=quic_mean,
        absolute_ms=absolute_difference_ms(spin_mean, quic_mean),
        ratio=mapped_ratio(spin_mean, quic_mean),
    )
