"""Passive spin-bit observation (the paper's measurement core).

The scanner's vantage point is the client, so — exactly as in
Section 3.3 of the paper — the observer consumes the *received* packets
of a connection's qlog: for each 1-RTT packet the spin-bit state, the
packet number, and the arrival timestamp.  An RTT sample is the time
between two consecutive spin-bit value changes ("spin edges") in the
server-to-client stream.

Two orderings are analyzed:

* **R** (received): packets in arrival order — what an on-path observer
  sees, vulnerable to reordering-induced ultra-short spin cycles
  (Fig. 1b of the paper);
* **S** (sorted): packets re-sorted by reconstructed packet number,
  which undoes reordering and isolates its impact (Section 5.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, NamedTuple, Sequence

from repro.qlog.recorder import PacketEvent, TraceRecorder

__all__ = [
    "SpinEdge",
    "SpinObservation",
    "SpinObserver",
    "StreamingSpinObserver",
    "observe_recorder",
    "spin_rtts_from_edges",
]


class SpinEdge(NamedTuple):
    """One detected spin-bit transition.

    ``time_ms`` is the arrival time of the packet that revealed the new
    value; ``packet_number`` identifies that packet; ``new_value`` is
    the spin value after the flip.

    A named tuple rather than a dataclass: edges are the highest-volume
    decoded object in the artifact path, and tuple construction (also in
    bulk via ``map``) is several times cheaper than dataclass ``__init__``.
    """

    time_ms: float
    packet_number: int
    new_value: bool


@dataclass(slots=True)
class SpinObservation:
    """Everything the observer extracted from one connection.

    ``rtts_received_ms`` are the edge-to-edge samples in arrival order
    (the paper's *R*); ``rtts_sorted_ms`` use packet-number order (*S*).
    ``values_seen`` records which spin values occurred at all, which
    drives the Table 3 classification.
    """

    packets_seen: int = 0
    values_seen: set[bool] = field(default_factory=set)
    edges_received: list[SpinEdge] = field(default_factory=list)
    edges_sorted: list[SpinEdge] = field(default_factory=list)
    rtts_received_ms: list[float] = field(default_factory=list)
    rtts_sorted_ms: list[float] = field(default_factory=list)

    @property
    def spins(self) -> bool:
        """Spin-bit *activity*: both values observed on the connection.

        This is the paper's candidate criterion for spin-bit support —
        necessary but not sufficient, since per-connection greasing also
        produces both values (filtered later by the grease filter).
        """
        return len(self.values_seen) == 2

    @property
    def all_zero(self) -> bool:
        return self.values_seen == {False}

    @property
    def all_one(self) -> bool:
        return self.values_seen == {True}

    def reordering_changed_result(self) -> bool:
        """Whether the R and S sample series differ at all."""
        return self.rtts_received_ms != self.rtts_sorted_ms


class SpinObserver:
    """Incremental single-direction spin observer.

    Feed packets via :meth:`on_packet` in arrival order; the observer
    maintains both the arrival-order edge stream and the packet-number-
    sorted reconstruction, then exposes a :class:`SpinObservation`.
    """

    __slots__ = ("_packets",)

    def __init__(self) -> None:
        self._packets: list[tuple[float, int, bool]] = []

    def on_packet(self, time_ms: float, packet_number: int, spin_bit: bool) -> None:
        """Record one received 1-RTT packet."""
        self._packets.append((time_ms, packet_number, spin_bit))

    def observation(self) -> SpinObservation:
        """Compute the final observation for this connection."""
        observation = SpinObservation(packets_seen=len(self._packets))
        for _, _, spin in self._packets:
            observation.values_seen.add(spin)

        observation.edges_received = _detect_edges(self._packets)
        observation.rtts_received_ms = spin_rtts_from_edges(observation.edges_received)

        # S variant: stable sort by packet number; duplicate packet
        # numbers (retransmitted datagrams recorded twice) keep arrival
        # order among themselves.
        ordered = sorted(self._packets, key=lambda item: item[1])
        observation.edges_sorted = _detect_edges(ordered)
        observation.rtts_sorted_ms = spin_rtts_from_edges(observation.edges_sorted)
        return observation


class StreamingSpinObserver:
    """O(1)-memory received-order spin observer for long-running taps.

    :class:`SpinObserver` buffers every packet so it can compute both
    the R (received) and S (packet-number-sorted) orderings — fine for
    one connection, unbounded for a monitoring service that watches
    thousands of flows for hours.  This variant detects spin edges
    incrementally in arrival order and *retires* each RTT sample as it
    is produced: through the ``on_sample(time_ms, rtt_ms)`` callback
    when one is given, otherwise into a buffer drained with
    :meth:`take_samples`.  The S ordering is unavailable by
    construction (it needs the full packet sequence);
    :meth:`observation` reports received-order results only.
    """

    __slots__ = (
        "on_sample",
        "packets_seen",
        "values_seen",
        "edges_seen",
        "_last_value",
        "_last_edge_ms",
        "_pending",
    )

    def __init__(
        self, on_sample: "Callable[[float, float], None] | None" = None
    ) -> None:
        self.on_sample = on_sample
        self.packets_seen = 0
        self.values_seen: set[bool] = set()
        self.edges_seen = 0
        self._last_value: bool | None = None
        self._last_edge_ms: float | None = None
        self._pending: list[float] = []

    def on_packet(self, time_ms: float, packet_number: int, spin_bit: bool) -> None:
        """Record one received 1-RTT packet (arrival order)."""
        self.packets_seen += 1
        self.values_seen.add(spin_bit)
        last = self._last_value
        if spin_bit != last:
            self._last_value = spin_bit
            if last is None:
                return
            self.edges_seen += 1
            previous_edge = self._last_edge_ms
            self._last_edge_ms = time_ms
            if previous_edge is not None:
                rtt = time_ms - previous_edge
                if self.on_sample is not None:
                    self.on_sample(time_ms, rtt)
                else:
                    self._pending.append(rtt)

    def take_samples(self) -> list[float]:
        """Drain RTT samples buffered since the last call (no callback mode)."""
        samples = self._pending
        self._pending = []
        return samples

    def observation(self) -> SpinObservation:
        """A summary observation; received-order series are not retained.

        ``rtts_received_ms`` holds only the samples not yet retired (the
        pending buffer), so a drained observer reports counts and
        ``values_seen`` but empty series — by design: the samples live
        downstream in the aggregation layer.
        """
        return SpinObservation(
            packets_seen=self.packets_seen,
            values_seen=set(self.values_seen),
            rtts_received_ms=list(self._pending),
        )


def _detect_edges(packets: Sequence[tuple[float, int, bool]]) -> list[SpinEdge]:
    """Find value transitions between consecutive packets of a stream."""
    edges: list[SpinEdge] = []
    previous_value: bool | None = None
    for time_ms, packet_number, spin in packets:
        if previous_value is not None and spin != previous_value:
            edges.append(SpinEdge(time_ms=time_ms, packet_number=packet_number, new_value=spin))
        previous_value = spin
    return edges


def spin_rtts_from_edges(edges: Iterable[SpinEdge]) -> list[float]:
    """Edge-to-edge intervals: the spin-bit RTT sample series."""
    rtts: list[float] = []
    previous_time: float | None = None
    for edge in edges:
        if previous_time is not None:
            rtts.append(edge.time_ms - previous_time)
        previous_time = edge.time_ms
    return rtts


def observe_recorder(recorder: TraceRecorder) -> SpinObservation:
    """Run the observer over a connection trace's received packets."""
    observer = SpinObserver()
    for event in recorder.received_short_header_packets():
        observer.on_packet(event.time_ms, event.packet_number, bool(event.spin_bit))
    return observer.observation()
