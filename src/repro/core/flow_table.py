"""Flow-table spin monitoring: many concurrent connections, one tap.

A real on-path measurement point (the operator deployment the paper
motivates, or the P4 hardware observer of Kunze et al. 2021) does not
see one connection at a time — it sees an interleaved packet stream and
must demultiplex it into flows before spin measurement is possible.
:class:`SpinFlowTable` implements that stage:

* flows are keyed by the *destination connection ID* of the
  server-to-client direction (the client's CID, stable for the
  connection's lifetime in this model);
* each flow gets its own packet-number reconstruction and spin observer
  (by default :class:`~repro.core.observer.SpinObserver` state; a
  long-running monitor plugs in the bounded-memory
  :class:`~repro.core.observer.StreamingSpinObserver` instead);
* the table is bounded like a switch/NIC flow table: idle flows expire
  after a timeout, and at capacity either the least-recently-seen flow
  is evicted or new flows are dropped (``overflow_policy``).

Recency is maintained as an :class:`~collections.OrderedDict` in
last-seen order, so capacity eviction pops the front in O(1) and the
idle sweep only touches actually-stale entries.  Idle sweeps are
amortized: at most one per ``idle_timeout_ms / 4`` of *stream* time, so
per-datagram cost stays O(1) even with millions of flows resident.

Connection migration: with a
:class:`~repro.core.flow_resolver.FlowKeyResolver` attached (and the
tap supplying 4-tuples), flow keys survive NAT rebinds and CID
rotations, and non-QUIC datagrams are classified instead of counted as
parse errors.  Without one, behaviour — and every emitted byte — is
exactly the legacy DCID-keyed table, except that zero-length-CID flows
with a known 4-tuple are keyed by that tuple rather than all colliding
on the single ``"(empty)"`` key.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable

from repro.core.flow_resolver import FlowKeyResolver, tuple_flow_key
from repro.core.observer import SpinObservation, SpinObserver
from repro.quic.datagram import decode_datagram
from repro.quic.packet import HeaderParseError, LongHeader, ShortHeader

__all__ = ["FlowRecord", "FlowTableStats", "SpinFlowTable"]

#: Valid ``overflow_policy`` values: evict the LRU flow to make room, or
#: drop packets of not-yet-tracked flows while the table is full.
OVERFLOW_POLICIES = ("evict-lru", "drop-new")


@dataclass(slots=True)
class FlowRecord:
    """Per-flow observer state."""

    flow_key: str
    first_seen_ms: float
    last_seen_ms: float
    packets: int = 0
    _observer: SpinObserver = field(default_factory=SpinObserver)
    _largest_pn: int | None = None

    def observation(self) -> SpinObservation:
        """The flow's accumulated spin observation."""
        return self._observer.observation()


@dataclass(slots=True)
class FlowTableStats:
    """Table health counters (the monitor's gauge/counter export).

    ``flows_evicted`` counts capacity evictions, ``flows_expired`` idle
    timeouts, ``overflow_drops`` packets discarded under the
    ``drop-new`` policy because the table was full.  ``peak_flows`` is
    the high-water mark of resident flows.
    """

    datagrams: int = 0
    packets: int = 0
    short_header_packets: int = 0
    parse_errors: int = 0
    flows_created: int = 0
    flows_evicted: int = 0
    flows_expired: int = 0
    overflow_drops: int = 0
    peak_flows: int = 0
    idle_sweeps: int = 0

    @property
    def flows_retired(self) -> int:
        """Flows that left the table (evicted + expired)."""
        return self.flows_evicted + self.flows_expired

    def as_dict(self) -> dict:
        """JSON-serializable counter block (snapshot export)."""
        return {
            "datagrams": self.datagrams,
            "packets": self.packets,
            "short_header_packets": self.short_header_packets,
            "parse_errors": self.parse_errors,
            "flows_created": self.flows_created,
            "flows_evicted": self.flows_evicted,
            "flows_expired": self.flows_expired,
            "overflow_drops": self.overflow_drops,
            "peak_flows": self.peak_flows,
            "idle_sweeps": self.idle_sweeps,
        }


class SpinFlowTable:
    """Demultiplexes a tapped packet stream into per-flow spin state.

    ``max_flows`` bounds the table; when full, ``overflow_policy``
    decides between evicting the least-recently-seen flow
    (``"evict-lru"``, the default) and dropping packets of new flows
    (``"drop-new"``, counting ``stats.overflow_drops``).
    ``idle_timeout_ms`` retires flows that stay silent — both behaviours
    mirror switch/NIC flow tables.

    Retired flows are appended to ``evicted`` unless ``retain_retired``
    is false (a long-running monitor must not accumulate them) and are
    always reported through the ``on_retire(flow, reason)`` hook, with
    ``reason`` one of ``"evicted"`` / ``"expired"``.  ``on_packet(flow,
    time_ms)`` fires for every demultiplexed short-header packet;
    ``observer_factory(flow_key)`` swaps the per-flow observer
    implementation.
    """

    __slots__ = (
        "short_dcid_length",
        "max_flows",
        "idle_timeout_ms",
        "overflow_policy",
        "retain_retired",
        "observer_factory",
        "on_retire",
        "on_packet",
        "resolver",
        "flows",
        "evicted",
        "stats",
        "_next_sweep_ms",
        "_m_datagrams",
        "_m_parse_errors",
        "_m_packets",
        "_m_short_packets",
        "_m_created",
        "_m_evicted",
        "_m_expired",
        "_m_drops",
        "_m_sweeps",
        "_m_active",
        "_m_peak",
    )

    def __init__(
        self,
        short_dcid_length: int = 8,
        max_flows: int = 10_000,
        idle_timeout_ms: float = 30_000.0,
        overflow_policy: str = "evict-lru",
        retain_retired: bool = True,
        observer_factory: Callable[[str], SpinObserver] | None = None,
        on_retire: Callable[[FlowRecord, str], None] | None = None,
        on_packet: Callable[[FlowRecord, float], None] | None = None,
        resolver: FlowKeyResolver | None = None,
        metrics=None,
    ):
        if max_flows < 1:
            raise ValueError("max_flows must be positive")
        if idle_timeout_ms <= 0:
            raise ValueError("idle_timeout_ms must be positive")
        if overflow_policy not in OVERFLOW_POLICIES:
            raise ValueError(
                f"overflow_policy must be one of {OVERFLOW_POLICIES}, "
                f"got {overflow_policy!r}"
            )
        self.short_dcid_length = short_dcid_length
        self.max_flows = max_flows
        self.idle_timeout_ms = idle_timeout_ms
        self.overflow_policy = overflow_policy
        self.retain_retired = retain_retired
        self.observer_factory = observer_factory
        self.on_retire = on_retire
        self.on_packet = on_packet
        #: Optional migration-aware key resolution + transport
        #: classification (repro.core.flow_resolver).
        self.resolver = resolver
        #: Resident flows in last-seen order (front = least recent).
        self.flows: OrderedDict[str, FlowRecord] = OrderedDict()
        self.evicted: list[FlowRecord] = []
        self.stats = FlowTableStats()
        #: Stream time before which no idle sweep runs (amortization).
        self._next_sweep_ms = float("-inf")
        # Telemetry bindings (repro.telemetry.MetricsRegistry): the
        # registry is the metrics plane; ``stats`` remains the
        # snapshot-schema source so existing exports stay byte-stable.
        if metrics is not None:
            self._m_datagrams = metrics.counter("flow_table.datagrams")
            self._m_parse_errors = metrics.counter("flow_table.parse_errors")
            self._m_packets = metrics.counter("flow_table.packets")
            self._m_short_packets = metrics.counter(
                "flow_table.short_header_packets"
            )
            self._m_created = metrics.counter("flow_table.flows_created")
            self._m_evicted = metrics.counter("flow_table.flows_evicted")
            self._m_expired = metrics.counter("flow_table.flows_expired")
            self._m_drops = metrics.counter("flow_table.overflow_drops")
            self._m_sweeps = metrics.counter("flow_table.idle_sweeps")
            self._m_active = metrics.gauge("flow_table.active_flows")
            self._m_peak = metrics.gauge("flow_table.peak_flows", agg="max")
        else:
            self._m_datagrams = None
            self._m_parse_errors = None
            self._m_packets = None
            self._m_short_packets = None
            self._m_created = None
            self._m_evicted = None
            self._m_expired = None
            self._m_drops = None
            self._m_sweeps = None
            self._m_active = None
            self._m_peak = None

    @property
    def parse_errors(self) -> int:
        """Undecodable datagrams seen so far (alias of ``stats``)."""
        return self.stats.parse_errors

    @property
    def active_flows(self) -> int:
        """Number of flows currently resident."""
        return len(self.flows)

    def on_server_datagram(
        self, time_ms: float, data: bytes, tuple4: tuple | None = None
    ) -> None:
        """Process one server-to-client datagram from the tap.

        ``tuple4`` is the datagram's 4-tuple when the tap knows it
        (source ip/port, destination ip/port); it keys zero-length-CID
        flows and feeds the resolver's migration linkage.
        """
        stats = self.stats
        resolver = self.resolver
        stats.datagrams += 1
        if self._m_datagrams is not None:
            self._m_datagrams.inc()
        if time_ms >= self._next_sweep_ms:
            self._expire_idle(time_ms)
        try:
            packets = decode_datagram(data, self.short_dcid_length)
        except (HeaderParseError, ValueError, IndexError):
            # IndexError covers datagrams truncated mid-header (fault
            # injection, capture loss); a monitor must count, not crash.
            if resolver is not None:
                if resolver.classify_non_quic(data, tuple4) == "tcp":
                    return  # classified, not an error
            stats.parse_errors += 1
            if self._m_parse_errors is not None:
                self._m_parse_errors.inc()
            return
        if resolver is not None:
            resolver.note_quic_datagram()
        for packet in packets:
            stats.packets += 1
            if self._m_packets is not None:
                self._m_packets.inc()
            header = packet.header
            if isinstance(header, LongHeader):
                continue
            if not isinstance(header, ShortHeader):
                continue  # version negotiation packets carry no flow data
            if resolver is not None:
                key = resolver.resolve(header.destination_cid.hex, tuple4)
            elif not header.destination_cid.value and tuple4 is not None:
                key = tuple_flow_key(tuple4)
            else:
                key = header.destination_cid.hex or "(empty)"
            flow = self._flow(key, time_ms)
            if flow is None:
                stats.overflow_drops += 1
                if self._m_drops is not None:
                    self._m_drops.inc()
                continue
            stats.short_header_packets += 1
            if self._m_short_packets is not None:
                self._m_short_packets.inc()
            flow.last_seen_ms = time_ms
            flow.packets += 1
            full_pn = self._reconstruct(flow, header.packet_number, header.pn_length)
            flow._observer.on_packet(time_ms, full_pn, header.spin_bit)
            if self.on_packet is not None:
                self.on_packet(flow, time_ms)

    def observations(self) -> dict[str, SpinObservation]:
        """Current per-flow observations (active flows only)."""
        return {key: flow.observation() for key, flow in self.flows.items()}

    def all_flows(self) -> list[FlowRecord]:
        """Active plus retained retired flows, in first-seen order."""
        combined = list(self.flows.values()) + self.evicted
        combined.sort(key=lambda flow: flow.first_seen_ms)
        return combined

    # ------------------------------------------------------------------

    def _flow(self, key: str, time_ms: float) -> FlowRecord | None:
        flow = self.flows.get(key)
        if flow is not None:
            self.flows.move_to_end(key)
            return flow
        if len(self.flows) >= self.max_flows:
            if self.overflow_policy == "drop-new":
                return None
            # Front of the OrderedDict is the least recently seen flow.
            _, lru = self.flows.popitem(last=False)
            self.stats.flows_evicted += 1
            if self._m_evicted is not None:
                self._m_evicted.inc()
            self._retire(lru, "evicted")
        if self.observer_factory is not None:
            observer = self.observer_factory(key)
            flow = FlowRecord(
                flow_key=key,
                first_seen_ms=time_ms,
                last_seen_ms=time_ms,
                _observer=observer,
            )
        else:
            flow = FlowRecord(
                flow_key=key, first_seen_ms=time_ms, last_seen_ms=time_ms
            )
        self.flows[key] = flow
        self.stats.flows_created += 1
        if len(self.flows) > self.stats.peak_flows:
            self.stats.peak_flows = len(self.flows)
        if self._m_created is not None:
            self._m_created.inc()
            self._m_active.set(len(self.flows))
            self._m_peak.set_max(len(self.flows))
        return flow

    def _expire_idle(self, now_ms: float) -> None:
        self._next_sweep_ms = now_ms + self.idle_timeout_ms / 4.0
        self.stats.idle_sweeps += 1
        if self._m_sweeps is not None:
            self._m_sweeps.inc()
        deadline = now_ms - self.idle_timeout_ms
        flows = self.flows
        # Recency order means stale flows cluster at the front; stop at
        # the first fresh one instead of sweeping the whole table.
        expired = 0
        while flows:
            key = next(iter(flows))
            flow = flows[key]
            if flow.last_seen_ms >= deadline:
                break
            del flows[key]
            self.stats.flows_expired += 1
            expired += 1
            self._retire(flow, "expired")
        if expired and self._m_expired is not None:
            self._m_expired.inc(expired)
            self._m_active.set(len(flows))

    def _retire(self, flow: FlowRecord, reason: str) -> None:
        if self.resolver is not None:
            self.resolver.on_flow_retired(flow.flow_key)
        if self.retain_retired:
            self.evicted.append(flow)
        if self.on_retire is not None:
            self.on_retire(flow, reason)

    @staticmethod
    def _reconstruct(flow: FlowRecord, truncated: int, pn_length: int) -> int:
        from repro.quic.packet_number import decode_packet_number

        full = decode_packet_number(truncated, pn_length, flow._largest_pn)
        if flow._largest_pn is None or full > flow._largest_pn:
            flow._largest_pn = full
        return full
