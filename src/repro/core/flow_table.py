"""Flow-table spin monitoring: many concurrent connections, one tap.

A real on-path measurement point (the operator deployment the paper
motivates, or the P4 hardware observer of Kunze et al. 2021) does not
see one connection at a time — it sees an interleaved packet stream and
must demultiplex it into flows before spin measurement is possible.
:class:`SpinFlowTable` implements that stage:

* flows are keyed by the *destination connection ID* of the
  server-to-client direction (the client's CID, stable for the
  connection's lifetime in this model);
* each flow gets its own packet-number reconstruction and spin observer
  (reusing :class:`~repro.core.wire_observer.WireObserver` state);
* idle flows are evicted after a configurable timeout, exactly like a
  hardware flow table with limited capacity would.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.observer import SpinObservation, SpinObserver
from repro.quic.datagram import decode_datagram
from repro.quic.packet import HeaderParseError, LongHeader, ShortHeader

__all__ = ["FlowRecord", "SpinFlowTable"]


@dataclass
class FlowRecord:
    """Per-flow observer state."""

    flow_key: str
    first_seen_ms: float
    last_seen_ms: float
    packets: int = 0
    _observer: SpinObserver = field(default_factory=SpinObserver)
    _largest_pn: int | None = None

    def observation(self) -> SpinObservation:
        """The flow's accumulated spin observation."""
        return self._observer.observation()


class SpinFlowTable:
    """Demultiplexes a tapped packet stream into per-flow spin state.

    ``max_flows`` bounds the table; when full, the least recently seen
    flow is evicted (its observation is retired to ``evicted``).
    ``idle_timeout_ms`` retires flows that stay silent — both behaviours
    mirror switch/NIC flow tables.
    """

    def __init__(
        self,
        short_dcid_length: int = 8,
        max_flows: int = 10_000,
        idle_timeout_ms: float = 30_000.0,
    ):
        if max_flows < 1:
            raise ValueError("max_flows must be positive")
        if idle_timeout_ms <= 0:
            raise ValueError("idle_timeout_ms must be positive")
        self.short_dcid_length = short_dcid_length
        self.max_flows = max_flows
        self.idle_timeout_ms = idle_timeout_ms
        self.flows: dict[str, FlowRecord] = {}
        self.evicted: list[FlowRecord] = []
        self.parse_errors = 0

    def on_server_datagram(self, time_ms: float, data: bytes) -> None:
        """Process one server-to-client datagram from the tap."""
        self._expire_idle(time_ms)
        try:
            packets = decode_datagram(data, self.short_dcid_length)
        except (HeaderParseError, ValueError):
            self.parse_errors += 1
            return
        for packet in packets:
            header = packet.header
            if isinstance(header, LongHeader):
                continue
            if not isinstance(header, ShortHeader):
                continue  # version negotiation packets carry no flow data
            key = header.destination_cid.hex or "(empty)"
            flow = self._flow(key, time_ms)
            flow.last_seen_ms = time_ms
            flow.packets += 1
            full_pn = self._reconstruct(flow, header.packet_number, header.pn_length)
            flow._observer.on_packet(time_ms, full_pn, header.spin_bit)

    def observations(self) -> dict[str, SpinObservation]:
        """Current per-flow observations (active flows only)."""
        return {key: flow.observation() for key, flow in self.flows.items()}

    def all_flows(self) -> list[FlowRecord]:
        """Active plus evicted flows, in first-seen order."""
        combined = list(self.flows.values()) + self.evicted
        combined.sort(key=lambda flow: flow.first_seen_ms)
        return combined

    # ------------------------------------------------------------------

    def _flow(self, key: str, time_ms: float) -> FlowRecord:
        flow = self.flows.get(key)
        if flow is not None:
            return flow
        if len(self.flows) >= self.max_flows:
            oldest_key = min(self.flows, key=lambda k: self.flows[k].last_seen_ms)
            self.evicted.append(self.flows.pop(oldest_key))
        flow = FlowRecord(flow_key=key, first_seen_ms=time_ms, last_seen_ms=time_ms)
        self.flows[key] = flow
        return flow

    def _expire_idle(self, now_ms: float) -> None:
        expired = [
            key
            for key, flow in self.flows.items()
            if now_ms - flow.last_seen_ms > self.idle_timeout_ms
        ]
        for key in expired:
            self.evicted.append(self.flows.pop(key))

    @staticmethod
    def _reconstruct(flow: FlowRecord, truncated: int, pn_length: int) -> int:
        from repro.quic.packet_number import decode_packet_number

        full = decode_packet_number(truncated, pn_length, flow._largest_pn)
        if flow._largest_pn is None or full > flow._largest_pn:
            flow._largest_pn = full
        return full
