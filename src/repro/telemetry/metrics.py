"""Metric primitives: counters, gauges, log-bucket histograms.

:class:`MetricsRegistry` is the single sink every subsystem reports
into.  Design constraints, in order:

1. **Determinism.**  A metric value may never depend on wall-clock
   time, thread scheduling, or worker count.  Counters are integers,
   histogram sums use exact summation
   (:class:`~repro._util.histogram.LogHistogram`), and every export is
   sorted by series key — so a registry merged from parallel-scan
   worker shards renders byte-identically to one filled sequentially.
2. **Losslessness under merge.**  :meth:`MetricsRegistry.merge` folds a
   child/worker registry into the parent without approximation:
   counters add, histograms merge bin-by-bin (exact partial sums), and
   each gauge declares its own aggregation (``last``/``sum``/``max``).
3. **Zero dependencies and near-zero hot-path cost.**  A series is a
   plain object with one mutable ``value`` slot; instrumented code
   binds the series once and pays one attribute increment per event.

Labels follow the Prometheus model: a series is identified by
``(name, sorted label items)``.  Child registries
(:meth:`MetricsRegistry.child`) bake extra constant labels into every
series they create — the scoping mechanism for per-shard or per-class
sub-registries that later fold into one.
"""

from __future__ import annotations

from typing import Iterator, Mapping

from repro._util.histogram import LogHistogram

__all__ = ["Counter", "Gauge", "HistogramMetric", "MetricsRegistry"]

#: Valid gauge merge semantics (how shard values fold into one).
GAUGE_AGGREGATIONS = ("last", "sum", "max")

_LabelItems = tuple[tuple[str, str], ...]


def _label_items(labels: Mapping[str, object]) -> _LabelItems:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _series_id(name: str, items: _LabelItems) -> str:
    """Canonical ``name{k=v,...}`` series key used in exports."""
    if not items:
        return name
    rendered = ",".join(f"{key}={value}" for key, value in items)
    return f"{name}{{{rendered}}}"


class Counter:
    """A monotonically increasing integer counter."""

    kind = "counter"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: _LabelItems):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (a non-negative int: counters never float)."""
        self.value += amount

    def _merge(self, other: "Counter") -> None:
        self.value += other.value


class Gauge:
    """A point-in-time value with declared merge semantics.

    ``agg`` decides how two shards' values fold into one:
    ``"last"`` (the merged-in value wins — for values where any shard
    is representative), ``"sum"`` (per-shard resources), ``"max"``
    (high-water marks).
    """

    kind = "gauge"
    __slots__ = ("name", "labels", "value", "agg")

    def __init__(self, name: str, labels: _LabelItems, agg: str = "last"):
        if agg not in GAUGE_AGGREGATIONS:
            raise ValueError(f"gauge agg must be one of {GAUGE_AGGREGATIONS}")
        self.name = name
        self.labels = labels
        self.value = 0.0
        self.agg = agg

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def set_max(self, value: float) -> None:
        """Raise the gauge to ``value`` if it exceeds the current one."""
        if value > self.value:
            self.value = value

    def _merge(self, other: "Gauge") -> None:
        if self.agg != other.agg:
            raise ValueError(
                f"gauge {_series_id(self.name, self.labels)!r} merged with "
                f"conflicting aggregations {self.agg!r} vs {other.agg!r}"
            )
        if self.agg == "sum":
            self.value += other.value
        elif self.agg == "max":
            self.value = max(self.value, other.value)
        else:  # "last": the folded-in (later) shard wins
            self.value = other.value


class HistogramMetric:
    """A labeled series wrapping a shared log-bucket histogram."""

    kind = "histogram"
    __slots__ = ("name", "labels", "hist")

    def __init__(self, name: str, labels: _LabelItems, hist: LogHistogram):
        self.name = name
        self.labels = labels
        self.hist = hist

    def observe(self, value: float) -> None:
        self.hist.add(value)

    @property
    def value(self) -> dict:
        return self.hist.summary()

    def _merge(self, other: "HistogramMetric") -> None:
        self.hist.merge(other.hist)


class MetricsRegistry:
    """All metric series of one run (or one worker shard of a run).

    ``constant_labels`` are baked into every series created through
    this registry — :meth:`child` uses them to scope a sub-registry.
    Histogram binning is registry-wide so shard histograms always merge
    losslessly.
    """

    def __init__(
        self,
        constant_labels: Mapping[str, object] | None = None,
        hist_min: float = 0.1,
        hist_max: float = 60_000.0,
        hist_bins_per_decade: int = 32,
    ):
        self.constant_labels = dict(constant_labels or {})
        self.hist_min = hist_min
        self.hist_max = hist_max
        self.hist_bins_per_decade = hist_bins_per_decade
        self._series: dict[
            tuple[str, _LabelItems], Counter | Gauge | HistogramMetric
        ] = {}

    # -- series creation ------------------------------------------------

    def counter(self, name: str, **labels: object) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, agg: str = "last", **labels: object) -> Gauge:
        gauge = self._get_or_create(Gauge, name, labels, agg=agg)
        if gauge.agg != agg:
            raise ValueError(
                f"gauge {name!r} already registered with agg={gauge.agg!r}"
            )
        return gauge

    def histogram(self, name: str, **labels: object) -> HistogramMetric:
        return self._get_or_create(HistogramMetric, name, labels)

    def child(self, **labels: object) -> "MetricsRegistry":
        """A scoped registry whose series all carry ``labels``.

        The child is independent (its own series store) so it can be
        filled by a worker and folded back via :meth:`merge`.
        """
        merged = dict(self.constant_labels)
        merged.update(labels)
        return MetricsRegistry(
            merged, self.hist_min, self.hist_max, self.hist_bins_per_decade
        )

    def _get_or_create(self, cls, name: str, labels: Mapping[str, object], **kw):
        merged = dict(self.constant_labels)
        merged.update(labels)
        items = _label_items(merged)
        key = (name, items)
        series = self._series.get(key)
        if series is None:
            if cls is HistogramMetric:
                hist = LogHistogram(
                    self.hist_min, self.hist_max, self.hist_bins_per_decade
                )
                series = HistogramMetric(name, items, hist)
            else:
                series = cls(name, items, **kw)
            self._series[key] = series
        elif not isinstance(series, cls):
            raise ValueError(
                f"series {_series_id(name, items)!r} already registered "
                f"as a {series.kind}"
            )
        return series

    # -- aggregation ----------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold ``other`` into this registry, losslessly.

        Series present in both must have the same kind; series only in
        ``other`` are adopted.  Merging shard registries in shard order
        yields exactly the registry a sequential run would have built.
        """
        for key, series in other._series.items():
            mine = self._series.get(key)
            if mine is None:
                if isinstance(series, HistogramMetric):
                    mine = self._get_or_create(
                        HistogramMetric, series.name, dict(series.labels)
                    )
                elif isinstance(series, Gauge):
                    mine = self._get_or_create(
                        Gauge, series.name, dict(series.labels), agg=series.agg
                    )
                else:
                    mine = self._get_or_create(
                        Counter, series.name, dict(series.labels)
                    )
            if mine.kind != series.kind:
                raise ValueError(
                    f"cannot merge {series.kind} into {mine.kind} "
                    f"({_series_id(series.name, series.labels)!r})"
                )
            mine._merge(series)

    # -- export ---------------------------------------------------------

    def series(self) -> Iterator[Counter | Gauge | HistogramMetric]:
        """All series in deterministic (name, labels) order."""
        for key in sorted(self._series):
            yield self._series[key]

    def snapshot(self) -> dict:
        """JSON-serializable registry state, deterministically ordered."""
        counters: dict[str, int] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, dict] = {}
        for series in self.series():
            series_id = _series_id(series.name, series.labels)
            if series.kind == "counter":
                counters[series_id] = series.value
            elif series.kind == "gauge":
                gauges[series_id] = series.value
            else:
                histograms[series_id] = series.value
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }
