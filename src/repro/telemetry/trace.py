"""Deterministic qlog-style tracing.

A :class:`Tracer` records a flat stream of
:class:`TraceEvent`\\ s — ``(time_ms, name, attrs)`` — that the JSONL
exporter later writes one-per-line with a monotonic ``step`` counter.

**The simulated-clock rule.**  Event timestamps are *always* simulated
time (the :class:`~repro.netsim.events.Simulator` clock of the unit the
event belongs to, or the monitor's stream time) — never wall-clock.
Together with the step counter assigned in write order this makes a
trace a pure function of the seed: equal seeds yield byte-identical
trace files, regardless of machine speed or worker count.  ``time_ms``
is therefore *local* to the traced unit (each scanned domain's
simulation starts at 0); the ``step`` field, not ``time_ms``, is the
global order.

Events come in two streams:

* **deterministic** (the default) — part of the reproducibility
  contract; identical across worker counts.
* **diagnostic** (``diag=True``) — sharding- or environment-dependent
  context (per-shard spans, worker layout) that is still wall-clock
  free but legitimately varies with ``--workers``; exported to a
  separate ``diag.jsonl`` so it can never contaminate the deterministic
  trace.
"""

from __future__ import annotations

from typing import Iterable, NamedTuple

__all__ = ["Span", "TraceEvent", "Tracer"]


class TraceEvent(NamedTuple):
    """One trace line: simulated timestamp, event name, attributes."""

    time_ms: float
    name: str
    attrs: dict


class Span:
    """An in-progress traced operation; emits one event when it ends.

    Usable as a context manager::

        with tracer.span("scan.domain", domain=name) as span:
            ...
            span.annotate(connections=2)
            span.end(time_ms=sim_end_ms)

    The single event-per-span design (rather than qlog's begin/end
    pairs) keeps traces compact and means a span's attributes can be
    filled in as the work runs; ``start_ms`` is recorded as an
    attribute, the event's own timestamp is the end time.
    """

    __slots__ = ("_tracer", "name", "start_ms", "attrs", "_diag", "_ended")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        start_ms: float,
        attrs: dict,
        diag: bool,
    ):
        self._tracer = tracer
        self.name = name
        self.start_ms = start_ms
        self.attrs = attrs
        self._diag = diag
        self._ended = False

    def annotate(self, **attrs: object) -> None:
        """Attach attributes to the span before it ends."""
        self.attrs.update(attrs)

    def end(self, time_ms: float | None = None) -> None:
        """Emit the span's event, stamped ``time_ms`` (default: start)."""
        if self._ended:
            return
        self._ended = True
        end_ms = self.start_ms if time_ms is None else time_ms
        attrs = {"start_ms": self.start_ms, **self.attrs}
        self._tracer.event(self.name, time_ms=end_ms, diag=self._diag, **attrs)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc_info) -> None:
        self.end()


class Tracer:
    """Collects trace events in emission order.

    Emission order *is* the trace order: the exporter numbers events as
    written, so any code path that emits events deterministically
    (e.g. per-domain in population order) produces a byte-identical
    file however the work was sharded.
    """

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []
        self.diag_events: list[TraceEvent] = []

    def event(
        self,
        name: str,
        time_ms: float = 0.0,
        diag: bool = False,
        **attrs: object,
    ) -> TraceEvent:
        """Record one event; returns it (mainly for tests)."""
        event = TraceEvent(time_ms, name, attrs)
        (self.diag_events if diag else self.events).append(event)
        return event

    def span(
        self,
        name: str,
        time_ms: float = 0.0,
        diag: bool = False,
        **attrs: object,
    ) -> Span:
        """Open a :class:`Span` starting at simulated ``time_ms``."""
        return Span(self, name, time_ms, dict(attrs), diag)

    def extend(
        self,
        events: Iterable[TraceEvent],
        diag_events: Iterable[TraceEvent] = (),
    ) -> None:
        """Append events recorded elsewhere (a worker shard's tracer)."""
        self.events.extend(events)
        self.diag_events.extend(diag_events)
