"""The per-run telemetry bundle: one registry plus one tracer.

:class:`Telemetry` is what gets threaded through the subsystems: the
scanner, the monitor pipeline, and the CLI all accept an optional
``telemetry`` argument and, when given, report into its
:class:`~repro.telemetry.metrics.MetricsRegistry` and
:class:`~repro.telemetry.trace.Tracer`.  ``None`` means telemetry is
off and the instrumented code paths pay a single ``is None`` check.

:meth:`Telemetry.save` writes the standard telemetry directory::

    DIR/trace.jsonl       deterministic trace (byte-identical per seed)
    DIR/diag.jsonl        sharding-dependent diagnostics (still no wall clock)
    DIR/metrics.json      registry snapshot (lossless reload for summarize)
    DIR/metrics.prom      Prometheus text exposition snapshot
    DIR/spans.jsonl       causal span log (byte-identical per seed)
    DIR/spans_diag.jsonl  sharding-dependent spans (per-shard, API requests)

which ``repro telemetry summarize DIR`` reads back.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.spans import (
    SPANS_DIAG_FILENAME,
    SPANS_FILENAME,
    SpanLog,
    write_spans_jsonl,
)
from repro.telemetry.export import (
    DIAG_FILENAME,
    PROM_FILENAME,
    SNAPSHOT_FILENAME,
    TRACE_FILENAME,
    registry_to_prometheus,
    render_summary,
    write_trace_jsonl,
)
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.trace import Tracer

__all__ = ["Telemetry"]


class Telemetry:
    """Registry + tracer + span log for one run (or one worker shard)."""

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        spans: SpanLog | None = None,
    ):
        self.registry = registry or MetricsRegistry()
        self.tracer = tracer or Tracer()
        self.spans = spans or SpanLog()
        #: Optional :class:`repro.obs.profile.PhaseProfiler`; ``None``
        #: (the default) keeps profiling at zero cost.
        self.profiler = None

    def absorb_shard(
        self,
        registry: MetricsRegistry,
        events,
        diag_events,
        spans=(),
        diag_spans=(),
    ) -> None:
        """Fold one worker shard's telemetry into this bundle.

        Must be called in shard order: registry merges are lossless and
        order-insensitive for counters/histograms, but trace events and
        span records are concatenated, and shard order is what makes
        the concatenation equal the sequential emission order.
        """
        self.registry.merge(registry)
        self.tracer.extend(events, diag_events)
        if spans or diag_spans:
            self.spans.absorb(spans, diag_spans)

    def summary_text(self) -> str:
        """Human-readable digest of the current state."""
        trace_dicts = [
            {"name": event.name} for event in self.tracer.events
        ]
        return render_summary(self.registry.snapshot(), trace_dicts)

    def save(self, out_dir: str | Path) -> dict[str, Path]:
        """Write the telemetry directory; returns the written paths."""
        directory = Path(out_dir)
        directory.mkdir(parents=True, exist_ok=True)
        paths = {
            "trace": directory / TRACE_FILENAME,
            "diag": directory / DIAG_FILENAME,
            "snapshot": directory / SNAPSHOT_FILENAME,
            "prom": directory / PROM_FILENAME,
            "spans": directory / SPANS_FILENAME,
            "spans_diag": directory / SPANS_DIAG_FILENAME,
        }
        with open(paths["trace"], "w", encoding="utf-8") as stream:
            write_trace_jsonl(self.tracer.events, stream)
        with open(paths["diag"], "w", encoding="utf-8") as stream:
            write_trace_jsonl(self.tracer.diag_events, stream)
        with open(paths["spans"], "w", encoding="utf-8") as stream:
            write_spans_jsonl(self.spans.records, self.spans.trace_id, stream)
        with open(paths["spans_diag"], "w", encoding="utf-8") as stream:
            write_spans_jsonl(
                self.spans.diag_records, self.spans.trace_id, stream
            )
        paths["snapshot"].write_text(
            json.dumps(self.registry.snapshot(), indent=2, sort_keys=True)
            + "\n",
            encoding="utf-8",
        )
        paths["prom"].write_text(
            registry_to_prometheus(self.registry), encoding="utf-8"
        )
        return paths
