"""Deterministic tracing + metrics plane across scan, monitor, netsim.

The paper's methodology is instrumentation all the way down — the
authors extended zgrab2/quic-go with qlog capture because a 200M-domain
measurement you cannot observe is a measurement you cannot trust, and
the on-path operator use case is precisely about *exporting* passive
RTT metrics.  This package is the reproduction's equivalent: a
zero-dependency observability layer every subsystem reports into.

* :mod:`repro.telemetry.metrics` — counters, gauges, log-bucket
  histograms in a :class:`MetricsRegistry` with labeled series, scoped
  child registries, and lossless deterministic merge (parallel-scan
  worker registries fold into exactly the sequential registry);
* :mod:`repro.telemetry.trace` — qlog-style trace events stamped with
  the *simulated* clock plus a monotonic step counter, never
  wall-clock, so equal seeds yield byte-identical traces;
* :mod:`repro.telemetry.export` — JSONL trace writer, Prometheus
  text-format snapshots, and the human ``render_summary``;
* :mod:`repro.telemetry.runtime` — the :class:`Telemetry` bundle the
  CLI threads through ``repro scan/monitor --telemetry-out DIR`` and
  reads back via ``repro telemetry summarize DIR``.

:mod:`repro.obs` builds on this plane: causal spans (carried on the
``Telemetry`` bundle as ``.spans``), the phase profiler (``.profiler``),
and the SLO health engine all consume what this package records.
"""

from repro.telemetry.export import (
    DIAG_FILENAME,
    PROM_FILENAME,
    SNAPSHOT_FILENAME,
    TRACE_FILENAME,
    read_trace,
    registry_to_prometheus,
    render_summary,
    write_trace_jsonl,
)
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    HistogramMetric,
    MetricsRegistry,
)
from repro.telemetry.runtime import Telemetry
from repro.telemetry.trace import Span, TraceEvent, Tracer

__all__ = [
    "Counter",
    "DIAG_FILENAME",
    "Gauge",
    "HistogramMetric",
    "MetricsRegistry",
    "PROM_FILENAME",
    "SNAPSHOT_FILENAME",
    "Span",
    "TRACE_FILENAME",
    "Telemetry",
    "TraceEvent",
    "Tracer",
    "read_trace",
    "registry_to_prometheus",
    "render_summary",
    "write_trace_jsonl",
]
