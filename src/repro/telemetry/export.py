"""Telemetry exporters: JSONL traces, Prometheus text, human summary.

Three formats, one invariant — every byte is a deterministic function
of the recorded data:

* ``trace.jsonl`` — one JSON object per trace event, ``sort_keys``,
  with a monotonic ``step`` assigned in write order.
* ``metrics.prom`` — Prometheus text exposition: counters as
  ``_total``, gauges plain, histograms as summaries (quantile series
  plus ``_sum``/``_count``), all series sorted by key.
* :func:`render_summary` — the human-readable digest behind
  ``repro telemetry summarize``.
"""

from __future__ import annotations

import json
from collections import Counter as _TallyCounter
from typing import IO, Iterable

from repro.telemetry.metrics import MetricsRegistry, _series_id
from repro.telemetry.trace import TraceEvent

__all__ = [
    "DIAG_FILENAME",
    "PROM_FILENAME",
    "SNAPSHOT_FILENAME",
    "TRACE_FILENAME",
    "read_trace",
    "registry_to_prometheus",
    "render_summary",
    "write_trace_jsonl",
]

TRACE_FILENAME = "trace.jsonl"
DIAG_FILENAME = "diag.jsonl"
PROM_FILENAME = "metrics.prom"
SNAPSHOT_FILENAME = "metrics.json"

#: Quantiles exported for every histogram series.
_QUANTILES = (50.0, 90.0, 99.0)


def write_trace_jsonl(events: Iterable[TraceEvent], stream: IO[str]) -> int:
    """Write ``events`` as JSONL, numbering them with ``step``.

    The step counter is the global monotonic order of the trace (event
    timestamps are local simulated clocks and may legitimately rewind
    between units).  Returns the number of lines written.
    """
    count = 0
    for step, event in enumerate(events):
        payload = {
            "step": step,
            "ts_ms": round(event.time_ms, 6),
            "name": event.name,
            "attrs": event.attrs,
        }
        stream.write(json.dumps(payload, sort_keys=True) + "\n")
        count += 1
    return count


def read_trace(stream: IO[str]) -> list[dict]:
    """Load a trace JSONL stream back into a list of event dicts."""
    return [json.loads(line) for line in stream if line.strip()]


def _prom_name(name: str) -> str:
    return "repro_" + name.replace(".", "_").replace("-", "_")


def _prom_value(value: float) -> str:
    if isinstance(value, bool):  # pragma: no cover - defensive
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(value)


def _prom_labels(items, extra: tuple[tuple[str, str], ...] = ()) -> str:
    merged = tuple(items) + extra
    if not merged:
        return ""
    rendered = ",".join(f'{key}="{value}"' for key, value in merged)
    return "{" + rendered + "}"


def registry_to_prometheus(registry: MetricsRegistry) -> str:
    """Render the registry in Prometheus text exposition format."""
    lines: list[str] = []
    typed: set[str] = set()
    for series in registry.series():
        if series.kind == "counter":
            name = _prom_name(series.name) + "_total"
            if name not in typed:
                typed.add(name)
                lines.append(f"# TYPE {name} counter")
            lines.append(
                f"{name}{_prom_labels(series.labels)} {_prom_value(series.value)}"
            )
        elif series.kind == "gauge":
            name = _prom_name(series.name)
            if name not in typed:
                typed.add(name)
                lines.append(f"# TYPE {name} gauge")
            lines.append(
                f"{name}{_prom_labels(series.labels)} {_prom_value(series.value)}"
            )
        else:  # histogram -> Prometheus summary
            name = _prom_name(series.name)
            if name not in typed:
                typed.add(name)
                lines.append(f"# TYPE {name} summary")
            hist = series.hist
            for q in _QUANTILES:
                value = hist.percentile(q)
                if value is None:
                    continue
                labels = _prom_labels(
                    series.labels, (("quantile", repr(q / 100.0)),)
                )
                lines.append(f"{name}{labels} {_prom_value(value)}")
            lines.append(
                f"{name}_sum{_prom_labels(series.labels)} "
                f"{_prom_value(hist.total)}"
            )
            lines.append(
                f"{name}_count{_prom_labels(series.labels)} {hist.count}"
            )
    return "\n".join(lines) + ("\n" if lines else "")


def render_summary(
    snapshot: dict, trace_events: list[dict] | None = None
) -> str:
    """Human-readable digest of a registry snapshot (+ optional trace).

    Takes the :meth:`MetricsRegistry.snapshot` dict (or the same loaded
    back from ``metrics.json``), so it works on live registries and on
    saved telemetry directories alike.
    """
    lines: list[str] = []
    if trace_events is not None:
        tally = _TallyCounter(event["name"] for event in trace_events)
        rendered = ", ".join(
            f"{name} x{count}" for name, count in sorted(tally.items())
        )
        lines.append(f"trace: {len(trace_events)} events")
        if rendered:
            lines.append(f"  {rendered}")
    counters = snapshot.get("counters", {})
    if counters:
        lines.append("counters:")
        for series_id, value in counters.items():
            lines.append(f"  {series_id:44s} {value}")
    gauges = snapshot.get("gauges", {})
    if gauges:
        lines.append("gauges:")
        for series_id, value in gauges.items():
            lines.append(f"  {series_id:44s} {value:g}")
    histograms = snapshot.get("histograms", {})
    if histograms:
        lines.append("histograms:")
        for series_id, summary in histograms.items():
            if summary.get("count", 0) == 0:
                lines.append(f"  {series_id:44s} (empty)")
                continue
            lines.append(
                f"  {series_id:44s} count={summary['count']}"
                f" mean={summary['mean_ms']:g}"
                f" p50={summary['p50_ms']:g}"
                f" p90={summary['p90_ms']:g}"
                f" p99={summary['p99_ms']:g}"
            )
    if not lines:
        lines.append("(no telemetry recorded)")
    return "\n".join(lines)
