"""Internal utilities shared across the :mod:`repro` package.

These helpers are deliberately small and dependency-free: deterministic
random-number handling, time-unit constants, and statistics primitives
used by both the simulator and the analysis pipeline.
"""

from repro._util.histogram import LogHistogram
from repro._util.rng import derive_rng, fork_rng
from repro._util.stats import (
    Histogram,
    binomial_pmf,
    mean,
    percentile,
    weighted_choice,
)
from repro._util.units import MS_PER_SECOND, US_PER_MS, ms_to_seconds, seconds_to_ms

__all__ = [
    "Histogram",
    "LogHistogram",
    "MS_PER_SECOND",
    "US_PER_MS",
    "binomial_pmf",
    "derive_rng",
    "fork_rng",
    "mean",
    "ms_to_seconds",
    "percentile",
    "seconds_to_ms",
    "weighted_choice",
]
