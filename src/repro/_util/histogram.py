"""Fixed-bin log-scale histogram shared by monitor and telemetry.

:class:`LogHistogram` is the streaming-percentile workhorse (Prometheus
/ HdrHistogram style): constant memory, exact count/mean/min/max,
approximate percentiles with a relative error bounded by the bin ratio
(~±3.7 % at the default 32 bins per decade).

The running sum is kept as exact Shewchuk partials instead of a plain
float accumulator.  A plain ``+=`` is order-dependent (float addition
is not associative), which would make a histogram merged from parallel
worker shards differ in the last ulp from the sequentially filled one —
exactly the kind of nondeterminism the telemetry plane bans.  With
exact partials, ``total`` is the correctly rounded sum of the samples
regardless of insertion or merge order, so sharded and sequential runs
export byte-identical statistics.
"""

from __future__ import annotations

import math

__all__ = ["LogHistogram"]


def _add_partial(partials: list[float], value: float) -> None:
    """Fold ``value`` into a list of exact non-overlapping partials.

    Shewchuk's error-free transformation (the algorithm behind
    :func:`math.fsum`): after the update the partials sum *exactly* to
    the old exact sum plus ``value``.
    """
    index = 0
    for partial in partials:
        if abs(value) < abs(partial):
            value, partial = partial, value
        high = value + partial
        low = partial - (high - value)
        if low:
            partials[index] = low
            index += 1
        value = high
    partials[index:] = [value]


class LogHistogram:
    """Fixed-bin log-scale histogram with streaming percentiles.

    Bins cover ``[min_value, max_value)`` with ``bins_per_decade``
    logarithmically spaced bins per factor of ten; values outside the
    range land in dedicated under-/overflow bins, so nothing is ever
    dropped.  ``count``/``mean``/``min``/``max`` are exact; percentiles
    are read from the bin cumulative and reported at the bin's
    geometric midpoint.
    """

    __slots__ = (
        "min_value",
        "max_value",
        "bins_per_decade",
        "counts",
        "underflow",
        "overflow",
        "count",
        "min_seen",
        "max_seen",
        "_log_min",
        "_partials",
    )

    def __init__(
        self,
        min_value: float = 0.1,
        max_value: float = 60_000.0,
        bins_per_decade: int = 32,
    ):
        if min_value <= 0 or max_value <= min_value:
            raise ValueError("need 0 < min_value < max_value")
        if bins_per_decade < 1:
            raise ValueError("bins_per_decade must be positive")
        self.min_value = min_value
        self.max_value = max_value
        self.bins_per_decade = bins_per_decade
        self._log_min = math.log10(min_value)
        decades = math.log10(max_value) - self._log_min
        self.counts = [0] * (int(math.ceil(decades * bins_per_decade)) or 1)
        self.underflow = 0
        self.overflow = 0
        self.count = 0
        self.min_seen = math.inf
        self.max_seen = -math.inf
        self._partials: list[float] = []

    def __getstate__(self):
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __setstate__(self, state):
        for slot, value in state.items():
            setattr(self, slot, value)

    @property
    def total(self) -> float:
        """Exact (correctly rounded, order-independent) sample sum."""
        return math.fsum(self._partials)

    def add(self, value: float) -> None:
        """Record one observation."""
        self.count += 1
        _add_partial(self._partials, value)
        if value < self.min_seen:
            self.min_seen = value
        if value > self.max_seen:
            self.max_seen = value
        if value < self.min_value:
            self.underflow += 1
        elif value >= self.max_value:
            self.overflow += 1
        else:
            index = int(
                (math.log10(value) - self._log_min) * self.bins_per_decade
            )
            if index >= len(self.counts):  # float edge at max_value
                index = len(self.counts) - 1
            self.counts[index] += 1

    def merge(self, other: "LogHistogram") -> None:
        """Fold ``other`` (same binning) into this histogram."""
        if (
            other.min_value != self.min_value
            or other.max_value != self.max_value
            or other.bins_per_decade != self.bins_per_decade
        ):
            raise ValueError("cannot merge histograms with different binning")
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self.underflow += other.underflow
        self.overflow += other.overflow
        self.count += other.count
        for partial in other._partials:
            _add_partial(self._partials, partial)
        self.min_seen = min(self.min_seen, other.min_seen)
        self.max_seen = max(self.max_seen, other.max_seen)

    @property
    def mean(self) -> float | None:
        """Exact arithmetic mean; ``None`` when empty."""
        return self.total / self.count if self.count else None

    def percentile(self, q: float) -> float | None:
        """Approximate q-th percentile (``q`` in [0, 100]); ``None`` if empty.

        Underflow observations report the exact minimum seen, overflow
        the exact maximum; interior bins report their geometric
        midpoint, clamped into the exact [min, max] envelope.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile q must be in [0, 100], got {q}")
        if self.count == 0:
            return None
        target = (q / 100.0) * self.count
        cumulative = self.underflow
        if target <= cumulative:
            return self.min_seen
        for index, count in enumerate(self.counts):
            cumulative += count
            if target <= cumulative:
                midpoint = 10.0 ** (
                    self._log_min + (index + 0.5) / self.bins_per_decade
                )
                return min(max(midpoint, self.min_seen), self.max_seen)
        return self.max_seen

    def summary(self) -> dict:
        """The snapshot-export block: count + streaming statistics."""
        if self.count == 0:
            return {"count": 0}
        return {
            "count": self.count,
            "mean_ms": round(self.total / self.count, 3),
            "min_ms": round(self.min_seen, 3),
            "max_ms": round(self.max_seen, 3),
            "p50_ms": round(self.percentile(50.0), 3),
            "p90_ms": round(self.percentile(90.0), 3),
            "p99_ms": round(self.percentile(99.0), 3),
        }
