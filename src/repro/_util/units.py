"""Time-unit conventions for the whole package.

All simulated timestamps and durations in :mod:`repro` are expressed in
**milliseconds** as ``float`` values, matching the unit the paper reports
(RTTs in ms) and the unit qlog uses for event times.  These helpers exist
so conversions are explicit at module boundaries (e.g. when a QUIC
``ack_delay`` field is carried in microseconds on the wire).
"""

from __future__ import annotations

MS_PER_SECOND = 1000.0
US_PER_MS = 1000.0


def seconds_to_ms(seconds: float) -> float:
    """Convert seconds to milliseconds."""
    return seconds * MS_PER_SECOND


def ms_to_seconds(ms: float) -> float:
    """Convert milliseconds to seconds."""
    return ms / MS_PER_SECOND


def us_to_ms(us: float) -> float:
    """Convert microseconds to milliseconds."""
    return us / US_PER_MS


def ms_to_us(ms: float) -> float:
    """Convert milliseconds to microseconds."""
    return ms * US_PER_MS
