"""Deterministic random-number management.

Every stochastic component in the simulator draws from a
:class:`random.Random` instance that is *derived* from a parent seed and
a stable label.  This keeps large simulations reproducible while making
sub-components statistically independent: reordering noise on one path
does not perturb the spin policy chosen by an unrelated server.
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["derive_rng", "fork_rng"]


def derive_rng(seed: int | str, *labels: object) -> random.Random:
    """Create a :class:`random.Random` derived from ``seed`` and ``labels``.

    The derivation hashes the seed together with the labels, so the same
    ``(seed, labels)`` pair always yields an identical stream and two
    different label tuples yield independent streams.

    >>> derive_rng(7, "path", 3).random() == derive_rng(7, "path", 3).random()
    True
    >>> derive_rng(7, "a").random() == derive_rng(7, "b").random()
    False
    """
    digest = hashlib.sha256(
        ("|".join([str(seed), *[str(label) for label in labels]])).encode("utf-8")
    ).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


def fork_rng(rng: random.Random, *labels: object) -> random.Random:
    """Derive an independent child generator from an existing one.

    Draws a 64-bit value from ``rng`` (advancing it once) and combines it
    with ``labels``; useful when a component needs to hand stable streams
    to dynamically created children.
    """
    return derive_rng(rng.getrandbits(64), *labels)
