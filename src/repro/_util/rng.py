"""Deterministic random-number management.

Every stochastic component in the simulator draws from a
:class:`random.Random` instance that is *derived* from a parent seed and
a stable label.  This keeps large simulations reproducible while making
sub-components statistically independent: reordering noise on one path
does not perturb the spin policy chosen by an unrelated server.
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["SeedPrefix", "derive_rng", "fork_rng"]


def derive_rng(seed: int | str, *labels: object) -> random.Random:
    """Create a :class:`random.Random` derived from ``seed`` and ``labels``.

    The derivation hashes the seed together with the labels, so the same
    ``(seed, labels)`` pair always yields an identical stream and two
    different label tuples yield independent streams.

    >>> derive_rng(7, "path", 3).random() == derive_rng(7, "path", 3).random()
    True
    >>> derive_rng(7, "a").random() == derive_rng(7, "b").random()
    False
    """
    digest = hashlib.sha256(
        ("|".join([str(seed), *[str(label) for label in labels]])).encode("utf-8")
    ).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


class SeedPrefix:
    """A pre-hashed ``(seed, *labels)`` prefix for bulk derivations.

    ``SeedPrefix(seed, *prefix).derive(*suffix)`` is bit-identical to
    ``derive_rng(seed, *prefix, *suffix)`` but hashes the shared prefix
    only once: the SHA-256 state is cloned per call instead of re-read
    from the start.  A scanner deriving one stream per domain of a scan
    shares the ``(seed, "scan", week, ip_version)`` prefix across the
    whole population.

    >>> SeedPrefix(7, "scan", "cw20").derive("a", 1).random() == \
            derive_rng(7, "scan", "cw20", "a", 1).random()
    True
    """

    __slots__ = ("_hasher",)

    def __init__(self, seed: int | str, *labels: object):
        joined = "|".join([str(seed), *[str(label) for label in labels]])
        self._hasher = hashlib.sha256(joined.encode("utf-8"))

    def derive(self, *labels: object) -> random.Random:
        """Finish the derivation with ``labels`` appended to the prefix."""
        hasher = self._hasher.copy()
        if labels:
            suffix = "|" + "|".join(str(label) for label in labels)
            hasher.update(suffix.encode("utf-8"))
        return random.Random(int.from_bytes(hasher.digest()[:8], "big"))


def fork_rng(rng: random.Random, *labels: object) -> random.Random:
    """Derive an independent child generator from an existing one.

    Draws a 64-bit value from ``rng`` (advancing it once) and combines it
    with ``labels``; useful when a component needs to hand stable streams
    to dynamically created children.
    """
    return derive_rng(rng.getrandbits(64), *labels)
