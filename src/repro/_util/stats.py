"""Statistics primitives for the analysis pipeline.

The analysis modules (Tables 1-4, Figures 2-4) only need a handful of
well-specified operations: means, percentiles, binomial probabilities for
the RFC-compliance reference curves of Figure 2, and a histogram type
whose bins can be rendered as the relative histograms the paper plots.
Implementing them here (instead of pulling in scipy at import time) keeps
the core library light; numpy is used only where it clearly pays off.
"""

from __future__ import annotations

import bisect
import math
import random
from dataclasses import dataclass, field
from typing import Iterable, Sequence

__all__ = [
    "Histogram",
    "binomial_pmf",
    "mean",
    "percentile",
    "weighted_choice",
]


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean; raises :class:`ValueError` on an empty input."""
    total = 0.0
    count = 0
    for value in values:
        total += value
        count += 1
    if count == 0:
        raise ValueError("mean() of an empty sequence")
    return total / count


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile, ``q`` in [0, 100].

    Matches numpy's default ("linear") method so results are consistent
    with any numpy-based post-processing users run on exported data.
    """
    if not values:
        raise ValueError("percentile() of an empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    fraction = rank - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


def binomial_pmf(k: int, n: int, p: float) -> float:
    """P[X = k] for X ~ Binomial(n, p).

    Used for the RFC 9000 / RFC 9312 reference curves in Figure 2: if a
    compliant endpoint disables the spin bit independently on one in
    ``N`` connections, the number of weeks (out of ``n`` sampled) in
    which a weekly one-shot connection spins is Binomial(n, 1 - 1/N).
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0, 1], got {p}")
    if k < 0 or k > n:
        return 0.0
    return math.comb(n, k) * (p**k) * ((1.0 - p) ** (n - k))


def weighted_choice(rng: random.Random, items: Sequence[object], weights: Sequence[float]):
    """Pick one item with probability proportional to its weight.

    A tiny, allocation-free alternative to ``random.choices(...)[0]`` for
    hot loops; weights must be non-negative and not all zero.
    """
    if len(items) != len(weights):
        raise ValueError("items and weights must have the same length")
    total = 0.0
    cumulative = []
    for weight in weights:
        if weight < 0:
            raise ValueError("weights must be non-negative")
        total += weight
        cumulative.append(total)
    if total <= 0:
        raise ValueError("at least one weight must be positive")
    point = rng.random() * total
    index = bisect.bisect_right(cumulative, point)
    if index >= len(items):  # guard against floating-point edge at total
        index = len(items) - 1
    return items[index]


@dataclass
class Histogram:
    """A relative histogram over explicit bin edges.

    ``edges`` are the ``n + 1`` boundaries of ``n`` bins; samples outside
    the outer edges are accumulated into ``underflow`` / ``overflow`` so
    no observation is silently dropped — the paper's figures likewise
    show open-ended first/last bins.
    """

    edges: Sequence[float]
    counts: list[int] = field(default_factory=list)
    underflow: int = 0
    overflow: int = 0

    def __post_init__(self) -> None:
        if len(self.edges) < 2:
            raise ValueError("a histogram needs at least two bin edges")
        if any(b >= a for a, b in zip(self.edges[1:], self.edges[:-1])):
            raise ValueError("bin edges must be strictly increasing")
        if not self.counts:
            self.counts = [0] * (len(self.edges) - 1)
        elif len(self.counts) != len(self.edges) - 1:
            raise ValueError("counts length must be len(edges) - 1")

    def add(self, value: float) -> None:
        """Record one observation."""
        if value < self.edges[0]:
            self.underflow += 1
            return
        if value >= self.edges[-1]:
            self.overflow += 1
            return
        index = bisect.bisect_right(self.edges, value) - 1
        self.counts[index] += 1

    def extend(self, values: Iterable[float]) -> None:
        """Record many observations."""
        for value in values:
            self.add(value)

    @property
    def total(self) -> int:
        """Total number of observations, including under/overflow."""
        return sum(self.counts) + self.underflow + self.overflow

    def fractions(self) -> list[float]:
        """Per-bin relative frequencies (under/overflow included in the norm)."""
        total = self.total
        if total == 0:
            return [0.0] * len(self.counts)
        return [count / total for count in self.counts]

    def fraction_below(self, edge: float) -> float:
        """Fraction of observations strictly below ``edge``.

        ``edge`` must coincide with a bin boundary; this is how the
        paper-style summary statements ("x % of connections are within
        25 ms") are computed from the histogram.
        """
        if edge not in self.edges:
            raise ValueError(f"{edge} is not a bin edge of this histogram")
        total = self.total
        if total == 0:
            return 0.0
        index = list(self.edges).index(edge)
        return (self.underflow + sum(self.counts[:index])) / total

    def fraction_at_least(self, edge: float) -> float:
        """Fraction of observations at or above ``edge`` (a bin boundary)."""
        return 1.0 - self.fraction_below(edge)

    def as_dict(self) -> dict:
        """JSON-serializable representation (for artifact export)."""
        return {
            "edges": list(self.edges),
            "counts": list(self.counts),
            "underflow": self.underflow,
            "overflow": self.overflow,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Histogram":
        """Inverse of :meth:`as_dict`."""
        return cls(
            edges=list(data["edges"]),
            counts=list(data["counts"]),
            underflow=int(data.get("underflow", 0)),
            overflow=int(data.get("overflow", 0)),
        )
