"""Synthetic Internet model: providers, AS database, population."""

from repro.internet.asdb import AsDatabase, AsEntry, IpAddr, build_default_asdb
from repro.internet.listfiles import (
    dedupe_preserving_order,
    parse_toplist_csv,
    parse_zone_file,
    read_target_population,
)
from repro.internet.population import (
    DomainRecord,
    ListGroup,
    Population,
    PopulationConfig,
    build_population,
    build_population_from_names,
)
from repro.internet.providers import (
    NO_QUIC_PROVIDERS,
    PROVIDERS,
    Provider,
    provider_by_name,
)

__all__ = [
    "AsDatabase",
    "AsEntry",
    "DomainRecord",
    "IpAddr",
    "ListGroup",
    "NO_QUIC_PROVIDERS",
    "PROVIDERS",
    "Population",
    "PopulationConfig",
    "Provider",
    "build_default_asdb",
    "build_population",
    "build_population_from_names",
    "dedupe_preserving_order",
    "parse_toplist_csv",
    "parse_zone_file",
    "read_target_population",
    "provider_by_name",
]
