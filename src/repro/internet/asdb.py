"""IP-to-AS-organization attribution.

The paper maps each contacted IP to its origin ASN using BGP data from
RIPE's RIS archive and then to an organization via CAIDA's as2org
dataset (Section 4.2).  The synthetic equivalent is built directly from
the provider catalog: every provider owns one IPv4 and one IPv6 prefix;
aggregated long-tail providers ("<other hosting>", …) are expanded into
many small synthetic ASes — one per /24-equivalent slice of their
prefix — so the Table 2 analysis sees a realistic long tail of distinct
organizations rather than one artificial giant.
"""

from __future__ import annotations

import ipaddress
import zlib
from dataclasses import dataclass
from typing import Iterable

from repro.internet.providers import NO_QUIC_PROVIDERS, PROVIDERS, Provider

__all__ = ["AsDatabase", "AsEntry", "IpAddr", "build_default_asdb"]

#: Base of the synthetic private-use ASN range for long-tail slices.
_SYNTHETIC_ASN_BASE = 4_200_000_000
#: Long-tail slice width: one synthetic AS per 2**_SLICE_HOST_BITS
#: addresses (a /24 for IPv4).
_SLICE_HOST_BITS_V4 = 8
_SLICE_HOST_BITS_V6 = 64


@dataclass(frozen=True)
class IpAddr:
    """A compact IP address: integer value plus version."""

    value: int
    version: int  # 4 or 6

    def __post_init__(self) -> None:
        if self.version not in (4, 6):
            raise ValueError(f"bad IP version {self.version}")
        limit = 1 << (32 if self.version == 4 else 128)
        if not 0 <= self.value < limit:
            raise ValueError("IP integer out of range for its version")

    def __str__(self) -> str:
        if self.version == 4:
            return str(ipaddress.IPv4Address(self.value))
        return str(ipaddress.IPv6Address(self.value))


@dataclass(frozen=True)
class AsEntry:
    """Result of an AS lookup: origin ASN and its organization."""

    asn: int
    org_name: str


@dataclass(frozen=True)
class _PrefixRecord:
    network: int
    prefix_length: int
    version: int
    provider: Provider


class AsDatabase:
    """Longest-prefix-match IP→AS lookup built from a provider catalog."""

    def __init__(self, providers: Iterable[Provider]):
        self._records: list[_PrefixRecord] = []
        for provider in providers:
            for prefix, version in (
                (provider.v4_prefix, 4),
                (provider.v6_prefix, 6),
            ):
                network = ipaddress.ip_network(prefix)
                if network.version != version:
                    raise ValueError(f"{provider.name}: {prefix} is not IPv{version}")
                self._records.append(
                    _PrefixRecord(
                        network=int(network.network_address),
                        prefix_length=network.prefixlen,
                        version=version,
                        provider=provider,
                    )
                )
        # Longer prefixes win; sorting once keeps lookup simple.
        self._records.sort(key=lambda record: -record.prefix_length)

    def lookup(self, ip: IpAddr) -> AsEntry | None:
        """Map an IP to its AS entry, or ``None`` if unrouted."""
        total_bits = 32 if ip.version == 4 else 128
        for record in self._records:
            if record.version != ip.version:
                continue
            shift = total_bits - record.prefix_length
            if (ip.value >> shift) == (record.network >> shift):
                return self._entry_for(record, ip, total_bits)
        return None

    def _entry_for(self, record: _PrefixRecord, ip: IpAddr, total_bits: int) -> AsEntry:
        provider = record.provider
        if provider.asn:
            return AsEntry(asn=provider.asn, org_name=provider.org_name)
        # Long-tail provider: derive a synthetic per-slice AS.
        host_bits = _SLICE_HOST_BITS_V4 if ip.version == 4 else _SLICE_HOST_BITS_V6
        slice_index = (ip.value - record.network) >> host_bits
        # A stable (process-independent) per-provider ASN block.
        provider_block = zlib.crc32(provider.name.encode("utf-8")) % 997
        asn = _SYNTHETIC_ASN_BASE + provider_block * 100_000 + slice_index
        return AsEntry(asn=asn, org_name=f"{provider.org_name.strip('<>')} #{slice_index}")


def build_default_asdb() -> AsDatabase:
    """The AS database covering the full default provider catalog."""
    return AsDatabase((*PROVIDERS, *NO_QUIC_PROVIDERS))
