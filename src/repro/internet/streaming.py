"""Range-addressed streaming population for bounded-memory scans.

:func:`~repro.internet.population.build_population` draws every domain
from one *sequential* RNG stream — domain N's attributes depend on every
draw made for domains 0..N-1 — so materializing "domains 5 M..5 M+512"
requires generating the 5 M domains before them.  Fine at campaign
scale (34 k domains), impossible at the paper's (>200 M: the record
list alone would be tens of GB per process).

:class:`StreamingPopulation` makes the domain *index* the unit of
determinism instead: every record is generated from its own derived RNG
stream ``(seed, "stream-domain", index)``, so any range materializes in
O(range) time and O(range) memory, identically in every process.  The
parallel scan engine ships ``(start, count)`` descriptors through the
pool and each worker regenerates its own slice — the full population
never exists anywhere.

This is a deliberately *different deterministic universe* from
``build_population`` (the per-index derivation cannot reproduce the
sequential stream), so the two constructions are never mixed within one
campaign: a scan is either materialized or streaming, and its seed
names which universe it lives in.  Rates, provider mixes, host pools,
and the stack-churn process are shared unchanged — Tables 1-4 reproduce
at any scale in both universes.
"""

from __future__ import annotations

from repro._util.rng import derive_rng
from repro._util.stats import weighted_choice
from repro.internet.population import (
    _TOPLIST_SOURCES,
    _ZONES,
    DomainRecord,
    Population,
    PopulationConfig,
    _build_pools,
    _resolve_domain,
)

__all__ = ["StreamingPopulation"]


class StreamingPopulation(Population):
    """A population that generates domain records on demand, by index.

    Indexes ``[0, toplist_domains)`` are toplist domains, the rest CZDS
    — the same ordering a materialized population uses.  Host pools,
    stack churn, and provider lookups are inherited unchanged from
    :class:`Population`; only record construction differs (per-index
    derived RNG instead of one sequential stream).

    ``.domains`` raises: the whole point is that no list of 10 M records
    ever exists.  Use :meth:`materialize_range` / :meth:`iter_targets`.
    """

    def __init__(self, config: PopulationConfig):
        # Deliberately not calling Population.__init__: it assigns
        # ``self.domains = []``, which this class forbids via property.
        self.config = config
        self._pools = {}
        self._stack_cache = {}
        self._persistence_cache = {}
        _build_pools(self, config)

    @property
    def domains(self):
        raise TypeError(
            "StreamingPopulation does not materialize a domain list; "
            "use materialize_range()/iter_targets()"
        )

    @property
    def domain_count(self) -> int:
        return self.config.toplist_domains + self.config.czds_domains

    def spawn_spec(self):
        """How a pool worker rebuilds this population: config only.

        The parallel engine ships this through the pool initializer
        instead of pickling the population object — a streaming
        population is fully determined by its config.
        """
        return ("streaming", self.config)

    def domain_at(self, index: int) -> DomainRecord:
        """Generate the domain record at ``index`` (deterministic)."""
        config = self.config
        if not 0 <= index < self.domain_count:
            raise IndexError(
                f"domain index {index} outside population of "
                f"{self.domain_count}"
            )
        rng = derive_rng(config.seed, "stream-domain", index)
        zone = weighted_choice(
            rng, [z for z, _ in _ZONES], [w for _, w in _ZONES]
        )
        if index < config.toplist_domains:
            sources = tuple(
                source for source in _TOPLIST_SOURCES if rng.random() < 0.45
            ) or ("tranco",)
            record = DomainRecord(
                name=f"top{index:07d}.{zone}",
                zone=zone,
                in_toplist=True,
                in_czds=False,
                toplist_sources=sources,
            )
            group = "toplist"
        else:
            czds_index = index - config.toplist_domains
            record = DomainRecord(
                name=f"domain{czds_index:09d}.{zone}",
                zone=zone,
                in_toplist=False,
                in_czds=True,
            )
            group = "zone"
        _resolve_domain(record, config, rng, self, group=group)
        return record

    def materialize_range(self, start: int, stop: int) -> list[DomainRecord]:
        stop = min(stop, self.domain_count)
        return [self.domain_at(index) for index in range(max(0, start), stop)]
