"""Ingestion of real-world domain list formats (Section 3.1 inputs).

The paper assembles its target population from toplist files (Alexa,
Umbrella, Majestic: ``rank,domain`` CSVs; Tranco: the same) and CZDS
zone files (DNS master-file format).  This module parses those formats
so the library can be pointed at actual list files instead of the
synthetic generator — the deduplication and www-stripping behaviour
follows the paper's methodology.
"""

from __future__ import annotations

import re
from typing import IO, Iterable, Iterator

__all__ = [
    "dedupe_preserving_order",
    "parse_toplist_csv",
    "parse_zone_file",
    "read_target_population",
]

_DOMAIN_RE = re.compile(
    r"^(?=.{1,253}$)([a-z0-9_]([a-z0-9_-]{0,61}[a-z0-9_])?\.)+[a-z]{2,24}$"
)

_ZONE_RECORD_TYPES = {"ns", "a", "aaaa", "cname", "mx", "txt", "ds", "rrsig", "soa"}


def _normalize(name: str) -> str | None:
    """Canonicalize a raw domain token; None if not a usable domain."""
    name = name.strip().strip(".").lower()
    if name.startswith("www."):
        # The scanner prepends "www." itself (Sec. 3.2.1); store apexes.
        name = name[4:]
    if not name or not _DOMAIN_RE.match(name):
        return None
    return name


def parse_toplist_csv(stream: IO[str]) -> Iterator[str]:
    """Parse a ``rank,domain`` toplist CSV (Tranco/Alexa/Majestic style).

    Lines without a comma are treated as bare domain lists (Umbrella's
    plain format); malformed lines are skipped silently, as list files
    routinely contain noise.
    """
    for line in stream:
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        token = line.rsplit(",", 1)[-1] if "," in line else line
        domain = _normalize(token)
        if domain is not None:
            yield domain


def parse_zone_file(stream: IO[str], zone: str) -> Iterator[str]:
    """Extract registered domains from a DNS zone file.

    Yields the unique second-level domains of ``zone`` that carry NS
    records (the CZDS convention for delegations); other record types
    and out-of-zone names are ignored.
    """
    zone = zone.strip().strip(".").lower()
    suffix = "." + zone
    seen: set[str] = set()
    for line in stream:
        line = line.strip()
        if not line or line.startswith(";"):
            continue
        fields = line.split()
        if len(fields) < 4:
            continue
        owner = fields[0].strip(".").lower()
        record_type = None
        for field in fields[1:5]:
            if field.lower() in _ZONE_RECORD_TYPES:
                record_type = field.lower()
                break
        if record_type != "ns":
            continue
        if owner == zone or not owner.endswith(suffix):
            continue
        # Reduce to the delegation directly under the zone.
        label = owner[: -len(suffix)].split(".")[-1]
        domain = _normalize(f"{label}{suffix}")
        if domain is not None and domain not in seen:
            seen.add(domain)
            yield domain


def dedupe_preserving_order(sources: Iterable[Iterable[str]]) -> list[str]:
    """Union several domain lists, first occurrence wins (Sec. 3.1.1)."""
    seen: set[str] = set()
    result: list[str] = []
    for source in sources:
        for domain in source:
            if domain not in seen:
                seen.add(domain)
                result.append(domain)
    return result


def read_target_population(
    toplist_streams: Iterable[IO[str]] = (),
    zone_streams: Iterable[tuple[IO[str], str]] = (),
) -> list[str]:
    """Assemble a deduplicated target population from open list files."""
    sources: list[Iterable[str]] = [
        parse_toplist_csv(stream) for stream in toplist_streams
    ]
    sources.extend(parse_zone_file(stream, zone) for stream, zone in zone_streams)
    return dedupe_preserving_order(sources)
