"""Synthetic target population (Section 3.1 of the paper).

The paper assembles ~219 M domains from four toplists (Alexa, Umbrella,
Majestic, Tranco) and 1140 CZDS zone files.  This module builds a
scaled-down population with the same structure: two population views
(*Toplists* and *CZDS*, with .com/.net/.org as the highlighted CZDS
subset), per-domain DNS resolution (A and AAAA), hosting-provider
assignment, and host (IP) allocation with provider-specific
domains-per-IP density.

Webserver stacks — and with them spin-bit capability — are attached to
*serving entities*: one stack per host for small deployments (one
server, one software), one stack per domain (vhost) for dense shared
hosting.  Stacks evolve week over week as a Markov process whose
stationary distribution is exactly the calibrated stack mix: any single
week reproduces the paper's cross-sectional tables, while the weekly
persistence produces the longitudinal churn Figure 2 measures.

Scale is configurable; all published ratios (resolve rates, QUIC rates,
provider mixes) are preserved, so Tables 1-4 reproduce at any scale with
counts shrinking proportionally.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass, field

from repro._util.rng import derive_rng
from repro._util.stats import weighted_choice
from repro.internet.asdb import IpAddr
from repro.internet.providers import NO_QUIC_PROVIDERS, PROVIDERS, Provider

__all__ = [
    "DomainRecord",
    "ListGroup",
    "Population",
    "PopulationConfig",
    "build_population",
    "build_population_from_names",
]

from enum import Enum

#: CZDS zone mix: .com dominates, matching the paper's com/net/org share
#: of 183.0 M / 216.5 M ≈ 84.5 %.
_ZONES = (
    ("com", 0.715),
    ("net", 0.075),
    ("org", 0.055),
    ("info", 0.03),
    ("xyz", 0.03),
    ("online", 0.025),
    ("site", 0.02),
    ("shop", 0.02),
    ("top", 0.015),
    ("store", 0.015),
)

_COM_NET_ORG = frozenset({"com", "net", "org"})

_TOPLIST_SOURCES = ("alexa", "umbrella", "majestic", "tranco")

#: Providers denser than this run per-domain (vhost) stacks; sparser
#: ones run one stack per host.
_VHOST_DENSITY_THRESHOLD = 40.0

#: How far the weekly stack-churn walk looks back before falling back to
#: the entity's base draw (covers the whole campaign and then some).
_MAX_CHURN_LOOKBACK_WEEKS = 160


class ListGroup(Enum):
    """The population views of Tables 1/3/4."""

    TOPLISTS = "toplists"
    CZDS = "czds"
    COM_NET_ORG = "com/net/org"


@dataclass(frozen=True)
class PopulationConfig:
    """Scale and rate knobs of the synthetic population.

    Default rates are the paper's CW 20/2023 IPv4 marginals: 71 % / 85 %
    of toplist / CZDS domains resolve; 28.2 % / 12.1 % of resolved
    domains answer QUIC.  ``zone_density_scale`` shrinks the zone-view
    domains-per-IP densities so host pools keep statistical granularity
    at reduced population scales (relative densities across providers —
    which drive the IP-level spin shares — are preserved).
    """

    toplist_domains: int = 4_000
    czds_domains: int = 30_000
    resolve_rate_toplist: float = 0.709
    resolve_rate_czds: float = 0.849
    quic_rate_toplist: float = 0.282
    quic_rate_czds: float = 0.121
    zone_density_scale: float = 0.15
    #: Deployment-stability tiers: (weekly keep-probability, weight).
    #: Each serving entity is assigned one tier; the complement of the
    #: keep-probability triggers a re-draw from the provider's stack
    #: mix.  The heterogeneity produces the spread-out week counts of
    #: Figure 2 (a single churn rate would bunch domains binomially).
    stack_persistence_tiers: tuple[tuple[float, float], ...] = (
        (0.997, 0.25),
        (0.99, 0.25),
        (0.975, 0.25),
        (0.94, 0.25),
    )
    seed: int = 20230520

    def __post_init__(self) -> None:
        if self.toplist_domains < 0 or self.czds_domains < 0:
            raise ValueError("domain counts must be non-negative")
        for rate in (
            self.resolve_rate_toplist,
            self.resolve_rate_czds,
            self.quic_rate_toplist,
            self.quic_rate_czds,
        ):
            if not 0.0 <= rate <= 1.0:
                raise ValueError("rates must be in [0, 1]")
        if not 0.0 < self.zone_density_scale <= 1.0:
            raise ValueError("zone_density_scale must be in (0, 1]")
        if not self.stack_persistence_tiers:
            raise ValueError("at least one persistence tier is required")
        for persistence, weight in self.stack_persistence_tiers:
            if not 0.0 <= persistence < 1.0:
                raise ValueError("tier persistence must be in [0, 1)")
            if weight <= 0.0:
                raise ValueError("tier weights must be positive")


@dataclass
class DomainRecord:
    """One domain of the target population."""

    name: str
    zone: str
    in_toplist: bool
    in_czds: bool
    toplist_sources: tuple[str, ...] = ()
    resolves: bool = False
    quic_enabled: bool = False
    provider_name: str | None = None
    host_index_v4: int | None = None
    has_aaaa: bool = False
    host_index_v6: int | None = None

    @property
    def in_com_net_org(self) -> bool:
        return self.in_czds and self.zone in _COM_NET_ORG


@dataclass
class _HostPool:
    """One provider's server pool for a (group, IP version) region.

    ``address_stride`` spaces hosts inside the prefix: 1 for single-AS
    providers, one AS-slice width for aggregated long-tail providers so
    every host falls into its own synthetic origin AS (Table 2's broad
    base of small organizations).
    """

    provider: Provider
    base_address: int
    version: int
    size: int
    label: str
    address_stride: int = 1

    def ip_of(self, index: int) -> IpAddr:
        if not 0 <= index < self.size:
            raise IndexError(f"host index {index} outside pool of {self.size}")
        return IpAddr(
            value=self.base_address + index * self.address_stride,
            version=self.version,
        )


class Population:
    """The built population: domains plus host pools and stack processes."""

    def __init__(self, config: PopulationConfig):
        self.config = config
        self.domains: list[DomainRecord] = []
        self._pools: dict[tuple[str, str, int], _HostPool] = {}
        #: (entity label, epoch) → stack name; bounded by one campaign.
        self._stack_cache: dict[tuple[str, int], str] = {}
        self._persistence_cache: dict[str, float] = {}

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------

    def host_of(self, domain: DomainRecord, version: int) -> IpAddr:
        """The address serving ``domain`` over IPv4 or IPv6.

        Raises :class:`ValueError` for unresolved domains or missing
        AAAA records — callers check ``resolves`` / ``has_aaaa`` first.
        """
        pool, index = self._placement(domain, version)
        return pool.ip_of(index)

    def stack_of(self, domain: DomainRecord, version: int, epoch: int = 0) -> str | None:
        """The webserver stack answering for ``domain`` in week ``epoch``.

        ``None`` for domains hosted by non-QUIC providers.  For dense
        shared hosting — and for IPv6 deployments that assign (nearly)
        one address per domain — the stack is a per-domain (vhost)
        property; for the long tail over IPv4 it is the host's.  Week
        over week the stack follows the Markov churn process (see
        module docs).
        """
        if domain.provider_name is None:
            raise ValueError(f"{domain.name} does not resolve")
        provider = _provider(domain.provider_name)
        if not provider.supports_quic:
            return None
        group = "toplist" if domain.in_toplist else "zone"
        if version == 4:
            density = (
                provider.domains_per_ip_toplist_v4
                if group == "toplist"
                else provider.domains_per_ip_zone_v4
            )
        else:
            density = provider.domains_per_ip_v6
        vhost = density >= _VHOST_DENSITY_THRESHOLD or (
            version == 6 and provider.domains_per_ip_v6 < 3.0
        )
        if vhost:
            entity = f"vhost/{domain.name}"
        else:
            pool, index = self._placement(domain, version)
            entity = f"host/{pool.label}/{index}"
        return self._stack_at(provider, entity, epoch)

    def provider_of(self, domain: DomainRecord) -> Provider:
        """The hosting provider of a resolved domain."""
        if domain.provider_name is None:
            raise ValueError(f"{domain.name} does not resolve")
        return _provider(domain.provider_name)

    def group_members(self, group: ListGroup) -> list[DomainRecord]:
        """Domains belonging to one of the Table 1 population views."""
        if group is ListGroup.TOPLISTS:
            return [d for d in self.domains if d.in_toplist]
        if group is ListGroup.CZDS:
            return [d for d in self.domains if d.in_czds]
        return [d for d in self.domains if d.in_com_net_org]

    # ------------------------------------------------------------------
    # Range-addressed access (shared surface with StreamingPopulation)
    # ------------------------------------------------------------------

    @property
    def domain_count(self) -> int:
        """Total domains, without forcing materialization."""
        return len(self.domains)

    def materialize_range(self, start: int, stop: int) -> list[DomainRecord]:
        """The domains at positions ``[start, stop)``.

        For a materialized population this is a plain slice; a
        :class:`~repro.internet.streaming.StreamingPopulation` generates
        the records on demand.  The parallel scan engine addresses all
        work through this method so task descriptors can ship ranges
        instead of pickled records.
        """
        return self.domains[start:stop]

    def iter_targets(self, batch: int = 1024):
        """Yield every domain in population order, ``batch`` at a time.

        Bounded-memory iteration surface: callers that only stream
        (exports, streaming scans) never need ``.domains`` and so work
        identically over a streaming population.
        """
        total = self.domain_count
        for start in range(0, total, batch):
            yield from self.materialize_range(start, min(start + batch, total))

    def trim_caches(self, limit: int = 200_000) -> None:
        """Drop stack/persistence caches once they exceed ``limit``.

        Vhost serving entities are per-domain, so over a 10 M-domain
        streaming scan these caches would otherwise grow without bound.
        Entries are pure functions of ``(seed, entity, epoch)`` — any
        evicted value is re-derived bit-identically on the next lookup —
        so trimming can never change results, only timing.  A no-op for
        ordinary campaign-scale populations, which stay far below the
        cap.
        """
        if len(self._stack_cache) > limit:
            self._stack_cache.clear()
        if len(self._persistence_cache) > limit:
            self._persistence_cache.clear()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _placement(self, domain: DomainRecord, version: int) -> tuple[_HostPool, int]:
        if domain.provider_name is None:
            raise ValueError(f"{domain.name} does not resolve")
        group = "toplist" if domain.in_toplist else "zone"
        provider = _provider(domain.provider_name)
        if version == 4:
            index = domain.host_index_v4
        elif version == 6:
            if not domain.has_aaaa:
                raise ValueError(f"{domain.name} has no AAAA record")
            index = domain.host_index_v6
        else:
            raise ValueError(f"bad IP version {version}")
        if index is None:
            raise ValueError(f"{domain.name} has no IPv{version} host")
        return self._pools[(provider.name, group, version)], index

    def _entity_persistence(self, entity: str) -> float:
        """The entity's stability tier (stable once assigned)."""
        cached = self._persistence_cache.get(entity)
        if cached is None:
            rng = derive_rng(self.config.seed, "persistence", entity)
            tiers = self.config.stack_persistence_tiers
            cached = weighted_choice(
                rng, [p for p, _ in tiers], [w for _, w in tiers]
            )
            self._persistence_cache[entity] = cached
        return cached

    def _stack_at(self, provider: Provider, entity: str, epoch: int) -> str:
        """Evaluate the Markov stack process for ``entity`` at ``epoch``.

        The stack changes between week ``e-1`` and ``e`` with the
        complement of the entity's persistence tier; the value after a
        change (and the base value) is drawn i.i.d. from the provider's
        mix, so every week's marginal distribution is exactly the mix.
        """
        cached = self._stack_cache.get((entity, epoch))
        if cached is not None:
            return cached
        seed = self.config.seed
        redraw_probability = 1.0 - self._entity_persistence(entity)
        draw_epoch = None
        floor = max(0, epoch - _MAX_CHURN_LOOKBACK_WEEKS)
        for candidate in range(epoch, floor - 1, -1):
            flip = derive_rng(seed, "stack-flip", entity, candidate).random()
            if flip < redraw_probability:
                draw_epoch = candidate
                break
        rng = derive_rng(seed, "stack-draw", entity, draw_epoch)
        names = [name for name, _ in provider.stack_mix]
        weights = [weight for _, weight in provider.stack_mix]
        stack = weighted_choice(rng, names, weights)
        self._stack_cache[(entity, epoch)] = stack
        return stack


def _fit_to_prefix(
    prefix: str, offset: int, size: int, stride: int, provider_name: str
) -> int:
    """Clamp a host pool to its provider's prefix capacity.

    At paper-scale populations (10M+ zone domains) the long-tail
    aggregate's one-host-per-/24 layout outgrows its /12; beyond that
    point additional domains share the existing hosts (a higher
    effective domains-per-IP) instead of failing the build.  Pools
    that fit are returned unchanged, so every previously-buildable
    population is bit-identical.
    """
    capacity = ipaddress.ip_network(prefix).num_addresses
    available = (capacity - offset) // stride
    if available < 1:
        raise ValueError(
            f"{provider_name}: prefix {prefix} exhausted at offset {offset}"
        )
    return min(size, available)


_PROVIDER_INDEX = {p.name: p for p in (*PROVIDERS, *NO_QUIC_PROVIDERS)}


def _provider(name: str) -> Provider:
    return _PROVIDER_INDEX[name]


def build_population(config: PopulationConfig | None = None) -> Population:
    """Generate the synthetic population for one measurement campaign.

    Deterministic in ``config.seed``: the same configuration always
    yields the identical population, hosts, and stack processes.
    """
    config = config or PopulationConfig()
    population = Population(config)
    rng = derive_rng(config.seed, "population")

    _build_pools(population, config)

    # Toplist domains: drawn from a popular TLD mix, tagged with the
    # toplists that contain them (deduplicated union, Sec. 3.1.1).
    for index in range(config.toplist_domains):
        zone = weighted_choice(rng, [z for z, _ in _ZONES], [w for _, w in _ZONES])
        sources = tuple(
            source for source in _TOPLIST_SOURCES if rng.random() < 0.45
        ) or ("tranco",)
        record = DomainRecord(
            name=f"top{index:07d}.{zone}",
            zone=zone,
            in_toplist=True,
            in_czds=False,
            toplist_sources=sources,
        )
        _resolve_domain(record, config, rng, population, group="toplist")
        population.domains.append(record)

    for index in range(config.czds_domains):
        zone = weighted_choice(rng, [z for z, _ in _ZONES], [w for _, w in _ZONES])
        record = DomainRecord(
            name=f"domain{index:09d}.{zone}",
            zone=zone,
            in_toplist=False,
            in_czds=True,
        )
        _resolve_domain(record, config, rng, population, group="zone")
        population.domains.append(record)

    return population


def _resolve_domain(
    record: DomainRecord,
    config: PopulationConfig,
    rng,
    population: Population,
    group: str,
) -> None:
    """DNS + hosting assignment for one domain."""
    resolve_rate = (
        config.resolve_rate_toplist if group == "toplist" else config.resolve_rate_czds
    )
    quic_rate = (
        config.quic_rate_toplist if group == "toplist" else config.quic_rate_czds
    )
    if rng.random() >= resolve_rate:
        return
    record.resolves = True
    record.quic_enabled = rng.random() < quic_rate

    catalog = PROVIDERS if record.quic_enabled else NO_QUIC_PROVIDERS
    pairs = []
    for provider in catalog:
        weight = (
            provider.quic_weight_toplist
            if group == "toplist"
            else provider.quic_weight_zone
        )
        if group == "zone" and record.zone in _COM_NET_ORG:
            weight *= provider.cno_multiplier
        pairs.append((provider, weight))
    providers = [p for p, _ in pairs]
    weights = [w for _, w in pairs]
    provider = weighted_choice(rng, providers, weights)
    record.provider_name = provider.name

    pool_v4 = population._pools[(provider.name, group, 4)]
    record.host_index_v4 = rng.randrange(pool_v4.size)

    aaaa = (
        provider.aaaa_fraction_toplist
        if group == "toplist"
        else provider.aaaa_fraction_zone
    )
    if record.quic_enabled and provider.aaaa_spin_stack_multiplier != 1.0:
        # Dual-stack deployment correlates with the (modern) server
        # stack: spin-capable vhosts are likelier to carry AAAA records
        # (Table 4's >60 % IPv6 host-level spin support).
        from repro.web.server_profiles import STACKS

        stack_name = population.stack_of(record, 6, epoch=0)
        if stack_name is not None and STACKS[stack_name].spin_config.ever_spins:
            aaaa = min(1.0, aaaa * provider.aaaa_spin_stack_multiplier)
        else:
            aaaa *= 0.6
    if rng.random() < aaaa:
        record.has_aaaa = True
        pool_v6 = population._pools[(provider.name, group, 6)]
        record.host_index_v6 = rng.randrange(pool_v6.size)


def _build_pools(population: Population, config: PopulationConfig) -> None:
    """Size and place every provider's host pools.

    Pool sizes follow the expected number of domains a provider serves
    in each (group, version) region divided by its (scaled) domains-
    per-IP density; regions are laid out sequentially inside the
    provider's prefix.
    """
    expected = {
        "toplist": config.toplist_domains * config.resolve_rate_toplist,
        "zone": config.czds_domains * config.resolve_rate_czds,
    }
    quic_rate = {
        "toplist": config.quic_rate_toplist,
        "zone": config.quic_rate_czds,
    }

    for catalog, is_quic in ((PROVIDERS, True), (NO_QUIC_PROVIDERS, False)):
        weight_total = {
            "toplist": sum(p.quic_weight_toplist for p in catalog),
            "zone": sum(p.quic_weight_zone for p in catalog),
        }
        for provider in catalog:
            v4_base = int(ipaddress.ip_network(provider.v4_prefix).network_address)
            v6_base = int(ipaddress.ip_network(provider.v6_prefix).network_address)
            offset_v4 = 16
            offset_v6 = 16
            for group in ("toplist", "zone"):
                weight = (
                    provider.quic_weight_toplist
                    if group == "toplist"
                    else provider.quic_weight_zone
                ) / weight_total[group]
                share = quic_rate[group] if is_quic else (1.0 - quic_rate[group])
                domain_count = expected[group] * share * weight
                if group == "toplist":
                    dpi_v4 = provider.domains_per_ip_toplist_v4
                    dpi_v6 = max(1.0, provider.domains_per_ip_v6)
                else:
                    dpi_v4 = max(
                        1.0, provider.domains_per_ip_zone_v4 * config.zone_density_scale
                    )
                    dpi_v6 = max(
                        1.0, provider.domains_per_ip_v6 * config.zone_density_scale
                    )
                size_v4 = max(1, round(domain_count / dpi_v4))
                size_v6 = max(1, round(domain_count / dpi_v6))
                # Long-tail aggregates spread one host per AS slice
                # (a /24 for IPv4, a /64-aligned block for IPv6).
                stride_v4 = 256 if provider.asn == 0 else 1
                stride_v6 = (1 << 64) if provider.asn == 0 else 1
                size_v4 = _fit_to_prefix(
                    provider.v4_prefix, offset_v4, size_v4, stride_v4, provider.name
                )
                size_v6 = _fit_to_prefix(
                    provider.v6_prefix, offset_v6, size_v6, stride_v6, provider.name
                )
                population._pools[(provider.name, group, 4)] = _HostPool(
                    provider=provider,
                    base_address=v4_base + offset_v4,
                    version=4,
                    size=size_v4,
                    label=f"{provider.name}/{group}/v4",
                    address_stride=stride_v4,
                )
                population._pools[(provider.name, group, 6)] = _HostPool(
                    provider=provider,
                    base_address=v6_base + offset_v6,
                    version=6,
                    size=size_v6,
                    label=f"{provider.name}/{group}/v6",
                    address_stride=stride_v6,
                )
                offset_v4 += size_v4 * stride_v4 + 64
                offset_v6 += size_v6 * stride_v6 + 64


def build_population_from_names(
    czds_names: list[str],
    toplist_names: list[str] | None = None,
    config: PopulationConfig | None = None,
) -> Population:
    """Build a population over externally supplied domain names.

    ``czds_names`` / ``toplist_names`` typically come from
    :mod:`repro.internet.listfiles` (real toplist CSVs and zone files).
    Domain counts in ``config`` are ignored — the lists define the
    population — while all rates, provider mixes, and the stack-churn
    process apply unchanged.  Zone membership follows each name's TLD.
    """
    toplist_names = toplist_names or []
    config = config or PopulationConfig()
    population = Population(config)
    rng = derive_rng(config.seed, "population-from-names")

    # Pool sizing uses the actual list sizes.
    sized = PopulationConfig(
        toplist_domains=len(toplist_names),
        czds_domains=len(czds_names),
        resolve_rate_toplist=config.resolve_rate_toplist,
        resolve_rate_czds=config.resolve_rate_czds,
        quic_rate_toplist=config.quic_rate_toplist,
        quic_rate_czds=config.quic_rate_czds,
        zone_density_scale=config.zone_density_scale,
        stack_persistence_tiers=config.stack_persistence_tiers,
        seed=config.seed,
    )
    population.config = sized
    _build_pools(population, sized)

    for name, in_toplist in (
        *((n, True) for n in toplist_names),
        *((n, False) for n in czds_names),
    ):
        zone = name.rsplit(".", 1)[-1] if "." in name else name
        record = DomainRecord(
            name=name,
            zone=zone,
            in_toplist=in_toplist,
            in_czds=not in_toplist,
        )
        _resolve_domain(
            record, sized, rng, population, group="toplist" if in_toplist else "zone"
        )
        population.domains.append(record)
    return population
