"""The synthetic Internet's hosting providers.

Each :class:`Provider` stands for one AS organization of the paper's
Table 2 (plus aggregated long-tail and non-QUIC populations).  The
catalog is *calibrated from the paper's own published numbers*: Table 2
fixes the share of QUIC connections per organization and the fraction of
those connections with spin activity, and because the paper's tables are
internally consistent, carrying those shares over reproduces the
Table 1/Table 4 percentages and the Table 3 behaviour mix.

Derivation notes (all for connections observed from the vantage point):

* spin activity share of an organization = (fraction of its hosts
  running a spin-capable stack) x (15/16 per-connection enable rate of
  RFC 9000), e.g. Hostinger's 51.9 % ⇒ ~55 % LiteSpeed/imunify hosts;
* CZDS domain spin share = Σ org_share x org_spin_share ≈ 10.2 %,
  matching Table 1 without further tuning;
* IP-level shares are driven by the per-provider domains-per-IP ratios
  (hyperscaler anycast reuse vs. shared hosting vs. long tail).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.netsim.delays import DelayModel, UniformDelay

__all__ = [
    "NO_QUIC_PROVIDERS",
    "PROVIDERS",
    "Provider",
    "provider_by_name",
]


@dataclass(frozen=True)
class Provider:
    """One hosting organization in the synthetic Internet.

    ``stack_mix`` assigns webserver stacks to the provider's *hosts*
    (IPs) — all domains sharing an IP see the same stack, as in real
    shared hosting.  ``quic_weight_zone`` / ``quic_weight_toplist`` set
    the provider's share among QUIC-enabled domains per population.
    ``domains_per_ip_*`` control the size of the provider's IP pools
    and thereby the Table 1/4 IP-level statistics.  ``aaaa_*`` are the
    fractions of the provider's domains that resolve (and answer QUIC)
    over IPv6.
    """

    name: str
    org_name: str
    asn: int
    v4_prefix: str
    v6_prefix: str
    stack_mix: tuple[tuple[str, float], ...]
    quic_weight_zone: float
    quic_weight_toplist: float
    domains_per_ip_zone_v4: float
    domains_per_ip_toplist_v4: float
    domains_per_ip_v6: float
    aaaa_fraction_zone: float
    aaaa_fraction_toplist: float
    propagation_delay: DelayModel
    supports_quic: bool = True
    #: Relative boost of this provider inside .com/.net/.org compared to
    #: the other CZDS zones (Table 1 shows com/net/org slightly more
    #: spin-friendly than CZDS overall).
    cno_multiplier: float = 1.0
    #: How much more likely a *spin-capable* deployment of this provider
    #: is to have an AAAA record than a legacy one.  Table 4 shows the
    #: IPv6 host base to be >60 % spin-capable: modern dual-stack
    #: deployments at shared hosters coincide with the newer (LiteSpeed)
    #: server stacks.
    aaaa_spin_stack_multiplier: float = 1.0

    def __post_init__(self) -> None:
        if self.supports_quic:
            total = sum(weight for _, weight in self.stack_mix)
            if not 0.999 <= total <= 1.001:
                raise ValueError(
                    f"{self.name}: stack mix weights sum to {total}, expected 1"
                )
        for value in (
            self.quic_weight_zone,
            self.quic_weight_toplist,
        ):
            if value < 0:
                raise ValueError(f"{self.name}: negative population weight")
        for value in (
            self.domains_per_ip_zone_v4,
            self.domains_per_ip_toplist_v4,
            self.domains_per_ip_v6,
        ):
            if value < 1.0:
                raise ValueError(f"{self.name}: domains-per-IP must be >= 1")


def _eu_edge() -> DelayModel:
    """Anycast CDN edge close to the vantage point."""
    return UniformDelay(2.0, 8.0)


def _eu_hosting() -> DelayModel:
    """European shared hosting (Hostinger, OVH, long tail)."""
    return UniformDelay(8.0, 30.0)


def _us_hosting() -> DelayModel:
    """US hosting reached from the European vantage point."""
    return UniformDelay(42.0, 65.0)


def _mixed_tail() -> DelayModel:
    """Globally scattered small deployments."""
    return UniformDelay(6.0, 80.0)


#: QUIC-capable providers, calibrated against Table 2 (see module docs).
PROVIDERS: tuple[Provider, ...] = (
    Provider(
        name="cloudflare",
        org_name="Cloudflare",
        asn=13335,
        v4_prefix="104.16.0.0/12",
        v6_prefix="2606:4700::/32",
        stack_mix=(("cloudflare", 1.0),),
        quic_weight_zone=0.455,
        quic_weight_toplist=0.400,
        cno_multiplier=0.97,
        domains_per_ip_zone_v4=2000.0,
        domains_per_ip_toplist_v4=8.0,
        domains_per_ip_v6=2000.0,
        aaaa_fraction_zone=0.50,
        aaaa_fraction_toplist=0.55,
        propagation_delay=_eu_edge(),
    ),
    Provider(
        name="google",
        org_name="Google",
        asn=15169,
        v4_prefix="142.250.0.0/15",
        v6_prefix="2a00:1450::/32",
        stack_mix=(("gws", 0.999), ("gws-spin", 0.001)),
        quic_weight_zone=0.244,
        quic_weight_toplist=0.260,
        cno_multiplier=0.97,
        domains_per_ip_zone_v4=1500.0,
        domains_per_ip_toplist_v4=10.0,
        domains_per_ip_v6=1500.0,
        aaaa_fraction_zone=0.50,
        aaaa_fraction_toplist=0.55,
        propagation_delay=_eu_edge(),
    ),
    Provider(
        name="hostinger",
        org_name="Hostinger",
        asn=47583,
        v4_prefix="185.185.0.0/16",
        v6_prefix="2a02:4780::/32",
        stack_mix=(("litespeed", 0.52), ("imunify360", 0.035), ("nginx", 0.445)),
        quic_weight_zone=0.061,
        quic_weight_toplist=0.035,
        cno_multiplier=1.10,
        domains_per_ip_zone_v4=300.0,
        domains_per_ip_toplist_v4=20.0,
        domains_per_ip_v6=1.05,
        aaaa_fraction_zone=0.40,
        aaaa_fraction_toplist=0.10,
        aaaa_spin_stack_multiplier=2.2,
        propagation_delay=_eu_hosting(),
    ),
    Provider(
        name="fastly",
        org_name="Fastly",
        asn=54113,
        v4_prefix="151.101.0.0/16",
        v6_prefix="2a04:4e40::/32",
        stack_mix=(("fastly", 1.0),),
        quic_weight_zone=0.0129,
        quic_weight_toplist=0.050,
        cno_multiplier=0.97,
        domains_per_ip_zone_v4=800.0,
        domains_per_ip_toplist_v4=5.0,
        domains_per_ip_v6=800.0,
        aaaa_fraction_zone=0.50,
        aaaa_fraction_toplist=0.55,
        propagation_delay=_eu_edge(),
    ),
    Provider(
        name="ovh",
        org_name="OVH SAS",
        asn=16276,
        v4_prefix="51.68.0.0/16",
        v6_prefix="2001:41d0::/32",
        stack_mix=(("litespeed", 0.60), ("imunify360", 0.04), ("nginx", 0.36)),
        quic_weight_zone=0.0087,
        quic_weight_toplist=0.018,
        cno_multiplier=1.05,
        domains_per_ip_zone_v4=120.0,
        domains_per_ip_toplist_v4=10.0,
        domains_per_ip_v6=1.1,
        aaaa_fraction_zone=0.30,
        aaaa_fraction_toplist=0.10,
        aaaa_spin_stack_multiplier=2.2,
        propagation_delay=_eu_hosting(),
    ),
    Provider(
        name="a2hosting",
        org_name="A2 Hosting",
        asn=55293,
        v4_prefix="68.66.192.0/18",
        v6_prefix="2606:3a00::/32",
        stack_mix=(("litespeed", 0.60), ("imunify360", 0.035), ("nginx", 0.365)),
        quic_weight_zone=0.0086,
        quic_weight_toplist=0.009,
        cno_multiplier=1.05,
        domains_per_ip_zone_v4=160.0,
        domains_per_ip_toplist_v4=10.0,
        domains_per_ip_v6=1.1,
        aaaa_fraction_zone=0.30,
        aaaa_fraction_toplist=0.10,
        aaaa_spin_stack_multiplier=2.2,
        propagation_delay=_us_hosting(),
    ),
    Provider(
        name="singlehop",
        org_name="SingleHop",
        asn=32475,
        v4_prefix="67.212.160.0/19",
        v6_prefix="2607:4f80::/32",
        stack_mix=(("litespeed", 0.595), ("imunify360", 0.035), ("nginx", 0.37)),
        quic_weight_zone=0.0069,
        quic_weight_toplist=0.004,
        cno_multiplier=1.05,
        domains_per_ip_zone_v4=150.0,
        domains_per_ip_toplist_v4=10.0,
        domains_per_ip_v6=1.1,
        aaaa_fraction_zone=0.30,
        aaaa_fraction_toplist=0.10,
        aaaa_spin_stack_multiplier=2.2,
        propagation_delay=_us_hosting(),
    ),
    Provider(
        name="servercentral",
        org_name="Server Central",
        asn=23352,
        v4_prefix="69.175.0.0/17",
        v6_prefix="2607:fc50::/32",
        stack_mix=(("litespeed", 0.68), ("imunify360", 0.04), ("nginx", 0.28)),
        quic_weight_zone=0.0059,
        quic_weight_toplist=0.003,
        cno_multiplier=1.05,
        domains_per_ip_zone_v4=140.0,
        domains_per_ip_toplist_v4=10.0,
        domains_per_ip_v6=1.1,
        aaaa_fraction_zone=0.30,
        aaaa_fraction_toplist=0.10,
        aaaa_spin_stack_multiplier=2.2,
        propagation_delay=_us_hosting(),
    ),
    # The long tail of small hosting ASes: collectively responsible for
    # the broad spin support the paper highlights ("53.3 % of the
    # remaining 2.52 M connections show spin bit support").
    Provider(
        name="other-hosting",
        org_name="<other hosting>",
        asn=0,  # expanded into many synthetic ASes by the AS database
        v4_prefix="193.96.0.0/12",
        v6_prefix="2a0f:5000::/28",
        stack_mix=(
            ("litespeed", 0.475),
            ("litespeed-draft", 0.025),
            ("imunify360", 0.04),
            ("caddy-spin", 0.02),
            ("nginx", 0.409),
            ("allone-appliance", 0.02),
            ("grease-packet", 0.005),
            ("grease-connection", 0.006),
        ),
        quic_weight_zone=0.092,
        quic_weight_toplist=0.048,
        cno_multiplier=1.08,
        domains_per_ip_zone_v4=12.0,
        domains_per_ip_toplist_v4=1.5,
        domains_per_ip_v6=1.2,
        aaaa_fraction_zone=0.28,
        aaaa_fraction_toplist=0.10,
        aaaa_spin_stack_multiplier=2.2,
        propagation_delay=_mixed_tail(),
    ),
    # Enterprise / self-hosted QUIC deployments without spin support.
    Provider(
        name="other-enterprise",
        org_name="<other enterprise>",
        asn=0,
        v4_prefix="203.0.0.0/12",
        v6_prefix="2a0e:8000::/28",
        stack_mix=(
            ("nginx", 0.966),
            ("caddy-spin", 0.030),
            ("allone-appliance", 0.004),
        ),
        quic_weight_zone=0.105,
        quic_weight_toplist=0.173,
        cno_multiplier=0.98,
        domains_per_ip_zone_v4=60.0,
        domains_per_ip_toplist_v4=3.0,
        domains_per_ip_v6=20.0,
        aaaa_fraction_zone=0.15,
        aaaa_fraction_toplist=0.15,
        propagation_delay=_mixed_tail(),
    ),
)

#: Providers hosting the resolved-but-not-QUIC web mass.  They never
#: answer HTTP/3 but contribute to the Resolved domain and IP totals of
#: Tables 1/4.
NO_QUIC_PROVIDERS: tuple[Provider, ...] = (
    Provider(
        name="parking",
        org_name="<domain parking>",
        asn=398101,
        v4_prefix="198.54.0.0/16",
        v6_prefix="2a00:b700::/32",
        stack_mix=(),
        supports_quic=False,
        quic_weight_zone=0.30,
        quic_weight_toplist=0.02,
        domains_per_ip_zone_v4=4000.0,
        domains_per_ip_toplist_v4=50.0,
        domains_per_ip_v6=4000.0,
        aaaa_fraction_zone=0.05,
        aaaa_fraction_toplist=0.05,
        propagation_delay=_mixed_tail(),
    ),
    Provider(
        name="legacy-web",
        org_name="<legacy web hosting>",
        asn=8560,
        v4_prefix="80.72.0.0/15",
        v6_prefix="2a01:4f00::/32",
        stack_mix=(),
        supports_quic=False,
        quic_weight_zone=0.55,
        quic_weight_toplist=0.68,
        domains_per_ip_zone_v4=15.0,
        domains_per_ip_toplist_v4=2.2,
        domains_per_ip_v6=5.0,
        aaaa_fraction_zone=0.08,
        aaaa_fraction_toplist=0.12,
        propagation_delay=_mixed_tail(),
    ),
    Provider(
        name="unreachable-web",
        org_name="<tcp-only CDN>",
        asn=20940,
        v4_prefix="92.122.0.0/15",
        v6_prefix="2a02:26f0::/32",
        stack_mix=(),
        supports_quic=False,
        quic_weight_zone=0.15,
        quic_weight_toplist=0.30,
        domains_per_ip_zone_v4=900.0,
        domains_per_ip_toplist_v4=6.0,
        domains_per_ip_v6=900.0,
        aaaa_fraction_zone=0.20,
        aaaa_fraction_toplist=0.40,
        propagation_delay=_eu_edge(),
    ),
)

_BY_NAME = {provider.name: provider for provider in (*PROVIDERS, *NO_QUIC_PROVIDERS)}


def provider_by_name(name: str) -> Provider:
    """Look up any provider (QUIC or not) by its short name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(f"unknown provider {name!r}; known: {sorted(_BY_NAME)}") from None
