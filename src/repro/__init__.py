"""repro — reproduction of "Does It Spin? On the Adoption and Use of
QUIC's Spin Bit" (Kunze, Sander, Wehrle; ACM IMC 2023).

The package rebuilds the paper's entire measurement system against a
synthetic, calibrated Internet (see DESIGN.md):

* :mod:`repro.core` — the spin-bit mechanism, passive observer, grease
  filter, accuracy metrics, RFC 9312 heuristics, and the VEC extension;
* :mod:`repro.quic` — byte-level QUIC v1 endpoints with RFC 9002 RTT
  estimation;
* :mod:`repro.netsim` — deterministic discrete-event network paths;
* :mod:`repro.qlog` — qlog-compatible trace capture with the spin-bit
  extension;
* :mod:`repro.web` — HTTP/3 exchanges, server stack profiles, and the
  zgrab2-equivalent scanner;
* :mod:`repro.monitor` — the streaming on-path monitoring service:
  many-flow traffic multiplexing, bounded flow-table pipeline, windowed
  RTT aggregation, JSONL metric snapshots;
* :mod:`repro.internet` — providers, AS database, domain population;
* :mod:`repro.campaign` — weekly/longitudinal measurement scheduling;
* :mod:`repro.analysis` — the aggregations behind Tables 1-4 and
  Figures 2-4.

Quickstart::

    from repro import build_population, Scanner, support_overview

    population = build_population()
    dataset = Scanner(population).scan()
    overview = support_overview(dataset, population)
"""

from repro.analysis import (
    accuracy_study,
    compliance_histogram,
    configuration_table,
    organization_table,
    support_overview,
    webserver_shares,
)
from repro.campaign import DEFAULT_CAMPAIGN, CalendarWeek, Campaign, CampaignRunner
from repro.core import (
    GreaseFilterVariant,
    SpinBehaviour,
    SpinObserver,
    SpinPolicy,
    compare_means,
    is_greasing,
    mapped_ratio,
    observe_recorder,
)
from repro.internet import (
    ListGroup,
    Population,
    PopulationConfig,
    build_default_asdb,
    build_population,
)
from repro.monitor import (
    MonitorConfig,
    MonitorPipeline,
    TrafficConfig,
    TrafficMux,
    run_monitor,
)
from repro.qlog import TraceRecorder, read_qlog, recorder_to_qlog, write_qlog
from repro.web import (
    ParallelScanConfig,
    ResponsePlan,
    ScanConfig,
    Scanner,
    run_exchange,
)

__version__ = "1.0.0"

__all__ = [
    "CalendarWeek",
    "Campaign",
    "CampaignRunner",
    "DEFAULT_CAMPAIGN",
    "GreaseFilterVariant",
    "ListGroup",
    "MonitorConfig",
    "MonitorPipeline",
    "Population",
    "PopulationConfig",
    "ResponsePlan",
    "ScanConfig",
    "Scanner",
    "SpinBehaviour",
    "SpinObserver",
    "SpinPolicy",
    "TraceRecorder",
    "TrafficConfig",
    "TrafficMux",
    "__version__",
    "accuracy_study",
    "build_default_asdb",
    "build_population",
    "compare_means",
    "compliance_histogram",
    "configuration_table",
    "is_greasing",
    "mapped_ratio",
    "observe_recorder",
    "organization_table",
    "read_qlog",
    "recorder_to_qlog",
    "run_exchange",
    "run_monitor",
    "support_overview",
    "webserver_shares",
    "write_qlog",
]
