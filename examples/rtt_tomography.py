#!/usr/bin/env python3
"""RTT decomposition at a mid-path observation point.

The paper's discussion names network tomography as a practical use of
spin-bit measurements.  This example places a passive observer at three
different positions along a client-server path and decomposes each spin
cycle into its upstream (observer → server → observer) and downstream
(observer → client → observer) components — showing how an ISP could
localize latency on either side of its monitoring point.

Run:  python examples/rtt_tomography.py
"""

from repro._util.rng import derive_rng, fork_rng
from repro.core.spin import EndpointRole, SpinPolicy
from repro.core.tomography import SpinTomographyObserver
from repro.netsim.delays import ConstantDelay
from repro.netsim.events import Simulator
from repro.netsim.path import PathProfile, duplex_paths
from repro.quic.connection import ConnectionConfig, QuicEndpoint
from repro.web.http3 import ResponsePlan, _ClientApp, _ServerApp

ONE_WAY_MS = 35.0


def run_with_tap(position_from_client: float) -> SpinTomographyObserver:
    simulator = Simulator()
    rng = derive_rng(42, "tomography-example", position_from_client)
    observer = SpinTomographyObserver(short_dcid_length=8)

    client = QuicEndpoint(
        simulator, EndpointRole.CLIENT, ConnectionConfig(), SpinPolicy.SPIN,
        fork_rng(rng, "client"),
    )
    server = QuicEndpoint(
        simulator, EndpointRole.SERVER, ConnectionConfig(), SpinPolicy.SPIN,
        fork_rng(rng, "server"),
    )
    profile = PathProfile(propagation_delay_ms=ONE_WAY_MS, jitter=ConstantDelay(0.0))
    uplink, downlink = duplex_paths(
        simulator, profile, profile,
        client.receive_datagram, server.receive_datagram, fork_rng(rng, "paths"),
    )
    # Co-locate the two direction taps at the same physical point.
    uplink.install_tap(observer.on_client_datagram, position=position_from_client)
    downlink.install_tap(
        observer.on_server_datagram, position=1.0 - position_from_client
    )
    client.attach_transport(uplink.send)
    server.attach_transport(downlink.send)

    plan = ResponsePlan(
        server_header="LiteSpeed", think_time_ms=25.0, write_sizes=(260_000,)
    )
    _ClientApp(simulator, client, "www.tomography.test")
    _ServerApp(simulator, server, [plan])
    client.connect()
    simulator.run()
    return observer


def main() -> None:
    print(f"true one-way delay {ONE_WAY_MS:.0f} ms "
          f"(RTT {2 * ONE_WAY_MS:.0f} ms)\n")
    for position in (0.1, 0.5, 0.9):
        observer = run_with_tap(position)
        steady = observer.samples[1:]
        if not steady:
            continue
        up = sum(s.upstream_ms for s in steady) / len(steady)
        down = sum(s.downstream_ms for s in steady) / len(steady)
        print(f"observer at {position:.0%} of the path (from the client):")
        print(f"  upstream component   (to server and back): {up:6.1f} ms")
        print(f"  downstream component (to client and back): {down:6.1f} ms")
        print(f"  full spin period:                          {up + down:6.1f} ms\n")
    print("moving the observation point shifts latency between the two\n"
          "components while their sum — the spin period — stays put.")


if __name__ == "__main__":
    main()
