#!/usr/bin/env python3
"""Quickstart: one simulated HTTP/3 fetch, observed by the spin bit.

Runs a single byte-level QUIC exchange between a scanner client and a
LiteSpeed-style server over a 50 ms-RTT path, then compares the passive
spin-bit RTT estimate against the stack's own RFC 9002 estimator — the
exact comparison the paper performs per connection (Section 5.1).

Run:  python examples/quickstart.py
"""

from repro._util.rng import derive_rng
from repro.core.metrics import compare_means
from repro.core.observer import observe_recorder
from repro.core.spin import SpinPolicy
from repro.netsim.path import PathProfile
from repro.web.http3 import ResponsePlan, run_exchange


def main() -> None:
    # A dynamic page: 60 ms of request processing, then three body
    # chunks 120 ms apart — the end-host delays that inflate spin-bit
    # measurements in the wild.
    plan = ResponsePlan(
        server_header="LiteSpeed",
        think_time_ms=60.0,
        write_gaps_ms=(0.0, 120.0, 120.0),
        write_sizes=(11_000, 11_000, 11_000),
    )
    path = PathProfile(propagation_delay_ms=25.0)  # one-way: RTT = 50 ms

    result = run_exchange(
        host="www.example.com",
        plan=plan,
        client_spin_policy=SpinPolicy.SPIN,
        server_spin_policy=SpinPolicy.SPIN,
        uplink_profile=path,
        downlink_profile=path,
        rng=derive_rng(2023, "quickstart"),
    )
    assert result.success, result.failure_reason

    print(f"fetched {result.body_bytes} bytes from {result.server_header} "
          f"(HTTP {result.status})")

    observation = observe_recorder(result.recorder)
    stack_rtts = result.recorder.stack_rtts_ms()

    print(f"\nspin-bit activity: {observation.spins} "
          f"({len(observation.edges_received)} edges observed)")
    print("spin-bit RTT samples (ms):",
          [round(sample, 1) for sample in observation.rtts_received_ms])
    print("stack RTT samples (ms):  ",
          [round(sample, 1) for sample in stack_rtts])

    accuracy = compare_means(observation.rtts_received_ms, stack_rtts)
    print(f"\nmean spin estimate: {accuracy.spin_mean_ms:.1f} ms")
    print(f"mean stack estimate: {accuracy.quic_mean_ms:.1f} ms")
    print(f"absolute difference: {accuracy.absolute_ms:+.1f} ms "
          f"(paper Fig. 3 metric)")
    print(f"mapped ratio: {accuracy.ratio:+.2f} (paper Fig. 4 metric)")
    if accuracy.ratio > 3.0:
        print("→ the spin bit overestimates this connection's RTT by more "
              "than 3x, like 51.7 % of spinning connections in the paper")


if __name__ == "__main__":
    main()
